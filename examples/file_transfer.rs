//! Reliable file transfer over a noisy 3.8 m SmartVLC link.
//!
//! Splits a payload into MAC frames, streams them through the channel at
//! a distance where slot errors are common, and lets the ARQ recover the
//! losses. Demonstrates the receiver/ACK machinery directly (the link
//! simulation wraps the same pieces).
//!
//! ```sh
//! cargo run --release --example file_transfer
//! ```

use smartvlc::link::mac::MacHeader;
use smartvlc::prelude::*;

fn main() {
    let cfg = SystemConfig::default();
    let level = DimmingLevel::new(0.5).unwrap();

    // The "file": 4 KB of structured data we can verify at the far end.
    let file: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    let chunk = cfg.payload_len - MacHeader::WIRE_BYTES;
    let chunks: Vec<&[u8]> = file.chunks(chunk).collect();
    println!(
        "sending {} bytes in {} frames over 3.8 m (slot errors expected)...",
        file.len(),
        chunks.len()
    );

    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let mut rx = Receiver::new(cfg.clone()).unwrap();
    let mut channel =
        OpticalChannel::new(ChannelConfig::paper_bench(3.8), DetRng::seed_from_u64(7));

    let mut received: Vec<Option<Vec<u8>>> = vec![None; chunks.len()];
    let mut transmissions = 0u32;
    let mut crc_drops = 0u32;
    let descriptor = amppm_descriptor(&cfg, level);

    // Simple ARQ: keep cycling over unacknowledged chunks.
    while received.iter().any(Option::is_none) {
        for (seq, data) in chunks.iter().enumerate() {
            if received[seq].is_some() {
                continue;
            }
            let payload = MacHeader { seq: seq as u16 }.encapsulate(data);
            let frame = Frame::new(descriptor, payload).unwrap();
            let slots = codec.emit(&frame).unwrap();
            transmissions += 1;
            let decided = channel.transmit_and_decide(&slots);
            for ev in rx.push_slots(&decided) {
                match ev {
                    RxEvent::Frame { frame, .. } => {
                        if let Some((hdr, body)) = MacHeader::decapsulate(&frame.payload) {
                            received[hdr.seq as usize] = Some(body.to_vec());
                        }
                    }
                    RxEvent::CrcFailed { .. } => crc_drops += 1,
                }
            }
        }
    }

    let reassembled: Vec<u8> = received
        .into_iter()
        .map(Option::unwrap)
        .collect::<Vec<_>>()
        .concat();
    assert_eq!(reassembled, file, "file corrupted!");
    println!(
        "done: {} transmissions for {} frames ({} CRC drops recovered by ARQ)",
        transmissions,
        chunks.len(),
        crc_drops
    );
    println!("file verified byte-for-byte at the receiver.");
}
