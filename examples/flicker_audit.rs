//! Audit waveforms for human-visible flicker (§2.2 of the paper).
//!
//! Runs the Type-I/Type-II flicker auditor over four waveforms: a clean
//! AMPPM stream, a slow square wave (Type-I violation), an abrupt
//! brightness step (Type-II violation), and a proper perception-domain
//! adaptation ramp.
//!
//! ```sh
//! cargo run --example flicker_audit
//! ```

use smartvlc::core::flicker::{FlickerAuditor, FlickerRules};
use smartvlc::prelude::*;

fn spread(level: f64, slots: usize) -> Vec<bool> {
    let ones = (level * slots as f64).round() as usize;
    (0..slots)
        .map(|i| (i * ones) / slots != ((i + 1) * ones) / slots)
        .collect()
}

fn main() {
    let cfg = SystemConfig::default();
    let auditor = FlickerAuditor::new(FlickerRules::from_config(&cfg));
    let verdict = |name: &str, slots: &[bool]| {
        let report = auditor.audit(slots);
        println!(
            "{name:<28} mean {:.3}  ->  {}",
            report.mean_level,
            if report.is_clean() {
                "clean".to_string()
            } else {
                format!(
                    "FLICKER ({} violations, first: {:?})",
                    report.violations.len(),
                    report.violations[0]
                )
            }
        );
    };

    // 1. AMPPM payload stream at 30% dimming: flicker-free by design
    //    (Eq. 4 bounds every super-symbol to Nmax slots).
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();
    let plan = planner.plan(DimmingLevel::new(0.3).unwrap()).unwrap();
    let modem = AmppmModem::from_plan(&plan);
    let table = BinomialTable::new(512);
    let data: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
    verdict("AMPPM data stream (l=0.3)", &modem.modulate(&table, &data));

    // 2. A 62.5 Hz square wave: runs of 1000 slots, way beyond fth.
    let slow: Vec<bool> = (0..12_000).map(|i| (i / 1000) % 2 == 0).collect();
    verdict("62.5 Hz square wave", &slow);

    // 3. An abrupt 0.2 -> 0.8 brightness step (the 'existing method'
    //    jumping without gradual adaptation).
    let mut step = spread(0.2, 6000);
    step.extend(spread(0.8, 6000));
    verdict("abrupt 0.2 -> 0.8 step", &step);

    // 4. The same change walked with the perception-domain stepper,
    //    holding each tau_p step for a few fth periods.
    let stepper = PerceptionStepper::new(cfg.tau_p);
    let mut ramp = Vec::new();
    for target in stepper.steps(0.2, 0.8) {
        for _ in 0..2 {
            ramp.extend(spread(target, 500));
        }
    }
    verdict("perception-domain ramp", &ramp);
}
