//! Night mode: SmartVLC + DarkLight, the §7 combination.
//!
//! "When illumination is required, SmartVLC can be applied and when
//! illumination is not required (e.g., at night), DarkLight can then be
//! applied instead." This example runs an evening: ambient light fades,
//! the luminaire dims with it (AMPPM all the way down), and once the
//! illumination set-point reaches zero the link flips to the DarkLight
//! mode — the room looks dark, data keeps flowing.

use smartvlc::core::schemes::DarklightModem;
use smartvlc::prelude::*;

fn main() {
    let cfg = SystemConfig::default();
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();
    let table = BinomialTable::new(512);

    println!("evening fade: illumination set-point vs link mode\n");
    println!("set-point | mode      | LED duty | raw rate");
    println!("----------|-----------|----------|---------");
    for step in (0..=10).rev() {
        let setpoint = step as f64 / 10.0;
        if setpoint >= 0.08 {
            // Daytime/evening: SmartVLC serves illumination + data.
            let plan = planner.plan(DimmingLevel::new(setpoint).unwrap()).unwrap();
            println!(
                "   {setpoint:.1}    | SmartVLC  |  {:.3}   | {:6.1} Kbps",
                plan.achieved.value(),
                plan.rate_bps / 1e3
            );
        } else {
            // Night: nobody needs light; flip to DarkLight.
            let dark = DarklightModem::paper_night_mode();
            println!(
                "   {setpoint:.1}    | DarkLight |  {:.3}   | {:6.1} Kbps",
                dark.duty(),
                dark.norm_rate(&table) * cfg.ftx_hz as f64 / 1e3
            );
        }
    }

    // Demonstrate a night-mode frame end to end through the dark room.
    println!("\nnight-mode frame over 3 m in a dark office:");
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let frame = Frame::new(
        PatternDescriptor::Darklight {
            positions: 128,
            pulse_w: 1,
        },
        b"goodnight, office".to_vec(),
    )
    .unwrap();
    let slots = codec.emit(&frame).unwrap();
    let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;

    let mut channel_cfg = ChannelConfig::paper_bench(3.0);
    channel_cfg.ambient_lux = 16.0; // the paper's L3 dark condition
    let mut channel = OpticalChannel::new(channel_cfg, DetRng::seed_from_u64(42));
    let received = channel.transmit_and_decide(&slots);
    let (parsed, stats) = codec.parse(&received).unwrap();
    assert!(stats.crc_ok);
    println!(
        "  {} slots at duty {:.4} ({:.1}% brightness) -> {:?}",
        slots.len(),
        duty,
        duty * 100.0,
        String::from_utf8_lossy(&parsed.payload)
    );
    println!("  the LED averages under 2% output: visibly off, audibly chatty.");
}
