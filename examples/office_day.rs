//! A whole office day in the Netherlands: diurnal daylight with heavy
//! moving clouds (the paper's own weather example), the luminaire
//! holding the room at its set-point, AMPPM re-planned at every
//! adaptation — plus the energy bill at the end.
//!
//! ```sh
//! cargo run --release --example office_day
//! ```

use desim::{DetRng, SimDuration};
use smartvlc::sim::{energy_from_trace, run_day};
use vlc_channel::ambient::DiurnalProfile;

fn main() {
    let mut sky = DiurnalProfile::dutch_autumn(DetRng::seed_from_u64(20171212));
    println!("simulating 24 h of a Dutch autumn office (sense every 60 s)...\n");
    let day = run_day(&mut sky, 24.0, SimDuration::secs(60), 1.0, 10_000.0);

    println!("hour | ambient | LED   | planned rate");
    println!("-----|---------|-------|-------------");
    for p in day.points.iter().step_by(60) {
        let bar_len = (p.led * 20.0).round() as usize;
        println!(
            "{:4.0} |  {:.3}  | {:.3} | {:6.1} Kbps {}",
            p.t_h,
            p.ambient,
            p.led,
            p.plan_bps / 1e3,
            "#".repeat(bar_len)
        );
    }

    let energy = energy_from_trace(&day.trace, 4.7).expect("trace long enough");
    println!("\nday summary");
    println!(
        "  mean planned goodput   {:.1} Kbps",
        day.mean_plan_bps / 1e3
    );
    println!(
        "  adaptation steps       {} (fixed-step baseline: {}, {:.0}% more)",
        day.smart_steps,
        day.fixed_steps,
        (day.fixed_steps as f64 / day.smart_steps as f64 - 1.0) * 100.0
    );
    println!(
        "  LED energy             {:.1} Wh (always-on: {:.1} Wh, saving {:.0}%)",
        energy.smart_j / 3600.0,
        energy.always_on_j / 3600.0,
        energy.saving * 100.0
    );
    println!("  mean LED duty          {:.2}", energy.mean_duty);
}
