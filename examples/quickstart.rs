//! Quickstart: encode a message with AMPPM, fly it through the simulated
//! optical channel at 3 m, and decode it back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use smartvlc::prelude::*;

fn main() {
    let cfg = SystemConfig::default();

    // 1. Smart lighting decides the dimming level: a bright afternoon
    //    (ambient covers 65% of the set-point) leaves 35% for the LED.
    let illum = IlluminationTarget::new(1.0);
    let level = illum.led_level_for(0.65);
    println!("ambient 65% of set-point  ->  LED dims to {level}");

    // 2. AMPPM plans the best super-symbol for that level.
    let planner = AmppmPlanner::new(cfg.clone()).expect("paper config is valid");
    let plan = planner.plan(level).expect("level within envelope");
    println!(
        "AMPPM plan: {:?}  (dimming {:.4}, {:.1} Kbps raw)",
        plan.super_symbol,
        plan.achieved.value(),
        plan.rate_bps / 1000.0
    );

    // 3. Frame a message (Table 1 of the paper) and emit slot states.
    let message = b"SmartVLC: when smart lighting meets VLC".to_vec();
    let mut codec = FrameCodec::new(cfg.clone()).expect("paper config is valid");
    let frame = Frame::new(amppm_descriptor(&cfg, level), message.clone()).unwrap();
    let slots = codec.emit(&frame).expect("frame fits");
    let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
    println!(
        "frame: {} slots on the air ({:.2} ms), waveform duty {:.3}",
        slots.len(),
        slots.len() as f64 * cfg.tslot_secs() * 1000.0,
        duty
    );

    // 4. Fly it through the simulated channel: Philips LED, 3 m of office
    //    air, SFH206K photodiode, TIA + 12-bit ADC, bright ambient.
    let mut channel =
        OpticalChannel::new(ChannelConfig::paper_bench(3.0), DetRng::seed_from_u64(1));
    let received = channel.transmit_and_decide(&slots);
    let flipped = received.iter().zip(&slots).filter(|(a, b)| a != b).count();
    println!(
        "channel: {} of {} slots flipped in flight",
        flipped,
        slots.len()
    );

    // 5. Parse at the receiver and check the CRC.
    let (parsed, stats) = codec.parse(&received).expect("frame recovered");
    assert!(stats.crc_ok, "CRC failed");
    println!(
        "received: {:?}  (CRC ok, {} symbols, {} symbol failures)",
        String::from_utf8_lossy(&parsed.payload),
        stats.symbols,
        stats.symbol_failures
    );
    assert_eq!(parsed.payload, message);
    println!("round trip complete.");
}
