//! Scheme shoot-out across dimming levels — a fast, analytic preview of
//! the paper's Fig. 15 (the `fig15_scheme_comparison` bench runs the full
//! end-to-end version).
//!
//! ```sh
//! cargo run --example dimming_sweep
//! ```

use smartvlc::prelude::*;

fn main() {
    let cfg = SystemConfig::default();
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();
    let table = BinomialTable::new(512);
    let ftx = cfg.ftx_hz as f64;

    println!("raw modulation rate by dimming level (Kbps at ftx = 125 kHz)\n");
    println!("level | AMPPM  | MPPM20 | OOK-CT | VPPM10 | AMPPM pattern");
    println!("------|--------|--------|--------|--------|---------------------------");
    for i in 2..=18 {
        let l = i as f64 / 20.0;
        let level = DimmingLevel::new(l).unwrap();
        let plan = planner.plan(level).unwrap();
        let mppm = MppmModem::paper_baseline(level).norm_rate(&table) * ftx;
        let ook = OokCtModem::new(level)
            .map(|m| m.norm_rate(&table) * ftx)
            .unwrap_or(0.0);
        let vppm = VppmModem::new(10, level)
            .map(|m| m.norm_rate(&table) * ftx)
            .unwrap_or(0.0);
        println!(
            " {l:.2} | {:6.1} | {:6.1} | {:6.1} | {:6.1} | {:?}",
            plan.rate_bps / 1000.0,
            mppm / 1000.0,
            ook / 1000.0,
            vppm / 1000.0,
            plan.super_symbol
        );
    }

    // The headline ratios the paper reports (§6.2).
    let levels: Vec<f64> = (2..=18).map(|i| i as f64 / 20.0).collect();
    let mut amppm_sum = 0.0;
    let mut mppm_sum = 0.0;
    let mut ook_sum = 0.0;
    let mut max_vs_ook: f64 = 0.0;
    let mut max_vs_mppm: f64 = 0.0;
    for &l in &levels {
        let level = DimmingLevel::new(l).unwrap();
        let a = planner.plan(level).unwrap().rate_bps;
        let m = MppmModem::paper_baseline(level).norm_rate(&table) * ftx;
        let o = OokCtModem::new(level).unwrap().norm_rate(&table) * ftx;
        amppm_sum += a;
        mppm_sum += m;
        ook_sum += o;
        max_vs_ook = max_vs_ook.max(a / o - 1.0);
        max_vs_mppm = max_vs_mppm.max(a / m - 1.0);
    }
    println!(
        "\nAMPPM vs OOK-CT: up to +{:.0}%, average +{:.0}%",
        max_vs_ook * 100.0,
        (amppm_sum / ook_sum - 1.0) * 100.0
    );
    println!(
        "AMPPM vs MPPM:   up to +{:.0}%, average +{:.0}%",
        max_vs_mppm * 100.0,
        (amppm_sum / mppm_sum - 1.0) * 100.0
    );
    println!("(paper: +170%/+40% vs OOK-CT, +30%/+12% vs MPPM — see EXPERIMENTS.md)");
}
