//! A day at the smart office: the paper's dynamic scenario (§6.3).
//!
//! The motorized blind opens over a minute while the luminaire keeps the
//! room's total illumination constant and streams data the whole time.
//! Prints the Fig. 19 trio: per-second throughput, the ambient/LED/sum
//! traces, and the adaptation-step comparison against the fixed-step
//! "existing method".
//!
//! ```sh
//! cargo run --release --example smart_office
//! ```

use smartvlc::prelude::*;
use smartvlc::sim::run_dynamic;

fn main() {
    // 20 simulated seconds keeps the example snappy; pass `--full` for
    // the paper's 67-second pull.
    let secs = if std::env::args().any(|a| a == "--full") {
        67.0
    } else {
        20.0
    };
    println!("blind pull over {secs:.0} s, AMPPM at 3 m...\n");
    let outcome = run_dynamic(SchemeKind::Amppm, Some(secs), 2017);
    let r = &outcome.report;

    println!("t(s)  ambient  LED   sum   | goodput");
    let mut tp_iter = r.throughput_bps.iter().peekable();
    for p in r.trace.iter().skip(1).step_by(5) {
        let bps = loop {
            match tp_iter.peek() {
                Some(&&(t, bps)) if t <= p.t_s => {
                    tp_iter.next();
                    if t + 1.0 > p.t_s {
                        break bps;
                    }
                }
                _ => break 0.0,
            }
        };
        println!(
            "{:4.0}   {:.3}   {:.3}  {:.3} | {:6.1} Kbps",
            p.t_s,
            p.ambient,
            p.led,
            p.ambient + p.led,
            bps / 1000.0
        );
    }

    let (_, smart, fixed) = *r.adaptation.last().unwrap();
    println!("\nlighting goal: ambient + LED held at the set-point throughout");
    println!(
        "adaptation:  SmartVLC {} adjustments vs fixed-step {} ({}% fewer)",
        smart,
        fixed,
        (outcome.adaptation_reduction * 100.0).round()
    );
    println!(
        "link:        {} frames, FER {:.1}%, mean goodput {:.1} Kbps",
        r.stats.frames_sent,
        r.stats.frame_error_rate() * 100.0,
        r.mean_goodput_bps / 1000.0
    );
}
