//! Property-based tests for the discrete-event kernel.

use desim::{DetRng, Scheduler, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within ties,
    /// regardless of insertion order.
    #[test]
    fn scheduler_orders_any_insertion(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = s.pop() {
            prop_assert_eq!(at, SimTime::from_nanos(t));
            if let Some((pt, pi)) = prev {
                prop_assert!(t >= pt);
                if t == pt {
                    prop_assert!(i > pi, "FIFO violated within a tie");
                }
            }
            prev = Some((t, i));
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut s = Scheduler::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, s.schedule(SimTime::from_nanos(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, h) in handles {
            if cancel_mask[i % cancel_mask.len()] {
                prop_assert!(s.cancel(h));
                prop_assert!(!s.cancel(h), "double cancel succeeded");
            } else {
                kept.push(i);
            }
        }
        prop_assert_eq!(s.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = s.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// run_with with an `until` bound delivers exactly the events at or
    /// before the bound.
    #[test]
    fn run_with_bound_is_exact(times in proptest::collection::vec(0u64..1000, 1..100), cut in 0u64..1000) {
        let mut s = Scheduler::new();
        for &t in &times {
            s.schedule(SimTime::from_nanos(t), t);
        }
        let mut seen = Vec::new();
        s.run_with(Some(SimTime::from_nanos(cut)), |_, _, t| seen.push(t));
        let expected = times.iter().filter(|&&t| t <= cut).count();
        prop_assert_eq!(seen.len(), expected);
        prop_assert!(seen.iter().all(|&t| t <= cut));
    }

    /// Forked RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_fork_properties(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = DetRng::seed_from_u64(seed);
        let mut a = root.fork(&label);
        let mut b = root.fork(&label);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut other = root.fork(&format!("{label}x"));
        let same = (0..32).filter(|_| a.next_u64() == other.next_u64()).count();
        prop_assert!(same < 4);
    }

    /// next_below is always in range.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = DetRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }

    /// Duration arithmetic round trips.
    #[test]
    fn duration_roundtrip(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let t = SimTime::from_nanos(lo) + SimDuration::nanos(hi - lo);
        prop_assert_eq!(t.as_nanos(), hi);
        prop_assert_eq!((t - SimTime::from_nanos(lo)).as_nanos(), hi - lo);
    }
}
