//! # desim — a small deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the SmartVLC reproduction. The
//! paper's evaluation runs on real hardware in real time; here every
//! component (LED driver, PRU, ADC sampler, Wi-Fi side channel, window
//! blind, ...) is a simulated process advancing through *virtual* time.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Two runs with the same seed produce bit-identical
//!    results. Events scheduled for the same instant fire in FIFO order of
//!    scheduling (a monotone sequence number breaks ties), and all random
//!    numbers come from explicitly seeded, splittable streams
//!    ([`rng::DetRng`]).
//! 2. **Simplicity.** A single-threaded binary-heap event queue. No async,
//!    no threads, no global state — in the spirit of smoltcp's "simplicity
//!    and robustness" design goals.
//! 3. **Integer time.** Virtual time is integer nanoseconds
//!    ([`time::SimTime`]); a slot of 8 µs is exactly 8000 ns, so slot grids
//!    never accumulate floating-point drift.
//!
//! ## Quick example
//!
//! ```
//! use desim::{Scheduler, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule(SimTime::ZERO + SimDuration::micros(8), Ev::Tick(1));
//! sched.schedule(SimTime::ZERO + SimDuration::micros(4), Ev::Tick(0));
//! let (t0, e0) = sched.pop().unwrap();
//! assert_eq!((t0, e0), (SimTime::from_nanos(4_000), Ev::Tick(0)));
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_nanos(8_000), Ev::Tick(1)));
//! assert!(sched.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod rng;
pub mod scheduler;
pub mod time;

pub use process::{Component, StepOutcome};
pub use rng::DetRng;
pub use scheduler::{EventHandle, Scheduler};
pub use time::{Frequency, SimDuration, SimTime};
