//! Integer virtual time.
//!
//! All simulation time is kept as whole nanoseconds in a `u64`. At 1 ns
//! resolution a `u64` spans ~584 years of virtual time, far beyond any
//! experiment in the paper (the longest run is the 67 s blind pull of
//! Fig. 19). Integer time keeps slot grids exact: the paper's
//! `tslot = 8 µs` is exactly 8000 ns, and 500-slot super-symbols land on
//! exact 4 ms boundaries.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as `f64` (measurement boundary only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Returns `None` if `earlier` is in
    /// the future (callers that "know" ordering should use `-` instead,
    /// which panics on underflow like std).
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating add, for timeout arithmetic near the end of time.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64` (measurement boundary only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division: how many whole `other` fit in `self`.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 / other.0
    }

    /// Checked multiplication by an integer count.
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".into()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{}ns", ns)
    }
}

/// A frequency in hertz, kept as an exact integer.
///
/// The paper's key frequencies are all exact in hertz: the slot clock
/// `ftx = 125 kHz`, the receiver sampling clock `fs = 500 kHz`, the Type-I
/// flicker threshold `fth = 250 Hz`, and the PRU core clock `200 MHz`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Frequency(u64);

impl Frequency {
    /// Construct from hertz. Panics on zero.
    pub const fn hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        Frequency(hz)
    }

    /// Construct from kilohertz.
    pub const fn khz(khz: u64) -> Self {
        Frequency::hz(khz * 1_000)
    }

    /// Construct from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Frequency::hz(mhz * 1_000_000)
    }

    /// The frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The period of one cycle, rounded down to whole nanoseconds.
    ///
    /// For every frequency used in the paper the period is exact
    /// (125 kHz → 8000 ns, 500 kHz → 2000 ns, 250 Hz → 4 ms).
    pub const fn period(self) -> SimDuration {
        SimDuration(1_000_000_000 / self.0)
    }

    /// Number of whole cycles elapsed in `d`.
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        // (d_ns * f_hz) / 1e9, computed in u128 to avoid overflow.
        ((d.as_nanos() as u128 * self.0 as u128) / 1_000_000_000) as u64
    }

    /// Integer ratio of this frequency over `other`, rounded down.
    ///
    /// E.g. `Nmax = ftx / fth` from Eq. (4) of the paper.
    pub const fn div_floor(self, other: Frequency) -> u64 {
        self.0 / other.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}kHz", self.0 / 1_000)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::micros(1), SimDuration::nanos(1_000));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::micros(8);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn checked_duration_since_handles_future() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::nanos(4)));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn paper_slot_clock_is_exact() {
        // tslot = 8 us at ftx = 125 kHz (Sec. 6.1 of the paper).
        let ftx = Frequency::khz(125);
        assert_eq!(ftx.period(), SimDuration::micros(8));
        // fs = 500 kHz = 4x oversampling.
        let fs = Frequency::khz(500);
        assert_eq!(fs.period(), SimDuration::micros(2));
        // Eq. (4): Nmax = ftx / fth = 125000 / 250 = 500.
        assert_eq!(ftx.div_floor(Frequency::hz(250)), 500);
    }

    #[test]
    fn cycles_in_counts_whole_cycles() {
        let f = Frequency::khz(125);
        assert_eq!(f.cycles_in(SimDuration::micros(8)), 1);
        assert_eq!(f.cycles_in(SimDuration::micros(7)), 0);
        assert_eq!(f.cycles_in(SimDuration::secs(1)), 125_000);
        // No overflow for large spans.
        assert_eq!(
            Frequency::mhz(200).cycles_in(SimDuration::secs(3600)),
            720_000_000_000
        );
    }

    #[test]
    fn duration_division() {
        assert_eq!(
            SimDuration::secs(1).div_duration(SimDuration::micros(8)),
            125_000
        );
        assert_eq!(
            SimDuration::micros(7).div_duration(SimDuration::micros(8)),
            0
        );
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(SimDuration::secs(2).to_string(), "2s");
        assert_eq!(SimDuration::millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::micros(8).to_string(), "8us");
        assert_eq!(SimDuration::nanos(17).to_string(), "17ns");
        assert_eq!(Frequency::khz(125).to_string(), "125kHz");
        assert_eq!(Frequency::hz(250).to_string(), "250Hz");
        assert_eq!(Frequency::mhz(200).to_string(), "200MHz");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.000_008),
            SimDuration::micros(8)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }
}
