//! Component processes on top of the raw scheduler.
//!
//! Most simulation actors in this workspace are *polled clocked processes*:
//! they wake at some instant, do work, and report when they next need to
//! run. [`Component`] captures that contract, and [`run_components`] drives
//! a set of them to completion. This mirrors smoltcp's
//! `poll`/`poll_delay` style: components are plain state machines, and the
//! caller owns the loop.

use crate::scheduler::Scheduler;
use crate::time::SimTime;

/// What a component wants after being stepped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// Wake me again at this absolute time.
    WakeAt(SimTime),
    /// I have no more work; don't wake me unless someone else does.
    Idle,
    /// The whole simulation should stop (e.g. experiment duration reached).
    Halt,
}

/// A clocked simulation process.
///
/// `Ctx` is whatever shared world-state the simulation exposes (channel
/// medium, metric sinks, ...). Components must not assume any particular
/// stepping order at equal timestamps beyond FIFO of their wake requests.
pub trait Component<Ctx> {
    /// Called when the component's wake time arrives. `now` is the current
    /// virtual time.
    fn step(&mut self, now: SimTime, ctx: &mut Ctx) -> StepOutcome;
}

/// Drive a set of components until none requests a wake-up, one of them
/// halts, or `until` is reached (inclusive). Each component is initially
/// stepped at `start`.
///
/// Returns the final simulation time.
pub fn run_components<Ctx>(
    components: &mut [&mut dyn Component<Ctx>],
    ctx: &mut Ctx,
    start: SimTime,
    until: Option<SimTime>,
) -> SimTime {
    let mut sched: Scheduler<usize> = Scheduler::new();
    for idx in 0..components.len() {
        sched.schedule(start, idx);
    }
    let mut last = start;
    while let Some(t) = sched.peek_time() {
        if let Some(u) = until {
            if t > u {
                break;
            }
        }
        let (now, idx) = sched.pop().expect("peeked event exists");
        last = now;
        match components[idx].step(now, ctx) {
            StepOutcome::WakeAt(at) => {
                sched.schedule(at.max(now), idx);
            }
            StepOutcome::Idle => {}
            StepOutcome::Halt => break,
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A ticker that appends (id, time) to a shared log every `period`.
    struct Ticker {
        id: u32,
        period: SimDuration,
        remaining: u32,
    }

    impl Component<Vec<(u32, SimTime)>> for Ticker {
        fn step(&mut self, now: SimTime, log: &mut Vec<(u32, SimTime)>) -> StepOutcome {
            log.push((self.id, now));
            if self.remaining == 0 {
                StepOutcome::Idle
            } else {
                self.remaining -= 1;
                StepOutcome::WakeAt(now + self.period)
            }
        }
    }

    #[test]
    fn components_interleave_deterministically() {
        let mut fast = Ticker {
            id: 1,
            period: SimDuration::micros(2),
            remaining: 4,
        };
        let mut slow = Ticker {
            id: 2,
            period: SimDuration::micros(5),
            remaining: 2,
        };
        let mut log = Vec::new();
        let end = run_components(&mut [&mut fast, &mut slow], &mut log, SimTime::ZERO, None);
        // fast fires at 0,2,4,6,8; slow at 0,5,10.
        let expect = vec![
            (1, SimTime::from_micros(0)),
            (2, SimTime::from_micros(0)),
            (1, SimTime::from_micros(2)),
            (1, SimTime::from_micros(4)),
            (2, SimTime::from_micros(5)),
            (1, SimTime::from_micros(6)),
            (1, SimTime::from_micros(8)),
            (2, SimTime::from_micros(10)),
        ];
        assert_eq!(log, expect);
        assert_eq!(end, SimTime::from_micros(10));
    }

    #[test]
    fn until_bound_is_respected() {
        let mut t1 = Ticker {
            id: 1,
            period: SimDuration::micros(1),
            remaining: 1000,
        };
        let mut log = Vec::new();
        run_components(
            &mut [&mut t1],
            &mut log,
            SimTime::ZERO,
            Some(SimTime::from_micros(10)),
        );
        assert_eq!(log.len(), 11); // t = 0..=10 us
    }

    struct Halter;
    impl Component<Vec<(u32, SimTime)>> for Halter {
        fn step(&mut self, _now: SimTime, _ctx: &mut Vec<(u32, SimTime)>) -> StepOutcome {
            StepOutcome::Halt
        }
    }

    #[test]
    fn halt_stops_everything() {
        let mut t1 = Ticker {
            id: 1,
            period: SimDuration::micros(1),
            remaining: 1000,
        };
        let mut h = Halter;
        let mut log = Vec::new();
        // Ticker is scheduled first at t=0 (fires once), then Halter stops the run.
        run_components(&mut [&mut t1, &mut h], &mut log, SimTime::ZERO, None);
        assert_eq!(log.len(), 1);
    }
}
