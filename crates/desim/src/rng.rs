//! Deterministic, splittable random number generation.
//!
//! Every stochastic element of the simulation (shot noise, Wi-Fi loss,
//! ambient-light jitter, virtual user-study subjects, payload contents)
//! draws from a [`DetRng`]. A `DetRng` can be *forked* into independent
//! child streams by label, so adding a new consumer never perturbs the
//! draws seen by existing ones — a property plain sequential sharing of one
//! RNG does not have, and which keeps regression baselines stable.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the standard
//! construction recommended by its authors. Implemented here directly (8
//! lines of core math) so the kernel stays dependency-free.

/// A deterministic pseudo-random stream (xoshiro256++).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro forbids the all-zero state; splitmix output of any seed
        // cannot be all zeros, but guard anyway.
        let mut rng = DetRng { s };
        if rng.s == [0; 4] {
            rng.s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        rng
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Forking hashes the parent state together with the label, so
    /// `fork("wifi")` and `fork("noise")` are decorrelated, and calling
    /// `fork` does not advance the parent stream.
    pub fn fork(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        for &w in &self.s {
            h ^= w;
            h = h.wrapping_mul(0x100000001b3);
        }
        DetRng::seed_from_u64(h)
    }

    /// Derive an independent child stream identified by an index
    /// (e.g. per-subject streams in the virtual user study).
    pub fn fork_idx(&self, index: u64) -> DetRng {
        self.fork(&format!("#{index}"))
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's rejection method
    /// (unbiased). Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second half is discarded for simplicity).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u away from zero.
        let u = (self.next_f64()).max(f64::MIN_POSITIVE);
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (core::f64::consts::TAU * v).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Poisson draw with mean `lambda`.
    ///
    /// Uses Knuth's product method for small `lambda` and a normal
    /// approximation above 64 (adequate for photon-counting with the
    /// photon fluxes the channel model produces).
    pub fn next_poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        if lambda == 0.0 {
            0
        } else if lambda < 64.0 {
            let limit = (-lambda).exp();
            let mut product = self.next_f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= self.next_f64();
            }
            count
        } else {
            let x = self.next_normal(lambda, lambda.sqrt()).round();
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = DetRng::seed_from_u64(42);
        let mut w1 = root.fork("wifi");
        let mut w2 = root.fork("wifi");
        let mut n = root.fork("noise");
        assert_eq!(w1.next_u64(), w2.next_u64(), "same label, same stream");
        assert_ne!(w1.next_u64(), n.next_u64(), "labels decorrelate");
        // Forking does not consume parent state.
        let mut r1 = DetRng::seed_from_u64(42);
        let mut r2 = DetRng::seed_from_u64(42);
        let _ = r2.fork("anything");
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = DetRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = DetRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = DetRng::seed_from_u64(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut r = DetRng::seed_from_u64(9);
        let lambda = 3.5;
        let n = 100_000;
        let xs: Vec<u64> = (0..n).map(|_| r.next_poisson(lambda)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean={mean}");
        assert!((var - lambda).abs() < 0.15, "var={var}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = DetRng::seed_from_u64(10);
        let lambda = 10_000.0;
        let n = 10_000;
        let mean = (0..n).map(|_| r.next_poisson(lambda)).sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = DetRng::seed_from_u64(11);
        assert_eq!(r.next_poisson(0.0), 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::seed_from_u64(12);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Deterministic.
        let mut r2 = DetRng::seed_from_u64(12);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
