//! The event queue.
//!
//! A [`Scheduler`] owns a priority queue of `(SimTime, E)` pairs. Events at
//! the same instant are delivered in the order they were scheduled
//! (FIFO), which makes simulations deterministic without requiring event
//! payloads to be comparable.
//!
//! For simulations whose correctness depends on a *fixed* same-instant
//! order — not the order events happened to be scheduled in —
//! [`Scheduler::schedule_keyed`] attaches an ordering key: events at the
//! same instant fire in ascending key order, FIFO within a key. That is
//! what lets a handler cancel and re-schedule an event (e.g. a TDMA grant
//! deferred by a handover outage) without perturbing the delivery order
//! of everything else at that instant — the key, not the scheduling
//! moment, decides.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, usable with [`Scheduler::cancel`].
///
/// Handles are unique per scheduler instance and never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    key: u64,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event
// first, breaking same-instant ties by key, then by scheduling order.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A deterministic future-event queue.
///
/// `E` is the caller's event type; the scheduler never inspects it. The
/// current simulation clock is the timestamp of the most recently popped
/// event ([`Scheduler::now`]); scheduling into the past is a logic error
/// and panics.
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    /// Seqs scheduled but neither fired nor cancelled — O(1) membership
    /// for `cancel` instead of a heap scan.
    pending: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
    high_water: usize,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            high_water: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The most events that were ever pending at once — the queue-depth
    /// high-water mark, for capacity gauges.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Schedule `payload` to fire at absolute time `at`, in FIFO order
    /// among events at the same instant (ordering key 0).
    ///
    /// # Panics
    /// Panics if `at` is earlier than [`Scheduler::now`]: an event cannot
    /// fire in the past.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        self.schedule_keyed(at, 0, payload)
    }

    /// Schedule `payload` to fire at absolute time `at` with an explicit
    /// same-instant ordering `key`: events at one instant fire in ascending
    /// key order, FIFO (scheduling order) within a key. [`Scheduler::schedule`]
    /// is `schedule_keyed` with key 0, so plain-FIFO and keyed users compose.
    ///
    /// # Panics
    /// Panics if `at` is earlier than [`Scheduler::now`].
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            key,
            seq,
            payload,
        });
        self.pending.insert(seq);
        self.high_water = self.high_water.max(self.pending.len());
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        // Pending-set membership distinguishes live events from fired,
        // cancelled, and foreign handles in O(1); the heap entry is skipped
        // lazily on pop via the cancelled mark.
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Pop the earliest pending event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted (the clock stays put).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue; // skip cancelled
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drain cancelled entries off the top so the answer is live.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let seq = self.heap.pop().expect("peeked entry exists").seq;
                self.cancelled.remove(&seq);
            } else {
                return Some(top.time);
            }
        }
        None
    }

    /// Run the simulation to completion (or until `until`, if given),
    /// delivering each event to `handler`. The handler may schedule further
    /// events. Returns the number of events delivered.
    ///
    /// Events *at* `until` are still delivered; events after it remain
    /// queued and the clock is left at the last delivered event.
    pub fn run_with<F>(&mut self, until: Option<SimTime>, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<E>, SimTime, E),
    {
        let mut delivered = 0;
        loop {
            match self.peek_time() {
                Some(t) if until.is_none_or(|u| t <= u) => {
                    let (t, e) = self.pop().expect("peeked event exists");
                    handler(self, t, e);
                    delivered += 1;
                }
                _ => return delivered,
            }
        }
    }
}

// `run_with` hands the scheduler itself to the handler, so the handler can
// schedule follow-ups. To keep the borrow checker happy we make Scheduler
// splittable: pop/peek only touch the heap, while the handler receives
// `&mut self` re-borrowed after the pop completes. The implementation above
// achieves this by finishing the pop before invoking the handler.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(t(30), "c");
        s.schedule(t(10), "a");
        s.schedule(t(20), "b");
        assert_eq!(s.pop(), Some((t(10), "a")));
        assert_eq!(s.pop(), Some((t(20), "b")));
        assert_eq!(s.pop(), Some((t(30), "c")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(s.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut s = Scheduler::new();
        assert_eq!(s.now(), SimTime::ZERO);
        s.schedule(t(42), ());
        s.pop();
        assert_eq!(s.now(), t(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(t(10), ());
        s.pop();
        s.schedule(t(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s = Scheduler::new();
        let h1 = s.schedule(t(1), 1);
        let _h2 = s.schedule(t(2), 2);
        assert_eq!(s.len(), 2);
        assert!(s.cancel(h1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop(), Some((t(2), 2)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_fired() {
        let mut s = Scheduler::new();
        let h = s.schedule(t(1), ());
        assert!(s.cancel(h));
        assert!(!s.cancel(h));
        let h2 = s.schedule(t(2), ());
        s.pop();
        assert!(!s.cancel(h2), "already fired");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let h = s.schedule(t(1), 1);
        s.schedule(t(2), 2);
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(t(2)));
        assert_eq!(s.pop(), Some((t(2), 2)));
    }

    #[test]
    fn run_with_drives_chained_events() {
        // A self-rescheduling ticker: event n schedules event n+1 until 5.
        let mut s = Scheduler::new();
        s.schedule(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        let delivered = s.run_with(None, |s, now, n| {
            seen.push((now, n));
            if n < 5 {
                s.schedule(now + SimDuration::micros(8), n + 1);
            }
        });
        assert_eq!(delivered, 6);
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[5], (t(40), 5));
    }

    #[test]
    fn run_with_until_is_inclusive() {
        let mut s = Scheduler::new();
        s.schedule(t(1), 1);
        s.schedule(t(2), 2);
        s.schedule(t(3), 3);
        let mut seen = Vec::new();
        s.run_with(Some(t(2)), |_, _, n| seen.push(n));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keyed_events_fire_in_key_order_regardless_of_scheduling_order() {
        let mut s = Scheduler::new();
        s.schedule_keyed(t(5), 3, "c");
        s.schedule_keyed(t(5), 1, "a");
        s.schedule_keyed(t(5), 2, "b");
        assert_eq!(s.pop(), Some((t(5), "a")));
        assert_eq!(s.pop(), Some((t(5), "b")));
        assert_eq!(s.pop(), Some((t(5), "c")));
    }

    #[test]
    fn keyed_cancel_and_reschedule_preserves_key_order() {
        // Re-scheduling an event must not demote it to "last at its
        // instant": the key decides, not the scheduling moment.
        let mut s = Scheduler::new();
        let h = s.schedule_keyed(t(5), 2, "mid-old");
        s.schedule_keyed(t(5), 1, "lo");
        s.schedule_keyed(t(5), 3, "hi");
        assert!(s.cancel(h));
        s.schedule_keyed(t(5), 2, "mid-new");
        let mut seen = Vec::new();
        while let Some((_, e)) = s.pop() {
            seen.push(e);
        }
        assert_eq!(seen, vec!["lo", "mid-new", "hi"]);
    }

    #[test]
    fn same_key_falls_back_to_fifo() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_keyed(t(5), 7, i);
        }
        for i in 0..10 {
            assert_eq!(s.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn high_water_tracks_peak_pending() {
        let mut s = Scheduler::new();
        assert_eq!(s.high_water(), 0);
        let h = s.schedule(t(1), 1);
        s.schedule(t(2), 2);
        s.schedule(t(3), 3);
        assert_eq!(s.high_water(), 3);
        s.cancel(h);
        s.pop();
        s.pop();
        assert_eq!(s.len(), 0);
        assert_eq!(s.high_water(), 3, "high-water never decays");
    }

    #[test]
    fn foreign_handle_is_rejected() {
        let mut a = Scheduler::<()>::new();
        let mut b = Scheduler::<()>::new();
        let h = a.schedule(t(1), ());
        // b never issued seq 0 (next_seq == 0), so it must reject it.
        assert!(!b.cancel(h));
    }
}
