//! Deterministic snapshot export (JSON and CSV).
//!
//! A [`Snapshot`] is plain owned data — it is available in both telemetry
//! modes (empty when the feature is off) so downstream binaries can
//! serialize unconditionally. Serialization is hand-rolled with a stable
//! field order, name-sorted metrics and shortest-roundtrip float formatting,
//! so equal snapshots always produce byte-identical output.

use std::fmt::Write as _;

/// A serializable histogram: total `count`, total `sum`, and the non-empty
/// log2 buckets as `(bucket_index, count)` pairs in index order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Interned key name of the histogram.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index. Bucket 0 holds zeros; bucket
    /// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.
    pub buckets: Vec<(u32, u64)>,
}

/// A serializable journal entry.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EventSnapshot {
    /// Sim-time timestamp in nanoseconds (never wall clock).
    pub t_ns: u64,
    /// Interned key name of the event.
    pub key: String,
    /// Event payload value.
    pub value: u64,
}

/// A point-in-time export of everything a recorder accumulated.
///
/// Metrics are sorted by key name; events keep journal (merge) order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters with non-zero totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges that were set at least once, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histograms with at least one observation, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Journal entries in merge order (per-task order within a task,
    /// submission order across tasks).
    pub events: Vec<EventSnapshot>,
    /// Events dropped by ring-buffer overflow, including drops inherited
    /// from merged child recorders.
    pub events_dropped: u64,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an f64 the way every serializer in this workspace must: Rust's
/// shortest-roundtrip `Display`, with non-finite values mapped to `null`
/// (JSON has no NaN/Inf literals).
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // "1" is a valid JSON number, so no ".0" fixup is needed; Display
        // output for finite floats is already deterministic.
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// True if nothing was recorded (also the no-op mode constant result).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
    }

    /// Serializes to a deterministic JSON object.
    ///
    /// Field order is fixed (`counters`, `gauges`, `histograms`, `events`,
    /// `events_dropped`); metric maps are name-sorted. Equal snapshots
    /// serialize to byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            let _ = write!(out, "\": {v}");
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str("\": ");
            fmt_f64(*v, &mut out);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(&h.name, &mut out);
            let _ = write!(
                out,
                "\": {{\"count\": {}, \"sum\": {}, \"buckets\": {{",
                h.count, h.sum
            );
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{b}\": {n}");
            }
            out.push_str("}}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"t_ns\": {}, \"key\": \"", ev.t_ns);
            escape_json(&ev.key, &mut out);
            let _ = write!(out, "\", \"value\": {}}}", ev.value);
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(out, "],\n  \"events_dropped\": {}\n}}", self.events_dropped);
        out
    }

    /// Serializes to a deterministic CSV table with columns
    /// `record,key,index,value`:
    ///
    /// - `counter,<key>,,<total>`
    /// - `gauge,<key>,,<value>`
    /// - `hist_count,<key>,,<count>` / `hist_sum,<key>,,<sum>` /
    ///   `hist_bucket,<key>,<bucket_index>,<count>`
    /// - `event,<key>,<t_ns>,<value>`
    /// - `events_dropped,,,<n>`
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("record,key,index,value\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},,{v}");
        }
        for (name, v) in &self.gauges {
            let _ = write!(out, "gauge,{name},,");
            fmt_f64(*v, &mut out);
            out.push('\n');
        }
        for h in &self.histograms {
            let _ = writeln!(out, "hist_count,{},,{}", h.name, h.count);
            let _ = writeln!(out, "hist_sum,{},,{}", h.name, h.sum);
            for (b, n) in &h.buckets {
                let _ = writeln!(out, "hist_bucket,{},{b},{n}", h.name);
            }
        }
        for ev in &self.events {
            let _ = writeln!(out, "event,{},{},{}", ev.key, ev.t_ns, ev.value);
        }
        let _ = writeln!(out, "events_dropped,,,{}", self.events_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a.count".into(), 3), ("b.count".into(), 1)],
            gauges: vec![("a.gauge".into(), 1.5), ("b.gauge".into(), 2.0)],
            histograms: vec![HistogramSnapshot {
                name: "a.hist".into(),
                count: 2,
                sum: 5,
                buckets: vec![(2, 1), (3, 1)],
            }],
            events: vec![EventSnapshot {
                t_ns: 8000,
                key: "a.ev".into(),
                value: 7,
            }],
            events_dropped: 1,
        }
    }

    #[test]
    fn json_is_stable_and_contains_all_sections() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"a.count\": 3"));
        assert!(a.contains("\"a.gauge\": 1.5"));
        assert!(a.contains("\"b.gauge\": 2"));
        assert!(a.contains("\"count\": 2, \"sum\": 5"));
        assert!(a.contains("\"t_ns\": 8000"));
        assert!(a.contains("\"events_dropped\": 1"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_shell() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        let json = s.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events_dropped\": 0"));
    }

    #[test]
    fn csv_round_structure() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "record,key,index,value");
        assert!(lines.contains(&"counter,a.count,,3"));
        assert!(lines.contains(&"hist_bucket,a.hist,2,1"));
        assert!(lines.contains(&"event,a.ev,8000,7"));
        assert!(lines.contains(&"events_dropped,,,1"));
    }
}
