//! No-op implementations used when the `telemetry` feature is disabled.
//!
//! Every item mirrors the real API's signatures with zero-sized types and
//! empty inline bodies, so instrumented call sites compile unchanged and the
//! optimizer erases them completely.

use desim::SimTime;

use crate::snapshot::Snapshot;

/// Maximum number of distinct metric keys (unused in no-op mode).
pub const MAX_KEYS: usize = 256;

/// Number of histogram buckets (unused in no-op mode).
pub const HIST_BUCKETS: usize = 65;

/// Zero-sized stand-in for an interned metric key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Key;

impl Key {
    /// No-op intern: every name maps to the same zero-sized key.
    #[inline]
    pub fn intern(_name: &'static str) -> Key {
        Key
    }

    /// No-op name accessor.
    #[inline]
    pub fn name(self) -> &'static str {
        ""
    }

    /// No-op index accessor.
    #[inline]
    pub fn index(self) -> usize {
        0
    }
}

/// Returns the histogram bucket index for `v` (shared math, kept so tests
/// and callers behave identically in both modes).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Returns the smallest value that lands in bucket `i`.
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Zero-sized stand-in for a metrics recorder: records nothing.
#[derive(Clone, Copy, Default)]
pub struct Recorder;

impl Recorder {
    /// Creates a no-op recorder.
    #[inline]
    pub fn new() -> Recorder {
        Recorder
    }

    /// Creates a no-op recorder (capacity is ignored).
    #[inline]
    pub fn with_journal_capacity(_capacity: usize) -> Recorder {
        Recorder
    }

    /// No-op.
    #[inline]
    pub fn counter_add(&self, _key: Key, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn gauge_set(&self, _key: Key, _v: f64) {}

    /// No-op.
    #[inline]
    pub fn observe(&self, _key: Key, _v: u64) {}

    /// No-op.
    #[inline]
    pub fn event(&self, _t: SimTime, _key: Key, _value: u64) {}

    /// Always zero.
    #[inline]
    pub fn events_dropped(&self) -> u64 {
        0
    }

    /// No-op.
    #[inline]
    pub fn merge_in(&self, _child: &Recorder) {}

    /// Always the empty snapshot.
    #[inline]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// Runs `f` directly; no recorder is installed in no-op mode.
#[inline]
pub fn with_recorder<R>(_rec: &Recorder, f: impl FnOnce() -> R) -> R {
    f()
}

/// Always `None` in no-op mode.
#[inline]
pub fn current_recorder() -> Option<Recorder> {
    None
}

/// No-op.
#[inline]
pub fn counter_add(_key: Key, _n: u64) {}

/// No-op.
#[inline]
pub fn gauge_set(_key: Key, _v: f64) {}

/// No-op.
#[inline]
pub fn observe(_key: Key, _v: u64) {}

/// No-op.
#[inline]
pub fn event(_t: SimTime, _key: Key, _value: u64) {}
