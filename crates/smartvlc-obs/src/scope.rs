//! Thread-local recorder scoping.
//!
//! Instrumented library code never sees a recorder directly: it calls the
//! free functions here, which route to the innermost recorder installed on
//! this thread by [`with_recorder`] — or do nothing when none is installed.
//! This is what lets deep library crates stay recorder-agnostic while
//! parallel runners swap per-task recorders in and out around each task.

use std::cell::RefCell;

use desim::SimTime;

use crate::key::Key;
use crate::registry::Recorder;

thread_local! {
    static STACK: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
}

struct PopGuard;

impl Drop for PopGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `rec` installed as this thread's innermost recorder.
///
/// Scopes nest: the innermost recorder wins. The recorder is popped even if
/// `f` panics.
pub fn with_recorder<R>(rec: &Recorder, f: impl FnOnce() -> R) -> R {
    STACK.with(|s| s.borrow_mut().push(rec.clone()));
    let _guard = PopGuard;
    f()
}

/// Returns a handle to this thread's innermost recorder, if any.
pub fn current_recorder() -> Option<Recorder> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// Adds `n` to counter `key` on the innermost recorder (no-op if none).
#[inline]
pub fn counter_add(key: Key, n: u64) {
    STACK.with(|s| {
        if let Some(rec) = s.borrow().last() {
            rec.counter_add(key, n);
        }
    });
}

/// Sets gauge `key` to `v` on the innermost recorder (no-op if none).
#[inline]
pub fn gauge_set(key: Key, v: f64) {
    STACK.with(|s| {
        if let Some(rec) = s.borrow().last() {
            rec.gauge_set(key, v);
        }
    });
}

/// Records `v` into histogram `key` on the innermost recorder (no-op if none).
#[inline]
pub fn observe(key: Key, v: u64) {
    STACK.with(|s| {
        if let Some(rec) = s.borrow().last() {
            rec.observe(key, v);
        }
    });
}

/// Journals a sim-time event on the innermost recorder (no-op if none).
#[inline]
pub fn event(t: SimTime, key: Key, value: u64) {
    STACK.with(|s| {
        if let Some(rec) = s.borrow().last() {
            rec.event(t, key, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fns_are_noops_without_a_scope() {
        // Must not panic or record anywhere.
        counter_add(Key::intern("test.scope.unscoped"), 1);
        assert!(current_recorder().is_none());
    }

    #[test]
    fn innermost_recorder_wins() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let k = Key::intern("test.scope.nested");
        with_recorder(&outer, || {
            counter_add(k, 1);
            with_recorder(&inner, || {
                counter_add(k, 10);
            });
            counter_add(k, 2);
        });
        let so = outer.snapshot();
        let si = inner.snapshot();
        assert!(so.counters.contains(&("test.scope.nested".into(), 3)));
        assert!(si.counters.contains(&("test.scope.nested".into(), 10)));
    }

    #[test]
    fn scope_pops_on_panic() {
        let rec = Recorder::new();
        let result = std::panic::catch_unwind(|| {
            with_recorder(&rec, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current_recorder().is_none());
    }
}
