//! The per-task metric accumulator: counters, gauges, histograms, journal.
//!
//! A [`Recorder`] is cheap to clone (it is an `Arc` over its storage) and is
//! the unit of determinism: parallel runners hand each task a fresh recorder
//! and merge them back **in submission order**, so the aggregate never
//! depends on worker interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use desim::SimTime;

use crate::key::{Key, MAX_KEYS};
use crate::snapshot::{EventSnapshot, HistogramSnapshot, Snapshot};

/// Number of buckets in a log2-scale histogram: bucket 0 holds zero values,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Default bound on the event journal ring buffer.
const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Returns the histogram bucket index for `v` (log2 scale).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Returns the smallest value that lands in bucket `i`.
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Fixed-bucket log2 histogram. All cells are relaxed atomics: per-recorder
/// totals are only read at snapshot/merge time, after the recording scope
/// has been joined, so no ordering stronger than `Relaxed` is needed.
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0u64; HIST_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// A gauge cell: latest f64 bits plus a set-count so merges can tell
/// "never written" apart from "written with the default value".
struct Gauge {
    bits: AtomicU64,
    sets: AtomicU64,
}

/// One journal entry: a sim-time-stamped `(key, value)` pair.
#[derive(Clone, Copy)]
struct Event {
    t: SimTime,
    key: Key,
    value: u64,
}

/// Bounded ring buffer of events with drop accounting (drop-oldest).
struct Journal {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    fn push(&mut self, ev: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }
}

struct Inner {
    counters: Box<[AtomicU64]>,
    gauges: Box<[Gauge]>,
    hists: Box<[OnceLock<Histogram>]>,
    journal: Mutex<Journal>,
}

/// A metrics accumulator scoped to one task (or one whole experiment).
///
/// Cloning shares the underlying storage. See the crate docs for the
/// determinism rules recorders are designed around.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder with the default journal capacity.
    pub fn new() -> Recorder {
        Recorder::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty recorder whose event journal holds at most
    /// `capacity` entries (older entries are dropped, and counted, first).
    pub fn with_journal_capacity(capacity: usize) -> Recorder {
        let counters: Vec<AtomicU64> = (0..MAX_KEYS).map(|_| AtomicU64::new(0)).collect();
        let gauges: Vec<Gauge> = (0..MAX_KEYS)
            .map(|_| Gauge {
                bits: AtomicU64::new(0),
                sets: AtomicU64::new(0),
            })
            .collect();
        let hists: Vec<OnceLock<Histogram>> = (0..MAX_KEYS).map(|_| OnceLock::new()).collect();
        Recorder {
            inner: Arc::new(Inner {
                counters: counters.into_boxed_slice(),
                gauges: gauges.into_boxed_slice(),
                hists: hists.into_boxed_slice(),
                journal: Mutex::new(Journal {
                    ring: VecDeque::with_capacity(capacity.min(1024)),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
            }),
        }
    }

    /// Adds `n` to the monotonic counter `key`. Hot path: one relaxed RMW.
    #[inline]
    pub fn counter_add(&self, key: Key, n: u64) {
        self.inner.counters[key.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Sets gauge `key` to `v` (last write wins; merge order is submission
    /// order, so "last" is deterministic).
    #[inline]
    pub fn gauge_set(&self, key: Key, v: f64) {
        let g = &self.inner.gauges[key.index()];
        g.bits.store(v.to_bits(), Ordering::Relaxed);
        g.sets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `v` into the log2 histogram `key`.
    #[inline]
    pub fn observe(&self, key: Key, v: u64) {
        self.inner.hists[key.index()]
            .get_or_init(Histogram::new)
            .observe(v);
    }

    /// Appends a sim-time-stamped event to the journal.
    pub fn event(&self, t: SimTime, key: Key, value: u64) {
        let mut j = self.inner.journal.lock().expect("obs journal poisoned");
        j.push(Event { t, key, value });
    }

    /// Number of events dropped from the journal so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .journal
            .lock()
            .expect("obs journal poisoned")
            .dropped
    }

    /// Folds `child` into `self`.
    ///
    /// Counters and histograms add; a gauge the child ever set overwrites
    /// the parent's value; the child's journal is appended entry-by-entry
    /// (subject to `self`'s capacity) and its drop count carries over.
    /// Calling this for each task **in submission order** is what makes the
    /// merged recorder independent of worker scheduling.
    pub fn merge_in(&self, child: &Recorder) {
        for i in 0..MAX_KEYS {
            let n = child.inner.counters[i].load(Ordering::Relaxed);
            if n != 0 {
                self.inner.counters[i].fetch_add(n, Ordering::Relaxed);
            }
            let g = &child.inner.gauges[i];
            let sets = g.sets.load(Ordering::Relaxed);
            if sets != 0 {
                let pg = &self.inner.gauges[i];
                pg.bits
                    .store(g.bits.load(Ordering::Relaxed), Ordering::Relaxed);
                pg.sets.fetch_add(sets, Ordering::Relaxed);
            }
            if let Some(h) = child.inner.hists[i].get() {
                let ph = self.inner.hists[i].get_or_init(Histogram::new);
                for (b, cell) in h.buckets.iter().enumerate() {
                    let v = cell.load(Ordering::Relaxed);
                    if v != 0 {
                        ph.buckets[b].fetch_add(v, Ordering::Relaxed);
                    }
                }
                ph.count
                    .fetch_add(h.count.load(Ordering::Relaxed), Ordering::Relaxed);
                ph.sum
                    .fetch_add(h.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        let cj = child.inner.journal.lock().expect("obs journal poisoned");
        let mut pj = self.inner.journal.lock().expect("obs journal poisoned");
        pj.dropped += cj.dropped;
        for ev in cj.ring.iter() {
            pj.push(*ev);
        }
    }

    /// Exports a deterministic, name-sorted snapshot of everything recorded.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, f64)> = Vec::new();
        let mut histograms: Vec<HistogramSnapshot> = Vec::new();
        for i in 0..MAX_KEYS {
            let key = Key(i as u16);
            let c = self.inner.counters[i].load(Ordering::Relaxed);
            if c != 0 {
                counters.push((key.name().to_string(), c));
            }
            let g = &self.inner.gauges[i];
            if g.sets.load(Ordering::Relaxed) != 0 {
                gauges.push((
                    key.name().to_string(),
                    f64::from_bits(g.bits.load(Ordering::Relaxed)),
                ));
            }
            if let Some(h) = self.inner.hists[i].get() {
                let buckets: Vec<(u32, u64)> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(b, cell)| {
                        let v = cell.load(Ordering::Relaxed);
                        (v != 0).then_some((b as u32, v))
                    })
                    .collect();
                histograms.push(HistogramSnapshot {
                    name: key.name().to_string(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets,
                });
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let j = self.inner.journal.lock().expect("obs journal poisoned");
        let events: Vec<EventSnapshot> = j
            .ring
            .iter()
            .map(|ev| EventSnapshot {
                t_ns: ev.t.as_nanos(),
                key: ev.key.name().to_string(),
                value: ev.value,
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            events,
            events_dropped: j.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(lo - 1), i - 1, "below bucket {i}");
        }
    }

    #[test]
    fn journal_overflow_drops_oldest_and_counts() {
        let rec = Recorder::with_journal_capacity(4);
        let k = Key::intern("test.reg.journal_overflow");
        for v in 0..10u64 {
            rec.event(SimTime::from_nanos(v), k, v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events_dropped, 6);
        assert_eq!(snap.events.len(), 4);
        let kept: Vec<u64> = snap.events.iter().map(|e| e.value).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn merge_adds_counters_and_hists_and_overwrites_gauges() {
        let parent = Recorder::new();
        let a = Recorder::new();
        let b = Recorder::new();
        let kc = Key::intern("test.reg.merge_counter");
        let kg = Key::intern("test.reg.merge_gauge");
        let kh = Key::intern("test.reg.merge_hist");
        a.counter_add(kc, 2);
        b.counter_add(kc, 5);
        a.gauge_set(kg, 1.5);
        b.gauge_set(kg, 2.5);
        a.observe(kh, 3);
        b.observe(kh, 1024);
        parent.merge_in(&a);
        parent.merge_in(&b);
        let snap = parent.snapshot();
        assert!(snap
            .counters
            .contains(&("test.reg.merge_counter".into(), 7)));
        assert!(snap.gauges.contains(&("test.reg.merge_gauge".into(), 2.5)));
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.reg.merge_hist")
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.buckets, vec![(2, 1), (11, 1)]);
    }

    #[test]
    fn gauge_unset_in_child_does_not_clobber_parent() {
        let parent = Recorder::new();
        let kg = Key::intern("test.reg.gauge_keep");
        parent.gauge_set(kg, 9.0);
        let child = Recorder::new();
        parent.merge_in(&child);
        let snap = parent.snapshot();
        assert!(snap.gauges.contains(&("test.reg.gauge_keep".into(), 9.0)));
    }

    #[test]
    fn merge_carries_journal_drops() {
        let parent = Recorder::with_journal_capacity(2);
        let child = Recorder::with_journal_capacity(2);
        let k = Key::intern("test.reg.merge_drops");
        for v in 0..5u64 {
            child.event(SimTime::from_nanos(v), k, v);
        }
        parent.event(SimTime::ZERO, k, 100);
        parent.merge_in(&child);
        // child dropped 3; merging its 2 survivors into a cap-2 parent that
        // already held 1 entry drops 1 more.
        assert_eq!(parent.events_dropped(), 4);
    }
}
