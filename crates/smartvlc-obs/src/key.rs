//! Interned static metric keys.
//!
//! A [`Key`] is a small index into a process-global table of `&'static str`
//! names. Interning happens once per call site (see the [`key!`](crate::key)
//! macro); after that, addressing a metric slot is a bounds-checked array
//! index — no hashing, no string comparison on the hot path.

use std::sync::Mutex;
use std::sync::OnceLock;

/// Maximum number of distinct metric keys a process may intern.
///
/// Recorders preallocate one slot per possible key, so this bounds the
/// per-recorder footprint (`MAX_KEYS` counters + gauges + histogram slots).
pub const MAX_KEYS: usize = 256;

/// An interned metric key: a dense index into the global name table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key(pub(crate) u16);

fn table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

impl Key {
    /// Interns `name`, returning the existing key if it was seen before.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_KEYS`] distinct names are interned — that is
    /// a programming error (keys are meant to be static call-site literals,
    /// not dynamic strings).
    pub fn intern(name: &'static str) -> Key {
        let mut tab = table().lock().expect("obs key table poisoned");
        if let Some(idx) = tab.iter().position(|n| *n == name) {
            return Key(idx as u16);
        }
        assert!(
            tab.len() < MAX_KEYS,
            "smartvlc-obs: key table overflow (> {MAX_KEYS} keys) interning {name:?}"
        );
        tab.push(name);
        Key((tab.len() - 1) as u16)
    }

    /// The static name this key was interned with.
    pub fn name(self) -> &'static str {
        let tab = table().lock().expect("obs key table poisoned");
        tab[self.0 as usize]
    }

    /// The dense index of this key (always `< MAX_KEYS`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Key::intern("test.key.idempotent");
        let b = Key::intern("test.key.idempotent");
        assert_eq!(a, b);
        assert_eq!(a.name(), "test.key.idempotent");
    }

    #[test]
    fn distinct_names_get_distinct_keys() {
        let a = Key::intern("test.key.distinct_a");
        let b = Key::intern("test.key.distinct_b");
        assert_ne!(a, b);
        assert!(a.index() < MAX_KEYS && b.index() < MAX_KEYS);
    }

    #[test]
    fn key_macro_caches_per_callsite() {
        let a = crate::key!("test.key.macro");
        let b = crate::key!("test.key.macro");
        assert_eq!(a, b);
    }
}
