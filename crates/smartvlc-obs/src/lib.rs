//! Deterministic observability for the SmartVLC workspace.
//!
//! This crate provides a metrics registry (monotonic counters, gauges and
//! fixed-bucket log2-scale histograms) plus a structured sim-time event
//! journal (bounded ring buffer with drop accounting). Metrics are addressed
//! by interned static [`Key`]s so the hot path is a relaxed atomic increment
//! on a preallocated slot.
//!
//! # Determinism contract
//!
//! The headline property is that a [`Snapshot`] serialized from an experiment
//! is **byte-identical regardless of `SMARTVLC_THREADS`**. Three rules make
//! that hold:
//!
//! 1. Event timestamps are [`desim::SimTime`] — never wall clock.
//! 2. Recording goes to a *scoped* [`Recorder`] (see [`with_recorder`]), not
//!    a shared global registry. Parallel runners give each task its own
//!    recorder and merge child recorders into the parent **in submission
//!    order** ([`Recorder::merge_in`]), so the merged result is independent
//!    of worker scheduling.
//! 3. Snapshots sort metrics by key name and never include wall-clock
//!    quantities.
//!
//! # Feature flag
//!
//! With the default `telemetry` feature enabled the full layer is compiled.
//! With `--no-default-features` every type collapses to a zero-sized no-op
//! ([`NoopSink`] mode) with the same API surface, so instrumented call sites
//! need no `cfg` gates and the optimizer removes them entirely.
//!
//! # Example
//!
//! ```
//! use smartvlc_obs as obs;
//!
//! let rec = obs::Recorder::new();
//! obs::with_recorder(&rec, || {
//!     obs::counter_add(obs::key!("demo.frames"), 3);
//!     obs::observe(obs::key!("demo.backoff_ns"), 4096);
//!     obs::event(desim::SimTime::from_micros(8), obs::key!("demo.sync_loss"), 1);
//! });
//! let snap = rec.snapshot();
//! // With `telemetry` on the snapshot carries the data; with the feature
//! // off it is empty. Either way `to_json()` is valid JSON.
//! let _json = snap.to_json();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "telemetry")]
mod key;
#[cfg(feature = "telemetry")]
mod registry;
#[cfg(feature = "telemetry")]
mod scope;

#[cfg(feature = "telemetry")]
pub use key::{Key, MAX_KEYS};
#[cfg(feature = "telemetry")]
pub use registry::{bucket_lower_bound, bucket_of, Recorder, HIST_BUCKETS};
#[cfg(feature = "telemetry")]
pub use scope::{counter_add, current_recorder, event, gauge_set, observe, with_recorder};

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{
    bucket_lower_bound, bucket_of, counter_add, current_recorder, event, gauge_set, observe,
    with_recorder, Key, Recorder, HIST_BUCKETS, MAX_KEYS,
};

mod snapshot;
pub use snapshot::{EventSnapshot, HistogramSnapshot, Snapshot};

/// Marker alias documenting the disabled-telemetry mode: with the `telemetry`
/// feature off, [`Recorder`] *is* the no-op sink.
pub type NoopSink = Recorder;

/// Interns a static metric key once per call site.
///
/// Expands to a `OnceLock`-cached [`Key::intern`], so repeated executions of
/// the same call site cost one atomic load. With telemetry disabled this is a
/// zero-sized constant.
#[macro_export]
macro_rules! key {
    ($name:expr) => {{
        static __SMARTVLC_OBS_KEY: ::std::sync::OnceLock<$crate::Key> =
            ::std::sync::OnceLock::new();
        *__SMARTVLC_OBS_KEY.get_or_init(|| $crate::Key::intern($name))
    }};
}
