//! Slot detection: oversampled ADC codes → slot decisions.
//!
//! The receiver samples at `fs = 4·ftx` (four samples per slot, §6.1).
//! The detector averages the interior samples of each slot (skipping the
//! edge samples smeared by the LED's rise/fall), then thresholds at the
//! midpoint of ON/OFF levels learned from the preamble.
//!
//! The module also provides the *analytic* slot error probabilities for a
//! Gaussian channel — the `P1`/`P2` that parameterize Eq. 3 of the paper:
//!
//! ```text
//! P1 = Q((thr − μ_off)/σ),   P2 = Q((μ_on − thr)/σ)
//! ```

use serde::{Deserialize, Serialize};

/// Analytic per-slot error probabilities of a channel operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelErrorProbs {
    /// Probability an OFF slot is decided ON (the paper's `P1`).
    pub p_off_error: f64,
    /// Probability an ON slot is decided OFF (the paper's `P2`).
    pub p_on_error: f64,
}

/// The Gaussian tail function `Q(x) = P(N(0,1) > x)`.
///
/// Computed via Abramowitz–Stegun 7.1.26 erfc approximation (|ε| < 1.5e-7),
/// accurate far into the tail for our purposes.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Complementary error function, A&S 7.1.26 polynomial approximation.
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let res = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - res
    } else {
        res
    }
}

/// Decision statistics learned from the preamble and applied per slot.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SlotDetector {
    /// Mean detected level for ON slots (input-referred current, A).
    pub mu_on_a: f64,
    /// Mean detected level for OFF slots (A).
    pub mu_off_a: f64,
    /// Per-decision noise standard deviation (A), after slot averaging.
    pub sigma_a: f64,
}

impl SlotDetector {
    /// Train a detector from known alternating preamble slot levels.
    /// `levels` are per-slot detected currents; `pattern` marks which were
    /// transmitted ON. Returns `None` if either class is missing or the
    /// inputs disagree in length (a truncated preamble capture is a
    /// recoverable condition, not a programming error).
    pub fn train(levels: &[f64], pattern: &[bool]) -> Option<SlotDetector> {
        if levels.len() != pattern.len() {
            return None;
        }
        let (mut on_sum, mut on_n, mut off_sum, mut off_n) = (0.0, 0usize, 0.0, 0usize);
        for (&v, &p) in levels.iter().zip(pattern) {
            if p {
                on_sum += v;
                on_n += 1;
            } else {
                off_sum += v;
                off_n += 1;
            }
        }
        if on_n == 0 || off_n == 0 {
            return None;
        }
        let mu_on = on_sum / on_n as f64;
        let mu_off = off_sum / off_n as f64;
        // Pooled within-class variance estimate.
        let mut var_sum = 0.0;
        for (&v, &p) in levels.iter().zip(pattern) {
            let mu = if p { mu_on } else { mu_off };
            var_sum += (v - mu) * (v - mu);
        }
        let sigma = (var_sum / levels.len() as f64).sqrt();
        Some(SlotDetector {
            mu_on_a: mu_on,
            mu_off_a: mu_off,
            sigma_a: sigma.max(1e-15),
        })
    }

    /// Build directly from an analytic operating point.
    pub fn from_levels(mu_on_a: f64, mu_off_a: f64, sigma_a: f64) -> SlotDetector {
        SlotDetector {
            mu_on_a,
            mu_off_a,
            sigma_a: sigma_a.max(1e-15),
        }
    }

    /// The decision threshold (midpoint).
    pub fn threshold(&self) -> f64 {
        0.5 * (self.mu_on_a + self.mu_off_a)
    }

    /// Decide one slot from its averaged level.
    pub fn decide(&self, level_a: f64) -> bool {
        level_a > self.threshold()
    }

    /// Decide a whole slot-level vector.
    pub fn decide_all(&self, levels: &[f64]) -> Vec<bool> {
        let mut out = Vec::with_capacity(levels.len());
        self.decide_into(levels, &mut out);
        out
    }

    /// Allocation-free batch decision: clears and fills `out`. The
    /// threshold is computed once per call (not once per slot as
    /// `decide` does) and the comparison loop is branch-free, so the
    /// autovectorizer can chew through a frame of levels.
    pub fn decide_into(&self, levels: &[f64], out: &mut Vec<bool>) {
        let thr = self.threshold();
        out.clear();
        out.reserve(levels.len());
        out.extend(levels.iter().map(|&v| v > thr));
    }

    /// Q-factor of the operating point: `(μ_on − μ_off) / 2σ`.
    pub fn q_factor(&self) -> f64 {
        (self.mu_on_a - self.mu_off_a) / (2.0 * self.sigma_a)
    }

    /// Analytic `P1`/`P2` at this operating point (Gaussian tails around
    /// the midpoint threshold).
    pub fn error_probs(&self) -> ChannelErrorProbs {
        let q = self.q_factor().max(0.0);
        ChannelErrorProbs {
            p_off_error: q_function(q),
            p_on_error: q_function(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_function(2.0) - 0.022_750).abs() < 1e-5);
        assert!((q_function(3.0) - 1.349_9e-3).abs() < 1e-6);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((q_function(-1.0) - (1.0 - q_function(1.0))).abs() < 1e-7);
    }

    #[test]
    fn paper_p1_p2_correspond_to_q_about_3_75() {
        // The paper measured P1 = 9e-5; that's Q(3.75) — a healthy link.
        let p = q_function(3.746);
        assert!((p - 9e-5).abs() < 5e-6, "p={p}");
    }

    #[test]
    fn train_recovers_levels() {
        let pattern: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let levels: Vec<f64> = pattern
            .iter()
            .map(|&p| if p { 1.0e-6 } else { 0.2e-6 })
            .collect();
        let d = SlotDetector::train(&levels, &pattern).unwrap();
        assert!((d.mu_on_a - 1.0e-6).abs() < 1e-12);
        assert!((d.mu_off_a - 0.2e-6).abs() < 1e-12);
        assert!((d.threshold() - 0.6e-6).abs() < 1e-12);
    }

    #[test]
    fn train_requires_both_classes() {
        assert!(SlotDetector::train(&[1.0, 1.0], &[true, true]).is_none());
        assert!(SlotDetector::train(&[0.0, 0.0], &[false, false]).is_none());
    }

    #[test]
    fn train_rejects_mismatched_lengths() {
        // A truncated preamble capture must not panic.
        assert!(SlotDetector::train(&[1.0, 0.0, 1.0], &[true, false]).is_none());
        assert!(SlotDetector::train(&[1.0], &[true, false]).is_none());
        assert!(SlotDetector::train(&[], &[true]).is_none());
    }

    #[test]
    fn decide_into_matches_decide() {
        let d = SlotDetector::from_levels(1.0, 0.0, 0.1);
        let levels = [0.9, 0.1, 0.6, 0.5, 0.500001];
        let mut out = vec![true; 2]; // stale content must be cleared
        d.decide_into(&levels, &mut out);
        let expected: Vec<bool> = levels.iter().map(|&v| d.decide(v)).collect();
        assert_eq!(out, expected);
        assert_eq!(out, d.decide_all(&levels));
    }

    #[test]
    fn decisions_follow_threshold() {
        let d = SlotDetector::from_levels(1.0, 0.0, 0.1);
        assert!(d.decide(0.9));
        assert!(!d.decide(0.1));
        assert_eq!(d.decide_all(&[0.9, 0.1, 0.6]), vec![true, false, true]);
    }

    #[test]
    fn error_probs_track_q_factor() {
        let strong = SlotDetector::from_levels(1.0, 0.0, 0.05).error_probs();
        let weak = SlotDetector::from_levels(1.0, 0.0, 0.4).error_probs();
        assert!(strong.p_off_error < 1e-12);
        assert!(weak.p_off_error > 1e-2);
        // Zero or inverted margin: coin flip.
        let dead = SlotDetector::from_levels(0.5, 0.5, 0.1).error_probs();
        assert!((dead.p_on_error - 0.5).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        use desim::DetRng;
        let d = SlotDetector::from_levels(1.0, 0.0, 0.25); // Q-factor 2
        let probs = d.error_probs();
        let mut rng = DetRng::seed_from_u64(7);
        let n = 200_000;
        let mut on_err = 0u32;
        let mut off_err = 0u32;
        for _ in 0..n {
            if !d.decide(rng.next_normal(1.0, 0.25)) {
                on_err += 1;
            }
            if d.decide(rng.next_normal(0.0, 0.25)) {
                off_err += 1;
            }
        }
        let p_on = on_err as f64 / n as f64;
        let p_off = off_err as f64 / n as f64;
        assert!((p_on - probs.p_on_error).abs() < 0.002, "p_on={p_on}");
        assert!((p_off - probs.p_off_error).abs() < 0.002, "p_off={p_off}");
    }
}
