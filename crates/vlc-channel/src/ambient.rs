//! Ambient light sources — the paper's Fig. 13 apparatus, simulated.
//!
//! The experiments control ambient light with an electrically-driven
//! window blind (fixed for the static scenario, pulled at constant speed
//! for the dynamic one) plus the office ceiling lights. The paper reports
//! the resulting illuminance ranges: 8900–9760 lux (sunny + ceiling on,
//! L1), 7960–8200 lux (sunny, ceiling off, L2), 12–21 lux (blind down,
//! ceiling off, L3).
//!
//! An [`AmbientProfile`] maps simulation time to illuminance at a sensor.
//! Profiles compose by summation.

use desim::{DetRng, SimTime};

/// A time-varying ambient illuminance source.
pub trait AmbientProfile {
    /// Illuminance in lux at time `t`.
    fn lux_at(&mut self, t: SimTime) -> f64;
}

/// Constant illuminance (ceiling lights; or a fixed blind position).
#[derive(Clone, Copy, Debug)]
pub struct ConstantAmbient {
    /// The constant level, lux.
    pub lux: f64,
}

impl AmbientProfile for ConstantAmbient {
    fn lux_at(&mut self, _t: SimTime) -> f64 {
        self.lux
    }
}

/// The motorized window blind ramp of Fig. 13(b) / Fig. 19: illuminance
/// moves from `start_lux` to `end_lux` over `duration`, then holds.
///
/// Real blinds do not admit light linearly in position — the paper itself
/// notes "the ambient light does not change perfectly linearly with the
/// blind's position in real life" to explain the non-smooth throughput of
/// Fig. 19(a) — so the ramp includes a smooth-step nonlinearity plus
/// small correlated fluctuation (clouds, sensor noise).
#[derive(Clone, Debug)]
pub struct BlindRamp {
    /// Illuminance at the start of the ramp, lux.
    pub start_lux: f64,
    /// Illuminance at the end of the ramp, lux.
    pub end_lux: f64,
    /// Ramp start time.
    pub t_start: SimTime,
    /// Ramp duration, seconds (the paper's pull takes 67 s).
    pub duration_s: f64,
    /// Relative amplitude of the slow fluctuation (0 disables).
    pub wobble: f64,
    rng: DetRng,
    /// Ornstein-Uhlenbeck fluctuation state.
    ou_state: f64,
    last_t: Option<SimTime>,
}

impl BlindRamp {
    /// The paper's dynamic scenario: blind pulled bottom→top in 67 s,
    /// sweeping ambient from near-dark to a bright sunny office. The
    /// range is set so the LED sweeps ~0.9 down to ~0.1 of full scale,
    /// matching the symmetric throughput hump of Fig. 19(a).
    pub fn paper_dynamic(rng: DetRng) -> BlindRamp {
        BlindRamp {
            start_lux: 1000.0,
            end_lux: 9000.0,
            t_start: SimTime::ZERO,
            duration_s: 67.0,
            wobble: 0.03,
            rng,
            ou_state: 0.0,
            last_t: None,
        }
    }

    /// A custom ramp without fluctuation (deterministic tests).
    pub fn linearized(start_lux: f64, end_lux: f64, duration_s: f64) -> BlindRamp {
        BlindRamp {
            start_lux,
            end_lux,
            t_start: SimTime::ZERO,
            duration_s,
            wobble: 0.0,
            rng: DetRng::seed_from_u64(0),
            ou_state: 0.0,
            last_t: None,
        }
    }

    fn progress(&self, t: SimTime) -> f64 {
        if t < self.t_start {
            return 0.0;
        }
        let x = ((t - self.t_start).as_secs_f64() / self.duration_s).clamp(0.0, 1.0);
        // Smooth-step: the blind admits little light near the bottom,
        // most near the top — an S-curve in position.
        x * x * (3.0 - 2.0 * x)
    }
}

impl AmbientProfile for BlindRamp {
    fn lux_at(&mut self, t: SimTime) -> f64 {
        let base = self.start_lux + (self.end_lux - self.start_lux) * self.progress(t);
        if self.wobble > 0.0 {
            // Ornstein-Uhlenbeck process advanced by the elapsed time:
            // correlated cloud-like fluctuation, tau ~ 3 s.
            let dt = match self.last_t {
                Some(prev) if t > prev => (t - prev).as_secs_f64(),
                _ => 0.0,
            };
            self.last_t = Some(t);
            if dt > 0.0 {
                let tau = 3.0;
                let alpha = (-dt / tau).exp();
                let noise = self.rng.next_gaussian() * (1.0 - alpha * alpha).sqrt();
                self.ou_state = self.ou_state * alpha + noise;
            }
            (base * (1.0 + self.wobble * self.ou_state)).max(0.0)
        } else {
            base
        }
    }
}

/// Sum of several profiles (e.g. blind + ceiling lights).
pub struct CompositeAmbient {
    parts: Vec<Box<dyn AmbientProfile + Send>>,
}

impl CompositeAmbient {
    /// Compose profiles.
    pub fn new(parts: Vec<Box<dyn AmbientProfile + Send>>) -> CompositeAmbient {
        CompositeAmbient { parts }
    }
}

impl AmbientProfile for CompositeAmbient {
    fn lux_at(&mut self, t: SimTime) -> f64 {
        self.parts.iter_mut().map(|p| p.lux_at(t)).sum()
    }
}

/// The paper's three static study conditions (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StudyCondition {
    /// L1: sunny day, ceiling lights on (8900–9760 lux).
    SunnyCeilingOn,
    /// L2: sunny day, ceiling lights off (7960–8200 lux).
    SunnyCeilingOff,
    /// L3: blind down, ceiling off (12–21 lux).
    Dark,
}

impl StudyCondition {
    /// Mid-range illuminance of the condition, lux.
    pub fn typical_lux(self) -> f64 {
        match self {
            StudyCondition::SunnyCeilingOn => 9330.0,
            StudyCondition::SunnyCeilingOff => 8080.0,
            StudyCondition::Dark => 16.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::secs(s)
    }

    #[test]
    fn constant_is_constant() {
        let mut a = ConstantAmbient { lux: 500.0 };
        assert_eq!(a.lux_at(at(0)), 500.0);
        assert_eq!(a.lux_at(at(100)), 500.0);
    }

    #[test]
    fn linear_ramp_endpoints_and_monotonicity() {
        let mut r = BlindRamp::linearized(100.0, 1100.0, 67.0);
        assert_eq!(r.lux_at(at(0)), 100.0);
        assert_eq!(r.lux_at(at(67)), 1100.0);
        assert_eq!(r.lux_at(at(200)), 1100.0, "holds after the ramp");
        let mut prev = 0.0;
        for s in 0..=67 {
            let v = r.lux_at(at(s));
            assert!(v >= prev, "t={s}");
            prev = v;
        }
    }

    #[test]
    fn smooth_step_is_slow_at_ends_fast_in_middle() {
        let mut r = BlindRamp::linearized(0.0, 1000.0, 60.0);
        let early = r.lux_at(at(6)) - r.lux_at(at(0));
        let mid = r.lux_at(at(33)) - r.lux_at(at(27));
        let late = r.lux_at(at(60)) - r.lux_at(at(54));
        assert!(mid > 2.0 * early, "early={early} mid={mid}");
        assert!(mid > 2.0 * late, "late={late} mid={mid}");
    }

    #[test]
    fn wobble_stays_near_base_and_is_deterministic() {
        let mk = || BlindRamp::paper_dynamic(DetRng::seed_from_u64(99));
        let mut a = mk();
        let mut b = mk();
        for s in 0..67 {
            let va = a.lux_at(at(s));
            let vb = b.lux_at(at(s));
            assert_eq!(va, vb, "determinism at t={s}");
            assert!(va >= 0.0);
        }
        // Fluctuation is percent-level, not structural.
        let mut smooth = BlindRamp::paper_dynamic(DetRng::seed_from_u64(99));
        smooth.wobble = 0.0;
        let mut wob = BlindRamp::paper_dynamic(DetRng::seed_from_u64(99));
        for s in 0..67 {
            let base = smooth.lux_at(at(s));
            let noisy = wob.lux_at(at(s));
            assert!(
                (noisy - base).abs() <= 0.2 * base + 40.0,
                "t={s}: base={base} noisy={noisy}"
            );
        }
    }

    #[test]
    fn composite_sums() {
        let mut c = CompositeAmbient::new(vec![
            Box::new(ConstantAmbient { lux: 1000.0 }),
            Box::new(BlindRamp::linearized(0.0, 500.0, 10.0)),
        ]);
        assert_eq!(c.lux_at(at(0)), 1000.0);
        assert_eq!(c.lux_at(at(10)), 1500.0);
    }

    #[test]
    fn study_conditions_match_paper_ranges() {
        assert!((8900.0..=9760.0).contains(&StudyCondition::SunnyCeilingOn.typical_lux()));
        assert!((7960.0..=8200.0).contains(&StudyCondition::SunnyCeilingOff.typical_lux()));
        assert!((12.0..=21.0).contains(&StudyCondition::Dark.typical_lux()));
    }
}

/// A full day of office daylight: a raised-cosine diurnal arc between
/// sunrise and sunset, modulated by slow cloud cover (Ornstein-Uhlenbeck,
/// ~10 min correlation). Drives the day-long planning simulations.
#[derive(Clone, Debug)]
pub struct DiurnalProfile {
    /// Sunrise, hours after simulation start.
    pub sunrise_h: f64,
    /// Sunset, hours after simulation start.
    pub sunset_h: f64,
    /// Peak (solar-noon) illuminance at the window desk, lux.
    pub peak_lux: f64,
    /// Cloud modulation depth in [0, 1) (0 = clear sky).
    pub cloudiness: f64,
    rng: DetRng,
    ou_state: f64,
    last_t: Option<SimTime>,
}

impl DiurnalProfile {
    /// A Dutch autumn office day, in the spirit of the paper's remark
    /// that "in the Netherlands, the weather changes super fast and for
    /// most of the time, there are heavy and moving clouds".
    pub fn dutch_autumn(rng: DetRng) -> DiurnalProfile {
        DiurnalProfile {
            sunrise_h: 7.5,
            sunset_h: 17.5,
            peak_lux: 9000.0,
            cloudiness: 0.45,
            rng,
            ou_state: 0.0,
            last_t: None,
        }
    }

    /// Clear-sky variant (deterministic, for tests).
    pub fn clear_sky(sunrise_h: f64, sunset_h: f64, peak_lux: f64) -> DiurnalProfile {
        DiurnalProfile {
            sunrise_h,
            sunset_h,
            peak_lux,
            cloudiness: 0.0,
            rng: DetRng::seed_from_u64(0),
            ou_state: 0.0,
            last_t: None,
        }
    }
}

impl AmbientProfile for DiurnalProfile {
    fn lux_at(&mut self, t: SimTime) -> f64 {
        let h = t.as_secs_f64() / 3600.0;
        if h <= self.sunrise_h || h >= self.sunset_h {
            return 0.0;
        }
        // Raised cosine between sunrise and sunset.
        let x = (h - self.sunrise_h) / (self.sunset_h - self.sunrise_h);
        let base = self.peak_lux * 0.5 * (1.0 - (2.0 * core::f64::consts::PI * x).cos());
        if self.cloudiness > 0.0 {
            let dt = match self.last_t {
                Some(prev) if t > prev => (t - prev).as_secs_f64(),
                _ => 0.0,
            };
            self.last_t = Some(t);
            if dt > 0.0 {
                let tau = 600.0; // ~10 min cloud correlation
                let alpha = (-dt / tau).exp();
                let noise = self.rng.next_gaussian() * (1.0 - alpha * alpha).sqrt();
                self.ou_state = self.ou_state * alpha + noise;
            }
            // Clouds only darken: map the OU state through a logistic
            // to an attenuation in [1 - cloudiness, 1].
            let atten = 1.0 - self.cloudiness / (1.0 + (-self.ou_state).exp());
            (base * atten).max(0.0)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;
    use desim::SimDuration;

    fn at_h(h: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(h * 3600.0)
    }

    #[test]
    fn dark_outside_daylight_hours() {
        let mut p = DiurnalProfile::clear_sky(7.0, 19.0, 10_000.0);
        assert_eq!(p.lux_at(at_h(0.0)), 0.0);
        assert_eq!(p.lux_at(at_h(6.9)), 0.0);
        assert_eq!(p.lux_at(at_h(19.1)), 0.0);
        assert_eq!(p.lux_at(at_h(23.0)), 0.0);
    }

    #[test]
    fn peaks_at_solar_noon() {
        let mut p = DiurnalProfile::clear_sky(7.0, 19.0, 10_000.0);
        let noon = p.lux_at(at_h(13.0));
        assert!((noon - 10_000.0).abs() < 1.0, "noon={noon}");
        assert!(p.lux_at(at_h(9.0)) < noon);
        assert!(p.lux_at(at_h(17.0)) < noon);
        // Symmetric about noon.
        let morning = p.lux_at(at_h(10.0));
        let evening = p.lux_at(at_h(16.0));
        assert!((morning - evening).abs() < 1.0);
    }

    #[test]
    fn clouds_only_darken_and_stay_deterministic() {
        let mk = || DiurnalProfile::dutch_autumn(DetRng::seed_from_u64(4));
        let mut cloudy = mk();
        let mut cloudy2 = mk();
        let mut clear = DiurnalProfile::clear_sky(7.5, 17.5, 9000.0);
        for i in 0..100 {
            let t = at_h(8.0 + i as f64 * 0.09);
            let c = cloudy.lux_at(t);
            assert_eq!(c, cloudy2.lux_at(t), "determinism at {i}");
            assert!(c <= clear.lux_at(t) + 1e-9, "clouds brightened at {i}");
            assert!(c >= 0.0);
        }
    }
}
