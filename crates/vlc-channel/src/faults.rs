//! Deterministic channel fault injection — the chaos-mode schedule.
//!
//! The paper's evaluation assumes a cooperative channel; a deployed
//! luminaire does not get one. This module provides a [`FaultPlan`]: a
//! seeded, *schedulable* list of impairments (ambient spikes, occlusion
//! bursts, clock drift, symbol slip, receiver saturation, flaky uplink)
//! that the link simulation replays deterministically. The plan itself is
//! pure data — every query is a function of simulation time only — so the
//! same plan under the same seed produces bit-identical runs at any
//! thread count.
//!
//! Fault taxonomy (see DESIGN.md §8):
//!
//! * **Ambient** — [`FaultKind::AmbientStep`] (cloud clears, lights come
//!   on) and [`FaultKind::AmbientImpulse`] (camera flash, specular glint:
//!   a spike with exponential decay). Both raise the ambient photocurrent
//!   and therefore the RIN/shot noise floor.
//! * **Occlusion** — [`FaultKind::Occlusion`]: a hand or body in the
//!   beam, as a multiplicative optical gain (0.001 = -30 dB).
//! * **Timing** — [`FaultKind::ClockDrift`] (LED clock ppm offset that
//!   accumulates into slips) and [`FaultKind::SymbolSlip`] (a discrete
//!   insertion/deletion of slots: PRU scheduling hiccup, ADC overrun).
//! * **Saturation** — [`FaultKind::Saturation`]: the front end pinned at
//!   the ADC rail (sunbeam on the photodiode); the slot eye collapses.
//! * **Uplink** — [`FaultKind::AckLoss`] / [`FaultKind::AckDup`] /
//!   [`FaultKind::AckJitter`]: the ESP8266 path misbehaving.

use desim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One kind of injected impairment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Add `delta_lux` to the ambient illuminance for the event duration.
    AmbientStep {
        /// Extra ambient illuminance, lux.
        delta_lux: f64,
    },
    /// An ambient spike of `peak_lux` at onset, decaying exponentially
    /// with time constant `decay_s`, truncated at the event end.
    AmbientImpulse {
        /// Peak extra illuminance at onset, lux.
        peak_lux: f64,
        /// Exponential decay time constant, seconds.
        decay_s: f64,
    },
    /// Multiply the optical path gain by `gain` (0.001 = -30 dB blockage).
    Occlusion {
        /// Linear optical power factor in [0, 1].
        gain: f64,
    },
    /// LED clock offset in parts-per-million; the accumulated phase error
    /// surfaces as inserted (positive ppm) or deleted (negative ppm)
    /// slots in the received stream.
    ClockDrift {
        /// Clock offset, ppm (positive = transmitter fast).
        ppm: f64,
    },
    /// A one-shot insertion (`slots > 0`) or deletion (`slots < 0`) of
    /// decided slots at the event time.
    SymbolSlip {
        /// Slots inserted (positive) or deleted (negative).
        slots: i32,
    },
    /// Receiver front end pinned at the ADC rail: the slot eye collapses
    /// and decisions degrade to coin flips.
    Saturation,
    /// Drop each uplink ACK with probability `prob` for the duration.
    AckLoss {
        /// Per-message loss probability in [0, 1].
        prob: f64,
    },
    /// Duplicate each surviving uplink ACK with probability `prob`.
    AckDup {
        /// Per-message duplication probability in [0, 1].
        prob: f64,
    },
    /// Delay every uplink ACK by an extra fixed latency (congested Wi-Fi).
    AckJitter {
        /// Extra one-way delay, milliseconds.
        extra_ms: f64,
    },
}

impl FaultKind {
    /// Whether this fault impairs the optical downlink (as opposed to
    /// the ACK side channel). Downlink faults define the recovery clock:
    /// "time to resync" is measured from the moment the last of them
    /// clears.
    pub fn hits_downlink(&self) -> bool {
        !matches!(
            self,
            FaultKind::AckLoss { .. } | FaultKind::AckDup { .. } | FaultKind::AckJitter { .. }
        )
    }
}

/// One scheduled impairment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Onset time.
    pub at: SimTime,
    /// How long the impairment lasts.
    pub duration: SimDuration,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is active at `t` (half-open `[at, at+duration)`).
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.end()
    }

    /// The instant the impairment clears.
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// The instantaneous optical-channel impairment state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaultState {
    /// Extra ambient illuminance to add, lux.
    pub extra_ambient_lux: f64,
    /// Multiplicative optical gain (1.0 = clear).
    pub gain: f64,
    /// Whether the receiver front end is pinned at the rail.
    pub saturated: bool,
}

impl ChannelFaultState {
    /// The no-fault state.
    pub const CLEAR: ChannelFaultState = ChannelFaultState {
        extra_ambient_lux: 0.0,
        gain: 1.0,
        saturated: false,
    };
}

impl Default for ChannelFaultState {
    fn default() -> Self {
        Self::CLEAR
    }
}

/// The instantaneous uplink impairment state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UplinkFaultState {
    /// Probability an ACK is dropped.
    pub loss_prob: f64,
    /// Probability a surviving ACK is duplicated.
    pub dup_prob: f64,
    /// Extra one-way delay.
    pub extra_delay: SimDuration,
}

impl UplinkFaultState {
    /// The no-fault state.
    pub const CLEAR: UplinkFaultState = UplinkFaultState {
        loss_prob: 0.0,
        dup_prob: 0.0,
        extra_delay: SimDuration::ZERO,
    };
}

impl Default for UplinkFaultState {
    fn default() -> Self {
        Self::CLEAR
    }
}

/// A deterministic schedule of impairments.
///
/// The plan is immutable after construction; all queries are pure
/// functions of time, which is what lets a chaos run fan out across
/// threads and still produce bit-identical results.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Build a plan from a list of events. Panics on invalid parameters
    /// (probabilities outside [0, 1], non-positive durations or decay
    /// constants) — a fault plan is test infrastructure and a bad one is
    /// a bug, not a runtime condition.
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        for e in &events {
            assert!(!e.duration.is_zero(), "fault duration must be positive");
            match e.kind {
                FaultKind::AmbientStep { delta_lux } => {
                    assert!(delta_lux.is_finite(), "ambient step must be finite")
                }
                FaultKind::AmbientImpulse { peak_lux, decay_s } => {
                    assert!(peak_lux.is_finite() && peak_lux >= 0.0);
                    assert!(decay_s > 0.0, "impulse decay must be positive");
                }
                FaultKind::Occlusion { gain } => {
                    assert!((0.0..=1.0).contains(&gain), "occlusion gain in [0,1]")
                }
                FaultKind::ClockDrift { ppm } => assert!(ppm.is_finite()),
                FaultKind::SymbolSlip { .. } | FaultKind::Saturation => {}
                FaultKind::AckLoss { prob } | FaultKind::AckDup { prob } => {
                    assert!((0.0..=1.0).contains(&prob), "probability in [0,1]")
                }
                FaultKind::AckJitter { extra_ms } => {
                    assert!(extra_ms.is_finite() && extra_ms >= 0.0)
                }
            }
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The scheduled events, sorted by onset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The combined optical-channel impairment at time `t`. Ambient
    /// contributions add; occlusion gains multiply; saturation latches
    /// for any active saturation event.
    pub fn channel_state_at(&self, t: SimTime) -> ChannelFaultState {
        let mut st = ChannelFaultState::CLEAR;
        for e in &self.events {
            if !e.active_at(t) {
                continue;
            }
            match e.kind {
                FaultKind::AmbientStep { delta_lux } => st.extra_ambient_lux += delta_lux,
                FaultKind::AmbientImpulse { peak_lux, decay_s } => {
                    let dt = t
                        .checked_duration_since(e.at)
                        .unwrap_or(SimDuration::ZERO)
                        .as_secs_f64();
                    st.extra_ambient_lux += peak_lux * (-dt / decay_s).exp();
                }
                FaultKind::Occlusion { gain } => st.gain *= gain,
                FaultKind::Saturation => st.saturated = true,
                _ => {}
            }
        }
        st.extra_ambient_lux = st.extra_ambient_lux.max(0.0);
        st
    }

    /// The combined uplink impairment at time `t`. Loss/duplication
    /// probabilities combine as independent events; extra delays add.
    pub fn uplink_state_at(&self, t: SimTime) -> UplinkFaultState {
        let mut st = UplinkFaultState::CLEAR;
        for e in &self.events {
            if !e.active_at(t) {
                continue;
            }
            match e.kind {
                FaultKind::AckLoss { prob } => {
                    st.loss_prob = 1.0 - (1.0 - st.loss_prob) * (1.0 - prob)
                }
                FaultKind::AckDup { prob } => {
                    st.dup_prob = 1.0 - (1.0 - st.dup_prob) * (1.0 - prob)
                }
                FaultKind::AckJitter { extra_ms } => {
                    st.extra_delay += SimDuration::nanos((extra_ms * 1e6) as u64)
                }
                _ => {}
            }
        }
        st
    }

    /// Accumulated timing slip (slots, fractional) from t = 0 to `t`:
    /// clock drift integrated over its active window plus all discrete
    /// slips at or before `t`.
    fn slip_phase_at(&self, t: SimTime, tslot_s: f64) -> f64 {
        let mut phase = 0.0;
        for e in &self.events {
            match e.kind {
                FaultKind::ClockDrift { ppm } if t > e.at => {
                    let overlap_end = if t < e.end() { t } else { e.end() };
                    let overlap = overlap_end
                        .checked_duration_since(e.at)
                        .unwrap_or(SimDuration::ZERO)
                        .as_secs_f64();
                    phase += ppm * 1e-6 * overlap / tslot_s;
                }
                FaultKind::SymbolSlip { slots } if t >= e.at => {
                    phase += slots as f64;
                }
                _ => {}
            }
        }
        phase
    }

    /// Whole slots slipped in the window `(from, to]`: positive = slots
    /// inserted into the received stream, negative = slots deleted.
    /// Consecutive windows tile exactly (no slip is lost to rounding).
    pub fn slip_slots_between(&self, from: SimTime, to: SimTime, tslot_s: f64) -> i64 {
        assert!(tslot_s > 0.0, "slot duration must be positive");
        let a = self.slip_phase_at(from, tslot_s).round() as i64;
        let b = self.slip_phase_at(to, tslot_s).round() as i64;
        b - a
    }

    /// The instant the last downlink-impairing fault clears, if any.
    /// Recovery metrics (time-to-resync) are measured from here.
    pub fn last_downlink_fault_end(&self) -> Option<SimTime> {
        self.events
            .iter()
            .filter(|e| e.kind.hits_downlink())
            .map(|e| e.end())
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn ev(at_ms: u64, dur_ms: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: at(at_ms),
            duration: SimDuration::millis(dur_ms),
            kind,
        }
    }

    #[test]
    fn empty_plan_is_clear_everywhere() {
        let p = FaultPlan::default();
        assert_eq!(p.channel_state_at(at(5)), ChannelFaultState::CLEAR);
        assert_eq!(p.uplink_state_at(at(5)), UplinkFaultState::CLEAR);
        assert_eq!(p.slip_slots_between(at(0), at(100), 8e-6), 0);
        assert_eq!(p.last_downlink_fault_end(), None);
    }

    #[test]
    fn ambient_step_is_windowed() {
        let p = FaultPlan::new(vec![ev(
            100,
            50,
            FaultKind::AmbientStep { delta_lux: 4000.0 },
        )]);
        assert_eq!(p.channel_state_at(at(99)).extra_ambient_lux, 0.0);
        assert_eq!(p.channel_state_at(at(100)).extra_ambient_lux, 4000.0);
        assert_eq!(p.channel_state_at(at(149)).extra_ambient_lux, 4000.0);
        assert_eq!(p.channel_state_at(at(150)).extra_ambient_lux, 0.0);
    }

    #[test]
    fn impulse_decays_exponentially() {
        let p = FaultPlan::new(vec![ev(
            0,
            1000,
            FaultKind::AmbientImpulse {
                peak_lux: 8000.0,
                decay_s: 0.1,
            },
        )]);
        let a = p.channel_state_at(at(0)).extra_ambient_lux;
        let b = p.channel_state_at(at(100)).extra_ambient_lux;
        let c = p.channel_state_at(at(500)).extra_ambient_lux;
        assert_eq!(a, 8000.0);
        assert!((b / a - (-1.0f64).exp()).abs() < 1e-9, "b/a={}", b / a);
        assert!(c < 100.0, "c={c}");
        assert_eq!(p.channel_state_at(at(1000)).extra_ambient_lux, 0.0);
    }

    #[test]
    fn overlapping_faults_compose() {
        let p = FaultPlan::new(vec![
            ev(0, 100, FaultKind::AmbientStep { delta_lux: 1000.0 }),
            ev(50, 100, FaultKind::AmbientStep { delta_lux: 500.0 }),
            ev(0, 200, FaultKind::Occlusion { gain: 0.1 }),
            ev(0, 200, FaultKind::Occlusion { gain: 0.5 }),
            ev(60, 20, FaultKind::Saturation),
        ]);
        let st = p.channel_state_at(at(70));
        assert_eq!(st.extra_ambient_lux, 1500.0);
        assert!((st.gain - 0.05).abs() < 1e-12);
        assert!(st.saturated);
        let st = p.channel_state_at(at(10));
        assert_eq!(st.extra_ambient_lux, 1000.0);
        assert!(!st.saturated);
    }

    #[test]
    fn uplink_probabilities_compose_independently() {
        let p = FaultPlan::new(vec![
            ev(0, 100, FaultKind::AckLoss { prob: 0.5 }),
            ev(0, 100, FaultKind::AckLoss { prob: 0.5 }),
            ev(0, 100, FaultKind::AckJitter { extra_ms: 3.0 }),
        ]);
        let st = p.uplink_state_at(at(10));
        assert!((st.loss_prob - 0.75).abs() < 1e-12);
        assert_eq!(st.extra_delay, SimDuration::nanos(3_000_000));
        assert_eq!(p.uplink_state_at(at(100)), UplinkFaultState::CLEAR);
    }

    #[test]
    fn discrete_slips_land_once() {
        let tslot = 8e-6;
        let p = FaultPlan::new(vec![
            ev(10, 1, FaultKind::SymbolSlip { slots: 3 }),
            ev(20, 1, FaultKind::SymbolSlip { slots: -2 }),
        ]);
        assert_eq!(p.slip_slots_between(at(0), at(5), tslot), 0);
        assert_eq!(p.slip_slots_between(at(5), at(15), tslot), 3);
        assert_eq!(p.slip_slots_between(at(15), at(25), tslot), -2);
        assert_eq!(p.slip_slots_between(at(0), at(25), tslot), 1);
    }

    #[test]
    fn drift_accumulates_and_windows_tile() {
        let tslot = 8e-6;
        // 200 ppm over 1 s = 200e-6 s of phase = 25 slots.
        let p = FaultPlan::new(vec![ev(0, 1000, FaultKind::ClockDrift { ppm: 200.0 })]);
        assert_eq!(p.slip_slots_between(at(0), at(1000), tslot), 25);
        // Tiling: the sum over sub-windows equals the whole.
        let mut total = 0;
        for i in 0..10 {
            total += p.slip_slots_between(at(i * 100), at((i + 1) * 100), tslot);
        }
        assert_eq!(total, 25);
        // Nothing accrues after the drift window closes.
        assert_eq!(p.slip_slots_between(at(1000), at(2000), tslot), 0);
    }

    #[test]
    fn recovery_clock_ignores_uplink_faults() {
        let p = FaultPlan::new(vec![
            ev(100, 50, FaultKind::Occlusion { gain: 0.001 }),
            ev(0, 900, FaultKind::AckLoss { prob: 0.5 }),
        ]);
        assert_eq!(p.last_downlink_fault_end(), Some(at(150)));
    }

    #[test]
    fn events_are_sorted_by_onset() {
        let p = FaultPlan::new(vec![
            ev(300, 10, FaultKind::Saturation),
            ev(100, 10, FaultKind::Saturation),
        ]);
        assert_eq!(p.events()[0].at, at(100));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probability() {
        FaultPlan::new(vec![ev(0, 10, FaultKind::AckLoss { prob: 1.5 })]);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_duration() {
        FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            duration: SimDuration::ZERO,
            kind: FaultKind::Saturation,
        }]);
    }
}
