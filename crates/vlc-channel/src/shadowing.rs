//! Link blockage: people walk through light beams.
//!
//! The paper's office experiments keep the line of sight clear; any real
//! deployment will not. Optical links fail *hard* under blockage — a
//! person in the beam is 20–30 dB of attenuation, not a few dB of fade —
//! so the classic two-state Gilbert-Elliott model fits: the link is
//! either CLEAR or BLOCKED, with exponentially distributed dwell times.
//! This module supplies that process; the link simulation uses it to
//! test what the ARQ recovers when somebody fetches coffee through the
//! beam.

use desim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Two-state blockage process parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShadowingModel {
    /// Mean time between blockage events (clear dwell), seconds.
    pub mean_clear_s: f64,
    /// Mean blockage duration, seconds (a walking person: ~0.3–1 s).
    pub mean_blocked_s: f64,
    /// Optical attenuation while blocked, as a linear power factor
    /// (0.001 = -30 dB: effectively dark).
    pub blocked_gain: f64,
}

impl ShadowingModel {
    /// An office corridor crossing the beam: a blockage every ~20 s
    /// lasting ~0.5 s, -30 dB deep.
    pub fn office_walkway() -> ShadowingModel {
        ShadowingModel {
            mean_clear_s: 20.0,
            mean_blocked_s: 0.5,
            blocked_gain: 0.001,
        }
    }
}

/// The evolving blockage state.
pub struct ShadowingProcess {
    model: ShadowingModel,
    rng: DetRng,
    blocked: bool,
    /// Time the current state ends.
    until: SimTime,
    /// Total blockage events so far.
    pub events: u64,
}

impl ShadowingProcess {
    /// Start the process (clear) at t = 0.
    pub fn new(model: ShadowingModel, mut rng: DetRng) -> ShadowingProcess {
        assert!(model.mean_clear_s > 0.0 && model.mean_blocked_s > 0.0);
        assert!((0.0..1.0).contains(&model.blocked_gain));
        let first = exponential(&mut rng, model.mean_clear_s);
        ShadowingProcess {
            model,
            rng,
            blocked: false,
            until: SimTime::ZERO + SimDuration::from_secs_f64(first),
            events: 0,
        }
    }

    /// Advance to time `t` and return the current optical gain factor
    /// (1.0 = clear, `blocked_gain` = blocked).
    pub fn gain_at(&mut self, t: SimTime) -> f64 {
        while t >= self.until {
            self.blocked = !self.blocked;
            if self.blocked {
                self.events += 1;
            }
            let mean = if self.blocked {
                self.model.mean_blocked_s
            } else {
                self.model.mean_clear_s
            };
            let dwell = exponential(&mut self.rng, mean);
            self.until += SimDuration::from_secs_f64(dwell);
        }
        if self.blocked {
            self.model.blocked_gain
        } else {
            1.0
        }
    }

    /// Whether the beam is currently blocked (after the last `gain_at`).
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }
}

fn exponential(rng: &mut DetRng, mean_s: f64) -> f64 {
    -mean_s * (1.0 - rng.next_f64()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_clear() {
        let mut p =
            ShadowingProcess::new(ShadowingModel::office_walkway(), DetRng::seed_from_u64(1));
        assert_eq!(p.gain_at(SimTime::ZERO), 1.0);
        assert!(!p.is_blocked());
    }

    #[test]
    fn blocks_and_clears_over_time() {
        let mut p =
            ShadowingProcess::new(ShadowingModel::office_walkway(), DetRng::seed_from_u64(2));
        let mut saw_blocked = false;
        let mut saw_clear_after = false;
        for s in 0..600 {
            let g = p.gain_at(at(s * 1000));
            if g < 1.0 {
                saw_blocked = true;
            } else if saw_blocked {
                saw_clear_after = true;
            }
        }
        assert!(saw_blocked, "no blockage in 10 minutes");
        assert!(saw_clear_after, "never recovered");
        assert!(p.events > 5, "events={}", p.events);
    }

    #[test]
    fn dwell_statistics_match_the_model() {
        let model = ShadowingModel {
            mean_clear_s: 2.0,
            mean_blocked_s: 0.5,
            blocked_gain: 0.001,
        };
        let mut p = ShadowingProcess::new(model, DetRng::seed_from_u64(3));
        // Sample at 10 ms over 2000 s; blocked fraction should approach
        // mean_blocked / (mean_clear + mean_blocked) = 0.2.
        let mut blocked = 0u64;
        let n = 200_000u64;
        for i in 0..n {
            if p.gain_at(at(i * 10)) < 1.0 {
                blocked += 1;
            }
        }
        let frac = blocked as f64 / n as f64;
        assert!((0.15..0.25).contains(&frac), "blocked fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let mk =
            || ShadowingProcess::new(ShadowingModel::office_walkway(), DetRng::seed_from_u64(9));
        let mut a = mk();
        let mut b = mk();
        for s in 0..200 {
            assert_eq!(a.gain_at(at(s * 500)), b.gain_at(at(s * 500)));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_model() {
        ShadowingProcess::new(
            ShadowingModel {
                mean_clear_s: 0.0,
                mean_blocked_s: 1.0,
                blocked_gain: 0.5,
            },
            DetRng::seed_from_u64(1),
        );
    }
}
