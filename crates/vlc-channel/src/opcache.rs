//! The operating-point cache: interned `SlotDetector`/`ChannelErrorProbs`.
//!
//! [`ChannelConfig::detector_with`] walks the full analytic receive chain
//! — Lambertian `cosᵐ` powers, shot/RIN/thermal noise composition, ADC
//! quantization, Gaussian tails — every time it is called. Link
//! simulations call it once per *frame* and the multi-cell workload once
//! per *(luminaire, user, tick)*, yet the operating point only actually
//! changes when gain, ambient or fault state moves. This module interns
//! the computed operating points the way `combinat` interns its binomial
//! tables: an Arc-shared, clone-cheap [`OperatingPointCache`] maps the
//! **exact bit pattern** of (config fingerprint, extra gain, saturation
//! flag) to the finished [`CachedOp`].
//!
//! Keying by exact bits (not by hash alone, and not within an epsilon)
//! makes the cache semantically invisible: two queries share an entry
//! only if every input `f64` is bit-identical, in which case
//! `detector_with` — a pure function — would have produced bit-identical
//! outputs anyway. The `cached_detector_is_bit_identical` proptest pins
//! this down across random configurations.
//!
//! Determinism: caches are **per pipeline instance** (one per
//! [`crate::link::OpticalChannel`], one per cell-simulation run), never a
//! process-wide singleton. A global map would make the
//! `channel.opcache.hit`/`channel.opcache.miss` telemetry counters depend
//! on which worker thread warmed the cache first, breaking the repo's
//! byte-identical-artifacts-at-any-`SMARTVLC_THREADS` contract. Within
//! one instance, hit/miss sequences are a pure function of the query
//! sequence.
//!
//! Setting `SMARTVLC_OPCACHE=off` (or `0`) force-disables value reuse
//! for A/B validation: the cache still performs *identical bookkeeping*
//! (key construction, map population, hit/miss counters) but returns a
//! freshly computed value on every query — so artifacts must stay
//! byte-identical with the cache on or off, and any divergence would
//! indict the cache itself.

use crate::detector::{ChannelErrorProbs, SlotDetector};
use crate::link::{ChannelConfig, CONFIG_FINGERPRINT_WORDS};
use smartvlc_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One interned operating point: the detector and its analytic error
/// probabilities, computed together on a cache miss.
#[derive(Clone, Copy, Debug)]
pub struct CachedOp {
    /// The analytic slot detector at this operating point.
    pub detector: SlotDetector,
    /// `detector.error_probs()`, precomputed (the Q-function `exp` runs
    /// once per operating point instead of once per query).
    pub probs: ChannelErrorProbs,
}

/// Exact-bit cache key: the config fingerprint plus the two extra
/// `detector_with` inputs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct OpKey {
    cfg: [u64; CONFIG_FINGERPRINT_WORDS],
    extra_gain_bits: u64,
    saturated: bool,
}

impl OpKey {
    fn new(cfg: &ChannelConfig, extra_gain: f64, saturated: bool) -> OpKey {
        OpKey {
            cfg: cfg.fingerprint(),
            extra_gain_bits: extra_gain.to_bits(),
            saturated,
        }
    }
}

struct CacheInner {
    map: Mutex<HashMap<OpKey, CachedOp>>,
    /// When false (`SMARTVLC_OPCACHE=off`), bookkeeping runs identically
    /// but every query returns a fresh computation.
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Arc-backed handle to an interned operating-point map; `Clone` shares
/// the map (cheap, like [`combinat::BinomialTable::shared`]'s `Arc`s).
///
/// [`combinat::BinomialTable::shared`]: https://docs.rs/combinat
#[derive(Clone)]
pub struct OperatingPointCache {
    inner: Arc<CacheInner>,
}

impl Default for OperatingPointCache {
    fn default() -> Self {
        OperatingPointCache::new()
    }
}

impl OperatingPointCache {
    /// A fresh cache. Value reuse honors the `SMARTVLC_OPCACHE`
    /// environment variable (`off`/`0` disables it, see module docs);
    /// bookkeeping is identical either way.
    pub fn new() -> OperatingPointCache {
        let enabled = !matches!(
            std::env::var("SMARTVLC_OPCACHE").as_deref(),
            Ok("off") | Ok("0")
        );
        OperatingPointCache::with_enabled(enabled)
    }

    /// A fresh cache with value reuse explicitly on or off (tests;
    /// production callers use [`OperatingPointCache::new`]).
    pub fn with_enabled(enabled: bool) -> OperatingPointCache {
        OperatingPointCache {
            inner: Arc::new(CacheInner {
                map: Mutex::new(HashMap::new()),
                enabled,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// The interned operating point for `(cfg, extra_gain, saturated)` —
    /// bit-identical to `cfg.detector_with(extra_gain, saturated)` (and
    /// its `error_probs()`), computed at most once per distinct exact-bit
    /// key for this cache's lifetime.
    pub fn query(&self, cfg: &ChannelConfig, extra_gain: f64, saturated: bool) -> CachedOp {
        let key = OpKey::new(cfg, extra_gain, saturated);
        {
            let map = self.inner.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&op) = map.get(&key) {
                drop(map);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add(obs::key!("channel.opcache.hit"), 1);
                if self.inner.enabled {
                    return op;
                }
                // Force-disabled: same counters, same map state, fresh
                // math. Any byte difference between this and the cached
                // value would be a keying bug (asserted debug-side).
                let fresh = compute(cfg, extra_gain, saturated);
                debug_assert_eq!(
                    fresh.detector.mu_on_a.to_bits(),
                    op.detector.mu_on_a.to_bits()
                );
                return fresh;
            }
        }
        // Compute outside the lock (the BinomialTable::shared idiom);
        // per-instance use is single-threaded, so a racing duplicate
        // insert cannot occur in practice and would be harmless (pure
        // function: both sides computed identical bits).
        let op = compute(cfg, extra_gain, saturated);
        let mut map = self.inner.map.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert(op);
        drop(map);
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::key!("channel.opcache.miss"), 1);
        op
    }

    /// Queries answered from the map so far.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Queries that computed (and interned) a new operating point.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Distinct operating points interned.
    pub fn len(&self) -> usize {
        self.inner
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when no operating point has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn compute(cfg: &ChannelConfig, extra_gain: f64, saturated: bool) -> CachedOp {
    let detector = cfg.detector_with(extra_gain, saturated);
    CachedOp {
        detector,
        probs: detector.error_probs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(d: &SlotDetector) -> (u64, u64, u64) {
        (
            d.mu_on_a.to_bits(),
            d.mu_off_a.to_bits(),
            d.sigma_a.to_bits(),
        )
    }

    #[test]
    fn hit_returns_the_interned_bits() {
        let cfg = ChannelConfig::paper_bench(3.6);
        let cache = OperatingPointCache::with_enabled(true);
        let direct = cfg.detector_with(0.7, false);
        let first = cache.query(&cfg, 0.7, false);
        let second = cache.query(&cfg, 0.7, false);
        assert_eq!(bits(&first.detector), bits(&direct));
        assert_eq!(bits(&second.detector), bits(&direct));
        assert_eq!(
            first.probs.p_off_error.to_bits(),
            direct.error_probs().p_off_error.to_bits()
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_bits_are_distinct_entries() {
        let cache = OperatingPointCache::with_enabled(true);
        let a = ChannelConfig::paper_bench(3.0);
        let mut b = a;
        b.ambient_lux = a.ambient_lux + 1.0;
        cache.query(&a, 1.0, false);
        cache.query(&b, 1.0, false);
        cache.query(&a, 1.0, true); // saturation flag is part of the key
        cache.query(&a, 0.5, false); // so is the extra gain
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn disabled_cache_keeps_identical_bookkeeping_and_values() {
        let cfg = ChannelConfig::paper_bench(2.5);
        let on = OperatingPointCache::with_enabled(true);
        let off = OperatingPointCache::with_enabled(false);
        for _ in 0..3 {
            let a = on.query(&cfg, 1.0, false);
            let b = off.query(&cfg, 1.0, false);
            assert_eq!(bits(&a.detector), bits(&b.detector));
            assert_eq!(a.probs.p_off_error.to_bits(), b.probs.p_off_error.to_bits());
        }
        assert_eq!((on.hits(), on.misses()), (off.hits(), off.misses()));
        assert_eq!(on.len(), off.len());
    }

    #[test]
    fn clones_share_the_map() {
        let cfg = ChannelConfig::paper_bench(1.5);
        let a = OperatingPointCache::with_enabled(true);
        let b = a.clone();
        a.query(&cfg, 1.0, false);
        b.query(&cfg, 1.0, false);
        assert_eq!((a.hits(), a.misses()), (1, 1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn diffuse_component_is_part_of_the_key() {
        use crate::optics::DiffuseReflection;
        let cache = OperatingPointCache::with_enabled(true);
        let plain = ChannelConfig::paper_bench(3.0);
        let mut diffuse = plain;
        diffuse.geometry.diffuse = Some(DiffuseReflection::office());
        let a = cache.query(&plain, 1.0, false);
        let b = cache.query(&diffuse, 1.0, false);
        assert_eq!(cache.misses(), 2, "diffuse config must not collide");
        assert_ne!(bits(&a.detector), bits(&b.detector));
    }
}
