//! The composed optical channel: slot waveform in, detected slots out.
//!
//! Pipeline (matching the paper's receive chain end to end):
//!
//! ```text
//! slots → LED dynamics → Lambertian path → photodiode (+ ambient, shot)
//!       → TIA + thermal/ambient noise + ADC → slot averaging → decisions
//! ```
//!
//! The calibration ties everything to the paper's §6.1 measurement: at
//! 3.6 m under bright ambient, the analytic slot error probabilities come
//! out at the measured `P1 ≈ 9e-5`, `P2 ≈ 8e-5`; closer in, the link is
//! essentially clean; past ~4 m, frame-level error amplification produces
//! the throughput cliff of Fig. 16.

use crate::ambient::AmbientProfile;
use crate::detector::{ChannelErrorProbs, SlotDetector};
use crate::faults::ChannelFaultState;
use crate::frontend::AnalogFrontend;
use crate::led::LedModel;
use crate::opcache::{CachedOp, OperatingPointCache};
use crate::optics::LambertianLink;
use crate::photodiode::Photodiode;
use desim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};
use smartvlc_obs as obs;
use std::cell::Cell;

/// Number of `u64` words in a [`ChannelConfig::fingerprint`].
pub const CONFIG_FINGERPRINT_WORDS: usize = 25;

/// All channel parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Transmit LED.
    pub led: LedModel,
    /// Link geometry and optics.
    pub geometry: LambertianLink,
    /// Receive photodiode.
    pub rx_diode: Photodiode,
    /// TIA + ADC.
    pub frontend: AnalogFrontend,
    /// Slot duration, seconds (`1/ftx`).
    pub tslot_s: f64,
    /// ADC samples per slot (`fs/ftx`; paper: 4).
    pub samples_per_slot: usize,
    /// Ambient illuminance at the receiver, lux.
    pub ambient_lux: f64,
    /// Relative intensity noise of the ambient light (daylight flicker,
    /// mains ripple of the ceiling lights): noise-current σ per ampere of
    /// ambient photocurrent. Calibrated so bright-ambient operation at
    /// 3.6 m reproduces the paper's measured P1/P2.
    pub ambient_rin: f64,
}

impl ChannelConfig {
    /// The paper's bench at `distance_m` under bright office ambient.
    pub fn paper_bench(distance_m: f64) -> ChannelConfig {
        ChannelConfig {
            led: LedModel::philips_4w7(),
            geometry: LambertianLink::paper_bench(distance_m),
            rx_diode: Photodiode::sfh206k(),
            frontend: AnalogFrontend::paper_receiver(),
            tslot_s: 8e-6,
            samples_per_slot: 4,
            ambient_lux: 8080.0, // sunny office, ceiling lights off (L2)
            ambient_rin: 4.7e-3,
        }
    }

    /// Total DC photocurrent from ambient light plus dark current, A.
    fn ambient_current(&self) -> f64 {
        self.rx_diode.a_per_lux * self.ambient_lux + self.rx_diode.dark_current_a
    }

    /// Per-sample noise σ at this operating point (input-referred, before
    /// slot averaging): thermal ⊕ ambient RIN ⊕ shot. The signal shot term
    /// conservatively uses the clear-path received power (an attenuated
    /// signal sheds shot noise, but ambient dominates the budget).
    fn per_sample_sigma(&self) -> f64 {
        let i_amb = self.ambient_current();
        let i_sig_mid = 0.5
            * self.rx_diode.responsivity_a_per_w
            * self.geometry.received_power_w(self.led.on_power_w);
        let fs = self.samples_per_slot as f64 / self.tslot_s;
        let shot = self.rx_diode.shot_noise_std_a(i_amb + i_sig_mid, fs / 2.0);
        let rin = self.ambient_rin * i_amb;
        let th = self.frontend.thermal_noise_a_rms;
        (th * th + rin * rin + shot * shot).sqrt()
    }

    /// The expected slot-detector operating point for this configuration,
    /// with an extra multiplicative optical gain (blockage/occlusion) and
    /// an optional railed (saturated) front end folded in.
    ///
    /// This is the pure-configuration form of
    /// [`OpticalChannel::analytic_detector`]: no channel state, no RNG —
    /// callers that only need error probabilities (planning-level
    /// simulations such as `smartvlc-sim`'s multi-cell workload) can query
    /// it per geometry without instantiating a stateful channel.
    pub fn detector_with(&self, extra_gain: f64, saturated: bool) -> SlotDetector {
        let gain = self.geometry.path_gain() * extra_gain;
        let r = self.rx_diode.responsivity_a_per_w;
        let mu_on = r * self.led.steady_power(1.0) * gain;
        let mu_off = r * self.led.steady_power(0.0) * gain;
        // Saturation: the frontend clips; fold the clipped swing in.
        let max_i = self
            .frontend
            .code_to_current(((1u64 << self.frontend.adc_bits) - 1) as u16);
        // A railed front end pins both levels at full scale: the slot eye
        // collapses entirely (same degenerate detector as a beyond-FoV
        // receiver, which the detector already supports).
        let (mu_on, mu_off) = if saturated {
            (max_i, max_i)
        } else {
            (mu_on.min(max_i), mu_off.min(max_i))
        };
        let sigma = self.per_sample_sigma() / ((self.samples_per_slot - 1) as f64).sqrt();
        // Quantization adds lsb/sqrt(12) per sample.
        let q = self.frontend.lsb_current_a()
            / 12f64.sqrt()
            / ((self.samples_per_slot - 1) as f64).sqrt();
        SlotDetector::from_levels(mu_on, mu_off, (sigma * sigma + q * q).sqrt())
    }

    /// Clear-path analytic detector for this configuration.
    pub fn analytic_detector(&self) -> SlotDetector {
        self.detector_with(1.0, false)
    }

    /// Clear-path analytic P1/P2 for this configuration.
    pub fn analytic_error_probs(&self) -> ChannelErrorProbs {
        self.analytic_detector().error_probs()
    }

    /// The exact bit pattern of every field that feeds the analytic
    /// operating-point math, as `f64::to_bits` words (integers widened;
    /// the optional diffuse component tagged by presence). Two configs
    /// with equal fingerprints produce bit-identical
    /// [`ChannelConfig::detector_with`] outputs for equal extra inputs —
    /// the keying contract of [`crate::opcache::OperatingPointCache`].
    pub fn fingerprint(&self) -> [u64; CONFIG_FINGERPRINT_WORDS] {
        let g = &self.geometry;
        let (diffuse_tag, diffuse_rho, diffuse_area) = match g.diffuse {
            Some(d) => (1u64, d.reflectivity.to_bits(), d.room_area_m2.to_bits()),
            None => (0, 0, 0),
        };
        [
            self.led.rise_tau_s.to_bits(),
            self.led.fall_tau_s.to_bits(),
            self.led.on_power_w.to_bits(),
            self.led.off_fraction.to_bits(),
            g.semi_angle_deg.to_bits(),
            g.rx_area_m2.to_bits(),
            g.rx_fov_deg.to_bits(),
            g.distance_m.to_bits(),
            g.off_axis_deg.to_bits(),
            diffuse_tag,
            diffuse_rho,
            diffuse_area,
            self.rx_diode.responsivity_a_per_w.to_bits(),
            self.rx_diode.area_m2.to_bits(),
            self.rx_diode.dark_current_a.to_bits(),
            self.rx_diode.a_per_lux.to_bits(),
            self.frontend.tia_gain_v_per_a.to_bits(),
            self.frontend.thermal_noise_a_rms.to_bits(),
            u64::from(self.frontend.adc_bits),
            self.frontend.adc_vref_v.to_bits(),
            self.frontend.bias_v.to_bits(),
            self.tslot_s.to_bits(),
            self.samples_per_slot as u64,
            self.ambient_lux.to_bits(),
            self.ambient_rin.to_bits(),
        ]
    }
}

/// Reusable receive-path buffers for the batched sampled pipeline.
///
/// One `RxScratch` threaded through [`OpticalChannel::transmit_into`] /
/// [`OpticalChannel::transmit_and_decide_into`] replaces the per-frame
/// `Vec<f64>`/`Vec<bool>` allocations of the original API: buffers are
/// cleared and refilled in place, so steady-state frames allocate nothing.
#[derive(Default)]
pub struct RxScratch {
    /// LED optical waveform, one entry per ADC sample.
    pub optical: Vec<f64>,
    /// Per-slot averaged current levels (the output of the sampled path).
    pub levels: Vec<f64>,
    /// Per-slot decisions (filled by `transmit_and_decide_into`).
    pub decided: Vec<bool>,
}

impl RxScratch {
    /// Empty scratch; buffers grow to frame size on first use and are
    /// reused afterwards.
    pub fn new() -> RxScratch {
        RxScratch::default()
    }
}

/// A stateful channel instance (owns its noise stream).
pub struct OpticalChannel {
    cfg: ChannelConfig,
    rng: DetRng,
    /// Extra multiplicative optical gain (1.0 = clear; a blockage model
    /// drives this toward ~0.001).
    blockage_gain: f64,
    /// Injected impairments (see [`crate::faults::FaultPlan`]); composes
    /// with the blockage gain and configured ambient.
    fault: ChannelFaultState,
    /// Interned operating points; shared (Arc) if installed via
    /// [`OpticalChannel::set_op_cache`].
    opcache: OperatingPointCache,
    /// Memo of the operating point for the *current* channel state.
    /// Cleared by every mutator; while valid, `analytic_detector` /
    /// `analytic_error_probs` are a pointer-free `Cell` read — no key
    /// construction, no map probe, no counters.
    op_memo: Cell<Option<CachedOp>>,
}

impl OpticalChannel {
    /// Create a channel with a deterministic noise stream.
    pub fn new(cfg: ChannelConfig, rng: DetRng) -> OpticalChannel {
        assert!(cfg.samples_per_slot >= 2, "need >= 2 samples per slot");
        OpticalChannel {
            cfg,
            rng,
            blockage_gain: 1.0,
            fault: ChannelFaultState::CLEAR,
            opcache: OperatingPointCache::new(),
            op_memo: Cell::new(None),
        }
    }

    /// Install a shared operating-point cache (e.g. one cache across the
    /// channels of a sweep); clears the state memo.
    pub fn set_op_cache(&mut self, cache: OperatingPointCache) {
        self.opcache = cache;
        self.op_memo.set(None);
    }

    /// The channel's operating-point cache (hit/miss stats live here).
    pub fn op_cache(&self) -> &OperatingPointCache {
        &self.opcache
    }

    /// Apply a blockage attenuation factor (see
    /// [`crate::shadowing::ShadowingProcess`]); 1.0 restores a clear path.
    pub fn set_blockage_gain(&mut self, gain: f64) {
        self.blockage_gain = gain.clamp(0.0, 1.0);
        self.op_memo.set(None);
    }

    /// Apply an injected impairment state (ambient spike, occlusion,
    /// saturation) from a [`crate::faults::FaultPlan`]. Composes with the
    /// configured ambient and the blockage gain; call with
    /// [`ChannelFaultState::CLEAR`] (or [`Self::clear_faults`]) to restore.
    pub fn set_fault_state(&mut self, st: ChannelFaultState) {
        let next = ChannelFaultState {
            extra_ambient_lux: st.extra_ambient_lux.max(0.0),
            gain: st.gain.clamp(0.0, 1.0),
            saturated: st.saturated,
        };
        // A clear→impaired transition is one fault activation.
        if self.fault == ChannelFaultState::CLEAR && next != ChannelFaultState::CLEAR {
            obs::counter_add(obs::key!("channel.fault.activations"), 1);
        }
        self.fault = next;
        self.op_memo.set(None);
    }

    /// Remove all injected impairments.
    pub fn clear_faults(&mut self) {
        self.fault = ChannelFaultState::CLEAR;
        self.op_memo.set(None);
    }

    /// The effective ambient illuminance including injected spikes, lux.
    pub fn effective_ambient_lux(&self) -> f64 {
        self.cfg.ambient_lux + self.fault.extra_ambient_lux
    }

    /// Current configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Move the receiver (distance sweep of Fig. 16).
    pub fn set_distance(&mut self, d_m: f64) {
        self.cfg.geometry.distance_m = d_m;
        self.op_memo.set(None);
    }

    /// Rotate the receiver off-axis (incidence sweep of Fig. 17).
    pub fn set_off_axis(&mut self, deg: f64) {
        self.cfg.geometry.off_axis_deg = deg;
        self.op_memo.set(None);
    }

    /// Update ambient illuminance (driven by an [`AmbientProfile`]).
    pub fn set_ambient_lux(&mut self, lux: f64) {
        self.cfg.ambient_lux = lux.max(0.0);
        self.op_memo.set(None);
    }

    /// Track an ambient profile at simulation time `t`.
    pub fn track_ambient(&mut self, profile: &mut dyn AmbientProfile, t: SimTime) {
        let lux = profile.lux_at(t);
        self.set_ambient_lux(lux);
    }

    fn ambient_current(&self) -> f64 {
        self.cfg.rx_diode.a_per_lux * self.effective_ambient_lux()
            + self.cfg.rx_diode.dark_current_a
    }

    /// The configuration with injected ambient spikes folded into the
    /// ambient field, so [`ChannelConfig`]'s analytic math sees the
    /// effective operating point.
    fn effective_cfg(&self) -> ChannelConfig {
        let mut cfg = self.cfg;
        cfg.ambient_lux = self.effective_ambient_lux();
        cfg
    }

    /// Transmit a slot waveform; returns the per-slot detected current
    /// levels (input-referred amperes, ambient DC removed).
    ///
    /// Each slot's level is the mean of its ADC samples excluding the
    /// first (which straddles the LED transition).
    ///
    /// Allocates fresh buffers per call; batched callers use
    /// [`OpticalChannel::transmit_into`] with a reusable [`RxScratch`].
    pub fn transmit(&mut self, slots: &[bool]) -> Vec<f64> {
        let mut scratch = RxScratch::new();
        self.transmit_into(slots, &mut scratch);
        scratch.levels
    }

    /// Allocation-free form of [`OpticalChannel::transmit`]: fills
    /// `scratch.levels` (and `scratch.optical`) in place, bit-identical to
    /// the allocating path — same noise-stream draw order, same float
    /// expression shapes, only the loop-invariant factors hoisted.
    pub fn transmit_into(&mut self, slots: &[bool], scratch: &mut RxScratch) {
        let spp = self.cfg.samples_per_slot;
        self.cfg
            .led
            .synthesize_into(slots, self.cfg.tslot_s, spp, &mut scratch.optical);
        let gain = self.cfg.geometry.path_gain() * self.blockage_gain * self.fault.gain;
        let i_amb = self.ambient_current();
        let i_amb_rin = self.cfg.ambient_rin * i_amb;
        let rin_var = i_amb_rin * i_amb_rin;
        let half_bw = spp as f64 / self.cfg.tslot_s / 2.0;
        let responsivity = self.cfg.rx_diode.responsivity_a_per_w;
        let slot_norm = (spp - 1) as f64;
        scratch.levels.clear();
        scratch.levels.reserve(slots.len());
        // Injected saturation: the front end is pinned at the rail, every
        // sample reads full-scale regardless of the slot waveform — and
        // consumes no noise draws. Hoisted out of the per-sample loop so
        // the clear path below stays branch-free.
        if self.fault.saturated {
            let max_i = self
                .cfg
                .frontend
                .code_to_current(((1u64 << self.cfg.frontend.adc_bits) - 1) as u16);
            for _ in 0..slots.len() {
                // Keep the original repeated-add average: `max_i * n / n`
                // is not bit-identical to summing n copies.
                let mut acc = 0.0;
                for _ in 1..spp {
                    acc += max_i;
                }
                scratch.levels.push(acc / slot_norm);
            }
            return;
        }
        for chunk in scratch.optical.chunks_exact(spp) {
            let mut acc = 0.0;
            for &p_opt in &chunk[1..] {
                let i_sig = responsivity * p_opt * gain;
                let shot = self.cfg.rx_diode.shot_noise_std_a(i_sig + i_amb, half_bw);
                // Shot + ambient RIN enter before the frontend; the
                // frontend adds its own thermal noise and quantizes.
                let noise = self.rng.next_gaussian() * (shot * shot + rin_var).sqrt();
                let code = self.cfg.frontend.sample(i_sig + noise, &mut self.rng);
                acc += self.cfg.frontend.code_to_current(code);
            }
            scratch.levels.push(acc / slot_norm);
        }
    }

    /// Transmit and decide with an ideal (analytically-trained) detector —
    /// the common path for link simulations.
    ///
    /// Allocates fresh buffers per call; batched callers use
    /// [`OpticalChannel::transmit_and_decide_into`].
    pub fn transmit_and_decide(&mut self, slots: &[bool]) -> Vec<bool> {
        let mut scratch = RxScratch::new();
        self.transmit_and_decide_into(slots, &mut scratch);
        scratch.decided
    }

    /// Allocation-free form of [`OpticalChannel::transmit_and_decide`]:
    /// fills `scratch.decided` in place (threshold computed once per
    /// frame, detector served from the operating-point cache).
    pub fn transmit_and_decide_into(&mut self, slots: &[bool], scratch: &mut RxScratch) {
        let detector = self.analytic_detector();
        self.transmit_into(slots, scratch);
        detector.decide_into(&scratch.levels, &mut scratch.decided);
    }

    /// The expected detector operating point at the current configuration,
    /// including blockage and injected fault state. Served from the
    /// operating-point cache; recomputed only when gain/ambient/fault
    /// state actually changed since the last query.
    pub fn analytic_detector(&self) -> SlotDetector {
        self.cached_op().detector
    }

    /// Analytic P1/P2 at the current operating point — what the paper
    /// measured empirically and fed into Eq. 3. Cached alongside the
    /// detector.
    pub fn analytic_error_probs(&self) -> ChannelErrorProbs {
        self.cached_op().probs
    }

    fn cached_op(&self) -> CachedOp {
        if let Some(op) = self.op_memo.get() {
            return op;
        }
        let op = self.opcache.query(
            &self.effective_cfg(),
            self.blockage_gain * self.fault.gain,
            self.fault.saturated,
        );
        self.op_memo.set(Some(op));
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(d: f64) -> OpticalChannel {
        OpticalChannel::new(ChannelConfig::paper_bench(d), DetRng::seed_from_u64(42))
    }

    #[test]
    fn clean_link_decodes_perfectly() {
        let mut ch = channel(1.0);
        let slots: Vec<bool> = (0..2000).map(|i| (i / 3) % 2 == 0).collect();
        let decided = ch.transmit_and_decide(&slots);
        assert_eq!(decided, slots);
    }

    #[test]
    fn paper_operating_point_at_3_6m() {
        // Sec. 6.1: P1 = 9e-5, P2 = 8e-5 measured at 3.6 m with high
        // ambient noise. The calibrated model must land in that decade.
        let ch = channel(3.6);
        let probs = ch.analytic_error_probs();
        assert!(
            probs.p_off_error > 1e-5 && probs.p_off_error < 1e-3,
            "P1={}",
            probs.p_off_error
        );
    }

    #[test]
    fn link_is_healthy_at_3m_dead_past_4_5m() {
        // The Fig. 16 cliff: slot errors negligible at 3 m, catastrophic
        // by 4.5 m.
        let p3 = channel(3.0).analytic_error_probs().p_off_error;
        let p45 = channel(4.5).analytic_error_probs().p_off_error;
        assert!(p3 < 1e-6, "p3={p3}");
        // 8e-3 per slot is ~100% frame loss for the paper's ~1300-slot frames.
        assert!(p45 > 5e-3, "p45={p45}");
    }

    #[test]
    fn monte_carlo_error_rate_matches_analytic() {
        let mut ch = channel(3.9); // p ~ 1e-3 region: measurable quickly
        let probs = ch.analytic_error_probs();
        let n = 60_000;
        let slots: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let decided = ch.transmit_and_decide(&slots);
        let errors = decided.iter().zip(&slots).filter(|(a, b)| a != b).count();
        let measured = errors as f64 / n as f64;
        let expected = (probs.p_on_error + probs.p_off_error) / 2.0;
        assert!(
            measured > expected * 0.4 && measured < expected * 2.5,
            "measured={measured:.2e} expected={expected:.2e}"
        );
    }

    #[test]
    fn dark_room_extends_range() {
        // Ambient RIN dominates the noise budget: in the dark the same
        // geometry is much cleaner (the paper's L3 condition).
        let mut bright = channel(4.2);
        let mut dark = channel(4.2);
        bright.set_ambient_lux(9330.0);
        dark.set_ambient_lux(16.0);
        assert!(
            dark.analytic_error_probs().p_off_error
                < bright.analytic_error_probs().p_off_error / 10.0
        );
    }

    #[test]
    fn off_axis_degrades_and_fov_kills() {
        let on_axis = channel(3.3);
        let mut off = channel(3.3);
        off.set_off_axis(12.0);
        assert!(
            off.analytic_error_probs().p_off_error
                > on_axis.analytic_error_probs().p_off_error * 10.0
        );
        let mut blind = channel(1.0);
        blind.set_off_axis(70.0); // beyond the SFH206K FoV
        let d = blind.analytic_detector();
        assert_eq!(d.mu_on_a, d.mu_off_a);
    }

    #[test]
    fn short_range_survives_wide_angles() {
        // Fig. 17: at 1.3 m the link holds through 16° off-axis.
        let mut ch = channel(1.3);
        ch.set_off_axis(16.0);
        assert!(ch.analytic_error_probs().p_off_error < 1e-6);
    }

    #[test]
    fn ambient_tracking_updates_noise() {
        use crate::ambient::BlindRamp;
        let mut ch = channel(3.6);
        let mut ramp = BlindRamp::linearized(100.0, 9000.0, 60.0);
        ch.track_ambient(&mut ramp, SimTime::ZERO);
        let early = ch.analytic_error_probs().p_off_error;
        ch.track_ambient(&mut ramp, SimTime::from_secs(60));
        let late = ch.analytic_error_probs().p_off_error;
        assert!(late > early * 5.0, "early={early:.2e} late={late:.2e}");
    }

    #[test]
    fn blockage_kills_and_restores_the_link() {
        let mut ch = channel(2.0);
        let slots: Vec<bool> = (0..4000).map(|i| i % 3 == 0).collect();
        assert_eq!(ch.transmit_and_decide(&slots), slots, "clear baseline");
        ch.set_blockage_gain(0.001); // -30 dB person in the beam
        let blocked = ch.transmit_and_decide(&slots);
        let errors = blocked.iter().zip(&slots).filter(|(a, b)| a != b).count();
        assert!(errors > 500, "blockage barely hurt: {errors} errors");
        ch.set_blockage_gain(1.0);
        assert_eq!(ch.transmit_and_decide(&slots), slots, "recovered");
    }

    #[test]
    fn determinism() {
        let slots: Vec<bool> = (0..500).map(|i| i % 5 < 2).collect();
        let mut a = channel(3.6);
        let mut b = channel(3.6);
        assert_eq!(a.transmit(&slots), b.transmit(&slots));
    }

    #[test]
    fn scratch_pipeline_matches_allocating_pipeline() {
        let slots: Vec<bool> = (0..700).map(|i| i % 4 < 2).collect();
        let mut a = channel(3.8);
        let mut b = channel(3.8);
        let mut scratch = RxScratch::new();
        // Same seed, same draws: levels and decisions must match bitwise.
        b.transmit_into(&slots, &mut scratch);
        let levels_a = a.transmit(&slots);
        assert_eq!(levels_a.len(), scratch.levels.len());
        for (x, y) in levels_a.iter().zip(&scratch.levels) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let mut c = channel(3.8);
        let mut d = channel(3.8);
        c.transmit_and_decide_into(&slots, &mut scratch);
        assert_eq!(d.transmit_and_decide(&slots), scratch.decided);
    }

    #[test]
    fn memoized_operating_point_tracks_every_mutator() {
        // Each mutator must invalidate the memo: the cached answer after a
        // mutation equals a fresh channel put in the same state.
        let mut ch = channel(3.6);
        let _warm = ch.analytic_detector(); // populate the memo
        ch.set_distance(4.1);
        ch.set_off_axis(7.0);
        ch.set_ambient_lux(5000.0);
        ch.set_blockage_gain(0.4);
        let mut fresh = channel(4.1);
        fresh.set_off_axis(7.0);
        fresh.set_ambient_lux(5000.0);
        fresh.set_blockage_gain(0.4);
        let a = ch.analytic_detector();
        let b = fresh.analytic_detector();
        assert_eq!(a.mu_on_a.to_bits(), b.mu_on_a.to_bits());
        assert_eq!(a.sigma_a.to_bits(), b.sigma_a.to_bits());
        // Repeated queries with no mutation are memo hits: the shared
        // cache records no extra traffic.
        let before = ch.op_cache().hits() + ch.op_cache().misses();
        for _ in 0..10 {
            let _ = ch.analytic_error_probs();
        }
        assert_eq!(ch.op_cache().hits() + ch.op_cache().misses(), before);
    }

    #[test]
    fn fault_state_degrades_and_clears() {
        use crate::faults::ChannelFaultState;
        let clean = channel(3.6).analytic_error_probs().p_off_error;

        // Ambient spike raises the noise floor.
        let mut spiked = channel(3.6);
        spiked.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 20_000.0,
            gain: 1.0,
            saturated: false,
        });
        assert!(spiked.analytic_error_probs().p_off_error > clean * 10.0);
        assert_eq!(spiked.effective_ambient_lux(), 8080.0 + 20_000.0);

        // Occlusion composes with the blockage gain.
        let mut occluded = channel(2.0);
        occluded.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 0.0,
            gain: 0.001,
            saturated: false,
        });
        let slots: Vec<bool> = (0..4000).map(|i| i % 3 == 0).collect();
        let decided = occluded.transmit_and_decide(&slots);
        let errors = decided.iter().zip(&slots).filter(|(a, b)| a != b).count();
        assert!(errors > 500, "occlusion barely hurt: {errors} errors");

        // Saturation collapses the slot eye entirely.
        let mut sat = channel(1.0);
        sat.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 0.0,
            gain: 1.0,
            saturated: true,
        });
        let d = sat.analytic_detector();
        assert_eq!(d.mu_on_a, d.mu_off_a);
        let levels = sat.transmit(&slots[..100]);
        assert!(levels.windows(2).all(|w| w[0] == w[1]), "rail not flat");

        // Clearing restores the baseline exactly.
        sat.clear_faults();
        assert_eq!(
            sat.analytic_error_probs().p_off_error,
            clean_channel_probs(1.0)
        );
    }

    fn clean_channel_probs(d: f64) -> f64 {
        channel(d).analytic_error_probs().p_off_error
    }
}
