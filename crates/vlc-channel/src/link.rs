//! The composed optical channel: slot waveform in, detected slots out.
//!
//! Pipeline (matching the paper's receive chain end to end):
//!
//! ```text
//! slots → LED dynamics → Lambertian path → photodiode (+ ambient, shot)
//!       → TIA + thermal/ambient noise + ADC → slot averaging → decisions
//! ```
//!
//! The calibration ties everything to the paper's §6.1 measurement: at
//! 3.6 m under bright ambient, the analytic slot error probabilities come
//! out at the measured `P1 ≈ 9e-5`, `P2 ≈ 8e-5`; closer in, the link is
//! essentially clean; past ~4 m, frame-level error amplification produces
//! the throughput cliff of Fig. 16.

use crate::ambient::AmbientProfile;
use crate::detector::{ChannelErrorProbs, SlotDetector};
use crate::faults::ChannelFaultState;
use crate::frontend::AnalogFrontend;
use crate::led::LedModel;
use crate::optics::LambertianLink;
use crate::photodiode::Photodiode;
use desim::{DetRng, SimTime};
use serde::{Deserialize, Serialize};
use smartvlc_obs as obs;

/// All channel parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Transmit LED.
    pub led: LedModel,
    /// Link geometry and optics.
    pub geometry: LambertianLink,
    /// Receive photodiode.
    pub rx_diode: Photodiode,
    /// TIA + ADC.
    pub frontend: AnalogFrontend,
    /// Slot duration, seconds (`1/ftx`).
    pub tslot_s: f64,
    /// ADC samples per slot (`fs/ftx`; paper: 4).
    pub samples_per_slot: usize,
    /// Ambient illuminance at the receiver, lux.
    pub ambient_lux: f64,
    /// Relative intensity noise of the ambient light (daylight flicker,
    /// mains ripple of the ceiling lights): noise-current σ per ampere of
    /// ambient photocurrent. Calibrated so bright-ambient operation at
    /// 3.6 m reproduces the paper's measured P1/P2.
    pub ambient_rin: f64,
}

impl ChannelConfig {
    /// The paper's bench at `distance_m` under bright office ambient.
    pub fn paper_bench(distance_m: f64) -> ChannelConfig {
        ChannelConfig {
            led: LedModel::philips_4w7(),
            geometry: LambertianLink::paper_bench(distance_m),
            rx_diode: Photodiode::sfh206k(),
            frontend: AnalogFrontend::paper_receiver(),
            tslot_s: 8e-6,
            samples_per_slot: 4,
            ambient_lux: 8080.0, // sunny office, ceiling lights off (L2)
            ambient_rin: 4.7e-3,
        }
    }

    /// Total DC photocurrent from ambient light plus dark current, A.
    fn ambient_current(&self) -> f64 {
        self.rx_diode.a_per_lux * self.ambient_lux + self.rx_diode.dark_current_a
    }

    /// Per-sample noise σ at this operating point (input-referred, before
    /// slot averaging): thermal ⊕ ambient RIN ⊕ shot. The signal shot term
    /// conservatively uses the clear-path received power (an attenuated
    /// signal sheds shot noise, but ambient dominates the budget).
    fn per_sample_sigma(&self) -> f64 {
        let i_amb = self.ambient_current();
        let i_sig_mid = 0.5
            * self.rx_diode.responsivity_a_per_w
            * self.geometry.received_power_w(self.led.on_power_w);
        let fs = self.samples_per_slot as f64 / self.tslot_s;
        let shot = self.rx_diode.shot_noise_std_a(i_amb + i_sig_mid, fs / 2.0);
        let rin = self.ambient_rin * i_amb;
        let th = self.frontend.thermal_noise_a_rms;
        (th * th + rin * rin + shot * shot).sqrt()
    }

    /// The expected slot-detector operating point for this configuration,
    /// with an extra multiplicative optical gain (blockage/occlusion) and
    /// an optional railed (saturated) front end folded in.
    ///
    /// This is the pure-configuration form of
    /// [`OpticalChannel::analytic_detector`]: no channel state, no RNG —
    /// callers that only need error probabilities (planning-level
    /// simulations such as `smartvlc-sim`'s multi-cell workload) can query
    /// it per geometry without instantiating a stateful channel.
    pub fn detector_with(&self, extra_gain: f64, saturated: bool) -> SlotDetector {
        let gain = self.geometry.path_gain() * extra_gain;
        let r = self.rx_diode.responsivity_a_per_w;
        let mu_on = r * self.led.steady_power(1.0) * gain;
        let mu_off = r * self.led.steady_power(0.0) * gain;
        // Saturation: the frontend clips; fold the clipped swing in.
        let max_i = self
            .frontend
            .code_to_current(((1u64 << self.frontend.adc_bits) - 1) as u16);
        // A railed front end pins both levels at full scale: the slot eye
        // collapses entirely (same degenerate detector as a beyond-FoV
        // receiver, which the detector already supports).
        let (mu_on, mu_off) = if saturated {
            (max_i, max_i)
        } else {
            (mu_on.min(max_i), mu_off.min(max_i))
        };
        let sigma = self.per_sample_sigma() / ((self.samples_per_slot - 1) as f64).sqrt();
        // Quantization adds lsb/sqrt(12) per sample.
        let q = self.frontend.lsb_current_a()
            / 12f64.sqrt()
            / ((self.samples_per_slot - 1) as f64).sqrt();
        SlotDetector::from_levels(mu_on, mu_off, (sigma * sigma + q * q).sqrt())
    }

    /// Clear-path analytic detector for this configuration.
    pub fn analytic_detector(&self) -> SlotDetector {
        self.detector_with(1.0, false)
    }

    /// Clear-path analytic P1/P2 for this configuration.
    pub fn analytic_error_probs(&self) -> ChannelErrorProbs {
        self.analytic_detector().error_probs()
    }
}

/// A stateful channel instance (owns its noise stream).
pub struct OpticalChannel {
    cfg: ChannelConfig,
    rng: DetRng,
    /// Extra multiplicative optical gain (1.0 = clear; a blockage model
    /// drives this toward ~0.001).
    blockage_gain: f64,
    /// Injected impairments (see [`crate::faults::FaultPlan`]); composes
    /// with the blockage gain and configured ambient.
    fault: ChannelFaultState,
}

impl OpticalChannel {
    /// Create a channel with a deterministic noise stream.
    pub fn new(cfg: ChannelConfig, rng: DetRng) -> OpticalChannel {
        assert!(cfg.samples_per_slot >= 2, "need >= 2 samples per slot");
        OpticalChannel {
            cfg,
            rng,
            blockage_gain: 1.0,
            fault: ChannelFaultState::CLEAR,
        }
    }

    /// Apply a blockage attenuation factor (see
    /// [`crate::shadowing::ShadowingProcess`]); 1.0 restores a clear path.
    pub fn set_blockage_gain(&mut self, gain: f64) {
        self.blockage_gain = gain.clamp(0.0, 1.0);
    }

    /// Apply an injected impairment state (ambient spike, occlusion,
    /// saturation) from a [`crate::faults::FaultPlan`]. Composes with the
    /// configured ambient and the blockage gain; call with
    /// [`ChannelFaultState::CLEAR`] (or [`Self::clear_faults`]) to restore.
    pub fn set_fault_state(&mut self, st: ChannelFaultState) {
        let next = ChannelFaultState {
            extra_ambient_lux: st.extra_ambient_lux.max(0.0),
            gain: st.gain.clamp(0.0, 1.0),
            saturated: st.saturated,
        };
        // A clear→impaired transition is one fault activation.
        if self.fault == ChannelFaultState::CLEAR && next != ChannelFaultState::CLEAR {
            obs::counter_add(obs::key!("channel.fault.activations"), 1);
        }
        self.fault = next;
    }

    /// Remove all injected impairments.
    pub fn clear_faults(&mut self) {
        self.fault = ChannelFaultState::CLEAR;
    }

    /// The effective ambient illuminance including injected spikes, lux.
    pub fn effective_ambient_lux(&self) -> f64 {
        self.cfg.ambient_lux + self.fault.extra_ambient_lux
    }

    /// Current configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Move the receiver (distance sweep of Fig. 16).
    pub fn set_distance(&mut self, d_m: f64) {
        self.cfg.geometry.distance_m = d_m;
    }

    /// Rotate the receiver off-axis (incidence sweep of Fig. 17).
    pub fn set_off_axis(&mut self, deg: f64) {
        self.cfg.geometry.off_axis_deg = deg;
    }

    /// Update ambient illuminance (driven by an [`AmbientProfile`]).
    pub fn set_ambient_lux(&mut self, lux: f64) {
        self.cfg.ambient_lux = lux.max(0.0);
    }

    /// Track an ambient profile at simulation time `t`.
    pub fn track_ambient(&mut self, profile: &mut dyn AmbientProfile, t: SimTime) {
        let lux = profile.lux_at(t);
        self.set_ambient_lux(lux);
    }

    fn ambient_current(&self) -> f64 {
        self.cfg.rx_diode.a_per_lux * self.effective_ambient_lux()
            + self.cfg.rx_diode.dark_current_a
    }

    /// The configuration with injected ambient spikes folded into the
    /// ambient field, so [`ChannelConfig`]'s analytic math sees the
    /// effective operating point.
    fn effective_cfg(&self) -> ChannelConfig {
        let mut cfg = self.cfg;
        cfg.ambient_lux = self.effective_ambient_lux();
        cfg
    }

    /// Transmit a slot waveform; returns the per-slot detected current
    /// levels (input-referred amperes, ambient DC removed).
    ///
    /// Each slot's level is the mean of its ADC samples excluding the
    /// first (which straddles the LED transition).
    pub fn transmit(&mut self, slots: &[bool]) -> Vec<f64> {
        let spp = self.cfg.samples_per_slot;
        let optical = self.cfg.led.synthesize(slots, self.cfg.tslot_s, spp);
        let gain = self.cfg.geometry.path_gain() * self.blockage_gain * self.fault.gain;
        let i_amb = self.ambient_current();
        let i_amb_rin = self.cfg.ambient_rin * i_amb;
        let fs = spp as f64 / self.cfg.tslot_s;
        // Injected saturation: the front end is pinned at the rail, every
        // sample reads full-scale regardless of the slot waveform.
        let rail = if self.fault.saturated {
            Some(
                self.cfg
                    .frontend
                    .code_to_current(((1u64 << self.cfg.frontend.adc_bits) - 1) as u16),
            )
        } else {
            None
        };
        let mut levels = Vec::with_capacity(slots.len());
        for chunk in optical.chunks_exact(spp) {
            let mut acc = 0.0;
            for &p_opt in &chunk[1..] {
                if let Some(max_i) = rail {
                    acc += max_i;
                    continue;
                }
                let i_sig = self.cfg.rx_diode.responsivity_a_per_w * p_opt * gain;
                let shot = self.cfg.rx_diode.shot_noise_std_a(i_sig + i_amb, fs / 2.0);
                // Shot + ambient RIN enter before the frontend; the
                // frontend adds its own thermal noise and quantizes.
                let noise = self.rng.next_gaussian() * (shot * shot + i_amb_rin * i_amb_rin).sqrt();
                let code = self.cfg.frontend.sample(i_sig + noise, &mut self.rng);
                acc += self.cfg.frontend.code_to_current(code);
            }
            levels.push(acc / (spp - 1) as f64);
        }
        levels
    }

    /// Transmit and decide with an ideal (analytically-trained) detector —
    /// the common path for link simulations.
    pub fn transmit_and_decide(&mut self, slots: &[bool]) -> Vec<bool> {
        let detector = self.analytic_detector();
        let levels = self.transmit(slots);
        detector.decide_all(&levels)
    }

    /// The expected detector operating point at the current configuration,
    /// including blockage and injected fault state.
    pub fn analytic_detector(&self) -> SlotDetector {
        self.effective_cfg()
            .detector_with(self.blockage_gain * self.fault.gain, self.fault.saturated)
    }

    /// Analytic P1/P2 at the current operating point — what the paper
    /// measured empirically and fed into Eq. 3.
    pub fn analytic_error_probs(&self) -> ChannelErrorProbs {
        self.analytic_detector().error_probs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(d: f64) -> OpticalChannel {
        OpticalChannel::new(ChannelConfig::paper_bench(d), DetRng::seed_from_u64(42))
    }

    #[test]
    fn clean_link_decodes_perfectly() {
        let mut ch = channel(1.0);
        let slots: Vec<bool> = (0..2000).map(|i| (i / 3) % 2 == 0).collect();
        let decided = ch.transmit_and_decide(&slots);
        assert_eq!(decided, slots);
    }

    #[test]
    fn paper_operating_point_at_3_6m() {
        // Sec. 6.1: P1 = 9e-5, P2 = 8e-5 measured at 3.6 m with high
        // ambient noise. The calibrated model must land in that decade.
        let ch = channel(3.6);
        let probs = ch.analytic_error_probs();
        assert!(
            probs.p_off_error > 1e-5 && probs.p_off_error < 1e-3,
            "P1={}",
            probs.p_off_error
        );
    }

    #[test]
    fn link_is_healthy_at_3m_dead_past_4_5m() {
        // The Fig. 16 cliff: slot errors negligible at 3 m, catastrophic
        // by 4.5 m.
        let p3 = channel(3.0).analytic_error_probs().p_off_error;
        let p45 = channel(4.5).analytic_error_probs().p_off_error;
        assert!(p3 < 1e-6, "p3={p3}");
        // 8e-3 per slot is ~100% frame loss for the paper's ~1300-slot frames.
        assert!(p45 > 5e-3, "p45={p45}");
    }

    #[test]
    fn monte_carlo_error_rate_matches_analytic() {
        let mut ch = channel(3.9); // p ~ 1e-3 region: measurable quickly
        let probs = ch.analytic_error_probs();
        let n = 60_000;
        let slots: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let decided = ch.transmit_and_decide(&slots);
        let errors = decided.iter().zip(&slots).filter(|(a, b)| a != b).count();
        let measured = errors as f64 / n as f64;
        let expected = (probs.p_on_error + probs.p_off_error) / 2.0;
        assert!(
            measured > expected * 0.4 && measured < expected * 2.5,
            "measured={measured:.2e} expected={expected:.2e}"
        );
    }

    #[test]
    fn dark_room_extends_range() {
        // Ambient RIN dominates the noise budget: in the dark the same
        // geometry is much cleaner (the paper's L3 condition).
        let mut bright = channel(4.2);
        let mut dark = channel(4.2);
        bright.set_ambient_lux(9330.0);
        dark.set_ambient_lux(16.0);
        assert!(
            dark.analytic_error_probs().p_off_error
                < bright.analytic_error_probs().p_off_error / 10.0
        );
    }

    #[test]
    fn off_axis_degrades_and_fov_kills() {
        let on_axis = channel(3.3);
        let mut off = channel(3.3);
        off.set_off_axis(12.0);
        assert!(
            off.analytic_error_probs().p_off_error
                > on_axis.analytic_error_probs().p_off_error * 10.0
        );
        let mut blind = channel(1.0);
        blind.set_off_axis(70.0); // beyond the SFH206K FoV
        let d = blind.analytic_detector();
        assert_eq!(d.mu_on_a, d.mu_off_a);
    }

    #[test]
    fn short_range_survives_wide_angles() {
        // Fig. 17: at 1.3 m the link holds through 16° off-axis.
        let mut ch = channel(1.3);
        ch.set_off_axis(16.0);
        assert!(ch.analytic_error_probs().p_off_error < 1e-6);
    }

    #[test]
    fn ambient_tracking_updates_noise() {
        use crate::ambient::BlindRamp;
        let mut ch = channel(3.6);
        let mut ramp = BlindRamp::linearized(100.0, 9000.0, 60.0);
        ch.track_ambient(&mut ramp, SimTime::ZERO);
        let early = ch.analytic_error_probs().p_off_error;
        ch.track_ambient(&mut ramp, SimTime::from_secs(60));
        let late = ch.analytic_error_probs().p_off_error;
        assert!(late > early * 5.0, "early={early:.2e} late={late:.2e}");
    }

    #[test]
    fn blockage_kills_and_restores_the_link() {
        let mut ch = channel(2.0);
        let slots: Vec<bool> = (0..4000).map(|i| i % 3 == 0).collect();
        assert_eq!(ch.transmit_and_decide(&slots), slots, "clear baseline");
        ch.set_blockage_gain(0.001); // -30 dB person in the beam
        let blocked = ch.transmit_and_decide(&slots);
        let errors = blocked.iter().zip(&slots).filter(|(a, b)| a != b).count();
        assert!(errors > 500, "blockage barely hurt: {errors} errors");
        ch.set_blockage_gain(1.0);
        assert_eq!(ch.transmit_and_decide(&slots), slots, "recovered");
    }

    #[test]
    fn determinism() {
        let slots: Vec<bool> = (0..500).map(|i| i % 5 < 2).collect();
        let mut a = channel(3.6);
        let mut b = channel(3.6);
        assert_eq!(a.transmit(&slots), b.transmit(&slots));
    }

    #[test]
    fn fault_state_degrades_and_clears() {
        use crate::faults::ChannelFaultState;
        let clean = channel(3.6).analytic_error_probs().p_off_error;

        // Ambient spike raises the noise floor.
        let mut spiked = channel(3.6);
        spiked.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 20_000.0,
            gain: 1.0,
            saturated: false,
        });
        assert!(spiked.analytic_error_probs().p_off_error > clean * 10.0);
        assert_eq!(spiked.effective_ambient_lux(), 8080.0 + 20_000.0);

        // Occlusion composes with the blockage gain.
        let mut occluded = channel(2.0);
        occluded.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 0.0,
            gain: 0.001,
            saturated: false,
        });
        let slots: Vec<bool> = (0..4000).map(|i| i % 3 == 0).collect();
        let decided = occluded.transmit_and_decide(&slots);
        let errors = decided.iter().zip(&slots).filter(|(a, b)| a != b).count();
        assert!(errors > 500, "occlusion barely hurt: {errors} errors");

        // Saturation collapses the slot eye entirely.
        let mut sat = channel(1.0);
        sat.set_fault_state(ChannelFaultState {
            extra_ambient_lux: 0.0,
            gain: 1.0,
            saturated: true,
        });
        let d = sat.analytic_detector();
        assert_eq!(d.mu_on_a, d.mu_off_a);
        let levels = sat.transmit(&slots[..100]);
        assert!(levels.windows(2).all(|w| w[0] == w[1]), "rail not flat");

        // Clearing restores the baseline exactly.
        sat.clear_faults();
        assert_eq!(
            sat.analytic_error_probs().p_off_error,
            clean_channel_probs(1.0)
        );
    }

    fn clean_channel_probs(d: f64) -> f64 {
        channel(d).analytic_error_probs().p_off_error
    }
}
