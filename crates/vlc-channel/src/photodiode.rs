//! Photodiode models: optical power → photocurrent, plus noise statistics.
//!
//! The paper uses two parts: an OSRAM **SFH206K** at the receiver (chosen
//! for "low response time and high sensitivity") and a TI **OPT101** at
//! the transmitter for ambient sensing (slower, integrated amplifier).
//! What matters for the channel is the responsivity, the active area, and
//! the shot noise the photocurrent carries:
//!
//! ```text
//! i_ph     = R · P_opt                      (A)
//! σ²_shot  = 2·q·(i_ph + i_ambient + i_dark)·B   (A², one-sided)
//! ```

use serde::{Deserialize, Serialize};

/// Elementary charge, coulombs.
pub const ELECTRON_CHARGE_C: f64 = 1.602_176_634e-19;

/// A PIN photodiode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Photodiode {
    /// Responsivity at the LED's dominant wavelength, A/W.
    pub responsivity_a_per_w: f64,
    /// Active area, m².
    pub area_m2: f64,
    /// Dark current, A.
    pub dark_current_a: f64,
    /// Ambient-light-to-photocurrent coupling: photocurrent per lux of
    /// ambient illuminance on the chip, A/lux. Folds the luminous
    /// efficacy conversion into one measured constant.
    pub a_per_lux: f64,
}

impl Photodiode {
    /// OSRAM SFH206K — the paper's receiver diode (fast, 7.5 mm²).
    pub fn sfh206k() -> Photodiode {
        Photodiode {
            responsivity_a_per_w: 0.62,
            area_m2: 7.5e-6,
            dark_current_a: 1e-9,
            // Datasheet: ~9.6 uA at 1 klx (standard light A); per lux:
            a_per_lux: 9.6e-9,
        }
    }

    /// TI OPT101 — the paper's transmitter-side ambient sensor (the chip
    /// integrates diode + TIA; we expose the diode-equivalent view).
    pub fn opt101() -> Photodiode {
        Photodiode {
            responsivity_a_per_w: 0.45,
            area_m2: 5.2e-6,
            dark_current_a: 2.5e-9,
            a_per_lux: 5.5e-9,
        }
    }

    /// Photocurrent for received optical power plus ambient illuminance.
    pub fn photocurrent_a(&self, optical_w: f64, ambient_lux: f64) -> f64 {
        self.responsivity_a_per_w * optical_w.max(0.0)
            + self.a_per_lux * ambient_lux.max(0.0)
            + self.dark_current_a
    }

    /// One-sided shot-noise standard deviation for a total current over
    /// bandwidth `bandwidth_hz`.
    pub fn shot_noise_std_a(&self, total_current_a: f64, bandwidth_hz: f64) -> f64 {
        (2.0 * ELECTRON_CHARGE_C * total_current_a.max(0.0) * bandwidth_hz.max(0.0)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photocurrent_is_linear_in_power() {
        let pd = Photodiode::sfh206k();
        let base = pd.photocurrent_a(0.0, 0.0);
        let i1 = pd.photocurrent_a(1e-6, 0.0) - base;
        let i2 = pd.photocurrent_a(2e-6, 0.0) - base;
        assert!((i2 / i1 - 2.0).abs() < 1e-9);
        assert!((i1 - 0.62e-6).abs() < 1e-12);
    }

    #[test]
    fn ambient_adds_dc() {
        let pd = Photodiode::sfh206k();
        // The paper's brightest condition: ~9760 lux sunny office.
        let i = pd.photocurrent_a(0.0, 9760.0) - pd.dark_current_a;
        assert!((i - 9760.0 * 9.6e-9).abs() < 1e-12);
        // ~94 uA of ambient-induced current.
        assert!(i > 9e-5 && i < 1e-4, "i={i}");
    }

    #[test]
    fn negative_inputs_clamped() {
        let pd = Photodiode::sfh206k();
        assert_eq!(pd.photocurrent_a(-1.0, -100.0), pd.dark_current_a);
    }

    #[test]
    fn shot_noise_scales_sqrt() {
        let pd = Photodiode::sfh206k();
        let s1 = pd.shot_noise_std_a(1e-6, 500e3);
        let s4 = pd.shot_noise_std_a(4e-6, 500e3);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
        // Magnitude check: ~1.8e-11 A per sqrt unit... ~0.57 nA at 1 uA/500 kHz.
        assert!(s1 > 1e-10 && s1 < 1e-9, "s1={s1}");
    }

    #[test]
    fn shot_noise_handles_zero() {
        let pd = Photodiode::sfh206k();
        assert_eq!(pd.shot_noise_std_a(0.0, 0.0), 0.0);
        assert_eq!(pd.shot_noise_std_a(-1.0, 500e3), 0.0);
    }

    #[test]
    fn receiver_diode_outresponds_sensor_diode() {
        // The SFH206K was chosen over the OPT101 for the receive path.
        assert!(
            Photodiode::sfh206k().responsivity_a_per_w > Photodiode::opt101().responsivity_a_per_w
        );
    }
}
