//! LED switching dynamics.
//!
//! The paper's transmitter drives a Philips 4.7 W LED through a MOSFET and
//! even removes the AC-DC converter "that can slow down the transition
//! speed between ON and OFF states". What remains is still a first-order
//! system: optical output follows drive changes exponentially with a
//! rise/fall time constant. §6.1 reports that the LED — not the PRU — is
//! the bottleneck, fixing `tslot = 8 µs` as "the minimal time slot the LED
//! supports, under which the transmitted signals are not distorted too
//! much". This model reproduces exactly that trade-off.

use serde::{Deserialize, Serialize};

/// First-order LED optical response model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LedModel {
    /// Time constant when turning on, seconds.
    pub rise_tau_s: f64,
    /// Time constant when turning off, seconds.
    pub fall_tau_s: f64,
    /// Optical power emitted at full drive, watts.
    pub on_power_w: f64,
    /// Residual emission at zero drive as a fraction of `on_power_w`
    /// (finite extinction ratio of the driver).
    pub off_fraction: f64,
}

impl LedModel {
    /// The disassembled Philips 4.7 W luminaire of the paper's prototype.
    ///
    /// τ ≈ 1.3 µs makes an 8 µs slot ≈ 6 time constants — "not distorted
    /// too much" — while a 2 µs slot would be badly smeared, matching the
    /// paper's choice of `tslot`.
    pub fn philips_4w7() -> LedModel {
        LedModel {
            rise_tau_s: 1.3e-6,
            fall_tau_s: 1.1e-6,
            // 4.7 W electrical, ~30% wall-plug efficiency for a warm-white
            // LED of that era.
            on_power_w: 1.4,
            off_fraction: 0.005,
        }
    }

    /// An idealized instant LED (for isolating other effects in tests).
    pub fn ideal(on_power_w: f64) -> LedModel {
        LedModel {
            rise_tau_s: 0.0,
            fall_tau_s: 0.0,
            on_power_w,
            off_fraction: 0.0,
        }
    }

    /// Optical power at drive level `level` (0 = off, 1 = on) in steady
    /// state.
    pub fn steady_power(&self, level: f64) -> f64 {
        let level = level.clamp(0.0, 1.0);
        self.on_power_w * (self.off_fraction + (1.0 - self.off_fraction) * level)
    }

    /// Synthesize the emitted optical waveform for a slot sequence.
    ///
    /// `samples_per_slot` points are produced per slot of duration
    /// `tslot_s`; the output tracks the drive exponentially with the
    /// rise/fall constants. The initial state is the first slot's target
    /// (steady operation, not cold start).
    pub fn synthesize(&self, slots: &[bool], tslot_s: f64, samples_per_slot: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.synthesize_into(slots, tslot_s, samples_per_slot, &mut out);
        out
    }

    /// Allocation-free form of [`LedModel::synthesize`]: clears and fills
    /// `out` in place (bit-identical output; the per-sample `exp` of the
    /// step response is hoisted — `alpha` depends only on `dt` and the
    /// rise/fall constant, both loop-invariant).
    pub fn synthesize_into(
        &self,
        slots: &[bool],
        tslot_s: f64,
        samples_per_slot: usize,
        out: &mut Vec<f64>,
    ) {
        assert!(samples_per_slot >= 1, "need at least one sample per slot");
        assert!(tslot_s > 0.0, "slot duration must be positive");
        let dt = tslot_s / samples_per_slot as f64;
        out.clear();
        let mut power = match slots.first() {
            Some(&s) => self.steady_power(s as u8 as f64),
            None => return,
        };
        out.reserve(slots.len() * samples_per_slot);
        let rise_alpha = if self.rise_tau_s > 0.0 {
            1.0 - (-dt / self.rise_tau_s).exp()
        } else {
            1.0
        };
        let fall_alpha = if self.fall_tau_s > 0.0 {
            1.0 - (-dt / self.fall_tau_s).exp()
        } else {
            1.0
        };
        for &slot in slots {
            let target = self.steady_power(slot as u8 as f64);
            let rising = target > power;
            let tau = if rising {
                self.rise_tau_s
            } else {
                self.fall_tau_s
            };
            if tau <= 0.0 {
                for _ in 0..samples_per_slot {
                    power = target;
                    out.push(power);
                }
            } else {
                let alpha = if rising { rise_alpha } else { fall_alpha };
                for _ in 0..samples_per_slot {
                    power += (target - power) * alpha;
                    out.push(power);
                }
            }
        }
    }

    /// Eye-opening metric for a given slot duration: the fraction of the
    /// ON/OFF swing reached by the end of one slot after a transition.
    /// The paper's "not distorted too much" criterion corresponds to an
    /// opening near 1.0; values below ~0.9 start costing SNR.
    pub fn eye_opening(&self, tslot_s: f64) -> f64 {
        let tau = self.rise_tau_s.max(self.fall_tau_s);
        if tau <= 0.0 {
            1.0
        } else {
            1.0 - (-tslot_s / tau).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_power_endpoints() {
        let led = LedModel::philips_4w7();
        assert!((led.steady_power(1.0) - led.on_power_w).abs() < 1e-12);
        assert!((led.steady_power(0.0) - led.on_power_w * led.off_fraction).abs() < 1e-12);
        // Clamps out-of-range drive.
        assert_eq!(led.steady_power(2.0), led.steady_power(1.0));
    }

    #[test]
    fn ideal_led_is_square() {
        let led = LedModel::ideal(1.0);
        let wave = led.synthesize(&[true, false, true], 8e-6, 4);
        assert_eq!(wave.len(), 12);
        assert!(wave[..4].iter().all(|&p| p == 1.0));
        assert!(wave[4..8].iter().all(|&p| p == 0.0));
        assert!(wave[8..].iter().all(|&p| p == 1.0));
    }

    #[test]
    fn real_led_rises_exponentially() {
        let led = LedModel::philips_4w7();
        let wave = led.synthesize(&[false, true, true], 8e-6, 8);
        // Monotone rise after the transition...
        let rise = &wave[8..16];
        assert!(rise.windows(2).all(|w| w[1] >= w[0]));
        // ...reaching most of the swing within the slot (tslot = 6 tau).
        let target = led.steady_power(1.0);
        assert!(rise[7] > 0.99 * target, "end of slot: {}", rise[7]);
        // But clearly not instantaneous at the start.
        assert!(rise[0] < 0.7 * target, "first sample: {}", rise[0]);
    }

    #[test]
    fn paper_slot_choice_is_undistorted_but_2us_is_not() {
        // The quantitative version of Sec. 6.1's tslot discussion.
        let led = LedModel::philips_4w7();
        assert!(led.eye_opening(8e-6) > 0.99);
        assert!(led.eye_opening(2e-6) < 0.80);
    }

    #[test]
    fn fall_uses_fall_tau() {
        let led = LedModel {
            rise_tau_s: 1e-6,
            fall_tau_s: 10e-6, // pathologically slow fall
            on_power_w: 1.0,
            off_fraction: 0.0,
        };
        let wave = led.synthesize(&[true, false], 8e-6, 8);
        // After one slot of falling with tau=10us, still above half power.
        assert!(wave[15] > 0.4, "fall too fast: {}", wave[15]);
    }

    #[test]
    fn empty_slots_give_empty_waveform() {
        let led = LedModel::philips_4w7();
        assert!(led.synthesize(&[], 8e-6, 4).is_empty());
    }

    #[test]
    fn hoisted_alpha_is_bit_identical_to_per_sample_exp() {
        // The original loop recomputed `1 - exp(-dt/tau)` per sample;
        // synthesize_into hoists it. Pin bit-identity against a direct
        // transcription of the per-sample form.
        let led = LedModel::philips_4w7();
        let slots: Vec<bool> = (0..257).map(|i| i % 7 < 3).collect();
        let (tslot_s, spp) = (8e-6, 4usize);
        let dt = tslot_s / spp as f64;
        let mut power = led.steady_power(slots[0] as u8 as f64);
        let mut reference = Vec::new();
        for &slot in &slots {
            let target = led.steady_power(slot as u8 as f64);
            let tau = if target > power {
                led.rise_tau_s
            } else {
                led.fall_tau_s
            };
            for _ in 0..spp {
                let alpha = 1.0 - (-dt / tau).exp();
                power += (target - power) * alpha;
                reference.push(power);
            }
        }
        let wave = led.synthesize(&slots, tslot_s, spp);
        assert_eq!(wave.len(), reference.len());
        for (a, b) in wave.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn synthesize_into_reuses_and_clears() {
        let led = LedModel::philips_4w7();
        let mut buf = vec![123.0; 9];
        led.synthesize_into(&[true, false], 8e-6, 4, &mut buf);
        assert_eq!(buf, led.synthesize(&[true, false], 8e-6, 4));
        led.synthesize_into(&[], 8e-6, 4, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn waveform_is_deterministic() {
        let led = LedModel::philips_4w7();
        let slots: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        assert_eq!(
            led.synthesize(&slots, 8e-6, 4),
            led.synthesize(&slots, 8e-6, 4)
        );
    }
}
