//! Analog front end: transimpedance amplifier + ADC.
//!
//! The paper's receive chain is a TLC237 op-amp as TIA feeding a TI
//! ADS7883 (12-bit, up to 3 MS/s, sampled at 500 kHz = 4× the slot rate).
//! The model converts photocurrent to voltage, adds input-referred
//! thermal noise, AC-couples away the ambient DC, and quantizes:
//!
//! ```text
//! v = clamp(i_ac · G + n_thermal, 0, Vref) → code ∈ [0, 2^bits)
//! ```
//!
//! Quantization matters: once the received swing falls below a couple of
//! LSBs, decisions collapse — this is what produces the sharp throughput
//! cliff past 3.6 m in Fig. 16 rather than a gentle roll-off.

use desim::DetRng;
use serde::{Deserialize, Serialize};

/// TIA + ADC parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AnalogFrontend {
    /// Transimpedance gain, V/A.
    pub tia_gain_v_per_a: f64,
    /// Input-referred thermal noise current, A RMS over the sampling
    /// bandwidth (op-amp + feedback resistor Johnson noise).
    pub thermal_noise_a_rms: f64,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// ADC full-scale reference, volts.
    pub adc_vref_v: f64,
    /// Mid-scale bias applied after AC coupling, volts (keeps the signal
    /// inside the unipolar ADC range).
    pub bias_v: f64,
}

impl AnalogFrontend {
    /// The paper's TLC237 + ADS7883 chain. The gain puts the 3 m signal
    /// well inside the ADC range; the input-referred noise is the
    /// breadboard-level floor (op-amp + EMI + supply ripple) calibrated so
    /// that, together with ambient-light noise, the link reproduces the
    /// paper's measured P1 = 9e-5 / P2 = 8e-5 at 3.6 m under bright
    /// ambient (Sec. 6.1).
    pub fn paper_receiver() -> AnalogFrontend {
        AnalogFrontend {
            tia_gain_v_per_a: 2.2e5,
            thermal_noise_a_rms: 1.3e-7,
            adc_bits: 12,
            adc_vref_v: 3.3,
            bias_v: 0.5,
        }
    }

    /// Volts per ADC code.
    pub fn lsb_v(&self) -> f64 {
        self.adc_vref_v / (1u64 << self.adc_bits) as f64
    }

    /// Convert one AC-coupled photocurrent sample to an ADC code.
    ///
    /// `i_ac_a` is the photocurrent with the ambient/dark DC already
    /// removed (the receiver AC-couples); `rng` supplies thermal noise.
    pub fn sample(&self, i_ac_a: f64, rng: &mut DetRng) -> u16 {
        let noisy = i_ac_a + rng.next_normal(0.0, self.thermal_noise_a_rms);
        let v = (noisy * self.tia_gain_v_per_a + self.bias_v).clamp(0.0, self.adc_vref_v);
        let code = (v / self.lsb_v()).floor();
        let max = ((1u64 << self.adc_bits) - 1) as f64;
        code.min(max) as u16
    }

    /// Convert an ADC code back to the equivalent input current (for
    /// threshold arithmetic in the detector).
    pub fn code_to_current(&self, code: u16) -> f64 {
        (code as f64 * self.lsb_v() - self.bias_v) / self.tia_gain_v_per_a
    }

    /// The input-referred current equivalent of one LSB — the quantization
    /// floor that sets the Fig. 16 distance cliff.
    pub fn lsb_current_a(&self) -> f64 {
        self.lsb_v() / self.tia_gain_v_per_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(1234)
    }

    #[test]
    fn lsb_math() {
        let fe = AnalogFrontend::paper_receiver();
        assert!((fe.lsb_v() - 3.3 / 4096.0).abs() < 1e-12);
        assert!((fe.lsb_current_a() - fe.lsb_v() / 2.2e5).abs() < 1e-20);
    }

    #[test]
    fn sample_roundtrip_within_lsb() {
        let mut fe = AnalogFrontend::paper_receiver();
        fe.thermal_noise_a_rms = 0.0; // isolate quantization
        let mut r = rng();
        for i_in in [0.0, 1e-6, 3e-6, -5e-7] {
            let code = fe.sample(i_in, &mut r);
            let i_out = fe.code_to_current(code);
            assert!(
                (i_out - i_in).abs() <= fe.lsb_current_a(),
                "i_in={i_in} i_out={i_out}"
            );
        }
    }

    #[test]
    fn saturation_clamps() {
        let fe = AnalogFrontend::paper_receiver();
        let mut r = rng();
        let code = fe.sample(1.0, &mut r); // absurdly large current
        assert_eq!(code, 4095);
        let code = fe.sample(-1.0, &mut r);
        assert_eq!(code, 0);
    }

    #[test]
    fn noise_spreads_codes() {
        let fe = AnalogFrontend::paper_receiver();
        let mut r = rng();
        let codes: Vec<u16> = (0..1000).map(|_| fe.sample(2e-6, &mut r)).collect();
        let min = *codes.iter().min().unwrap();
        let max = *codes.iter().max().unwrap();
        assert!(max > min, "noise should dither codes");
        // 130 nA rms * 220 kV/A = ~28.6 mV = ~35 LSBs sigma.
        let spread = max - min;
        assert!((100..400).contains(&spread), "spread: {min}..{max}");
    }

    #[test]
    fn deterministic_given_seed() {
        let fe = AnalogFrontend::paper_receiver();
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(fe.sample(1e-6, &mut a), fe.sample(1e-6, &mut b));
        }
    }

    #[test]
    fn three_metre_signal_is_well_inside_range() {
        // Sanity-tie between optics and frontend calibration: the 3 m
        // boresight swing should span many LSBs (healthy link) but not
        // saturate.
        use crate::optics::LambertianLink;
        use crate::photodiode::Photodiode;
        let fe = AnalogFrontend::paper_receiver();
        let p_rx = LambertianLink::paper_bench(3.0).received_power_w(1.4);
        let swing = Photodiode::sfh206k().responsivity_a_per_w * p_rx;
        let lsbs = swing / fe.lsb_current_a();
        assert!(lsbs > 20.0 && lsbs < 2000.0, "swing = {lsbs} LSBs");
    }
}
