//! Free-space optical geometry: the generalized Lambertian LOS link.
//!
//! The standard model for LED line-of-sight channels (Kahn & Barry; used
//! by essentially every VLC paper including this one's references): an
//! emitter with Lambertian mode number `m` (set by its half-power
//! semi-angle), inverse-square spreading, a `cos ψ` projection onto the
//! receiver's active area, and a hard field-of-view cutoff:
//!
//! ```text
//! H(0) = (m+1)·A / (2π·d²) · cosᵐ(φ) · cos(ψ),   ψ ≤ FoV
//! m    = −ln 2 / ln(cos(Φ½))
//! ```
//!
//! Fig. 16 (throughput vs distance) is driven by the `1/d²` term; Fig. 17
//! (throughput vs incidence angle) by the `cosᵐ(φ)cos(ψ)` terms: the
//! paper's arc geometry moves the receiver off the beam axis, so the
//! off-axis angle applies as both emission angle `φ` and incidence
//! angle `ψ`.

use serde::{Deserialize, Serialize};

/// First-reflection diffuse (non-line-of-sight) contribution, in the
/// integrating-sphere approximation of Kahn & Barry:
///
/// ```text
/// H_diff = A_rx · ρ / (A_room · (1 − ρ))
/// ```
///
/// Distance- and orientation-independent: the room's walls glow a little
/// for everyone. Small next to the LOS term on-axis, but it is what the
/// receiver still sees when the direct path is lost.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct DiffuseReflection {
    /// Mean wall/ceiling reflectivity ρ (office: ~0.7 painted walls).
    pub reflectivity: f64,
    /// Total reflecting surface area of the room, m².
    pub room_area_m2: f64,
}

impl DiffuseReflection {
    /// A typical 5 × 4 × 3 m office (walls + ceiling + floor ≈ 94 m²).
    pub fn office() -> DiffuseReflection {
        DiffuseReflection {
            reflectivity: 0.7,
            room_area_m2: 94.0,
        }
    }

    /// The diffuse channel gain for a receiver of the given area.
    pub fn gain(&self, rx_area_m2: f64) -> f64 {
        assert!((0.0..1.0).contains(&self.reflectivity), "rho in [0,1)");
        assert!(self.room_area_m2 > 0.0, "room area must be positive");
        rx_area_m2 * self.reflectivity / (self.room_area_m2 * (1.0 - self.reflectivity))
    }
}

/// Geometry and optics of one transmitter→receiver path.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LambertianLink {
    /// Emitter half-power semi-angle, degrees.
    pub semi_angle_deg: f64,
    /// Receiver active area, m² (photodiode chip, no concentrator).
    pub rx_area_m2: f64,
    /// Receiver field of view (half-angle), degrees.
    pub rx_fov_deg: f64,
    /// Line-of-sight distance, metres.
    pub distance_m: f64,
    /// Off-axis angle of the receiver relative to the beam axis, degrees
    /// (applied as both emission and incidence angle — the paper's arc
    /// geometry).
    pub off_axis_deg: f64,
    /// Optional first-reflection diffuse component; `None` is the pure
    /// LOS model the paper's aligned bench corresponds to.
    pub diffuse: Option<DiffuseReflection>,
}

impl LambertianLink {
    /// The paper's bench: a narrow-beam retail spot luminaire aimed at the
    /// SFH206K photodiode (7.5 mm² active area), boresight, at `distance_m`.
    ///
    /// The 15° semi-angle gives `m ≈ 20`, consistent with the sharp
    /// incidence-angle cutoffs of Fig. 17.
    pub fn paper_bench(distance_m: f64) -> LambertianLink {
        LambertianLink {
            semi_angle_deg: 15.0,
            rx_area_m2: 7.5e-6,
            rx_fov_deg: 60.0, // SFH206K acceptance half-angle
            distance_m,
            off_axis_deg: 0.0,
            diffuse: None,
        }
    }

    /// Lambertian mode number `m = −ln2 / ln cos Φ½`.
    pub fn mode_number(&self) -> f64 {
        let c = self.semi_angle_deg.to_radians().cos();
        assert!(c > 0.0 && c < 1.0, "semi-angle must be in (0°, 90°)");
        -core::f64::consts::LN_2 / c.ln()
    }

    /// The DC channel gain `H(0)` (dimensionless: received W per emitted W):
    /// the LOS Lambertian term (zero outside the FoV) plus the optional
    /// diffuse floor.
    pub fn path_gain(&self) -> f64 {
        assert!(self.distance_m > 0.0, "distance must be positive");
        let diffuse = self.diffuse.map(|d| d.gain(self.rx_area_m2)).unwrap_or(0.0);
        let theta = self.off_axis_deg.to_radians();
        if self.off_axis_deg.abs() > self.rx_fov_deg || theta.cos() <= 0.0 {
            return diffuse;
        }
        let m = self.mode_number();
        let radial = (m + 1.0) / (2.0 * core::f64::consts::PI * self.distance_m.powi(2));
        radial * theta.cos().powf(m) * theta.cos() * self.rx_area_m2 + diffuse
    }

    /// Received optical power for `tx_power_w` emitted.
    pub fn received_power_w(&self, tx_power_w: f64) -> f64 {
        tx_power_w * self.path_gain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_number_examples() {
        // 60° semi-angle => the classic m = 1 Lambertian source.
        let mut l = LambertianLink::paper_bench(1.0);
        l.semi_angle_deg = 60.0;
        assert!((l.mode_number() - 1.0).abs() < 1e-12);
        // Narrower beams concentrate: m grows.
        l.semi_angle_deg = 15.0;
        assert!(
            (l.mode_number() - 20.0).abs() < 1.0,
            "m={}",
            l.mode_number()
        );
    }

    #[test]
    fn inverse_square_law() {
        let g1 = LambertianLink::paper_bench(1.0).path_gain();
        let g2 = LambertianLink::paper_bench(2.0).path_gain();
        let g4 = LambertianLink::paper_bench(4.0).path_gain();
        assert!((g1 / g2 - 4.0).abs() < 1e-9);
        assert!((g1 / g4 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn gain_decreases_off_axis() {
        let mut prev = f64::INFINITY;
        for deg in [0.0, 4.0, 8.0, 12.0, 16.0] {
            let mut l = LambertianLink::paper_bench(2.0);
            l.off_axis_deg = deg;
            let g = l.path_gain();
            assert!(g < prev, "deg={deg}");
            assert!(g > 0.0, "deg={deg}");
            prev = g;
        }
    }

    #[test]
    fn beam_halves_at_semi_angle() {
        // By definition of the half-power semi-angle, the cos^m emission
        // term is 1/2 at phi = semi-angle (the extra cos(psi) projection
        // makes the full gain slightly less than half).
        let mut l = LambertianLink::paper_bench(2.0);
        l.off_axis_deg = l.semi_angle_deg;
        let g_axis = LambertianLink::paper_bench(2.0).path_gain();
        let ratio = l.path_gain() / g_axis;
        let cos_proj = l.semi_angle_deg.to_radians().cos();
        assert!((ratio - 0.5 * cos_proj).abs() < 1e-6, "ratio={ratio}");
    }

    #[test]
    fn fov_cutoff_is_hard() {
        let mut l = LambertianLink::paper_bench(2.0);
        l.off_axis_deg = l.rx_fov_deg + 0.1;
        assert_eq!(l.path_gain(), 0.0);
        l.off_axis_deg = -(l.rx_fov_deg + 5.0);
        assert_eq!(l.path_gain(), 0.0);
    }

    #[test]
    fn diffuse_floor_survives_fov_cutoff() {
        let mut l = LambertianLink::paper_bench(2.0);
        l.diffuse = Some(DiffuseReflection::office());
        let boresight = l.path_gain();
        l.off_axis_deg = l.rx_fov_deg + 10.0; // LOS gone
        let floor = l.path_gain();
        assert!(floor > 0.0, "diffuse floor missing");
        assert_eq!(floor, DiffuseReflection::office().gain(l.rx_area_m2));
        // The floor is small next to the on-axis LOS term at bench range.
        assert!(floor < boresight * 0.05, "floor={floor} los={boresight}");
    }

    #[test]
    fn diffuse_gain_magnitude_is_sane() {
        // 7.5 mm2 diode in a 94 m2 office at rho = 0.7:
        // H_diff = 7.5e-6 * 0.7 / (94 * 0.3) ~ 1.9e-7.
        let g = DiffuseReflection::office().gain(7.5e-6);
        assert!((g - 1.86e-7).abs() < 2e-9, "g={g}");
    }

    #[test]
    fn diffuse_is_distance_independent() {
        let mut near = LambertianLink::paper_bench(1.0);
        let mut far = LambertianLink::paper_bench(4.0);
        near.diffuse = Some(DiffuseReflection::office());
        far.diffuse = Some(DiffuseReflection::office());
        near.off_axis_deg = 70.0; // both outside FoV: diffuse only
        far.off_axis_deg = 70.0;
        assert_eq!(near.path_gain(), far.path_gain());
    }

    #[test]
    fn received_power_is_plausible_at_paper_distances() {
        // At 3 m, a 1.4 W optical source into 7.5 mm² should land in the
        // microwatt regime — the operating point real VLC receivers see.
        let p = LambertianLink::paper_bench(3.0).received_power_w(1.4);
        assert!(p > 1e-7 && p < 1e-4, "p={p}");
    }

    #[test]
    fn negative_off_axis_is_symmetric() {
        let mut a = LambertianLink::paper_bench(2.0);
        let mut b = LambertianLink::paper_bench(2.0);
        a.off_axis_deg = 9.0;
        b.off_axis_deg = -9.0;
        assert_eq!(a.path_gain(), b.path_gain());
    }
}
