//! # vlc-channel — the simulated optical channel for SmartVLC
//!
//! The paper's evaluation runs over real hardware: a Philips 4.7 W LED
//! driven by a MOSFET, free space across an office, and an OSRAM SFH206K
//! photodiode behind a TLC237 amplifier and an ADS7883 ADC. None of that
//! hardware is available here, so this crate implements the standard
//! published models for each element, parameterized to reproduce the
//! paper's operating points:
//!
//! * [`led`] — first-order LED switching dynamics. The rise/fall time of
//!   the disassembled Philips LED is what limits the paper's slot clock to
//!   `tslot = 8 µs`; the model exhibits the same bandwidth bottleneck.
//! * [`optics`] — generalized Lambertian line-of-sight link (the standard
//!   Kahn/Barry model used throughout the VLC literature): inverse-square
//!   path loss, `cosᵐ` emitter beam shape, `cos` receiver projection, and
//!   a receiver field-of-view cutoff.
//! * [`photodiode`] — responsivity, photocurrent, shot noise; presets for
//!   the SFH206K (receiver) and OPT101 (ambient sensing).
//! * [`frontend`] — transimpedance amplifier and quantizing ADC with
//!   input-referred thermal noise.
//! * [`detector`] — slot decisions with a preamble-trained threshold, plus
//!   the analytic Gaussian-tail slot error probabilities that feed Eq. 3.
//! * [`ambient`] — time-varying ambient illuminance: the motorized window
//!   blind of Fig. 13, ceiling lights, and a cloudy-sky stochastic model.
//! * [`link`] — the composed end-to-end channel: slot waveform in,
//!   decided slots (or soft levels) out.
//!
//! Everything is deterministic given a seed ([`desim::DetRng`]), and all
//! physical constants carry their units in the field names.
//!
//! # Example
//!
//! The channel's operating point is a pure function of its configuration:
//! the analytic slot error probabilities (the paper's `P1`/`P2`) fall out
//! of the composed geometry + ambient + receiver chain without flying a
//! single slot:
//!
//! ```
//! use vlc_channel::link::ChannelConfig;
//!
//! // §6.1's measurement point: 3.6 m under bright ambient …
//! let probs = ChannelConfig::paper_bench(3.6).analytic_error_probs();
//! // … lands in the measured P1 ≈ 9e-5 decade.
//! assert!(probs.p_off_error > 1e-5 && probs.p_off_error < 1e-3);
//!
//! // Closer in, the same chain is essentially error-free.
//! let near = ChannelConfig::paper_bench(2.0).analytic_error_probs();
//! assert!(near.p_off_error < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
pub mod detector;
pub mod faults;
pub mod frontend;
pub mod led;
pub mod link;
pub mod opcache;
pub mod optics;
pub mod photodiode;
pub mod shadowing;

pub use ambient::AmbientProfile;
pub use detector::{ChannelErrorProbs, SlotDetector};
pub use faults::{ChannelFaultState, FaultEvent, FaultKind, FaultPlan, UplinkFaultState};
pub use link::{ChannelConfig, OpticalChannel, RxScratch};
pub use opcache::{CachedOp, OperatingPointCache};
pub use optics::LambertianLink;
pub use shadowing::{ShadowingModel, ShadowingProcess};
