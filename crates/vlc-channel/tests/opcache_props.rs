//! Property tests for the operating-point cache: the interned values must
//! be bit-identical to the direct computation for every reachable
//! configuration, and a force-disabled cache must keep bookkeeping
//! identical while returning fresh math.

use proptest::prelude::*;
use vlc_channel::link::ChannelConfig;
use vlc_channel::opcache::OperatingPointCache;
use vlc_channel::optics::DiffuseReflection;

fn detector_bits(d: &vlc_channel::SlotDetector) -> (u64, u64, u64) {
    (
        d.mu_on_a.to_bits(),
        d.mu_off_a.to_bits(),
        d.sigma_a.to_bits(),
    )
}

proptest! {
    #[test]
    fn cached_detector_is_bit_identical(
        distance in 0.3f64..6.0,
        off_axis in -80.0f64..80.0,
        ambient in 0.0f64..25_000.0,
        ambient_rin in 1e-4f64..1e-2,
        spp in 2usize..9,
        extra_gain in 0.0f64..1.0,
        saturated in any::<bool>(),
        diffuse in any::<bool>(),
    ) {
        let mut cfg = ChannelConfig::paper_bench(distance);
        cfg.geometry.off_axis_deg = off_axis;
        cfg.ambient_lux = ambient;
        cfg.ambient_rin = ambient_rin;
        cfg.samples_per_slot = spp;
        if diffuse {
            cfg.geometry.diffuse = Some(DiffuseReflection::office());
        }

        let direct = cfg.detector_with(extra_gain, saturated);
        let direct_probs = direct.error_probs();

        let cache = OperatingPointCache::with_enabled(true);
        // First query computes and interns; repeats are served from the
        // map. Every answer must carry the exact bits of the direct form.
        for _ in 0..3 {
            let op = cache.query(&cfg, extra_gain, saturated);
            prop_assert_eq!(detector_bits(&op.detector), detector_bits(&direct));
            prop_assert_eq!(op.probs.p_off_error.to_bits(), direct_probs.p_off_error.to_bits());
            prop_assert_eq!(op.probs.p_on_error.to_bits(), direct_probs.p_on_error.to_bits());
        }
        prop_assert_eq!((cache.hits(), cache.misses()), (2, 1));

        // A force-disabled cache returns the same bits with the same
        // bookkeeping (the on-vs-off byte-identity contract).
        let disabled = OperatingPointCache::with_enabled(false);
        for _ in 0..3 {
            let op = disabled.query(&cfg, extra_gain, saturated);
            prop_assert_eq!(detector_bits(&op.detector), detector_bits(&direct));
            prop_assert_eq!(op.probs.p_off_error.to_bits(), direct_probs.p_off_error.to_bits());
        }
        prop_assert_eq!((disabled.hits(), disabled.misses()), (cache.hits(), cache.misses()));
    }

    #[test]
    fn perturbed_inputs_never_share_an_entry(
        distance in 0.5f64..5.0,
        nudge_ulps in 1u64..1000,
    ) {
        // Exact-bit keying: even a few-ULP perturbation of one input is a
        // distinct operating point, never a stale shared entry.
        let cfg = ChannelConfig::paper_bench(distance);
        let mut nudged = cfg;
        nudged.ambient_lux = f64::from_bits(cfg.ambient_lux.to_bits() + nudge_ulps);
        let cache = OperatingPointCache::with_enabled(true);
        let a = cache.query(&cfg, 1.0, false);
        let b = cache.query(&nudged, 1.0, false);
        prop_assert_eq!(cache.misses(), 2);
        prop_assert_eq!(
            detector_bits(&a.detector),
            detector_bits(&cfg.detector_with(1.0, false))
        );
        prop_assert_eq!(
            detector_bits(&b.detector),
            detector_bits(&nudged.detector_with(1.0, false))
        );
    }
}
