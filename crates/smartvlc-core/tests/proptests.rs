//! Property-based tests for the modulation core.

use combinat::{BinomialTable, BitReader, BitWriter};
use proptest::prelude::*;
use smartvlc_core::adaptation::{measured, perceived};
use smartvlc_core::amppm::SuperSymbol;
use smartvlc_core::frame::format::{FecMode, FrameHeader, PatternDescriptor, MAX_PAYLOAD};
use smartvlc_core::{DimmingLevel, SlotErrorProbs, SymbolPattern, SystemConfig};

proptest! {
    /// Every valid pattern descriptor survives the 4-byte wire format.
    #[test]
    fn descriptor_wire_roundtrip(tag in 0u8..6, a in any::<u16>(), b in any::<u8>()) {
        let d = match tag {
            0 => {
                let n = (a % 4095) + 1;
                PatternDescriptor::Mppm { n, k: b as u16 % (n + 1) }
            }
            1 => PatternDescriptor::OokCt { dimming_q: a },
            2 => PatternDescriptor::Amppm { dimming_q: a, tier: b },
            3 => {
                let n = (b % 250).max(2);
                PatternDescriptor::Vppm { n, width: 1 + (a as u8 % (n - 1)) }
            }
            4 => {
                let n = (b % 250).max(3);
                PatternDescriptor::Oppm { n, width: 1 + (a as u8 % (n - 1)) }
            }
            _ => PatternDescriptor::Darklight {
                positions: (a % 60_000).max(2),
                pulse_w: b.max(1),
            },
        };
        prop_assert_eq!(PatternDescriptor::from_bytes(d.to_bytes()), Ok(d));
        // And through the full header, under every FEC mode.
        for fec in [FecMode::Off, FecMode::Light, FecMode::Medium, FecMode::Heavy] {
            let h = FrameHeader {
                payload_len: a % (MAX_PAYLOAD as u16 + 1),
                fec,
                pattern: d,
            };
            prop_assert_eq!(FrameHeader::from_bytes(&h.to_bytes()), Ok(h));
        }
    }

    /// Arbitrary 6-byte strings never panic the header parser; anything
    /// it accepts declares an in-bounds payload length and survives a
    /// re-serialization round trip.
    #[test]
    fn header_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 6..=6)) {
        if let Ok(h) = FrameHeader::from_bytes(&bytes) {
            prop_assert!(h.payload_len as usize <= MAX_PAYLOAD);
            prop_assert_eq!(FrameHeader::from_bytes(&h.to_bytes()), Ok(h));
        }
    }

    /// Arbitrary 4-byte strings never panic the descriptor parser, and
    /// anything it accepts re-serializes to an equivalent descriptor.
    #[test]
    fn descriptor_parser_is_total(bytes in any::<[u8; 4]>()) {
        if let Ok(d) = PatternDescriptor::from_bytes(bytes) {
            let round = PatternDescriptor::from_bytes(d.to_bytes());
            prop_assert_eq!(round, Ok(d));
        }
    }

    /// Super-symbol encode/decode round-trips arbitrary data for
    /// arbitrary shapes within the flicker budget.
    #[test]
    fn super_symbol_roundtrip(
        n1 in 5u16..30, k1s in any::<u16>(),
        n2 in 5u16..30, k2s in any::<u16>(),
        m1 in 0u16..8, m2 in 0u16..8,
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(m1 + m2 >= 1);
        let k1 = 1 + k1s % (n1 - 1);
        let k2 = 1 + k2s % (n2 - 1);
        let s1 = SymbolPattern::new(n1, k1).unwrap();
        let s2 = SymbolPattern::new(n2, k2).unwrap();
        let ss = SuperSymbol::new(s1, m1, s2, m2).unwrap();
        let table = BinomialTable::new(64);
        let mut reader = BitReader::new(&data);
        let slots = ss.encode(&table, &mut reader);
        prop_assert_eq!(slots.len() as u32, ss.n_super());
        prop_assert_eq!(slots.iter().filter(|&&b| b).count() as u32, ss.ones());
        let mut writer = BitWriter::new();
        let failures = ss.decode(&table, &slots, &mut writer).unwrap();
        prop_assert_eq!(failures, 0);
        let consumed = (ss.bits(&table) as usize).min(data.len() * 8);
        let (bytes, _) = writer.finish();
        let mut orig = BitReader::new(&data);
        let mut got = BitReader::new(&bytes);
        for i in 0..consumed {
            prop_assert_eq!(orig.read_bit(), got.read_bit(), "bit {}", i);
        }
    }

    /// Eq. 3 is monotone: more slots of either kind can only raise SER.
    #[test]
    fn ser_is_monotone(n in 2u16..200, k_seed in any::<u16>()) {
        let probs = SlotErrorProbs::paper_measured();
        let k = k_seed % n;
        let base = probs.symbol_error_rate(SymbolPattern::new(n, k).unwrap());
        let more_off = probs.symbol_error_rate(SymbolPattern::new(n + 1, k).unwrap());
        let more_on = probs.symbol_error_rate(SymbolPattern::new(n + 1, k + 1).unwrap());
        prop_assert!(more_off >= base);
        prop_assert!(more_on >= base);
    }

    /// The perception transform is a monotone bijection on [0, 1].
    #[test]
    fn perception_bijection(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        prop_assert!((measured(perceived(a)) - a).abs() < 1e-12);
        if a < b {
            prop_assert!(perceived(a) < perceived(b));
        }
    }

    /// Dimming quantization error is bounded by half a quantum for every
    /// level, under any (sane) quantum setting.
    #[test]
    fn quantization_error_bound(l in 0.0f64..=1.0, denom in 64u32..4096) {
        let cfg = SystemConfig {
            dimming_quantum: 1.0 / denom as f64,
            ..SystemConfig::default()
        };
        let back = cfg.dequantize_dimming(cfg.quantize_dimming(l));
        prop_assert!((back - l).abs() <= cfg.dimming_quantum / 2.0 + 1e-9,
            "l={} back={} q={}", l, back, cfg.dimming_quantum);
    }

    /// DimmingLevel construction never accepts out-of-range values.
    #[test]
    fn dimming_level_validation(x in any::<f64>()) {
        match DimmingLevel::new(x) {
            Some(l) => {
                prop_assert!(x.is_finite() && (0.0..=1.0).contains(&x));
                prop_assert_eq!(l.value(), x);
            }
            None => prop_assert!(!x.is_finite() || !(0.0..=1.0).contains(&x)),
        }
    }
}
