//! System-wide configuration — the paper's §6.1 parameter set.
//!
//! Every figure/table generator and the end-to-end link share one
//! [`SystemConfig`]. The default value is the **paper calibration**: the
//! parameters §6.1 reports for the BeagleBone prototype, with one
//! documented adjustment (see [`SystemConfig::ser_upper_bound`]).

use crate::ser::SlotErrorProbs;
use serde::{Deserialize, Serialize};

/// Global SmartVLC parameters (paper §6.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Slot clock: the maximum LED toggle rate, `ftx = 1/tslot`.
    ///
    /// Paper: 125 kHz (`tslot = 8 µs`), limited by the Philips LED's
    /// rise/fall time rather than by the PRU.
    pub ftx_hz: u64,

    /// Type-I flicker threshold: the minimum super-symbol repetition
    /// frequency below which humans perceive flicker.
    ///
    /// Paper: 250 Hz, chosen with a 20-subject study as a safe margin over
    /// the 200 Hz IEEE 802.15.7 figure.
    pub fth_hz: u64,

    /// Measured slot-error probabilities (P1 = OFF decoded wrong,
    /// P2 = ON decoded wrong). Paper: 9e-5 / 8e-5, measured at 3.6 m with
    /// high ambient noise.
    pub slot_errors: SlotErrorProbs,

    /// Upper bound on the symbol error rate; patterns whose Eq. 3 SER
    /// exceeds it are abandoned (AMPPM Step 2, Fig. 8).
    ///
    /// The paper's text says `0.001`, but its own chosen pattern
    /// `S(21, 0.524)` has SER 1.78e-3 under the stated P1/P2, and its MPPM
    /// baseline `N = 20` has 1.7e-3. We default to `2.5e-3`, the smallest
    /// round bound consistent with the paper's own pattern choices; the
    /// knob is here so either reading can be reproduced.
    pub ser_upper_bound: f64,

    /// Smallest symbol length the planner considers. The paper's candidate
    /// plots (Figs. 4, 8, 9) start at N = 10.
    pub n_min: u16,

    /// Resolution at which dimming levels are quantized when they are
    /// carried in the frame header and used as planner cache keys.
    ///
    /// τp = 0.003 (Table 2: the largest step no subject could perceive),
    /// so 1/1024 ≈ 0.00098 quantization is comfortably below it.
    pub dimming_quantum: f64,

    /// MAC payload length in bytes. Paper: fixed 128 B in all experiments.
    pub payload_len: usize,

    /// Perceptual adaptation step τp (fraction of full scale, Table 2(b)).
    pub tau_p: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            ftx_hz: 125_000,
            fth_hz: 250,
            slot_errors: SlotErrorProbs {
                p_off_error: 9e-5,
                p_on_error: 8e-5,
            },
            ser_upper_bound: 2.5e-3,
            n_min: 10,
            dimming_quantum: 1.0 / 1024.0,
            payload_len: 128,
            tau_p: 0.003,
        }
    }
}

impl SystemConfig {
    /// The alternative "optimistic" calibration (see DESIGN.md): the
    /// paper's *stated* SER bound of 1e-3 combined with slot error
    /// probabilities one decade below its measured worst-case values
    /// (i.e. the mid-range operating point rather than the 3.6 m extreme).
    ///
    /// This admits symbol lengths up to N ≈ 112 and reproduces the
    /// paper's AMPPM throughput at extreme dimming levels (≈55 Kbps at
    /// l = 0.1, vs ≈48 Kbps under the default calibration), at the cost
    /// of overshooting its mid-range numbers. The paper's own figures are
    /// not consistent with a single (P1, P2, bound) triple; we default to
    /// the measured triple and expose this one for comparison.
    pub fn paper_optimistic() -> SystemConfig {
        SystemConfig {
            slot_errors: SlotErrorProbs {
                p_off_error: 9e-6,
                p_on_error: 8e-6,
            },
            ser_upper_bound: 1e-3,
            ..SystemConfig::default()
        }
    }

    /// Slot duration in seconds (`tslot = 1/ftx`).
    pub fn tslot_secs(&self) -> f64 {
        1.0 / self.ftx_hz as f64
    }

    /// Slot duration in whole nanoseconds. Exact for the paper's 125 kHz.
    pub fn tslot_nanos(&self) -> u64 {
        1_000_000_000 / self.ftx_hz
    }

    /// Eq. 4: the maximum number of slots in one super-symbol such that
    /// super-symbols repeat at ≥ `fth` and cause no Type-I flicker.
    ///
    /// Paper: `Nmax = ftx/fth = 125000/250 = 500`.
    pub fn n_max_super(&self) -> u64 {
        assert!(self.fth_hz > 0, "fth must be positive");
        self.ftx_hz / self.fth_hz
    }

    /// Quantize a dimming level to the header/cache grid, clamped to
    /// `[0, 1]`. Returns the grid index; `dequantize_dimming` inverts it.
    pub fn quantize_dimming(&self, l: f64) -> u16 {
        let steps = (1.0 / self.dimming_quantum).round();
        let q = (l.clamp(0.0, 1.0) * steps).round();
        q as u16
    }

    /// Map a grid index back to a dimming level in `[0, 1]`.
    pub fn dequantize_dimming(&self, q: u16) -> f64 {
        let steps = (1.0 / self.dimming_quantum).round();
        (q as f64 / steps).clamp(0.0, 1.0)
    }

    /// Validate internal consistency; call after hand-building a config.
    pub fn validate(&self) -> Result<(), String> {
        if self.ftx_hz == 0 {
            return Err("ftx must be positive".into());
        }
        if self.fth_hz == 0 {
            return Err("fth must be positive".into());
        }
        if self.n_max_super() < self.n_min as u64 {
            return Err(format!(
                "Nmax = ftx/fth = {} is below n_min = {}; no symbol fits in a super-symbol",
                self.n_max_super(),
                self.n_min
            ));
        }
        if !(0.0..=1.0).contains(&self.slot_errors.p_off_error)
            || !(0.0..=1.0).contains(&self.slot_errors.p_on_error)
        {
            return Err("slot error probabilities must be in [0,1]".into());
        }
        if !(self.ser_upper_bound > 0.0 && self.ser_upper_bound < 1.0) {
            return Err("SER bound must be in (0,1)".into());
        }
        if self.n_min < 2 {
            return Err("n_min must be at least 2".into());
        }
        if !(self.dimming_quantum > 0.0 && self.dimming_quantum <= 0.25) {
            return Err("dimming_quantum must be in (0, 0.25]".into());
        }
        if !(self.tau_p > 0.0 && self.tau_p < 1.0) {
            return Err("tau_p must be in (0,1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_matches_section_6_1() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.ftx_hz, 125_000);
        assert_eq!(cfg.tslot_nanos(), 8_000); // tslot = 8 us
        assert_eq!(cfg.fth_hz, 250);
        assert_eq!(cfg.n_max_super(), 500); // Eq. 4
        assert_eq!(cfg.payload_len, 128);
        assert_eq!(cfg.slot_errors.p_off_error, 9e-5);
        assert_eq!(cfg.slot_errors.p_on_error, 8e-5);
        assert_eq!(cfg.tau_p, 0.003);
        cfg.validate().unwrap();
    }

    #[test]
    fn tslot_secs_is_8us() {
        let cfg = SystemConfig::default();
        assert!((cfg.tslot_secs() - 8e-6).abs() < 1e-15);
    }

    #[test]
    fn quantization_roundtrip_is_within_half_quantum() {
        let cfg = SystemConfig::default();
        for i in 0..=1000 {
            let l = i as f64 / 1000.0;
            let q = cfg.quantize_dimming(l);
            let back = cfg.dequantize_dimming(q);
            assert!(
                (back - l).abs() <= cfg.dimming_quantum / 2.0 + 1e-12,
                "l={l} back={back}"
            );
        }
    }

    #[test]
    fn quantization_clamps() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.quantize_dimming(-0.5), 0);
        assert_eq!(cfg.dequantize_dimming(cfg.quantize_dimming(1.5)), 1.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cfg = SystemConfig {
            fth_hz: 200_000, // Nmax = 0 < n_min
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = SystemConfig {
            ser_upper_bound: 0.0,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::default();
        cfg.slot_errors.p_on_error = 1.5;
        assert!(cfg.validate().is_err());

        let cfg = SystemConfig {
            n_min: 1,
            ..SystemConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}

#[cfg(test)]
mod optimistic_tests {
    use super::*;

    #[test]
    fn optimistic_calibration_is_valid_and_admits_large_n() {
        let cfg = SystemConfig::paper_optimistic();
        cfg.validate().unwrap();
        // N = 110 at l = 0.1 passes the 1e-3 bound under the optimistic
        // error probabilities (99*9e-6 + 11*8e-6 ~ 9.8e-4)...
        let s = crate::symbol::SymbolPattern::new(110, 11).unwrap();
        assert!(cfg.slot_errors.symbol_error_rate(s) < cfg.ser_upper_bound);
        // ...but fails under the default (measured) calibration.
        let default = SystemConfig::default();
        assert!(default.slot_errors.symbol_error_rate(s) > default.ser_upper_bound);
    }
}
