//! Flicker rules and the waveform auditor (§2.2 of the paper).
//!
//! Two mechanisms make an LED's modulation visible:
//!
//! * **Type-I** — the ON/OFF structure itself repeats too slowly. The
//!   paper's operational rule (Eq. 4) bounds the super-symbol length so
//!   the waveform's brightness pattern repeats at ≥ `fth` (250 Hz from
//!   the user study).
//! * **Type-II** — the *average* brightness takes a step larger than the
//!   perceptual threshold (`τp = 0.003` from Table 2(b)).
//!
//! [`FlickerAuditor`] checks a slot waveform against both rules the way a
//! human-calibrated flicker meter would: it low-pass filters the waveform
//! with a sliding window of one `1/fth` period (a crude model of temporal
//! integration in the eye), converts to the perception domain, and flags
//! any window-to-window jump exceeding `τp`. It also flags any constant
//! run of slots longer than one period — a structure that cannot repeat
//! at `fth`.

use crate::adaptation::perceived;
use serde::{Deserialize, Serialize};

/// The flicker acceptance rules.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlickerRules {
    /// Slots per `1/fth` period (`= ftx/fth = Nmax`, Eq. 4).
    pub window_slots: usize,
    /// Maximum perceptual brightness step between adjacent windows (τp).
    pub max_perceptual_step: f64,
}

impl FlickerRules {
    /// Rules from the paper calibration of a [`crate::config::SystemConfig`].
    ///
    /// The audit threshold is `1.5·τp`: τp = 0.003 is the *design margin*
    /// the adaptation stepper uses, deliberately below the human
    /// detection threshold (Table 2(b): the most sensitive condition
    /// detects from 0.004 measured upward, which is perceptually larger
    /// still at dark adaptation levels). Auditing at 1.5·τp keeps every
    /// legal τp-stepped waveform clean while still flagging anything
    /// from a double-step (2·τp) up — the smallest misbehaviour a
    /// subject could plausibly notice.
    pub fn from_config(cfg: &crate::config::SystemConfig) -> FlickerRules {
        FlickerRules {
            window_slots: cfg.n_max_super() as usize,
            max_perceptual_step: cfg.tau_p * 1.5,
        }
    }
}

/// One detected flicker violation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FlickerViolation {
    /// A constant ON or OFF run longer than the `fth` period starting at
    /// this slot index (Type-I).
    SlowStructure {
        /// Slot index where the run starts.
        at_slot: usize,
        /// Length of the constant run.
        run: usize,
    },
    /// A windowed-brightness jump exceeding τp between the windows ending
    /// at these slot indices (Type-II).
    BrightnessJump {
        /// Slot index of the second window's end.
        at_slot: usize,
        /// The perceptual step observed.
        perceptual_step: f64,
    },
}

/// Audit result for one waveform.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlickerReport {
    /// All violations in slot order (capped at 64 to bound report size).
    pub violations: Vec<FlickerViolation>,
    /// Mean brightness of the waveform.
    pub mean_level: f64,
    /// Number of slots audited.
    pub slots: usize,
}

impl FlickerReport {
    /// True when the waveform is flicker-free under the rules.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The waveform auditor.
#[derive(Clone, Copy, Debug)]
pub struct FlickerAuditor {
    rules: FlickerRules,
}

impl FlickerAuditor {
    /// Create an auditor with the given rules.
    pub fn new(rules: FlickerRules) -> FlickerAuditor {
        assert!(rules.window_slots >= 2, "window must cover >= 2 slots");
        assert!(
            rules.max_perceptual_step > 0.0,
            "perceptual step must be positive"
        );
        FlickerAuditor { rules }
    }

    /// Audit a slot waveform (`true` = ON).
    pub fn audit(&self, slots: &[bool]) -> FlickerReport {
        const MAX_VIOLATIONS: usize = 64;
        let mut report = FlickerReport {
            violations: Vec::new(),
            mean_level: if slots.is_empty() {
                0.0
            } else {
                slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64
            },
            slots: slots.len(),
        };
        if slots.is_empty() {
            return report;
        }

        // Type-I: constant runs longer than one fth period. A fully
        // constant waveform (all ON / all OFF) is steady light, not
        // flicker, so it is exempt.
        let w = self.rules.window_slots;
        let constant = slots.iter().all(|&b| b == slots[0]);
        if !constant {
            let mut run_start = 0usize;
            for i in 1..=slots.len() {
                if i == slots.len() || slots[i] != slots[run_start] {
                    let run = i - run_start;
                    if run > w && report.violations.len() < MAX_VIOLATIONS {
                        report.violations.push(FlickerViolation::SlowStructure {
                            at_slot: run_start,
                            run,
                        });
                    }
                    run_start = i;
                }
            }
        }

        // Type-II: *sustained* brightness shifts of more than tau_p.
        //
        // Care is needed with periodic modulation: a waveform repeating
        // every <= Nmax slots has no spectral content below fth (that is
        // Eq. 4's whole point), but naively sampling window means at a
        // fixed stride ALIASES the at-fth ripple of e.g. a 490-slot
        // super-symbol against a 500-slot window into a phantom
        // low-frequency beat. The alias-free construction: a sliding
        // (stride-1) window mean via prefix sums, then *continuous*
        // averages of that sequence over consecutive 2-window segments —
        // a triangular-kernel double integration that crushes everything
        // at or above fth while passing genuine level shifts through.
        // Segments integrate 4 fth-periods (~32 ms at the paper clocks —
        // the eye's temporal integration window), which also averages out
        // the once-per-frame header/compensation blips that beat against
        // any fixed segmentation. Sensitivity: an abrupt step is flagged
        // from ~2·tau_p up; legal adaptation (tau_p steps held for a few
        // fth periods) passes.
        let seg = 4 * w;
        if slots.len() >= w + 2 * seg {
            // Prefix sums of ON counts.
            let mut prefix = Vec::with_capacity(slots.len() + 1);
            prefix.push(0u64);
            let mut acc = 0u64;
            for &s in slots {
                acc += s as u64;
                prefix.push(acc);
            }
            // Sliding window mean m[i] over slots[i..i+w], i = 0..=n-w.
            let m_len = slots.len() - w + 1;
            // Continuous segment averages of m over [k*seg, (k+1)*seg).
            let segments = m_len / seg;
            let mut seg_means = Vec::with_capacity(segments);
            for k in 0..segments {
                let mut sum = 0.0;
                for i in k * seg..(k + 1) * seg {
                    sum += (prefix[i + w] - prefix[i]) as f64 / w as f64;
                }
                seg_means.push(perceived(sum / seg as f64));
            }
            // Persistence: Table 2's stimulus is a *held* level change.
            // Transient excursions (e.g. the once-per-frame header and
            // compensation structure — a few-percent pulse train at the
            // ~40-80 Hz frame rate, far below the de Lange visibility
            // threshold at those frequencies) must not trip the check,
            // and they beat against any fixed segmentation. Comparing
            // two-segment *baselines* on each side of every boundary
            // (64 ms each) averages the periodic blips into both sides
            // equally; only a level shift that holds for ~64 ms registers.
            const G: usize = 2;
            if seg_means.len() >= 2 * G {
                for k in G..=(seg_means.len() - G) {
                    let before: f64 = seg_means[k - G..k].iter().sum::<f64>() / G as f64;
                    let after: f64 = seg_means[k..k + G].iter().sum::<f64>() / G as f64;
                    let step = (after - before).abs();
                    if step > self.rules.max_perceptual_step + 1e-9
                        && report.violations.len() < MAX_VIOLATIONS
                    {
                        report.violations.push(FlickerViolation::BrightnessJump {
                            at_slot: k * seg,
                            perceptual_step: step,
                        });
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn auditor() -> FlickerAuditor {
        FlickerAuditor::new(FlickerRules::from_config(&SystemConfig::default()))
    }

    #[test]
    fn rules_from_paper_config() {
        let r = FlickerRules::from_config(&SystemConfig::default());
        assert_eq!(r.window_slots, 500);
        assert!((r.max_perceptual_step - 0.0045).abs() < 1e-12);
    }

    #[test]
    fn steady_light_is_clean() {
        let a = auditor();
        assert!(a.audit(&vec![true; 5000]).is_clean());
        assert!(a.audit(&vec![false; 5000]).is_clean());
        assert!(a.audit(&[]).is_clean());
    }

    #[test]
    fn fast_alternation_is_clean() {
        let a = auditor();
        let slots: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        let r = a.audit(&slots);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert!((r.mean_level - 0.5).abs() < 1e-3);
    }

    #[test]
    fn slow_square_wave_flickers() {
        // 1000 slots ON, 1000 OFF at 125 kHz = 62.5 Hz square wave:
        // Type-I territory (runs of 1000 > 500 slots). It is *periodic*,
        // so the sustained-shift (Type-II) detector correctly stays
        // silent — classifying it is the run check's job.
        let a = auditor();
        let slots: Vec<bool> = (0..10_000).map(|i| (i / 1000) % 2 == 0).collect();
        let r = a.audit(&slots);
        assert!(!r.is_clean());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, FlickerViolation::SlowStructure { .. })));
    }

    #[test]
    fn run_exactly_at_window_is_allowed() {
        // Eq. 4 is an inclusive bound: a 500-slot run repeats at exactly fth.
        let a = auditor();
        let mut slots = Vec::new();
        for _ in 0..10 {
            slots.extend(std::iter::repeat_n(true, 500));
            slots.extend(std::iter::repeat_n(false, 1));
        }
        let r = a.audit(&slots);
        assert!(!r
            .violations
            .iter()
            .any(|v| matches!(v, FlickerViolation::SlowStructure { .. })));
    }

    #[test]
    fn amppm_super_symbols_are_clean() {
        // The whole point of Eq. 4: any waveform built from <= Nmax-slot
        // super-symbols at a fixed dimming level passes the audit.
        use crate::amppm::planner::AmppmPlanner;
        use crate::dimming::DimmingLevel;
        use crate::modem::SlotModem;
        use crate::schemes::AmppmModem;
        let planner = AmppmPlanner::new(SystemConfig::default()).unwrap();
        let a = auditor();
        for l in [0.15, 0.3, 0.5, 0.62, 0.85] {
            let plan = planner.plan(DimmingLevel::new(l).unwrap()).unwrap();
            let m = AmppmModem::from_plan(&plan);
            let t = combinat::BinomialTable::new(512);
            let slots = m.modulate(&t, &vec![0xB7u8; 1024]);
            let r = a.audit(&slots);
            assert!(r.is_clean(), "l={l}: {:?}", r.violations.first());
        }
    }

    #[test]
    fn brightness_jump_between_blocks_detected() {
        // Two flicker-free halves at very different dimming levels glued
        // together: the seam is a Type-II violation.
        let a = auditor();
        let mut slots = Vec::new();
        for _ in 0..2000 {
            slots.extend_from_slice(&[true, false, false, false, false]); // l=0.2
        }
        for _ in 0..2000 {
            slots.extend_from_slice(&[true, true, true, true, false]); // l=0.8
        }
        let r = a.audit(&slots);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, FlickerViolation::BrightnessJump { .. })));
    }

    #[test]
    fn gradual_ramp_is_clean() {
        // A dimming ramp in tau_p perceptual steps, each held for one
        // window, must pass (this is what the adaptation module emits).
        use crate::adaptation::{AdaptationStepper, PerceptionStepper};
        let a = auditor();
        let stepper = PerceptionStepper::new(0.003);
        let mut slots = Vec::new();
        let mut level = 0.3;
        for target in stepper.steps(0.3, 0.4) {
            level = target;
            let ones = (level * 500.0).round() as usize;
            // Hold each adaptation step for ~64 ms (the real transmitter
            // adapts ~30x slower still), spreading the ones evenly
            // within each window.
            for _ in 0..8 {
                for i in 0..500 {
                    slots.push((i * ones) / 500 != ((i + 1) * ones) / 500);
                }
            }
        }
        let r = a.audit(&slots);
        assert!(r.is_clean(), "{:?}", r.violations.first());
        let _ = level;
    }

    #[test]
    fn violation_list_is_capped() {
        let a = auditor();
        // Pathological waveform with thousands of slow runs.
        let mut slots = Vec::new();
        for _ in 0..200 {
            slots.extend(std::iter::repeat_n(true, 600));
            slots.extend(std::iter::repeat_n(false, 600));
        }
        let r = a.audit(&slots);
        assert!(r.violations.len() <= 64 * 2);
    }

    #[test]
    fn report_mean_level() {
        let a = auditor();
        let r = a.audit(&[true, true, false, false]);
        assert_eq!(r.mean_level, 0.5);
        assert_eq!(r.slots, 4);
    }
}
