//! Brightness adaptation to changing ambient light — §4.3 of the paper.
//!
//! Goal 1 (constant total illumination) is [`crate::dimming::IlluminationTarget`];
//! this module is Goal 2: move the LED from its current level to the new
//! target *gradually*, so no single step is perceivable (Type-II
//! flicker), while taking as few steps as possible (each step re-plans
//! the AMPPM pattern and wears the hardware).
//!
//! The paper's insight is that human brightness perception is non-linear
//! (Stevens' law via the IESNA handbook): perceived brightness relates to
//! measured brightness as `Ip = 100·√(Im/100)`. A step that is invisible
//! in a bright room is glaring in a dark one. Stepping with a *fixed*
//! measured-domain `τ` must therefore be sized for the darkest operating
//! point — wasting steps everywhere else — while stepping with a fixed
//! *perceptual* `τp` adapts the measured step automatically
//! (`ΔIm ≈ 2√Im·τp`) and, in the paper's Fig. 19(c) experiment, halves
//! the number of adjustments.

use serde::{Deserialize, Serialize};

/// Measured → perceived brightness, both normalized to `[0, 1]`
/// (`Ip = 100·√(Im/100)` in the paper's percent units).
pub fn perceived(im: f64) -> f64 {
    im.clamp(0.0, 1.0).sqrt()
}

/// Perceived → measured brightness (inverse of [`perceived`]).
pub fn measured(ip: f64) -> f64 {
    let ip = ip.clamp(0.0, 1.0);
    ip * ip
}

/// A brightness trajectory planner: a sequence of measured-domain
/// set-points from the current level to the target, each step small
/// enough to be invisible.
pub trait AdaptationStepper {
    /// Intermediate set-points ending exactly at `to` (empty if
    /// `from == to`). Levels are normalized measured-domain brightness.
    fn steps(&self, from: f64, to: f64) -> Vec<f64>;

    /// Number of steps without materializing them.
    fn step_count(&self, from: f64, to: f64) -> usize;
}

/// SmartVLC's stepper: equal steps of `τp` in the *perception* domain
/// (Fig. 10(b)).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerceptionStepper {
    /// Perceptual step size; Table 2(b) ⇒ 0.003 is invisible to all
    /// subjects in every condition.
    pub tau_p: f64,
}

impl PerceptionStepper {
    /// Create a stepper; panics on non-positive τp.
    pub fn new(tau_p: f64) -> PerceptionStepper {
        assert!(tau_p > 0.0 && tau_p.is_finite(), "tau_p must be positive");
        PerceptionStepper { tau_p }
    }
}

impl AdaptationStepper for PerceptionStepper {
    fn steps(&self, from: f64, to: f64) -> Vec<f64> {
        let p_from = perceived(from);
        let p_to = perceived(to);
        let n = self.step_count(from, to);
        let mut out = Vec::with_capacity(n);
        for i in 1..=n {
            // Evenly spaced in the perception domain; last lands exactly.
            let p = p_from + (p_to - p_from) * (i as f64 / n as f64);
            out.push(if i == n { to } else { measured(p) });
        }
        out
    }

    fn step_count(&self, from: f64, to: f64) -> usize {
        let dp = (perceived(to) - perceived(from)).abs();
        if dp == 0.0 {
            0
        } else {
            (dp / self.tau_p).ceil() as usize
        }
    }
}

/// The "existing method" baseline: equal steps of `τ` in the *measured*
/// domain (Fig. 10(a)).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FixedStepper {
    /// Measured-domain step size.
    pub tau: f64,
}

impl FixedStepper {
    /// Create a stepper; panics on non-positive τ.
    pub fn new(tau: f64) -> FixedStepper {
        assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
        FixedStepper { tau }
    }

    /// The largest fixed τ that is flicker-safe over an operating range
    /// with minimum brightness `im_floor`: the perceptual cost of a
    /// measured step is `ΔIp = √(Im+τ) − √Im`, worst at the floor, so the
    /// safe τ solves `√(im_floor + τ) − √im_floor = τp`.
    pub fn flicker_safe(tau_p: f64, im_floor: f64) -> FixedStepper {
        assert!((0.0..1.0).contains(&im_floor), "floor must be in [0,1)");
        let s = im_floor.sqrt() + tau_p;
        FixedStepper::new(s * s - im_floor)
    }
}

impl AdaptationStepper for FixedStepper {
    fn steps(&self, from: f64, to: f64) -> Vec<f64> {
        let n = self.step_count(from, to);
        let mut out = Vec::with_capacity(n);
        for i in 1..=n {
            let v = from + (to - from) * (i as f64 / n as f64);
            out.push(if i == n { to } else { v });
        }
        out
    }

    fn step_count(&self, from: f64, to: f64) -> usize {
        let d = (to - from).abs();
        if d == 0.0 {
            0
        } else {
            (d / self.tau).ceil() as usize
        }
    }
}

/// Running tally of adaptation activity — the y-axis of Fig. 19(c).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AdaptationCounter {
    /// Total individual brightness adjustments performed.
    pub adjustments: u64,
    /// Total ambient-change events handled.
    pub events: u64,
}

impl AdaptationCounter {
    /// Record one ambient-change event that took `steps` adjustments.
    pub fn record(&mut self, steps: usize) {
        self.events += 1;
        self.adjustments += steps as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perception_law_matches_paper() {
        // Ip = 100 sqrt(Im/100): 25% measured is perceived as 50%.
        assert!((perceived(0.25) - 0.5).abs() < 1e-12);
        assert!((perceived(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(perceived(0.0), 0.0);
        // Inverse round trip.
        for im in [0.0, 0.1, 0.33, 0.77, 1.0] {
            assert!((measured(perceived(im)) - im).abs() < 1e-12);
        }
    }

    #[test]
    fn conversion_clamps_out_of_range() {
        assert_eq!(perceived(-0.5), 0.0);
        assert_eq!(perceived(2.0), 1.0);
        assert_eq!(measured(-1.0), 0.0);
        assert_eq!(measured(3.0), 1.0);
    }

    #[test]
    fn perception_steps_land_exactly_and_are_invisible() {
        let s = PerceptionStepper::new(0.003);
        let steps = s.steps(0.2, 0.7);
        assert_eq!(*steps.last().unwrap(), 0.7);
        // Every consecutive pair differs by <= tau_p in perception space.
        let mut prev = 0.2;
        for &x in &steps {
            let dp = (perceived(x) - perceived(prev)).abs();
            assert!(dp <= 0.003 + 1e-12, "step {prev}->{x}: dp={dp}");
            prev = x;
        }
    }

    #[test]
    fn perception_steps_are_variable_in_measured_domain() {
        // Fig. 10(b): measured-domain steps grow with brightness.
        let s = PerceptionStepper::new(0.003);
        let steps = s.steps(0.1, 0.9);
        let first = steps[1] - steps[0];
        let last = steps[steps.len() - 1] - steps[steps.len() - 2];
        assert!(last > first * 1.5, "first={first} last={last}");
    }

    #[test]
    fn fixed_steps_are_even() {
        let s = FixedStepper::new(0.01);
        let steps = s.steps(0.3, 0.35);
        assert_eq!(steps.len(), 5);
        for w in steps.windows(2) {
            assert!((w[1] - w[0] - 0.01).abs() < 1e-9);
        }
        assert_eq!(*steps.last().unwrap(), 0.35);
    }

    #[test]
    fn downward_adaptation_works() {
        let p = PerceptionStepper::new(0.003);
        let steps = p.steps(0.8, 0.2);
        assert_eq!(*steps.last().unwrap(), 0.2);
        assert!(steps.windows(2).all(|w| w[1] < w[0]));
        let f = FixedStepper::new(0.01);
        assert_eq!(f.steps(0.5, 0.4).len(), 10);
    }

    #[test]
    fn zero_delta_means_zero_steps() {
        assert!(PerceptionStepper::new(0.003).steps(0.5, 0.5).is_empty());
        assert!(FixedStepper::new(0.01).steps(0.5, 0.5).is_empty());
    }

    #[test]
    fn flicker_safe_tau_is_conservative() {
        let tau_p = 0.003;
        let floor = 0.15;
        let f = FixedStepper::flicker_safe(tau_p, floor);
        // At the floor the perceptual step equals tau_p...
        let dp = perceived(floor + f.tau) - perceived(floor);
        assert!((dp - tau_p).abs() < 1e-9);
        // ...and everywhere brighter it is strictly smaller (wasteful).
        let dp_bright = perceived(0.9 + f.tau) - perceived(0.9);
        assert!(dp_bright < tau_p);
    }

    #[test]
    fn paper_fig19c_step_reduction() {
        // Over the dynamic scenario's LED range (~0.15..0.95), perception
        // stepping needs roughly half the adjustments of the flicker-safe
        // fixed stepper — the paper reports "reduce ... by 50%".
        let tau_p = 0.003;
        let (lo, hi) = (0.15, 0.95);
        let smart = PerceptionStepper::new(tau_p).step_count(lo, hi);
        let fixed = FixedStepper::flicker_safe(tau_p, lo).step_count(lo, hi);
        let ratio = fixed as f64 / smart as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "smart={smart} fixed={fixed} ratio={ratio}"
        );
    }

    #[test]
    fn counter_accumulates() {
        let mut c = AdaptationCounter::default();
        c.record(10);
        c.record(0);
        c.record(5);
        assert_eq!(c.events, 3);
        assert_eq!(c.adjustments, 15);
    }
}
