//! Frame wire format: header fields and the 4-byte pattern descriptor.
//!
//! The paper allocates exactly four bytes to the Pattern field that "carries
//! the details about the super-symbol". A naive serialization of
//! `⟨S1(N1,K1), m1, S2(N2,K2), m2⟩` needs ~6 bytes at `Nmax = 500`, so we
//! exploit the planner's determinism instead: both ends run the same
//! [`crate::AmppmPlanner`] over the same [`crate::SystemConfig`], so the
//! header only needs to carry the *quantized dimming level*; the receiver
//! re-derives the identical super-symbol. The remaining bytes carry the
//! scheme tag and explicit parameters for the fixed-pattern schemes.

use crate::dimming::DimmingLevel;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use smartvlc_fec::FecProfile;
use std::fmt;

/// Maximum payload length accepted by the frame layer.
///
/// Must fit in the 13-bit Length field ([`FrameHeader`] packs the FEC
/// mode into the top three bits of the 2-byte Length word).
pub const MAX_PAYLOAD: usize = 4096;

/// Outer-code setting carried in the frame header: off, or one of the
/// three Reed–Solomon profiles of [`smartvlc_fec::FecProfile`].
///
/// Wire encoding lives in the top three bits of the Length word: bit 15
/// is the FEC flag, bits 14–13 the profile index. `Off` encodes as all
/// zeros, so uncoded frames are bit-identical to the pre-FEC wire format.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Serialize, Deserialize)]
pub enum FecMode {
    /// No outer code; the CRC alone gates the frame (pre-FEC behavior).
    #[default]
    Off,
    /// RS parity 8 per codeword (t = 4).
    Light,
    /// RS parity 16 per codeword (t = 8).
    Medium,
    /// RS parity 32 per codeword (t = 16).
    Heavy,
}

impl FecMode {
    /// The coding profile, or `None` when the outer code is off.
    pub fn profile(self) -> Option<FecProfile> {
        match self {
            FecMode::Off => None,
            FecMode::Light => Some(FecProfile::Light),
            FecMode::Medium => Some(FecProfile::Medium),
            FecMode::Heavy => Some(FecProfile::Heavy),
        }
    }

    /// The mode carrying a given profile.
    pub fn from_profile(p: FecProfile) -> FecMode {
        match p {
            FecProfile::Light => FecMode::Light,
            FecProfile::Medium => FecMode::Medium,
            FecProfile::Heavy => FecMode::Heavy,
        }
    }

    /// On-air bytes for a `block_len`-byte payload+CRC block under this
    /// mode.
    pub fn coded_len(self, block_len: usize) -> usize {
        match self.profile() {
            Some(p) => p.coded_len(block_len),
            None => block_len,
        }
    }

    /// The 3-bit wire value (bit 2 = FEC flag, bits 1–0 = profile index).
    pub fn wire_bits(self) -> u8 {
        match self.profile() {
            Some(p) => 0b100 | p.index(),
            None => 0,
        }
    }

    /// Parse the 3-bit wire value. The five unused patterns (flag clear
    /// with profile bits set, or flag set with the reserved index 3) are
    /// rejected: accepting them would leave both ends disagreeing on the
    /// on-air block layout, so they can only be header corruption.
    pub fn from_wire_bits(bits: u8) -> Result<FecMode, DescriptorError> {
        match bits {
            0b000 => Ok(FecMode::Off),
            0b100 => Ok(FecMode::Light),
            0b101 => Ok(FecMode::Medium),
            0b110 => Ok(FecMode::Heavy),
            b => Err(DescriptorError::UnknownFec(b)),
        }
    }
}

impl fmt::Display for FecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FecMode::Off => write!(f, "off"),
            FecMode::Light => write!(f, "rs-light"),
            FecMode::Medium => write!(f, "rs-medium"),
            FecMode::Heavy => write!(f, "rs-heavy"),
        }
    }
}

/// Which payload modulation a frame uses, with its parameters — the
/// 4-byte Pattern field of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PatternDescriptor {
    /// Fixed MPPM pattern `S(n, k/n)`.
    Mppm {
        /// Slots per symbol.
        n: u16,
        /// ON slots per symbol.
        k: u16,
    },
    /// OOK with compensation time at a quantized dimming level.
    OokCt {
        /// Quantized dimming level (planner grid index).
        dimming_q: u16,
    },
    /// AMPPM at a quantized dimming level; the super-symbol is re-derived
    /// by the receiver's planner.
    Amppm {
        /// Quantized dimming level (planner grid index).
        dimming_q: u16,
        /// Degradation tier (0 = nominal; see
        /// [`crate::amppm::planner::MAX_DEGRADE_TIER`]). Carried in the
        /// descriptor's spare byte so the receiver replans identically.
        tier: u8,
    },
    /// VPPM with `n` slots per symbol and pulse width `width`.
    Vppm {
        /// Slots per symbol.
        n: u8,
        /// Pulse width in slots.
        width: u8,
    },
    /// OPPM with `n` slots per symbol and pulse width `width` (paper reference \[8\]).
    Oppm {
        /// Slots per symbol.
        n: u8,
        /// Pulse width in slots.
        width: u8,
    },
    /// DarkLight-style night mode: one `pulse_w`-slot pulse at one of
    /// `positions` offsets per symbol (§7 companion mode).
    Darklight {
        /// Pulse offsets per symbol.
        positions: u16,
        /// Pulse width in slots.
        pulse_w: u8,
    },
}

/// Errors from descriptor parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DescriptorError {
    /// Unknown scheme tag byte.
    UnknownTag(u8),
    /// Parameters violate the scheme's invariants.
    InvalidParams,
    /// Reserved FEC bit pattern in the Length word.
    UnknownFec(u8),
    /// The Length field declares more payload than [`MAX_PAYLOAD`] —
    /// structurally impossible for a genuine frame, so the header is
    /// rejected outright rather than letting a corrupted length drive
    /// downstream buffer sizing.
    OversizeLength(u16),
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::UnknownTag(t) => write!(f, "unknown scheme tag {t:#04x}"),
            DescriptorError::InvalidParams => write!(f, "invalid scheme parameters"),
            DescriptorError::UnknownFec(b) => write!(f, "reserved FEC bits {b:#05b}"),
            DescriptorError::OversizeLength(n) => {
                write!(
                    f,
                    "declared payload {n} B exceeds the {MAX_PAYLOAD} B maximum"
                )
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

const TAG_MPPM: u8 = 0x01;
const TAG_OOKCT: u8 = 0x02;
const TAG_AMPPM: u8 = 0x03;
const TAG_VPPM: u8 = 0x04;
const TAG_OPPM: u8 = 0x05;
const TAG_DARKLIGHT: u8 = 0x06;

impl PatternDescriptor {
    /// Serialize to the 4-byte wire form: `tag | p0 p1 | p2`.
    pub fn to_bytes(self) -> [u8; 4] {
        match self {
            PatternDescriptor::Mppm { n, k } => {
                // 12-bit n, 12-bit k packed big-endian into 3 bytes.
                debug_assert!(n < 4096 && k < 4096);
                [
                    TAG_MPPM,
                    (n >> 4) as u8,
                    (((n & 0xF) << 4) | (k >> 8)) as u8,
                    (k & 0xFF) as u8,
                ]
            }
            PatternDescriptor::OokCt { dimming_q } => {
                let b = dimming_q.to_be_bytes();
                [TAG_OOKCT, b[0], b[1], 0]
            }
            PatternDescriptor::Amppm { dimming_q, tier } => {
                let b = dimming_q.to_be_bytes();
                [TAG_AMPPM, b[0], b[1], tier]
            }
            PatternDescriptor::Vppm { n, width } => [TAG_VPPM, n, width, 0],
            PatternDescriptor::Oppm { n, width } => [TAG_OPPM, n, width, 0],
            PatternDescriptor::Darklight { positions, pulse_w } => {
                let b = positions.to_be_bytes();
                [TAG_DARKLIGHT, b[0], b[1], pulse_w]
            }
        }
    }

    /// Parse the 4-byte wire form.
    pub fn from_bytes(b: [u8; 4]) -> Result<PatternDescriptor, DescriptorError> {
        match b[0] {
            TAG_MPPM => {
                let n = ((b[1] as u16) << 4) | ((b[2] as u16) >> 4);
                let k = (((b[2] & 0xF) as u16) << 8) | b[3] as u16;
                if n == 0 || k > n {
                    return Err(DescriptorError::InvalidParams);
                }
                Ok(PatternDescriptor::Mppm { n, k })
            }
            TAG_OOKCT => Ok(PatternDescriptor::OokCt {
                dimming_q: u16::from_be_bytes([b[1], b[2]]),
            }),
            // Any tier byte parses (roundtrip totality); the modem clamps
            // it to the planner's maximum when re-deriving the plan.
            TAG_AMPPM => Ok(PatternDescriptor::Amppm {
                dimming_q: u16::from_be_bytes([b[1], b[2]]),
                tier: b[3],
            }),
            TAG_VPPM => {
                let (n, width) = (b[1], b[2]);
                if n < 2 || width == 0 || width >= n {
                    return Err(DescriptorError::InvalidParams);
                }
                Ok(PatternDescriptor::Vppm { n, width })
            }
            TAG_OPPM => {
                let (n, width) = (b[1], b[2]);
                if n < 3 || width == 0 || width >= n {
                    return Err(DescriptorError::InvalidParams);
                }
                Ok(PatternDescriptor::Oppm { n, width })
            }
            TAG_DARKLIGHT => {
                let positions = u16::from_be_bytes([b[1], b[2]]);
                let pulse_w = b[3];
                if positions < 2 || pulse_w == 0 {
                    return Err(DescriptorError::InvalidParams);
                }
                Ok(PatternDescriptor::Darklight { positions, pulse_w })
            }
            t => Err(DescriptorError::UnknownTag(t)),
        }
    }
}

/// The frame header: Length + Pattern fields of Table 1.
///
/// The 2-byte Length word is split: bits 12..0 carry the payload length
/// (≤ [`MAX_PAYLOAD`] = 4096 fits in 13 bits), bit 15 flags an FEC-coded
/// payload block, bits 14–13 select the [`FecMode`] profile. With FEC off
/// all three top bits are zero and the wire bytes are unchanged from the
/// pre-FEC format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FrameHeader {
    /// Payload bytes (not counting the CRC).
    pub payload_len: u16,
    /// Outer-code setting for the payload+CRC block.
    pub fec: FecMode,
    /// Payload modulation descriptor.
    pub pattern: PatternDescriptor,
}

/// Bit offset of the FEC field inside the Length word.
const FEC_SHIFT: u16 = 13;
/// Mask of the payload-length bits inside the Length word.
const LEN_MASK: u16 = (1 << FEC_SHIFT) - 1;

impl FrameHeader {
    /// Header wire size in bytes (2 + 4, Table 1).
    pub const WIRE_BYTES: usize = 6;
    /// Header wire size in slots (OOK-modulated, one slot per bit).
    pub const WIRE_SLOTS: usize = Self::WIRE_BYTES * 8;

    /// Serialize to wire bytes.
    pub fn to_bytes(self) -> [u8; Self::WIRE_BYTES] {
        debug_assert!(self.payload_len as usize <= MAX_PAYLOAD);
        let mut out = [0u8; Self::WIRE_BYTES];
        let mut buf = &mut out[..];
        buf.put_u16(((self.fec.wire_bits() as u16) << FEC_SHIFT) | (self.payload_len & LEN_MASK));
        buf.put_slice(&self.pattern.to_bytes());
        out
    }

    /// Parse from wire bytes. Rejects reserved FEC bit patterns and
    /// lengths beyond [`MAX_PAYLOAD`] — a header that passed the OOK
    /// prefix but declares an impossible structure is corruption, and
    /// must surface as an error rather than drive buffer sizing.
    pub fn from_bytes(mut b: &[u8]) -> Result<FrameHeader, DescriptorError> {
        if b.len() < Self::WIRE_BYTES {
            return Err(DescriptorError::InvalidParams);
        }
        let word = b.get_u16();
        let fec = FecMode::from_wire_bits((word >> FEC_SHIFT) as u8)?;
        let payload_len = word & LEN_MASK;
        if payload_len as usize > MAX_PAYLOAD {
            return Err(DescriptorError::OversizeLength(payload_len));
        }
        let mut pb = [0u8; 4];
        b.copy_to_slice(&mut pb);
        Ok(FrameHeader {
            payload_len,
            fec,
            pattern: PatternDescriptor::from_bytes(pb)?,
        })
    }
}

/// A MAC frame: header + payload.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// The header (Length + Pattern).
    pub header: FrameHeader,
    /// Payload bytes (the paper fixes 128 B in its experiments).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build an uncoded frame; validates length consistency.
    pub fn new(pattern: PatternDescriptor, payload: Vec<u8>) -> Option<Frame> {
        Frame::with_fec(pattern, FecMode::Off, payload)
    }

    /// Build a frame with an explicit outer-code setting.
    pub fn with_fec(pattern: PatternDescriptor, fec: FecMode, payload: Vec<u8>) -> Option<Frame> {
        if payload.len() > MAX_PAYLOAD {
            return None;
        }
        Some(Frame {
            header: FrameHeader {
                payload_len: payload.len() as u16,
                fec,
                pattern,
            },
            payload,
        })
    }
}

/// Helper: descriptor for an AMPPM frame at a given target level (tier 0).
pub fn amppm_descriptor(cfg: &crate::config::SystemConfig, l: DimmingLevel) -> PatternDescriptor {
    PatternDescriptor::Amppm {
        dimming_q: cfg.quantize_dimming(l.value()),
        tier: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_exactly_four_bytes() {
        // Table 1: the Pattern field is 4 B.
        let d = PatternDescriptor::Amppm {
            dimming_q: 777,
            tier: 0,
        };
        assert_eq!(d.to_bytes().len(), 4);
    }

    #[test]
    fn descriptor_roundtrip() {
        let cases = [
            PatternDescriptor::Mppm { n: 20, k: 10 },
            PatternDescriptor::Mppm { n: 500, k: 250 },
            PatternDescriptor::Mppm { n: 4095, k: 4095 },
            PatternDescriptor::OokCt { dimming_q: 0 },
            PatternDescriptor::OokCt { dimming_q: 65535 },
            PatternDescriptor::Amppm {
                dimming_q: 512,
                tier: 0,
            },
            PatternDescriptor::Amppm {
                dimming_q: 512,
                tier: 3,
            },
            PatternDescriptor::Amppm {
                dimming_q: 65535,
                tier: 255,
            },
            PatternDescriptor::Vppm { n: 10, width: 3 },
            PatternDescriptor::Oppm { n: 12, width: 4 },
            PatternDescriptor::Darklight {
                positions: 128,
                pulse_w: 1,
            },
        ];
        for d in cases {
            assert_eq!(PatternDescriptor::from_bytes(d.to_bytes()), Ok(d), "{d:?}");
        }
    }

    #[test]
    fn invalid_descriptors_rejected() {
        assert_eq!(
            PatternDescriptor::from_bytes([0x7F, 0, 0, 0]),
            Err(DescriptorError::UnknownTag(0x7F))
        );
        // MPPM with k > n.
        let bad = PatternDescriptor::Mppm { n: 10, k: 11 }.to_bytes();
        assert_eq!(
            PatternDescriptor::from_bytes(bad),
            Err(DescriptorError::InvalidParams)
        );
        // VPPM with width = n.
        assert_eq!(
            PatternDescriptor::from_bytes([0x04, 10, 10, 0]),
            Err(DescriptorError::InvalidParams)
        );
    }

    #[test]
    fn header_roundtrip() {
        for fec in [
            FecMode::Off,
            FecMode::Light,
            FecMode::Medium,
            FecMode::Heavy,
        ] {
            let h = FrameHeader {
                payload_len: 128,
                fec,
                pattern: PatternDescriptor::Amppm {
                    dimming_q: 300,
                    tier: 1,
                },
            };
            let bytes = h.to_bytes();
            assert_eq!(bytes.len(), 6); // Table 1: Length 2 B + Pattern 4 B
            assert_eq!(FrameHeader::from_bytes(&bytes), Ok(h), "{fec}");
        }
    }

    #[test]
    fn fec_off_wire_bytes_unchanged_from_pre_fec_format() {
        // The legacy format put the bare payload length in the Length
        // word; FecMode::Off must reproduce it bit-for-bit.
        let h = FrameHeader {
            payload_len: 128,
            fec: FecMode::Off,
            pattern: PatternDescriptor::OokCt { dimming_q: 512 },
        };
        let bytes = h.to_bytes();
        assert_eq!(&bytes[..2], &128u16.to_be_bytes());
    }

    #[test]
    fn fec_wire_bits_roundtrip_and_reserved_patterns_rejected() {
        for fec in [
            FecMode::Off,
            FecMode::Light,
            FecMode::Medium,
            FecMode::Heavy,
        ] {
            assert_eq!(FecMode::from_wire_bits(fec.wire_bits()), Ok(fec));
        }
        for bits in [0b001u8, 0b010, 0b011, 0b111] {
            assert_eq!(
                FecMode::from_wire_bits(bits),
                Err(DescriptorError::UnknownFec(bits))
            );
        }
    }

    #[test]
    fn header_rejects_short_input() {
        assert!(FrameHeader::from_bytes(&[0; 5]).is_err());
    }

    #[test]
    fn header_rejects_oversize_declared_length() {
        // A 13-bit length can declare up to 8191 B, but MAX_PAYLOAD is
        // 4096: anything above must be rejected at parse time, not
        // silently accepted into buffer sizing.
        let pattern = PatternDescriptor::OokCt { dimming_q: 512 }.to_bytes();
        let mut wire = [0u8; FrameHeader::WIRE_BYTES];
        wire[..2].copy_from_slice(&8191u16.to_be_bytes());
        wire[2..].copy_from_slice(&pattern);
        assert_eq!(
            FrameHeader::from_bytes(&wire),
            Err(DescriptorError::OversizeLength(8191))
        );
        // The boundary itself is fine.
        wire[..2].copy_from_slice(&(MAX_PAYLOAD as u16).to_be_bytes());
        assert!(FrameHeader::from_bytes(&wire).is_ok());
    }

    #[test]
    fn header_rejects_reserved_fec_bits() {
        let pattern = PatternDescriptor::OokCt { dimming_q: 512 }.to_bytes();
        let mut wire = [0u8; FrameHeader::WIRE_BYTES];
        // Flag clear but profile bits set: only corruption produces this.
        wire[..2].copy_from_slice(&(128u16 | (0b011 << 13)).to_be_bytes());
        wire[2..].copy_from_slice(&pattern);
        assert_eq!(
            FrameHeader::from_bytes(&wire),
            Err(DescriptorError::UnknownFec(0b011))
        );
    }

    #[test]
    fn frame_rejects_oversize_payload() {
        let d = PatternDescriptor::OokCt { dimming_q: 512 };
        assert!(Frame::new(d, vec![0; MAX_PAYLOAD]).is_some());
        assert!(Frame::new(d, vec![0; MAX_PAYLOAD + 1]).is_none());
        assert!(Frame::with_fec(d, FecMode::Medium, vec![0; MAX_PAYLOAD + 1]).is_none());
    }

    #[test]
    fn fec_mode_profile_mapping() {
        assert_eq!(FecMode::Off.profile(), None);
        for p in FecProfile::ALL {
            let m = FecMode::from_profile(p);
            assert_eq!(m.profile(), Some(p));
            assert_eq!(m.coded_len(130), p.coded_len(130));
        }
        assert_eq!(FecMode::Off.coded_len(130), 130);
    }

    #[test]
    fn amppm_descriptor_quantizes() {
        let cfg = crate::config::SystemConfig::default();
        let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
        match d {
            PatternDescriptor::Amppm { dimming_q, tier } => {
                assert_eq!(dimming_q, cfg.quantize_dimming(0.5));
                assert_eq!(tier, 0);
            }
            _ => panic!("wrong variant"),
        }
    }
}
