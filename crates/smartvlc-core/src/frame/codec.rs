//! Slot-domain frame emission and parsing.
//!
//! [`FrameCodec`] is the meeting point of Table 1 and the modems: it
//! prefixes the scheme-modulated payload with the preamble, the
//! OOK-modulated header, and the intra-frame compensation + sync fields,
//! and parses the whole structure back on the receive side.
//!
//! The codec operates purely on decided slot values; converting noisy
//! analog samples into slots (clock recovery, thresholding) is the job of
//! `smartvlc-link`'s receiver front end.

use crate::amppm::planner::{AmppmPlanner, PlanError};
use crate::config::SystemConfig;
use crate::dimming::DimmingLevel;
use crate::frame::crc::Crc16;
use crate::frame::format::{DescriptorError, FecMode, Frame, FrameHeader, PatternDescriptor};
use crate::modem::{DemodError, SlotModem};
use crate::schemes::{AmppmModem, DarklightModem, MppmModem, OokCtModem, OppmModem, VppmModem};
use crate::symbol::SymbolPattern;
use smartvlc_obs as obs;
use std::fmt;

/// Number of preamble slots (3 bytes of alternating ON/OFF, Table 1).
pub const PREAMBLE_SLOTS: usize = 24;
/// Preamble mismatch tolerance during parsing (slots).
pub const PREAMBLE_TOLERANCE: usize = 2;

/// Length of the fixed frame prefix: preamble + OOK header.
pub const PREFIX_SLOTS: usize = PREAMBLE_SLOTS + FrameHeader::WIRE_SLOTS;

/// Receiver-side statistics for one parsed frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Whether the CRC verified (the MAC only ACKs clean frames).
    pub crc_ok: bool,
    /// Total slots the frame occupied on the air.
    pub total_slots: usize,
    /// Constituent symbols whose integrity check failed.
    pub symbol_failures: u32,
    /// Total payload symbols processed.
    pub symbols: u32,
    /// Symbol errors the outer code corrected in place (0 when FEC off).
    pub fec_corrected: u32,
    /// Codewords the outer decoder could not repair — when nonzero the
    /// frame falls back to CRC + ARQ exactly as an uncoded frame would.
    pub fec_failed_codewords: u32,
}

/// Errors from frame emission or parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameCodecError {
    /// Not enough slots to contain the claimed structure.
    Truncated {
        /// Slots needed to proceed.
        needed: usize,
        /// Slots available.
        got: usize,
    },
    /// Preamble correlation failed (more than [`PREAMBLE_TOLERANCE`]
    /// mismatched slots).
    BadPreamble,
    /// The header failed to parse.
    BadHeader(DescriptorError),
    /// The compensation run exceeded the Type-I flicker bound — no sync
    /// edge found where one must exist.
    CompensationOverrun,
    /// The descriptor names a scheme/level combination that cannot carry
    /// data.
    Unsupported(&'static str),
    /// AMPPM planning failed for the header's dimming level.
    Plan(PlanError),
    /// Payload demodulation failed structurally.
    Demod(DemodError),
}

impl fmt::Display for FrameCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameCodecError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} slots, have {got}")
            }
            FrameCodecError::BadPreamble => write!(f, "preamble correlation failed"),
            FrameCodecError::BadHeader(e) => write!(f, "bad header: {e}"),
            FrameCodecError::CompensationOverrun => {
                write!(f, "compensation run exceeds flicker bound")
            }
            FrameCodecError::Unsupported(w) => write!(f, "unsupported modulation: {w}"),
            FrameCodecError::Plan(e) => write!(f, "AMPPM planning failed: {e}"),
            FrameCodecError::Demod(e) => write!(f, "demodulation failed: {e}"),
        }
    }
}

impl std::error::Error for FrameCodecError {}

impl From<DemodError> for FrameCodecError {
    fn from(e: DemodError) -> Self {
        FrameCodecError::Demod(e)
    }
}

impl From<PlanError> for FrameCodecError {
    fn from(e: PlanError) -> Self {
        FrameCodecError::Plan(e)
    }
}

/// The frame ⇄ slot-waveform codec. Owns an AMPPM planner so both sides
/// derive identical super-symbols from header dimming levels.
pub struct FrameCodec {
    cfg: SystemConfig,
    planner: AmppmPlanner,
    accept_fec: bool,
}

impl FrameCodec {
    /// Build a codec for a configuration.
    pub fn new(cfg: SystemConfig) -> Result<FrameCodec, PlanError> {
        let planner = AmppmPlanner::new(cfg.clone())?;
        Ok(FrameCodec {
            cfg,
            planner,
            accept_fec: true,
        })
    }

    /// Whether parsing accepts FEC-flagged headers. A receiver that is
    /// not provisioned for the outer code sets this false: no legitimate
    /// peer sends coded frames at it, so an observed FEC flag can only
    /// be header corruption — rejecting it up front keeps the fec-off
    /// bookkeeping (stats, telemetry keys) identical to a build without
    /// FEC at all.
    pub fn set_accept_fec(&mut self, accept: bool) {
        self.accept_fec = accept;
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The underlying AMPPM planner (shared with the transmitter logic).
    pub fn planner(&self) -> &AmppmPlanner {
        &self.planner
    }

    /// Resolve a pattern descriptor to a concrete modem.
    pub fn modem_for(
        &mut self,
        d: PatternDescriptor,
    ) -> Result<Box<dyn SlotModem>, FrameCodecError> {
        match d {
            PatternDescriptor::Mppm { n, k } => {
                let pattern = SymbolPattern::new(n, k)
                    .ok_or(FrameCodecError::BadHeader(DescriptorError::InvalidParams))?;
                if k == 0 || k == n {
                    return Err(FrameCodecError::Unsupported("MPPM pattern carries no data"));
                }
                // Eq. 4: a symbol must fit inside one super-symbol period,
                // which also rejects garbage headers decoded from noise.
                if n as u64 > self.cfg.n_max_super().min(512) {
                    return Err(FrameCodecError::Unsupported(
                        "MPPM symbol exceeds the flicker bound",
                    ));
                }
                Ok(Box::new(MppmModem::new(pattern)))
            }
            PatternDescriptor::OokCt { dimming_q } => {
                let l = DimmingLevel::clamped(self.cfg.dequantize_dimming(dimming_q));
                let modem = OokCtModem::new(l)
                    .ok_or(FrameCodecError::Unsupported("OOK-CT level out of range"))?;
                Ok(Box::new(modem))
            }
            PatternDescriptor::Amppm { dimming_q, tier } => {
                let l = DimmingLevel::clamped(self.cfg.dequantize_dimming(dimming_q));
                // plan_tiered clamps the tier byte, so a corrupted header
                // at worst selects a valid (if wrong) plan and the CRC
                // rejects the frame — never a panic.
                let plan = self.planner.plan_tiered(l, tier)?;
                if plan.norm_rate == 0.0 {
                    return Err(FrameCodecError::Unsupported(
                        "AMPPM level carries no data (degenerate pattern)",
                    ));
                }
                Ok(Box::new(AmppmModem::from_plan(&plan)))
            }
            PatternDescriptor::Vppm { n, width } => {
                let l = DimmingLevel::from_ratio(width as u32, n as u32)
                    .ok_or(FrameCodecError::BadHeader(DescriptorError::InvalidParams))?;
                let modem = VppmModem::new(n as u16, l)
                    .ok_or(FrameCodecError::Unsupported("VPPM width degenerate"))?;
                Ok(Box::new(modem))
            }
            PatternDescriptor::Oppm { n, width } => {
                let modem = OppmModem::from_raw(n as u16, width as u16)
                    .ok_or(FrameCodecError::Unsupported("OPPM shape degenerate"))?;
                Ok(Box::new(modem))
            }
            PatternDescriptor::Darklight { positions, pulse_w } => {
                let modem = DarklightModem::new(positions, pulse_w as u16).ok_or(
                    FrameCodecError::Unsupported("night-mode duty not dark enough"),
                )?;
                Ok(Box::new(modem))
            }
        }
    }

    /// Emit a frame as a slot waveform.
    pub fn emit(&mut self, frame: &Frame) -> Result<Vec<bool>, FrameCodecError> {
        let modem = self.modem_for(frame.header.pattern)?;
        let table = self.planner.table();

        // Preamble: alternating ON/OFF, starting ON.
        let mut slots: Vec<bool> = (0..PREAMBLE_SLOTS).map(|i| i % 2 == 0).collect();

        // Header: OOK, one slot per bit, MSB first.
        let header_bytes = frame.header.to_bytes();
        for &b in &header_bytes {
            for bit in (0..8).rev() {
                slots.push((b >> bit) & 1 == 1);
            }
        }
        debug_assert_eq!(slots.len(), PREFIX_SLOTS);

        // Payload block: payload ++ CRC(header ++ payload), then the
        // outer code when the header asks for one. The CRC sits *inside*
        // the codeword, so corrected symbols still verify and only
        // uncorrectable blocks fall back to ARQ.
        let mut crc = Crc16::new();
        crc.update(&header_bytes).update(&frame.payload);
        let mut block = frame.payload.clone();
        block.extend_from_slice(&crc.finish().to_be_bytes());
        if let Some(profile) = frame.header.fec.profile() {
            block = smartvlc_fec::encode(profile, &block);
        }
        let payload_slots = modem.modulate(table, &block);

        // Compensation + sync: align the prefix brightness to the payload
        // dimming level (Table 1's Compensation and Sync fields).
        let target = modem.dimming().value();
        let prefix_ones = slots.iter().filter(|&&b| b).count();
        let (comp_len, comp_state) = compensation_plan(
            prefix_ones,
            PREFIX_SLOTS,
            target,
            self.cfg.n_max_super() as usize,
        );
        slots.extend(std::iter::repeat_n(comp_state, comp_len));
        slots.push(!comp_state); // sync edge
        slots.extend(payload_slots);
        obs::counter_add(obs::key!("core.codec.emits"), 1);
        obs::observe(obs::key!("core.codec.emit_slots"), slots.len() as u64);
        Ok(slots)
    }

    /// Parse a slot waveform beginning at a frame boundary.
    ///
    /// On success returns the frame, its stats (check
    /// [`FrameStats::crc_ok`] before trusting the payload), and the total
    /// number of slots consumed.
    pub fn parse(&mut self, slots: &[bool]) -> Result<(Frame, FrameStats), FrameCodecError> {
        if slots.len() < PREFIX_SLOTS + 2 {
            return Err(FrameCodecError::Truncated {
                needed: PREFIX_SLOTS + 2,
                got: slots.len(),
            });
        }
        // Preamble correlation with tolerance.
        let mismatches = slots[..PREAMBLE_SLOTS]
            .iter()
            .enumerate()
            .filter(|(i, &s)| s != (i % 2 == 0))
            .count();
        if mismatches > PREAMBLE_TOLERANCE {
            return Err(FrameCodecError::BadPreamble);
        }

        // Header.
        let mut header_bytes = [0u8; FrameHeader::WIRE_BYTES];
        for (i, byte) in header_bytes.iter_mut().enumerate() {
            for bit in 0..8 {
                *byte = (*byte << 1) | slots[PREAMBLE_SLOTS + i * 8 + bit] as u8;
            }
        }
        let header = FrameHeader::from_bytes(&header_bytes).map_err(FrameCodecError::BadHeader)?;
        if !self.accept_fec && header.fec != FecMode::Off {
            return Err(FrameCodecError::BadHeader(DescriptorError::UnknownFec(
                header.fec.wire_bits(),
            )));
        }

        // Compensation run: scan for the sync edge.
        let comp_start = PREFIX_SLOTS;
        let comp_state = slots[comp_start];
        let max_run = self.cfg.n_max_super() as usize;
        let mut i = comp_start;
        while i < slots.len() && slots[i] == comp_state {
            i += 1;
            if i - comp_start > max_run {
                return Err(FrameCodecError::CompensationOverrun);
            }
        }
        if i >= slots.len() {
            return Err(FrameCodecError::CompensationOverrun);
        }
        let payload_start = i + 1; // the flip slot is the sync bit

        // Payload block. With FEC on, the on-air block is the coded
        // length; both ends derive it from (profile, payload_len) alone.
        let modem = self.modem_for(header.pattern)?;
        let table = self.planner.table();
        let block_bytes = header.payload_len as usize + 2;
        let air_bytes = header.fec.coded_len(block_bytes);
        let n_slots = modem.slots_for_payload(table, air_bytes);
        if slots.len() < payload_start + n_slots {
            return Err(FrameCodecError::Truncated {
                needed: payload_start + n_slots,
                got: slots.len(),
            });
        }
        let (raw, dstats) = modem.demodulate(
            table,
            &slots[payload_start..payload_start + n_slots],
            air_bytes,
        )?;
        let (block, fec_corrected, fec_failed_codewords) = match header.fec.profile() {
            Some(profile) => {
                let out = smartvlc_fec::decode(profile, &raw, block_bytes);
                if out.corrected > 0 {
                    obs::counter_add(obs::key!("fec.corrected_symbols"), out.corrected as u64);
                }
                if out.failed_codewords > 0 {
                    obs::counter_add(obs::key!("fec.decode_failures"), 1);
                }
                (out.data, out.corrected, out.failed_codewords)
            }
            None => (raw, 0, 0),
        };
        let (payload, crc_bytes) = block.split_at(header.payload_len as usize);
        let mut crc = Crc16::new();
        crc.update(&header_bytes).update(payload);
        let crc_ok = crc.finish().to_be_bytes() == crc_bytes;

        let stats = FrameStats {
            crc_ok,
            total_slots: payload_start + n_slots,
            symbol_failures: dstats.symbol_failures,
            symbols: dstats.symbols,
            fec_corrected,
            fec_failed_codewords,
        };
        obs::counter_add(obs::key!("core.codec.parses"), 1);
        if !crc_ok {
            obs::counter_add(obs::key!("core.codec.crc_fail"), 1);
        }
        Ok((
            Frame {
                header,
                payload: payload.to_vec(),
            },
            stats,
        ))
    }
}

/// Size the compensation field: choose the state and length such that
/// `(prefix_ones + state·c + sync_ones) / (prefix_len + c + 1) ≈ target`.
/// Always emits at least one compensation slot so the receiver can detect
/// the sync edge; the length is capped at the flicker bound.
fn compensation_plan(
    prefix_ones: usize,
    prefix_len: usize,
    target: f64,
    cap: usize,
) -> (usize, bool) {
    let ones = prefix_ones as f64;
    let len = prefix_len as f64;
    // Try brightening with ONs (sync will be OFF): (ones + c)/(len + c + 1) = l.
    let c_on = (target * (len + 1.0) - ones) / (1.0 - target);
    // Try darkening with OFFs (sync will be ON): (ones + 1)/(len + c + 1) = l.
    let c_off = (ones + 1.0) / target - len - 1.0;
    let (c, state) = if c_on.is_finite() && c_on >= 1.0 {
        (c_on, true)
    } else if c_off.is_finite() && c_off >= 1.0 {
        (c_off, false)
    } else {
        // Prefix already close to target: emit the minimal run in the
        // direction that errs least.
        let err_on = (ones + 1.0) / (len + 2.0) - target;
        let err_off = ones / (len + 2.0) - target;
        (1.0, err_on.abs() <= err_off.abs())
    };
    ((c.round() as usize).clamp(1, cap), state)
}

/// Emit a frame with a one-off codec (convenience for tests and examples).
pub fn emit_frame(frame: &Frame, cfg: &SystemConfig) -> Result<Vec<bool>, FrameCodecError> {
    FrameCodec::new(cfg.clone())
        .map_err(FrameCodecError::Plan)?
        .emit(frame)
}

/// Parse a frame with a one-off codec (convenience for tests and examples).
pub fn parse_frame(
    slots: &[bool],
    cfg: &SystemConfig,
) -> Result<(Frame, FrameStats), FrameCodecError> {
    FrameCodec::new(cfg.clone())
        .map_err(FrameCodecError::Plan)?
        .parse(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::format::amppm_descriptor;

    fn codec() -> FrameCodec {
        FrameCodec::new(SystemConfig::default()).unwrap()
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    fn amppm_frame(l: f64, n: usize) -> Frame {
        let cfg = SystemConfig::default();
        let d = amppm_descriptor(&cfg, DimmingLevel::new(l).unwrap());
        Frame::new(d, payload(n)).unwrap()
    }

    #[test]
    fn amppm_frame_roundtrip_all_levels() {
        let mut c = codec();
        for i in 2..=18 {
            let l = i as f64 / 20.0;
            let frame = amppm_frame(l, 128);
            let slots = c.emit(&frame).unwrap();
            let (back, stats) = c.parse(&slots).unwrap();
            assert!(stats.crc_ok, "l={l}");
            assert_eq!(back, frame, "l={l}");
            assert_eq!(stats.total_slots, slots.len());
        }
    }

    #[test]
    fn mppm_and_ookct_and_vppm_roundtrip() {
        let cfg = SystemConfig::default();
        let mut c = codec();
        let descriptors = [
            PatternDescriptor::Mppm { n: 20, k: 6 },
            PatternDescriptor::OokCt {
                dimming_q: cfg.quantize_dimming(0.3),
            },
            PatternDescriptor::Vppm { n: 10, width: 3 },
            PatternDescriptor::Oppm { n: 14, width: 4 },
            PatternDescriptor::Darklight {
                positions: 128,
                pulse_w: 1,
            },
        ];
        for d in descriptors {
            let frame = Frame::new(d, payload(128)).unwrap();
            let slots = c.emit(&frame).unwrap();
            let (back, stats) = c.parse(&slots).unwrap();
            assert!(stats.crc_ok, "{d:?}");
            assert_eq!(back, frame, "{d:?}");
        }
    }

    #[test]
    fn fec_frame_roundtrip_all_modes() {
        use crate::frame::format::FecMode;
        let cfg = SystemConfig::default();
        let mut c = codec();
        for fec in [FecMode::Light, FecMode::Medium, FecMode::Heavy] {
            let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
            let frame = Frame::with_fec(d, fec, payload(128)).unwrap();
            let slots = c.emit(&frame).unwrap();
            let (back, stats) = c.parse(&slots).unwrap();
            assert!(stats.crc_ok, "{fec}");
            assert_eq!(back, frame, "{fec}");
            assert_eq!(stats.fec_corrected, 0, "{fec}");
            assert_eq!(stats.fec_failed_codewords, 0, "{fec}");
        }
    }

    #[test]
    fn unprovisioned_codec_rejects_fec_flagged_headers() {
        use crate::frame::format::FecMode;
        let cfg = SystemConfig::default();
        let mut c = codec();
        c.set_accept_fec(false);
        let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
        // A coded frame arriving at an uncoded receiver is, from its
        // point of view, a corrupted header — typed rejection, no decode.
        let frame = Frame::with_fec(d, FecMode::Medium, payload(64)).unwrap();
        let mut other = codec();
        let slots = other.emit(&frame).unwrap();
        assert_eq!(
            c.parse(&slots).unwrap_err(),
            FrameCodecError::BadHeader(DescriptorError::UnknownFec(FecMode::Medium.wire_bits()))
        );
        // Uncoded frames still parse.
        let plain = Frame::new(d, payload(64)).unwrap();
        let slots = other.emit(&plain).unwrap();
        assert!(c.parse(&slots).unwrap().1.crc_ok);
    }

    #[test]
    fn fec_corrects_payload_burst_that_kills_uncoded_crc() {
        use crate::frame::format::FecMode;
        let cfg = SystemConfig::default();
        let mut c = codec();
        let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());

        // Same payload, coded and uncoded; flip a run of payload slots
        // near the end of each frame (well past the OOK prefix).
        let coded = Frame::with_fec(d, FecMode::Medium, payload(128)).unwrap();
        let uncoded = Frame::new(d, payload(128)).unwrap();
        for (frame, expect_clean) in [(&coded, true), (&uncoded, false)] {
            let mut slots = c.emit(frame).unwrap();
            let n = slots.len();
            for s in &mut slots[n - 40..n - 20] {
                *s = !*s;
            }
            let (back, stats) = c.parse(&slots).unwrap();
            assert_eq!(stats.crc_ok, expect_clean, "fec={}", frame.header.fec);
            if expect_clean {
                assert_eq!(&back, frame);
                assert!(stats.fec_corrected > 0);
                assert_eq!(stats.fec_failed_codewords, 0);
            }
        }
    }

    #[test]
    fn fec_overwhelmed_falls_back_to_crc_failure() {
        use crate::frame::format::FecMode;
        let cfg = SystemConfig::default();
        let mut c = codec();
        let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
        let frame = Frame::with_fec(d, FecMode::Light, payload(128)).unwrap();
        let slots = c.emit(&frame).unwrap();
        // Scramble the whole payload region deterministically.
        let mut s = slots.clone();
        let start = PREFIX_SLOTS + 40;
        for (i, slot) in s[start..].iter_mut().enumerate() {
            if i % 3 != 0 {
                *slot = !*slot;
            }
        }
        // A structural demod failure is an equally valid outcome; any
        // parse that *does* succeed must fail the CRC.
        if let Ok((_, stats)) = c.parse(&s) {
            assert!(!stats.crc_ok, "must not accept scrambled payload");
        }
    }

    #[test]
    fn whole_frame_brightness_matches_target() {
        // The compensation field's purpose: frame average ~ payload level.
        let mut c = codec();
        for l in [0.2, 0.35, 0.5, 0.75] {
            let frame = amppm_frame(l, 128);
            let slots = c.emit(&frame).unwrap();
            let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
            assert!((duty - l).abs() < 0.02, "l={l} duty={duty}");
        }
    }

    #[test]
    fn corrupted_payload_fails_crc_only() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 128);
        let mut slots = c.emit(&frame).unwrap();
        let n = slots.len();
        slots[n - 10] = !slots[n - 10];
        let (_, stats) = c.parse(&slots).unwrap();
        assert!(!stats.crc_ok);
        assert!(stats.symbol_failures >= 1);
    }

    #[test]
    fn corrupted_preamble_detected() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 16);
        let mut slots = c.emit(&frame).unwrap();
        for s in slots.iter_mut().take(5) {
            *s = !*s;
        }
        assert_eq!(c.parse(&slots), Err(FrameCodecError::BadPreamble));
    }

    #[test]
    fn preamble_tolerates_two_slot_errors() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 16);
        let mut slots = c.emit(&frame).unwrap();
        slots[0] = !slots[0];
        slots[7] = !slots[7];
        let (back, _) = c.parse(&slots).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn truncated_frame_detected() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 128);
        let slots = c.emit(&frame).unwrap();
        assert!(matches!(
            c.parse(&slots[..slots.len() / 2]),
            Err(FrameCodecError::Truncated { .. })
        ));
        assert!(matches!(
            c.parse(&slots[..10]),
            Err(FrameCodecError::Truncated { .. })
        ));
    }

    #[test]
    fn compensation_overrun_detected() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 16);
        let mut slots = c.emit(&frame).unwrap();
        // Replace everything after the prefix with a constant run.
        let cap = SystemConfig::default().n_max_super() as usize;
        slots.truncate(PREFIX_SLOTS);
        slots.extend(std::iter::repeat_n(true, cap + 10));
        assert_eq!(c.parse(&slots), Err(FrameCodecError::CompensationOverrun));
    }

    #[test]
    fn sync_edge_found_regardless_of_comp_length() {
        // Dim and bright targets produce very different compensation runs;
        // the parser must locate the payload in both.
        let mut c = codec();
        for l in [0.12, 0.88] {
            let frame = amppm_frame(l, 64);
            let slots = c.emit(&frame).unwrap();
            let (back, stats) = c.parse(&slots).unwrap();
            assert!(stats.crc_ok);
            assert_eq!(back, frame, "l={l}");
        }
    }

    #[test]
    fn empty_payload_frame() {
        let cfg = SystemConfig::default();
        let mut c = codec();
        let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
        let frame = Frame::new(d, Vec::new()).unwrap();
        let slots = c.emit(&frame).unwrap();
        let (back, stats) = c.parse(&slots).unwrap();
        assert!(stats.crc_ok);
        assert_eq!(back.payload, Vec::<u8>::new());
    }

    #[test]
    fn oneshot_helpers_work() {
        let cfg = SystemConfig::default();
        let frame = amppm_frame(0.4, 32);
        let slots = emit_frame(&frame, &cfg).unwrap();
        let (back, stats) = parse_frame(&slots, &cfg).unwrap();
        assert!(stats.crc_ok);
        assert_eq!(back, frame);
    }

    #[test]
    fn header_corruption_yields_header_or_demod_error_not_panic() {
        let mut c = codec();
        let frame = amppm_frame(0.5, 64);
        let slots = c.emit(&frame).unwrap();
        // Flip header bits; any outcome except panic/accept-clean is fine.
        for flip in PREAMBLE_SLOTS..PREFIX_SLOTS {
            let mut s = slots.clone();
            s[flip] = !s[flip];
            if let Ok((_, stats)) = c.parse(&s) {
                assert!(!stats.crc_ok, "flip={flip} accepted")
            }
        }
    }
}

#[cfg(test)]
mod compensation_tests {
    use super::compensation_plan;

    fn achieved(prefix_ones: usize, prefix_len: usize, target: f64, cap: usize) -> f64 {
        let (c, state) = compensation_plan(prefix_ones, prefix_len, target, cap);
        let sync_on = !state as usize;
        (prefix_ones + state as usize * c + sync_on) as f64 / (prefix_len + c + 1) as f64
    }

    #[test]
    fn darkens_bright_prefixes() {
        // A half-bright 72-slot prefix against a 0.1 target: long OFF run.
        let (c, state) = compensation_plan(36, 72, 0.1, 500);
        assert!(!state, "must darken");
        assert!(c > 100, "c={c}");
        assert!((achieved(36, 72, 0.1, 500) - 0.1).abs() < 0.01);
    }

    #[test]
    fn brightens_dark_prefixes() {
        let (c, state) = compensation_plan(10, 72, 0.8, 500);
        assert!(state, "must brighten");
        assert!(c > 50, "c={c}");
        assert!((achieved(10, 72, 0.8, 500) - 0.8).abs() < 0.01);
    }

    #[test]
    fn always_emits_at_least_one_slot() {
        // Even a perfectly matched prefix needs one comp slot so the
        // receiver can detect the sync edge.
        for target in [0.05f64, 0.3, 0.5, 0.7, 0.95] {
            let ones = (72.0 * target).round() as usize;
            let (c, _) = compensation_plan(ones, 72, target, 500);
            assert!(c >= 1, "target={target}");
        }
    }

    #[test]
    fn cap_bounds_the_run() {
        // An extreme target cannot produce a flicker-length run.
        let (c, _) = compensation_plan(36, 72, 0.02, 500);
        assert!(c <= 500, "c={c}");
        let (c, _) = compensation_plan(0, 72, 0.99, 500);
        assert!(c <= 500, "c={c}");
    }

    #[test]
    fn alignment_error_is_small_across_targets() {
        // Within [0.05, 0.90] the cap never binds and alignment is tight.
        for i in 1..=18 {
            let target = i as f64 / 20.0;
            let err = (achieved(30, 72, target, 500) - target).abs();
            assert!(err < 0.02, "target={target} err={err}");
        }
        // At 0.95 the Eq. 4 cap limits the ON run; the residual error is
        // the price of staying flicker-safe, and stays modest.
        let err = (achieved(30, 72, 0.95, 500) - 0.95).abs();
        assert!((0.005..0.05).contains(&err), "err={err}");
    }
}
