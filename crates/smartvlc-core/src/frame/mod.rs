//! The SmartVLC frame — Table 1 of the paper.
//!
//! ```text
//! | Preamble | Length | Pattern | Compensation | Sync  | Payload  | CRC |
//! |   3 B    |  2 B   |   4 B   |     x B      | 1 bit | 0..MAX B | 2 B |
//! ```
//!
//! * **Preamble** — 24 alternating ON/OFF slots marking frame start.
//! * **Length** — payload bytes, OOK-modulated (decodable before any
//!   pattern knowledge).
//! * **Pattern** — 4-byte descriptor of the payload modulation
//!   ([`format::PatternDescriptor`]).
//! * **Compensation** — consecutive ONs or OFFs sized so the
//!   preamble+header region matches the payload's dimming level; without
//!   it every frame header would be a 0.5-brightness blip (intra-frame
//!   Type-II flicker).
//! * **Sync** — a single slot of the opposite state, giving the receiver
//!   an edge that ends the compensation run.
//! * **Payload + CRC** — scheme-modulated payload with CRC-16/CCITT over
//!   header fields and payload.

pub mod codec;
pub mod crc;
pub mod format;

pub use codec::{emit_frame, parse_frame, FrameCodecError, FrameStats};
pub use crc::crc16_ccitt;
pub use format::{FecMode, Frame, FrameHeader, PatternDescriptor};
