//! CRC-16/CCITT-FALSE — the frame integrity check (Table 1's 2-byte CRC).
//!
//! Polynomial `0x1021`, initial value `0xFFFF`, no reflection, no final
//! XOR — the classic CCITT variant used by HDLC and 802.15.4, table-driven
//! for O(1) per byte.

/// 256-entry lookup table for polynomial 0x1021, generated at first use.
fn table() -> &'static [u16; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u16; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u16; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = (i as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// Compute CRC-16/CCITT-FALSE over `data`.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let t = table();
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        let idx = ((crc >> 8) ^ b as u16) as usize & 0xFF;
        crc = (crc << 8) ^ t[idx];
    }
    crc
}

/// Incremental CRC builder, for streaming over header + payload without
/// concatenating buffers.
#[derive(Clone, Copy, Debug)]
pub struct Crc16 {
    state: u16,
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// Fresh CRC state.
    pub fn new() -> Crc16 {
        Crc16 { state: 0xFFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let t = table();
        for &b in data {
            let idx = ((self.state >> 8) ^ b as u16) as usize & 0xFF;
            self.state = (self.state << 8) ^ t[idx];
        }
        self
    }

    /// Final checksum.
    pub fn finish(&self) -> u16 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The canonical CRC-16/CCITT-FALSE check: "123456789" -> 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_initial_value() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x42u8; 130];
        let base = crc16_ccitt(&data);
        for byte in [0usize, 64, 129] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc16_ccitt(&corrupted), base, "byte={byte} bit={bit}");
            }
        }
    }

    #[test]
    fn detects_transpositions() {
        let a = crc16_ccitt(&[1, 2, 3, 4]);
        let b = crc16_ccitt(&[1, 3, 2, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut inc = Crc16::new();
        inc.update(&data[..100]).update(&data[100..]);
        assert_eq!(inc.finish(), crc16_ccitt(&data));
    }
}
