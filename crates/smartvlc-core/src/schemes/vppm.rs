//! VPPM — Variable Pulse Position Modulation (IEEE 802.15.7), the §7
//! reference scheme.
//!
//! Each bit occupies one `N`-slot symbol containing a single contiguous
//! pulse of width `W = round(l·N)` slots: bit 1 puts the pulse at the
//! *start* of the symbol, bit 0 at the *end* (2-PPM with pulse-width
//! dimming). One bit per symbol regardless of `N`, so the normalized rate
//! is a flat `1/N` — which is why the paper notes VPPM is strictly worse
//! than MPPM in achievable throughput and skips it in the measurements.
//! We implement it anyway for the ablation benches.

use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, DemodError, DemodStats, SlotModem};
use combinat::BinomialTable;

/// A VPPM modem with symbol length `n` and pulse width `w`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VppmModem {
    n: u16,
    w: u16,
}

impl VppmModem {
    /// Create a modem with `n` slots per symbol at the given target level.
    ///
    /// Returns `None` when the snapped pulse width is 0 or `n` (bit 0 and
    /// bit 1 would be indistinguishable).
    pub fn new(n: u16, target: DimmingLevel) -> Option<VppmModem> {
        if n < 2 {
            return None;
        }
        let w = (target.value() * n as f64).round() as u16;
        if w == 0 || w >= n {
            None
        } else {
            Some(VppmModem { n, w })
        }
    }

    /// Slots per symbol.
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Pulse width in slots.
    pub fn width(&self) -> u16 {
        self.w
    }

    fn symbol_for(&self, bit: bool) -> Vec<bool> {
        let n = self.n as usize;
        let w = self.w as usize;
        let mut s = vec![false; n];
        if bit {
            s[..w].fill(true); // rising symbol: pulse leads
        } else {
            s[n - w..].fill(true); // falling symbol: pulse trails
        }
        s
    }

    /// Maximum-likelihood bit decision: correlate against both templates.
    fn decide(&self, symbol: &[bool]) -> (bool, bool) {
        let n = self.n as usize;
        let w = self.w as usize;
        let lead: i32 = symbol[..w].iter().map(|&b| b as i32).sum();
        let trail: i32 = symbol[n - w..].iter().map(|&b| b as i32).sum();
        // Ambiguous symbols (equal correlation) are flagged as failures.
        (lead > trail, lead == trail)
    }
}

impl SlotModem for VppmModem {
    fn dimming(&self) -> DimmingLevel {
        DimmingLevel::from_ratio(self.w as u32, self.n as u32).expect("w < n")
    }

    fn slots_for_payload(&self, _table: &BinomialTable, n_bytes: usize) -> usize {
        bits_for(n_bytes) * self.n as usize
    }

    fn modulate(&self, _table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let mut slots = Vec::with_capacity(bits_for(bytes.len()) * self.n as usize);
        for &b in bytes {
            for bit in (0..8).rev() {
                slots.extend(self.symbol_for((b >> bit) & 1 == 1));
            }
        }
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let expected = self.slots_for_payload(table, n_bytes);
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let mut bytes = Vec::with_capacity(n_bytes);
        let mut stats = DemodStats::default();
        let n = self.n as usize;
        for byte_idx in 0..n_bytes {
            let mut w = 0u8;
            for bit in 0..8 {
                let sym = &slots[(byte_idx * 8 + bit) * n..(byte_idx * 8 + bit + 1) * n];
                let (decided, ambiguous) = self.decide(sym);
                stats.symbols += 1;
                if ambiguous {
                    stats.symbol_failures += 1;
                }
                w = (w << 1) | decided as u8;
            }
            bytes.push(w);
        }
        Ok((bytes, stats))
    }

    fn norm_rate(&self, _table: &BinomialTable) -> f64 {
        1.0 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolPattern;

    fn table() -> BinomialTable {
        BinomialTable::new(64)
    }

    #[test]
    fn construction_limits() {
        let l = |x: f64| DimmingLevel::new(x).unwrap();
        assert!(VppmModem::new(10, l(0.5)).is_some());
        assert!(VppmModem::new(10, l(0.01)).is_none()); // w = 0
        assert!(VppmModem::new(10, l(0.99)).is_none()); // w = n
        assert!(VppmModem::new(1, l(0.5)).is_none());
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let payload: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37)).collect();
        for l in [0.1, 0.3, 0.5, 0.8] {
            let m = VppmModem::new(10, DimmingLevel::new(l).unwrap()).unwrap();
            let slots = m.modulate(&t, &payload);
            assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
            let (back, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
            assert_eq!(back, payload, "l={l}");
            assert_eq!(stats.symbol_failures, 0);
        }
    }

    #[test]
    fn waveform_realizes_dimming_exactly() {
        let t = table();
        let m = VppmModem::new(10, DimmingLevel::new(0.3).unwrap()).unwrap();
        let slots = m.modulate(&t, &[0x0F; 13]);
        let ones = slots.iter().filter(|&&b| b).count();
        assert_eq!(ones as f64 / slots.len() as f64, 0.3);
    }

    #[test]
    fn strictly_slower_than_mppm_same_n() {
        let t = table();
        for k in 2..=8u16 {
            let l = DimmingLevel::from_ratio(k as u32, 10).unwrap();
            let v = VppmModem::new(10, l).unwrap();
            let m = SymbolPattern::new(10, k).unwrap();
            assert!(v.norm_rate(&t) < m.normalized_rate(&t), "k={k}");
        }
    }

    #[test]
    fn ambiguous_symbol_flagged() {
        let t = table();
        let m = VppmModem::new(10, DimmingLevel::new(0.5).unwrap()).unwrap();
        // A symbol with equal lead/trail correlation (2 ones in each half).
        let sym = vec![
            true, true, false, false, false, false, false, true, true, false,
        ];
        let mut slots = m.modulate(&t, &[0u8]);
        slots[..10].copy_from_slice(&sym);
        let (_, stats) = m.demodulate(&t, &slots, 1).unwrap();
        assert_eq!(stats.symbol_failures, 1);
    }

    #[test]
    fn decide_tolerates_slot_noise() {
        let m = VppmModem::new(10, DimmingLevel::new(0.5).unwrap()).unwrap();
        let mut sym = m.symbol_for(true);
        sym[9] = true; // one noise slot in the trailing half
        assert_eq!(m.decide(&sym), (true, false));
    }
}
