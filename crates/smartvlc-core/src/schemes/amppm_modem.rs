//! AMPPM packaged as a [`SlotModem`]: the planner's chosen super-symbol
//! driving the payload field.
//!
//! The payload is modulated by cycling through the super-symbol's
//! constituent symbol sequence and stopping as soon as the block's bits
//! are covered — the final super-symbol may be *partial*. Padding to
//! whole super-symbols would waste up to `bits(super) − 1` bits per block
//! (as much as 25% for the paper's 128 B payloads at extreme dimming
//! levels); truncation costs at most one symbol of padding. Both sides
//! derive the same truncation point from the block length in the frame
//! header, and the dimming deviation of one partial super-symbol within
//! a frame is far below the perception threshold.

use crate::amppm::planner::SuperSymbolPlan;
use crate::amppm::super_symbol::SuperSymbol;
use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, DemodError, DemodStats, SlotModem};
use crate::symbol::SymbolPattern;
use combinat::{BigUint, BinomialTable, BitReader, BitWriter, CodewordError, EncodeScratch};

/// A modem that repeats one AMPPM super-symbol over the payload block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmppmModem {
    super_symbol: SuperSymbol,
}

impl AmppmModem {
    /// Wrap a planner-produced plan.
    pub fn from_plan(plan: &SuperSymbolPlan) -> AmppmModem {
        AmppmModem {
            super_symbol: plan.super_symbol,
        }
    }

    /// Wrap a raw super-symbol (tests, ablations).
    pub fn new(super_symbol: SuperSymbol) -> AmppmModem {
        AmppmModem { super_symbol }
    }

    /// The super-symbol in use.
    pub fn super_symbol(&self) -> SuperSymbol {
        self.super_symbol
    }

    /// The symbol patterns (with per-symbol bit counts) that cover
    /// `n_bytes`, cycling the super-symbol's sequence and truncating
    /// after the last needed symbol.
    fn symbol_walk(&self, table: &BinomialTable, n_bytes: usize) -> Vec<(SymbolPattern, u32)> {
        let seq = self.super_symbol.symbol_sequence();
        let per_super: u32 = seq.iter().map(|p| p.bits_per_symbol(table)).sum();
        assert!(
            per_super > 0,
            "super-symbol carries no data: {:?}",
            self.super_symbol
        );
        let needed = bits_for(n_bytes) as u64;
        let mut out = Vec::new();
        let mut covered = 0u64;
        'outer: loop {
            for &p in &seq {
                let b = p.bits_per_symbol(table);
                out.push((p, b));
                covered += b as u64;
                if covered >= needed {
                    break 'outer;
                }
            }
        }
        out
    }

    /// The truncated walk's partial super-symbol skews the block's duty
    /// away from `lsuper` (its two patterns differ in dimming). A short
    /// data-free filler restores the exact ratio so frame tails don't
    /// produce Type-II brightness dips/bumps: `filler_len` slots of which
    /// `filler_ones` are ON, both pure functions of the walk.
    fn tail_filler(&self, walk: &[(SymbolPattern, u32)]) -> (usize, usize) {
        let slots: u64 = walk.iter().map(|&(p, _)| p.n() as u64).sum();
        let ones: u64 = walk.iter().map(|&(p, _)| p.k() as u64).sum();
        let l = self.super_symbol.dimming();
        // Find the smallest filler that brings the total within half a
        // slot of the target ratio. Capped defensively; typical lengths
        // are a handful of slots.
        let cap = 4 * self.super_symbol.n_super() as usize;
        for f in 0..=cap {
            let target = l * (slots + f as u64) as f64;
            let o = (target - ones as f64).round();
            if o >= 0.0 && o <= f as f64 && (ones as f64 + o - target).abs() <= 0.5 {
                return (f, o as usize);
            }
        }
        (0, 0)
    }

    fn filler_slots(len: usize, ones: usize) -> impl Iterator<Item = bool> {
        (0..len).map(move |i| (i * ones) / len.max(1) != ((i + 1) * ones) / len.max(1))
    }
}

impl SlotModem for AmppmModem {
    fn dimming(&self) -> DimmingLevel {
        DimmingLevel::clamped(self.super_symbol.dimming())
    }

    fn slots_for_payload(&self, table: &BinomialTable, n_bytes: usize) -> usize {
        let walk = self.symbol_walk(table, n_bytes);
        let (filler, _) = self.tail_filler(&walk);
        walk.iter().map(|(p, _)| p.n() as usize).sum::<usize>() + filler
    }

    fn modulate(&self, table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let walk = self.symbol_walk(table, bytes.len());
        let (filler, filler_ones) = self.tail_filler(&walk);
        let mut reader = BitReader::new(bytes);
        let mut slots = Vec::new();
        let mut scratch = EncodeScratch::new();
        for (pattern, bits) in walk {
            let mut word = reader.read_bits(bits as usize);
            word.resize(bits as usize, false);
            let value = BigUint::from_bits_msb(&word);
            pattern
                .encode_into(table, &value, &mut scratch, &mut slots)
                .expect("value bounded by bits_per_symbol");
        }
        slots.extend(Self::filler_slots(filler, filler_ones));
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let walk = self.symbol_walk(table, n_bytes);
        let (filler, _) = self.tail_filler(&walk);
        let expected: usize = walk.iter().map(|(p, _)| p.n() as usize).sum::<usize>() + filler;
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let mut writer = BitWriter::new();
        let mut stats = DemodStats::default();
        let mut scratch = EncodeScratch::new();
        let mut offset = 0usize;
        for (pattern, bits) in walk {
            let n = pattern.n() as usize;
            stats.symbols += 1;
            match pattern.decode_with(table, &slots[offset..offset + n], &mut scratch) {
                // A corrupted symbol can keep its weight by chance yet
                // rank beyond the 2^bits data window (C(N,K) is not a
                // power of two); that is a symbol error, not a panic.
                Ok(value) if value.bit_length() <= bits => {
                    for b in value.to_bits_msb(bits) {
                        writer.write_bit(b);
                    }
                }
                Ok(_) | Err(CodewordError::WrongWeight { .. }) => {
                    stats.symbol_failures += 1;
                    for _ in 0..bits {
                        writer.write_bit(false);
                    }
                }
                Err(e) => return Err(e.into()),
            }
            offset += n;
        }
        let (mut bytes, _) = writer.finish();
        bytes.truncate(n_bytes);
        bytes.resize(n_bytes, 0);
        Ok((bytes, stats))
    }

    fn norm_rate(&self, table: &BinomialTable) -> f64 {
        self.super_symbol.normalized_rate(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amppm::planner::AmppmPlanner;
    use crate::config::SystemConfig;

    fn table() -> BinomialTable {
        BinomialTable::new(512)
    }

    fn s(n: u16, k: u16) -> SymbolPattern {
        SymbolPattern::new(n, k).unwrap()
    }

    #[test]
    fn roundtrip_mixed_super_symbol() {
        let t = table();
        let ss = SuperSymbol::new(s(21, 11), 2, s(10, 4), 3).unwrap();
        let m = AmppmModem::new(ss);
        let payload: Vec<u8> = (0..128u8).collect();
        let slots = m.modulate(&t, &payload);
        assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
        let (back, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(back, payload);
        assert_eq!(stats.symbol_failures, 0);
        assert!(stats.symbols > 0);
    }

    #[test]
    fn truncation_wastes_at_most_one_symbol() {
        // A big super-symbol against a small block: the walk must stop
        // right after covering the bits, not pad to the full super.
        let t = table();
        let ss = SuperSymbol::new(s(21, 11), 10, s(20, 10), 10).unwrap();
        let m = AmppmModem::new(ss);
        let n_bytes = 16; // 128 bits << bits(super) ~ 350
        let slots = m.slots_for_payload(&t, n_bytes);
        assert!(slots < ss.n_super() as usize, "padded to a whole super");
        // Covered bits within one symbol of the requirement.
        let walk_bits: u32 = m.symbol_walk(&t, n_bytes).iter().map(|&(_, b)| b).sum();
        assert!(walk_bits >= 128);
        assert!(walk_bits < 128 + 19, "walk_bits={walk_bits}");
    }

    #[test]
    fn planner_plan_roundtrips_all_levels() {
        let planner = AmppmPlanner::new(SystemConfig::default()).unwrap();
        let t = table();
        let payload = vec![0xC3u8; 128]; // paper's 128 B payload
        for i in 2..=18 {
            let l = DimmingLevel::new(i as f64 / 20.0).unwrap();
            let plan = planner.plan(l).unwrap();
            if plan.norm_rate == 0.0 {
                continue;
            }
            let m = AmppmModem::from_plan(&plan);
            let slots = m.modulate(&t, &payload);
            let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
            // Truncation of the final super-symbol may shift the block
            // duty slightly; it must stay within a couple percent.
            assert!(
                (duty - plan.achieved.value()).abs() < 0.02,
                "modulated duty {duty} drifts from plan at l={:?}",
                l
            );
            let (back, _) = m.demodulate(&t, &slots, payload.len()).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn corrupted_super_symbol_counts_failures() {
        let t = table();
        let ss = SuperSymbol::new(s(10, 3), 2, s(10, 4), 2).unwrap();
        let m = AmppmModem::new(ss);
        let payload = [0x55u8; 30];
        let mut slots = m.modulate(&t, &payload);
        slots[3] = !slots[3];
        let (_, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(stats.symbol_failures, 1);
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = table();
        let m = AmppmModem::new(SuperSymbol::uniform(s(10, 5), 3).unwrap());
        let slots = m.modulate(&t, &[0u8; 8]);
        assert!(matches!(
            m.demodulate(&t, &slots[..slots.len() - 10], 8),
            Err(DemodError::LengthMismatch { .. })
        ));
    }
}
