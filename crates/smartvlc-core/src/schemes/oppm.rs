//! OPPM — Overlapping Pulse Position Modulation (Bai, Xu & Fan, ref [8]
//! of the paper: "Joint LED dimming and high capacity visible light
//! communication by overlapping PPM").
//!
//! One contiguous pulse of width `w` slots starts at one of the allowed
//! positions of an `n`-slot symbol; positions may *overlap* (stride 1),
//! giving `n − w + 1` codewords — `⌊log2(n−w+1)⌋` bits per symbol — at a
//! dimming level of `w/n`. Like MPPM it is compensation-free; unlike
//! MPPM its constant-weight structure is a single run, so it trades
//! ~half of MPPM's rate for much simpler pulse detection (matched filter
//! over one edge pair). The paper groups it with the compensation-free
//! family in §7; we include it for the scheme-ablation benches.

use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, div_ceil, DemodError, DemodStats, SlotModem};
use combinat::BinomialTable;

/// An OPPM modem with symbol length `n` and pulse width `w`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OppmModem {
    n: u16,
    w: u16,
}

impl OppmModem {
    /// Create a modem: `n` slots per symbol, pulse width snapped from the
    /// target dimming level. `None` when fewer than two pulse positions
    /// exist (no data) or the width degenerates to 0 or n.
    pub fn new(n: u16, target: DimmingLevel) -> Option<OppmModem> {
        if n < 3 {
            return None;
        }
        let w = (target.value() * n as f64).round() as u16;
        OppmModem::from_raw(n, w)
    }

    /// Create from explicit `(n, w)`.
    pub fn from_raw(n: u16, w: u16) -> Option<OppmModem> {
        if n < 3 || w == 0 || w >= n {
            return None;
        }
        let positions = n - w + 1;
        if positions < 2 {
            return None;
        }
        Some(OppmModem { n, w })
    }

    /// Slots per symbol.
    pub fn n(self) -> u16 {
        self.n
    }

    /// Pulse width in slots.
    pub fn width(self) -> u16 {
        self.w
    }

    /// Distinct pulse positions.
    pub fn positions(self) -> u16 {
        self.n - self.w + 1
    }

    /// Data bits per symbol: `⌊log2(n − w + 1)⌋`.
    pub fn bits_per_symbol(self) -> u32 {
        31 - (self.positions() as u32).leading_zeros()
    }

    fn encode_symbol(self, value: u16) -> Vec<bool> {
        debug_assert!(value < self.positions());
        let mut s = vec![false; self.n as usize];
        s[value as usize..(value + self.w) as usize].fill(true);
        s
    }

    /// Maximum-likelihood position: the offset whose `w`-slot window
    /// contains the most ON slots (ties toward the smaller offset, i.e.
    /// the transmitted convention).
    fn decode_symbol(self, slots: &[bool]) -> (u16, bool) {
        let w = self.w as usize;
        let mut best_pos = 0u16;
        let mut best_score = -1i32;
        let mut window: i32 = slots[..w].iter().map(|&b| b as i32).sum();
        let mut pos = 0u16;
        loop {
            if window > best_score {
                best_score = window;
                best_pos = pos;
            }
            let next = pos as usize + w;
            if next >= slots.len() {
                break;
            }
            window += slots[next] as i32 - slots[pos as usize] as i32;
            pos += 1;
        }
        // A clean symbol scores exactly w; anything less means slot noise
        // touched the pulse (decodable but degraded).
        let degraded = best_score < self.w as i32;
        // Out-of-range positions cannot occur: the scan is bounded.
        let ambiguous = degraded && best_score * 2 <= self.w as i32;
        (best_pos.min(self.positions() - 1), ambiguous)
    }
}

impl SlotModem for OppmModem {
    fn dimming(&self) -> DimmingLevel {
        DimmingLevel::from_ratio(self.w as u32, self.n as u32).expect("w < n")
    }

    fn slots_for_payload(&self, _table: &BinomialTable, n_bytes: usize) -> usize {
        let bits = self.bits_per_symbol() as usize;
        div_ceil(bits_for(n_bytes), bits) * self.n as usize
    }

    fn modulate(&self, _table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let bits = self.bits_per_symbol() as usize;
        let symbols = div_ceil(bits_for(bytes.len()), bits);
        let mut reader = combinat::BitReader::new(bytes);
        let mut slots = Vec::with_capacity(symbols * self.n as usize);
        for _ in 0..symbols {
            let v = reader.read_uint(bits).unwrap_or_else(|| {
                // Final partial word: gather what remains, zero-padded.
                let mut v = 0u64;
                let rem = reader.read_bits(bits);
                for (i, b) in rem.iter().enumerate() {
                    v |= (*b as u64) << (bits - 1 - i);
                }
                v
            });
            slots.extend(self.encode_symbol(v as u16));
        }
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let expected = self.slots_for_payload(table, n_bytes);
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let bits = self.bits_per_symbol() as usize;
        let mut writer = combinat::BitWriter::new();
        let mut stats = DemodStats::default();
        for chunk in slots.chunks_exact(self.n as usize) {
            stats.symbols += 1;
            let (pos, ambiguous) = self.decode_symbol(chunk);
            if ambiguous {
                stats.symbol_failures += 1;
            }
            writer.write_uint(pos as u64, bits);
        }
        let (mut bytes, _) = writer.finish();
        bytes.truncate(n_bytes);
        bytes.resize(n_bytes, 0);
        Ok((bytes, stats))
    }

    fn norm_rate(&self, _table: &BinomialTable) -> f64 {
        self.bits_per_symbol() as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolPattern;

    fn table() -> BinomialTable {
        BinomialTable::new(64)
    }

    #[test]
    fn construction_rules() {
        let l = |x: f64| DimmingLevel::new(x).unwrap();
        assert!(OppmModem::new(10, l(0.3)).is_some());
        assert!(OppmModem::new(10, l(0.01)).is_none()); // w = 0
        assert!(OppmModem::new(10, l(0.99)).is_none()); // w = n
                                                        // w = 9 leaves exactly 2 positions: 1 bit/symbol, still valid.
        let edge = OppmModem::from_raw(10, 9).unwrap();
        assert_eq!(edge.bits_per_symbol(), 1);
        assert!(OppmModem::from_raw(2, 1).is_none()); // n < 3
        assert!(OppmModem::from_raw(10, 10).is_none()); // w = n
        assert!(OppmModem::from_raw(10, 0).is_none());
    }

    #[test]
    fn positions_and_bits() {
        let m = OppmModem::from_raw(10, 3).unwrap();
        assert_eq!(m.positions(), 8);
        assert_eq!(m.bits_per_symbol(), 3);
        let m = OppmModem::from_raw(20, 10).unwrap();
        assert_eq!(m.positions(), 11);
        assert_eq!(m.bits_per_symbol(), 3);
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let payload: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(73)).collect();
        for (n, w) in [(10, 3), (16, 8), (20, 2), (12, 6)] {
            let m = OppmModem::from_raw(n, w).unwrap();
            let slots = m.modulate(&t, &payload);
            assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
            let (back, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
            assert_eq!(back, payload, "n={n} w={w}");
            assert_eq!(stats.symbol_failures, 0);
        }
    }

    #[test]
    fn waveform_duty_matches() {
        let t = table();
        let m = OppmModem::from_raw(10, 3).unwrap();
        let slots = m.modulate(&t, &[0xFF; 30]);
        let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
        assert!((duty - 0.3).abs() < 1e-9);
    }

    #[test]
    fn slower_than_mppm_same_shape() {
        // The reason the paper builds on MPPM: at the same (n, duty),
        // MPPM's C(n,k) codebook beats OPPM's n-w+1 positions.
        let t = table();
        for (n, k) in [(10u16, 3u16), (20, 6), (16, 8)] {
            let mppm = SymbolPattern::new(n, k).unwrap();
            let oppm = OppmModem::from_raw(n, k).unwrap();
            assert!(oppm.norm_rate(&t) < mppm.normalized_rate(&t), "n={n} k={k}");
        }
    }

    #[test]
    fn single_slot_noise_is_tolerated() {
        let t = table();
        let m = OppmModem::from_raw(12, 5).unwrap();
        let payload = [0x5Au8; 12];
        let mut slots = m.modulate(&t, &payload);
        // Knock one slot out of the middle of a pulse: matched filter
        // still finds the position.
        let hit = slots.iter().position(|&b| b).unwrap() + 2;
        slots[hit] = false;
        let (back, _) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn obliterated_symbol_flags_ambiguity() {
        let t = table();
        let m = OppmModem::from_raw(12, 5).unwrap();
        let payload = [0x00u8; 3];
        let mut slots = m.modulate(&t, &payload);
        for s in slots.iter_mut().take(12) {
            *s = false; // first symbol wiped dark
        }
        let (_, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert!(stats.symbol_failures >= 1);
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = table();
        let m = OppmModem::from_raw(10, 3).unwrap();
        let slots = m.modulate(&t, &[1, 2, 3]);
        assert!(matches!(
            m.demodulate(&t, &slots[..slots.len() - 1], 3),
            Err(DemodError::LengthMismatch { .. })
        ));
    }
}
