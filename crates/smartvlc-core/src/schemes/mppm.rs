//! MPPM — the compensation-free baseline (§2.1 of the paper).
//!
//! Data is carried by the *positions* of the `K` ON slots within each
//! `N`-slot symbol; the dimming level is locked to the `K/N` lattice. The
//! paper's evaluation fixes `N = 20` ("an appropriate value of N is
//! selected as 20" so the SER stays under the bound) and sweeps `K`.

use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, div_ceil, DemodError, DemodStats, SlotModem};
use crate::symbol::SymbolPattern;
use combinat::{BigUint, BinomialTable, BitReader, BitWriter, CodewordError, EncodeScratch};

/// A fixed-pattern MPPM modem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MppmModem {
    pattern: SymbolPattern,
}

impl MppmModem {
    /// Modem using pattern `S(n, k/n)`.
    pub fn new(pattern: SymbolPattern) -> MppmModem {
        MppmModem { pattern }
    }

    /// The paper's evaluation baseline: `N = 20`, `K = round(l·20)`.
    pub fn paper_baseline(target: DimmingLevel) -> MppmModem {
        MppmModem {
            pattern: SymbolPattern::from_dimming(20, target),
        }
    }

    /// The underlying symbol pattern.
    pub fn pattern(&self) -> SymbolPattern {
        self.pattern
    }

    fn symbols_for(&self, table: &BinomialTable, n_bytes: usize) -> usize {
        let bits = self.pattern.bits_per_symbol(table) as usize;
        assert!(bits > 0, "pattern carries no data: {:?}", self.pattern);
        div_ceil(bits_for(n_bytes), bits)
    }
}

impl SlotModem for MppmModem {
    fn dimming(&self) -> DimmingLevel {
        self.pattern.dimming()
    }

    fn slots_for_payload(&self, table: &BinomialTable, n_bytes: usize) -> usize {
        self.symbols_for(table, n_bytes) * self.pattern.n() as usize
    }

    fn modulate(&self, table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let symbols = self.symbols_for(table, bytes.len());
        let bits = self.pattern.bits_per_symbol(table) as usize;
        let mut reader = BitReader::new(bytes);
        let mut slots = Vec::with_capacity(symbols * self.pattern.n() as usize);
        let mut scratch = EncodeScratch::new();
        for _ in 0..symbols {
            let mut word = reader.read_bits(bits);
            word.resize(bits, false);
            let value = BigUint::from_bits_msb(&word);
            self.pattern
                .encode_into(table, &value, &mut scratch, &mut slots)
                .expect("value bounded by bits_per_symbol");
        }
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let expected = self.slots_for_payload(table, n_bytes);
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let n = self.pattern.n() as usize;
        let bits = self.pattern.bits_per_symbol(table);
        let mut writer = BitWriter::new();
        let mut stats = DemodStats::default();
        let mut scratch = EncodeScratch::new();
        for chunk in slots.chunks_exact(n) {
            stats.symbols += 1;
            match self.pattern.decode_with(table, chunk, &mut scratch) {
                // Ranks at or beyond 2^bits are never transmitted; a
                // corrupted symbol landing there is a symbol error.
                Ok(value) if value.bit_length() <= bits => {
                    for b in value.to_bits_msb(bits) {
                        writer.write_bit(b);
                    }
                }
                Ok(_) | Err(CodewordError::WrongWeight { .. }) => {
                    stats.symbol_failures += 1;
                    for _ in 0..bits {
                        writer.write_bit(false);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        let (mut bytes, _) = writer.finish();
        bytes.truncate(n_bytes);
        bytes.resize(n_bytes, 0);
        Ok((bytes, stats))
    }

    fn norm_rate(&self, table: &BinomialTable) -> f64 {
        self.pattern.normalized_rate(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(64)
    }

    fn modem(n: u16, k: u16) -> MppmModem {
        MppmModem::new(SymbolPattern::new(n, k).unwrap())
    }

    #[test]
    fn roundtrip_various_patterns() {
        let t = table();
        let payload: Vec<u8> = (0..=255u8).collect();
        for (n, k) in [(20, 2), (20, 10), (20, 18), (10, 5), (21, 11)] {
            let m = modem(n, k);
            let slots = m.modulate(&t, &payload);
            assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
            let (back, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
            assert_eq!(back, payload, "S({n},{k})");
            assert_eq!(stats.symbol_failures, 0);
        }
    }

    #[test]
    fn waveform_realizes_exact_dimming() {
        let t = table();
        let m = modem(20, 6);
        let slots = m.modulate(&t, &[0x5A; 64]);
        let ones = slots.iter().filter(|&&b| b).count();
        assert_eq!(ones as f64 / slots.len() as f64, 0.3);
    }

    #[test]
    fn paper_baseline_snaps_to_lattice() {
        let m = MppmModem::paper_baseline(DimmingLevel::new(0.13).unwrap());
        assert_eq!(m.pattern().k(), 3); // 0.13*20 = 2.6 -> 3
        assert_eq!(m.dimming().value(), 0.15);
    }

    #[test]
    fn corrupted_symbol_counted_not_fatal() {
        let t = table();
        let m = modem(20, 10);
        let payload = [0xFFu8; 32];
        let mut slots = m.modulate(&t, &payload);
        slots[0] = !slots[0];
        slots[25] = !slots[25];
        let (_, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(stats.symbol_failures, 2);
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = table();
        let m = modem(20, 10);
        let slots = m.modulate(&t, &[0; 16]);
        assert!(matches!(
            m.demodulate(&t, &slots[..slots.len() - 1], 16),
            Err(DemodError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn norm_rate_matches_eq_2() {
        let t = table();
        assert!((modem(20, 2).norm_rate(&t) - 0.35).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "carries no data")]
    fn zero_bit_pattern_panics_on_use() {
        let t = table();
        modem(20, 0).slots_for_payload(&t, 8);
    }
}
