//! OOK-CT — On-Off Keying with Compensation Time, the compensation-based
//! baseline (§2.1, Fig. 1 of the paper).
//!
//! Bits map directly to slots (1 = ON). With scrambled data the payload
//! field averages 50% brightness, so *compensation time* of ONs (to
//! brighten) or OFFs (to darken) is added until the block average hits
//! the target dimming level. (We spread the compensation slots evenly
//! through the data instead of appending one block — a 4·D-slot solid
//! run at l = 0.1 would itself be Type-I flicker; the layout is a pure
//! function of the lengths, so the receiver derives it from the header.)
//! Any level is reachable — that is OOK-CT's appeal — but the
//! compensation slots carry no information, so throughput collapses
//! toward the dimming extremes:
//!
//! ```text
//! efficiency(l) = D / (D + c) = min(l, 1−l) / 0.5      (for 50% data)
//! ```
//!
//! e.g. 20% of peak at `l = 0.1` — exactly the deep valley OOK-CT shows in
//! Fig. 15.
//!
//! ## Scrambling
//!
//! The compensation length must be computable by the receiver *before*
//! decoding, so it cannot depend on the payload's actual ONE count. We
//! therefore scramble the payload with a fixed PRBS whitener (both sides
//! share it), size compensation for the expected 50% duty, and accept the
//! residual per-frame brightness jitter — the same engineering choice
//! real OOK links make.

use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, DemodError, DemodStats, SlotModem};
use combinat::BinomialTable;

/// True when position `i` of a `total`-slot block carries one of the `c`
/// evenly-spread compensation slots (both sides compute the same layout
/// from the header's length and dimming level — no extra signalling).
fn is_comp_slot(i: usize, c: usize, total: usize) -> bool {
    debug_assert!(i < total && c <= total);
    (i * c) / total != ((i + 1) * c) / total
}

/// Multiplicative congruential whitening sequence (PCG-ish byte stream).
fn scramble_byte(index: usize) -> u8 {
    let x = (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31);
    (x ^ (x >> 17)) as u8
}

/// The OOK-CT modem at a fixed target dimming level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OokCtModem {
    target: DimmingLevel,
}

impl OokCtModem {
    /// Dimming levels this modem supports: compensation length diverges at
    /// the extremes, so levels outside `[MIN_LEVEL, MAX_LEVEL]` are
    /// rejected.
    pub const MIN_LEVEL: f64 = 0.02;
    /// See [`OokCtModem::MIN_LEVEL`].
    pub const MAX_LEVEL: f64 = 0.98;

    /// Create a modem for `target`; `None` outside the supported range.
    pub fn new(target: DimmingLevel) -> Option<OokCtModem> {
        if (Self::MIN_LEVEL..=Self::MAX_LEVEL).contains(&target.value()) {
            Some(OokCtModem { target })
        } else {
            None
        }
    }

    /// Compensation slots appended after `data_slots` payload slots, and
    /// the compensation state (ON = `true`).
    ///
    /// Solves `(0.5·D + state·c) / (D + c) = l` for integer `c ≥ 0`.
    pub fn compensation(&self, data_slots: usize) -> (usize, bool) {
        let l = self.target.value();
        let d = data_slots as f64;
        if l >= 0.5 {
            // Brighten with ONs: c = D(l − ½) / (1 − l).
            let c = d * (l - 0.5) / (1.0 - l);
            (c.round() as usize, true)
        } else {
            // Darken with OFFs: c = D(½ − l) / l.
            let c = d * (0.5 - l) / l;
            (c.round() as usize, false)
        }
    }

    /// Slot efficiency `D/(D+c)` — the analytic factor behind Fig. 15's
    /// OOK-CT curve.
    pub fn efficiency(&self) -> f64 {
        let (c, _) = self.compensation(1_000_000);
        1_000_000.0 / (1_000_000.0 + c as f64)
    }
}

impl SlotModem for OokCtModem {
    fn dimming(&self) -> DimmingLevel {
        self.target
    }

    fn slots_for_payload(&self, _table: &BinomialTable, n_bytes: usize) -> usize {
        let d = bits_for(n_bytes);
        let (c, _) = self.compensation(d);
        d + c
    }

    fn modulate(&self, _table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let d = bits_for(bytes.len());
        let (c, comp_on) = self.compensation(d);
        let total = d + c;
        // Data bits, scrambled.
        let mut data = Vec::with_capacity(d);
        for (i, &b) in bytes.iter().enumerate() {
            let w = b ^ scramble_byte(i);
            for bit in (0..8).rev() {
                data.push((w >> bit) & 1 == 1);
            }
        }
        // Interleave compensation evenly among the data (see
        // `is_comp_slot`): a single appended block of `c` identical slots
        // would be a Type-I flicker source at extreme dimming levels
        // (e.g. 4·D consecutive OFFs at l = 0.1 is an 8+ ms dark gap).
        let mut slots = Vec::with_capacity(total);
        let mut di = 0usize;
        for i in 0..total {
            if is_comp_slot(i, c, total) {
                slots.push(comp_on);
            } else {
                slots.push(data[di]);
                di += 1;
            }
        }
        debug_assert_eq!(di, d);
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let expected = self.slots_for_payload(table, n_bytes);
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let d = bits_for(n_bytes);
        let (c, _) = self.compensation(d);
        let total = d + c;
        let mut data = Vec::with_capacity(d);
        for (i, &s) in slots.iter().enumerate() {
            if !is_comp_slot(i, c, total) {
                data.push(s);
            }
        }
        let mut bytes = Vec::with_capacity(n_bytes);
        for i in 0..n_bytes {
            let mut w = 0u8;
            for bit in 0..8 {
                w = (w << 1) | data[i * 8 + bit] as u8;
            }
            bytes.push(w ^ scramble_byte(i));
        }
        // OOK has no per-symbol integrity structure; errors surface at the
        // frame CRC. Report the data field as one "symbol".
        Ok((
            bytes,
            DemodStats {
                symbol_failures: 0,
                symbols: 1,
            },
        ))
    }

    fn norm_rate(&self, _table: &BinomialTable) -> f64 {
        self.efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(16)
    }

    fn modem(l: f64) -> OokCtModem {
        OokCtModem::new(DimmingLevel::new(l).unwrap()).unwrap()
    }

    #[test]
    fn rejects_extreme_levels() {
        assert!(OokCtModem::new(DimmingLevel::OFF).is_none());
        assert!(OokCtModem::new(DimmingLevel::FULL).is_none());
        assert!(OokCtModem::new(DimmingLevel::new(0.01).unwrap()).is_none());
        assert!(OokCtModem::new(DimmingLevel::new(0.5).unwrap()).is_some());
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let payload: Vec<u8> = (0..=200u8).collect();
        for l in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let m = modem(l);
            let slots = m.modulate(&t, &payload);
            assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
            let (back, _) = m.demodulate(&t, &slots, payload.len()).unwrap();
            assert_eq!(back, payload, "l={l}");
        }
    }

    #[test]
    fn no_compensation_at_half() {
        let m = modem(0.5);
        let (c, _) = m.compensation(1024);
        assert_eq!(c, 0);
        assert!((m.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_matches_closed_form() {
        // efficiency(l) = min(l, 1-l)/0.5 for 50% data duty.
        for l in [0.1, 0.2, 0.35, 0.65, 0.9] {
            let m = modem(l);
            let expect = l.min(1.0 - l) / 0.5;
            assert!(
                (m.efficiency() - expect).abs() < 1e-3,
                "l={l}: {} vs {expect}",
                m.efficiency()
            );
        }
    }

    #[test]
    fn waveform_brightness_near_target() {
        // Scrambled data keeps the block average within a couple percent.
        let t = table();
        let payload = [0u8; 128]; // pathological all-zero payload
        for l in [0.1, 0.5, 0.8] {
            let m = modem(l);
            let slots = m.modulate(&t, &payload);
            let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
            assert!((duty - l).abs() < 0.05, "l={l} duty={duty}");
        }
    }

    #[test]
    fn compensation_state_follows_target() {
        assert!(modem(0.8).compensation(100).1); // ONs to brighten
        assert!(!modem(0.2).compensation(100).1); // OFFs to darken
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = table();
        let m = modem(0.4);
        let slots = m.modulate(&t, &[1, 2, 3]);
        assert!(matches!(
            m.demodulate(&t, &slots[1..], 3),
            Err(DemodError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn scrambler_is_involutive_through_roundtrip() {
        // Scrambling must not leak into the recovered bytes.
        let t = table();
        let m = modem(0.5);
        let payload = vec![0xAA; 16];
        let slots = m.modulate(&t, &payload);
        // The waveform itself must NOT be the plain 10101010 pattern.
        let plain: Vec<bool> = payload
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect();
        assert_ne!(&slots[..128], &plain[..]);
        let (back, _) = m.demodulate(&t, &slots, 16).unwrap();
        assert_eq!(back, payload);
    }
}
