//! DarkLight-style night mode — the §7 combination the paper proposes.
//!
//! "SmartVLC is orthogonal to DarkLight and can be combined with it for
//! better performance. When illumination is required, SmartVLC can be
//! applied and when illumination is not required (e.g., at night),
//! DarkLight can then be applied instead." [Tian, Wright & Zhou,
//! MobiCom'16]
//!
//! DarkLight communicates while the LED *appears off*: ultra-short
//! pulses at duty cycles below ~1%, encoding data in the gaps between
//! pulses. We realize it on the SmartVLC substrate as inter-pulse-gap
//! modulation: each symbol is one `pulse_w`-slot pulse followed by a
//! variable gap of `gap_min + v` slots, carrying
//! `⌊log2(gap_levels)⌋` bits in `v`. The duty cycle is bounded above by
//! `pulse_w / (pulse_w + gap_min)` and the average light output is
//! imperceptibly low.
//!
//! Unlike the duty-cycle schemes, symbols here have *variable length*,
//! so this modem is used standalone (no fixed `slots_for_payload` grid):
//! the frame codec addresses it through the same trait by making the
//! symbol length deterministic in the data — both sides derive the slot
//! count from the bytes they carry, which the receiver knows only after
//! decode. To keep Table 1 parsing single-pass, the night-mode modem
//! fixes the gap per symbol to its maximum and modulates the pulse
//! *position within the gap window* instead — equivalent information,
//! constant symbol length.

use crate::dimming::DimmingLevel;
use crate::modem::{bits_for, div_ceil, DemodError, DemodStats, SlotModem};
use combinat::{BinomialTable, BitReader, BitWriter};

/// The DarkLight-style night-mode modem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DarklightModem {
    /// Pulse width, slots (DarkLight uses ~500 ns pulses; one 8 µs slot
    /// is our floor).
    pulse_w: u16,
    /// Symbol length: pulse window of `positions` offsets + the pulse.
    positions: u16,
}

impl DarklightModem {
    /// Create a night-mode modem with `positions` pulse offsets per
    /// symbol (power of two recommended) and `pulse_w`-slot pulses.
    ///
    /// Duty cycle = `pulse_w / (positions + pulse_w - 1)`; `None` if that
    /// exceeds 2% (no longer "dark") or positions < 2.
    pub fn new(positions: u16, pulse_w: u16) -> Option<DarklightModem> {
        if positions < 2 || pulse_w == 0 {
            return None;
        }
        let n = positions as u32 + pulse_w as u32 - 1;
        let duty = pulse_w as f64 / n as f64;
        if duty > 0.02 {
            return None;
        }
        Some(DarklightModem { pulse_w, positions })
    }

    /// The paper-scale default: 128 positions, single-slot pulse — duty
    /// 1/128 ≈ 0.8%, 7 bits per 128-slot symbol ≈ 6.8 Kbps at the
    /// 125 kHz slot clock.
    pub fn paper_night_mode() -> DarklightModem {
        DarklightModem::new(128, 1).expect("0.8% duty is dark")
    }

    /// Slots per symbol.
    pub fn symbol_slots(self) -> usize {
        self.positions as usize + self.pulse_w as usize - 1
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(self) -> u32 {
        31 - (self.positions as u32).leading_zeros()
    }

    /// The (tiny) duty cycle.
    pub fn duty(self) -> f64 {
        self.pulse_w as f64 / self.symbol_slots() as f64
    }
}

impl SlotModem for DarklightModem {
    fn dimming(&self) -> DimmingLevel {
        DimmingLevel::clamped(self.duty())
    }

    fn slots_for_payload(&self, _table: &BinomialTable, n_bytes: usize) -> usize {
        div_ceil(bits_for(n_bytes), self.bits_per_symbol() as usize) * self.symbol_slots()
    }

    fn modulate(&self, _table: &BinomialTable, bytes: &[u8]) -> Vec<bool> {
        let bits = self.bits_per_symbol() as usize;
        let symbols = div_ceil(bits_for(bytes.len()), bits);
        let n = self.symbol_slots();
        let mut reader = BitReader::new(bytes);
        let mut slots = Vec::with_capacity(symbols * n);
        for _ in 0..symbols {
            let mut v = 0u64;
            let word = reader.read_bits(bits);
            for (i, b) in word.iter().enumerate() {
                v |= (*b as u64) << (bits - 1 - i);
            }
            let mut symbol = vec![false; n];
            symbol[v as usize..v as usize + self.pulse_w as usize].fill(true);
            slots.extend(symbol);
        }
        slots
    }

    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError> {
        let expected = self.slots_for_payload(table, n_bytes);
        if slots.len() != expected {
            return Err(DemodError::LengthMismatch {
                expected,
                got: slots.len(),
            });
        }
        let bits = self.bits_per_symbol() as usize;
        let w = self.pulse_w as usize;
        let mut writer = BitWriter::new();
        let mut stats = DemodStats::default();
        for chunk in slots.chunks_exact(self.symbol_slots()) {
            stats.symbols += 1;
            // Matched filter: densest w-slot window.
            let mut best = (0usize, -1i32);
            let mut score: i32 = chunk[..w].iter().map(|&b| b as i32).sum();
            let mut pos = 0usize;
            loop {
                if score > best.1 {
                    best = (pos, score);
                }
                if pos + w >= chunk.len() {
                    break;
                }
                score += chunk[pos + w] as i32 - chunk[pos] as i32;
                pos += 1;
            }
            if best.1 <= 0 {
                stats.symbol_failures += 1; // pulse lost entirely
            }
            let v = best.0.min((1usize << bits) - 1);
            writer.write_uint(v as u64, bits);
        }
        let (mut bytes, _) = writer.finish();
        bytes.truncate(n_bytes);
        bytes.resize(n_bytes, 0);
        Ok((bytes, stats))
    }

    fn norm_rate(&self, _table: &BinomialTable) -> f64 {
        self.bits_per_symbol() as f64 / self.symbol_slots() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(16)
    }

    #[test]
    fn construction_enforces_darkness() {
        assert!(DarklightModem::new(128, 1).is_some());
        assert!(DarklightModem::new(64, 1).is_some()); // 1.6%
        assert!(DarklightModem::new(32, 1).is_none()); // 3.1% is not dark
        assert!(DarklightModem::new(1, 1).is_none());
        assert!(DarklightModem::new(128, 0).is_none());
    }

    #[test]
    fn paper_night_mode_figures() {
        let m = DarklightModem::paper_night_mode();
        assert_eq!(m.symbol_slots(), 128);
        assert_eq!(m.bits_per_symbol(), 7);
        assert!((m.duty() - 1.0 / 128.0).abs() < 1e-12);
        // ~6.8 Kbps at 125 kHz.
        let t = table();
        let kbps = m.norm_rate(&t) * 125.0;
        assert!((6.0..8.0).contains(&kbps), "{kbps}");
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let m = DarklightModem::paper_night_mode();
        let payload: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(199)).collect();
        let slots = m.modulate(&t, &payload);
        assert_eq!(slots.len(), m.slots_for_payload(&t, payload.len()));
        let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
        assert!(duty < 0.01, "not dark: {duty}");
        let (back, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(back, payload);
        assert_eq!(stats.symbol_failures, 0);
    }

    #[test]
    fn wide_pulse_roundtrip() {
        let t = table();
        let m = DarklightModem::new(256, 2).unwrap();
        let payload = [0xE7u8; 32];
        let slots = m.modulate(&t, &payload);
        let (back, _) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn lost_pulse_is_flagged() {
        let t = table();
        let m = DarklightModem::paper_night_mode();
        let payload = [0x11u8; 7]; // 8 symbols
        let mut slots = m.modulate(&t, &payload);
        // Extinguish the first symbol's pulse.
        for s in slots.iter_mut().take(128) {
            *s = false;
        }
        let (_, stats) = m.demodulate(&t, &slots, payload.len()).unwrap();
        assert_eq!(stats.symbol_failures, 1);
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = table();
        let m = DarklightModem::paper_night_mode();
        let slots = m.modulate(&t, &[9; 4]);
        assert!(matches!(
            m.demodulate(&t, &slots[1..], 4),
            Err(DemodError::LengthMismatch { .. })
        ));
    }
}
