//! Modulation schemes: the paper's two baselines, the IEEE 802.15.7 VPPM
//! reference, and AMPPM packaged as a modem.
//!
//! | Scheme | Family | Dimming granularity | Rate behaviour |
//! |---|---|---|---|
//! | [`OokCtModem`] | compensation-based | continuous | peaks at l=0.5, collapses at extremes |
//! | [`MppmModem`] | compensation-free | 1/N lattice | better than OOK-CT off-centre, coarse levels |
//! | [`VppmModem`] | compensation-free | 1/N lattice | flat 1/N bits-per-slot — strictly ≤ MPPM |
//! | [`OppmModem`] | compensation-free | w/N lattice | single-run pulses: simpler detection, ≤ MPPM rate |
//! | [`AmppmModem`] | compensation-free + multiplexing | semi-continuous | envelope-optimal at every level |
//! | [`DarklightModem`] | pulse-position, sub-1% duty | fixed (dark) | the §7 night-mode companion (DarkLight-style) |

mod amppm_modem;
mod darklight;
mod mppm;
mod ook_ct;
mod oppm;
mod vppm;

pub use amppm_modem::AmppmModem;
pub use darklight::DarklightModem;
pub use mppm::MppmModem;
pub use ook_ct::OokCtModem;
pub use oppm::OppmModem;
pub use vppm::VppmModem;
