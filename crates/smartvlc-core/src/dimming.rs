//! Dimming levels and the smart-lighting illumination targets.
//!
//! A dimming level `l ∈ [0,1]` is the fraction of ON slots in a symbol
//! (Eq. 1): `l = 0.5` means the LED emits 50% of its maximum brightness
//! (PWM duty cycle — brightness varies by duty cycle, not amplitude, so
//! there is no colour shift; §2.1).
//!
//! The smart-lighting control goal (§4.3, Goal 1) is
//! `Isum = Iled + Iamb = const`: the LED's dimming target is whatever tops
//! ambient light up to the user's set-point.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated dimming level in `[0, 1]` (fraction of full LED output).
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct DimmingLevel(f64);

impl DimmingLevel {
    /// Fully off.
    pub const OFF: DimmingLevel = DimmingLevel(0.0);
    /// Fully on.
    pub const FULL: DimmingLevel = DimmingLevel(1.0);

    /// Construct from a fraction; returns `None` outside `[0,1]` or NaN.
    pub fn new(l: f64) -> Option<DimmingLevel> {
        if l.is_finite() && (0.0..=1.0).contains(&l) {
            Some(DimmingLevel(l))
        } else {
            None
        }
    }

    /// Construct, clamping into `[0,1]` (NaN becomes 0).
    pub fn clamped(l: f64) -> DimmingLevel {
        if l.is_nan() {
            DimmingLevel(0.0)
        } else {
            DimmingLevel(l.clamp(0.0, 1.0))
        }
    }

    /// Construct from an exact ON-count over slot-count ratio (Eq. 1).
    pub fn from_ratio(ones: u32, slots: u32) -> Option<DimmingLevel> {
        if slots == 0 || ones > slots {
            None
        } else {
            Some(DimmingLevel(ones as f64 / slots as f64))
        }
    }

    /// The level as a fraction of full brightness.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Absolute difference between two levels.
    pub fn distance(self, other: DimmingLevel) -> f64 {
        (self.0 - other.0).abs()
    }
}

impl fmt::Debug for DimmingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l={:.4}", self.0)
    }
}

impl fmt::Display for DimmingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

/// The smart-lighting set-point controller (Goal 1 of §4.3).
///
/// Computes the LED dimming level required to keep total illumination at
/// the user's set-point given the current ambient contribution, with both
/// quantities normalized to the LED's full-scale output.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IlluminationTarget {
    /// Desired constant total intensity `Isum`, normalized so that `1.0`
    /// equals the LED's full brightness at the area of interest.
    pub i_sum: f64,
}

impl IlluminationTarget {
    /// Create a target with the given normalized set-point.
    pub fn new(i_sum: f64) -> IlluminationTarget {
        assert!(
            i_sum.is_finite() && i_sum >= 0.0,
            "set-point must be non-negative"
        );
        IlluminationTarget { i_sum }
    }

    /// Eq. 5: the LED level that tops ambient light up to the set-point,
    /// clamped to what the LED can physically do. When ambient alone
    /// exceeds the set-point the LED goes fully off; when even full LED
    /// output cannot reach it the LED saturates at 1.
    pub fn led_level_for(self, i_ambient: f64) -> DimmingLevel {
        DimmingLevel::clamped(self.i_sum - i_ambient.max(0.0))
    }

    /// The step the LED must take when ambient changes from `amb_old` to
    /// `amb_new` (ΔIled of Eq. 5); positive = brighten.
    pub fn led_delta(self, amb_old: f64, amb_new: f64) -> f64 {
        self.led_level_for(amb_new).value() - self.led_level_for(amb_old).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(DimmingLevel::new(0.0).is_some());
        assert!(DimmingLevel::new(1.0).is_some());
        assert!(DimmingLevel::new(0.5).is_some());
        assert!(DimmingLevel::new(-0.01).is_none());
        assert!(DimmingLevel::new(1.01).is_none());
        assert!(DimmingLevel::new(f64::NAN).is_none());
        assert!(DimmingLevel::new(f64::INFINITY).is_none());
    }

    #[test]
    fn clamped_handles_extremes() {
        assert_eq!(DimmingLevel::clamped(-3.0).value(), 0.0);
        assert_eq!(DimmingLevel::clamped(7.0).value(), 1.0);
        assert_eq!(DimmingLevel::clamped(f64::NAN).value(), 0.0);
        assert_eq!(DimmingLevel::clamped(0.3).value(), 0.3);
    }

    #[test]
    fn from_ratio_matches_eq_1() {
        // Fig. 3's example: N=10, two ONs -> l=0.2.
        assert_eq!(DimmingLevel::from_ratio(2, 10).unwrap().value(), 0.2);
        assert!(DimmingLevel::from_ratio(11, 10).is_none());
        assert!(DimmingLevel::from_ratio(0, 0).is_none());
        assert_eq!(DimmingLevel::from_ratio(0, 10).unwrap(), DimmingLevel::OFF);
        assert_eq!(
            DimmingLevel::from_ratio(10, 10).unwrap(),
            DimmingLevel::FULL
        );
    }

    #[test]
    fn led_level_complements_ambient() {
        let t = IlluminationTarget::new(1.0);
        assert_eq!(t.led_level_for(0.0).value(), 1.0);
        assert!((t.led_level_for(0.3).value() - 0.7).abs() < 1e-12);
        assert_eq!(t.led_level_for(1.0).value(), 0.0);
        // Ambient exceeding the set-point: LED fully off, never negative.
        assert_eq!(t.led_level_for(1.5).value(), 0.0);
        // Negative ambient readings (sensor noise) treated as zero.
        assert_eq!(t.led_level_for(-0.2).value(), 1.0);
    }

    #[test]
    fn led_level_saturates_when_setpoint_unreachable() {
        let t = IlluminationTarget::new(1.4);
        assert_eq!(t.led_level_for(0.1).value(), 1.0);
        assert!((t.led_level_for(0.6).value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn led_delta_matches_eq_5() {
        // Eq. 5: ambient drops by 0.2 => LED rises by 0.2.
        let t = IlluminationTarget::new(1.0);
        let d = t.led_delta(0.5, 0.3);
        assert!((d - 0.2).abs() < 1e-12);
        let d = t.led_delta(0.3, 0.5);
        assert!((d + 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_is_percent() {
        assert_eq!(DimmingLevel::clamped(0.25).to_string(), "25.0%");
    }
}
