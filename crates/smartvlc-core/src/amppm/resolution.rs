//! Dimming-level resolution analysis — §4.1's granularity story, made
//! queryable.
//!
//! The paper's progression: a single `N = 10` symbol gives nine levels at
//! resolution 0.1; appending one symbol of a neighbouring pattern halves
//! the gap to 0.05; three-to-one mixes reach 0.025; and under the full
//! `Nmax` budget the supported set becomes "semi-continuous" (Fig. 6).
//! [`ResolutionProfile`] enumerates the exact achievable level set of a
//! candidate family under a slot budget and reports the gap statistics a
//! smart-lighting deployment cares about: the worst-case distance from
//! *any* requested level to an achievable one.

use super::candidates::Candidate;
use std::collections::BTreeSet;

/// Achievable-level analysis of a candidate family under a slot budget.
#[derive(Clone, Debug)]
pub struct ResolutionProfile {
    /// The achievable dimming levels, ascending, deduplicated.
    levels: Vec<f64>,
    /// Largest gap between consecutive achievable levels.
    pub max_gap: f64,
    /// Mean gap between consecutive achievable levels.
    pub mean_gap: f64,
}

impl ResolutionProfile {
    /// Enumerate every level reachable by mixing *up to two* candidate
    /// patterns within `n_max` slots (the paper's super-symbol rule), and
    /// summarize the gaps.
    ///
    /// Exact rational arithmetic (ones/slots as integers) keeps levels
    /// that differ only by floating-point noise from inflating the set.
    pub fn for_candidates(candidates: &[Candidate], n_max: u32) -> ResolutionProfile {
        // Collect achievable (ones, slots) ratios as normalized fractions.
        let mut ratios: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut push = |ones: u64, slots: u64| {
            if slots > 0 {
                let g = gcd(ones.max(1), slots); // gcd(0,s)=s handled below
                let g = if ones == 0 { slots } else { g };
                ratios.insert((ones / g.max(1), slots / g.max(1)));
            }
        };
        for (i, a) in candidates.iter().enumerate() {
            let (na, ka) = (a.pattern.n() as u64, a.pattern.k() as u64);
            // Single-pattern repetitions all share the ratio ka/na.
            if na <= n_max as u64 {
                push(ka, na);
            }
            for b in candidates.iter().skip(i + 1) {
                let (nb, kb) = (b.pattern.n() as u64, b.pattern.k() as u64);
                let m1_cap = n_max as u64 / na;
                for m1 in 1..=m1_cap {
                    let remaining = n_max as u64 - m1 * na;
                    let m2_cap = remaining / nb;
                    for m2 in 1..=m2_cap {
                        push(m1 * ka + m2 * kb, m1 * na + m2 * nb);
                    }
                }
            }
        }
        let mut levels: Vec<f64> = ratios
            .into_iter()
            .map(|(o, s)| o as f64 / s as f64)
            .collect();
        levels.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        levels.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let gaps: Vec<f64> = levels.windows(2).map(|w| w[1] - w[0]).collect();
        let max_gap = gaps.iter().copied().fold(0.0, f64::max);
        let mean_gap = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        ResolutionProfile {
            levels,
            max_gap,
            mean_gap,
        }
    }

    /// The achievable levels, ascending.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Number of distinct achievable levels.
    pub fn count(&self) -> usize {
        self.levels.len()
    }

    /// Distance from `target` to the nearest achievable level.
    pub fn error_at(&self, target: f64) -> f64 {
        self.levels
            .iter()
            .map(|&l| (l - target).abs())
            .fold(f64::INFINITY, f64::min)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amppm::candidates::{candidate_patterns, Candidate};
    use crate::config::SystemConfig;
    use crate::symbol::SymbolPattern;
    use combinat::BinomialTable;

    fn n10_family() -> Vec<Candidate> {
        let cfg = SystemConfig::default();
        let t = BinomialTable::new(64);
        (1..=9u16)
            .map(|k| Candidate::evaluate(SymbolPattern::new(10, k).unwrap(), &cfg, &t))
            .collect()
    }

    #[test]
    fn paper_progression_from_n10() {
        let fam = n10_family();
        // No mixing budget beyond one symbol: the nine 0.1-grid levels.
        let single = ResolutionProfile::for_candidates(&fam, 10);
        assert_eq!(single.count(), 9);
        assert!((single.max_gap - 0.1).abs() < 1e-12);

        // Two symbols: the paper's 0.05 resolution (Fig. 5).
        let two = ResolutionProfile::for_candidates(&fam, 20);
        assert!(two.levels().iter().any(|&l| (l - 0.15).abs() < 1e-12));
        assert!(two.max_gap <= 0.05 + 1e-12, "max_gap={}", two.max_gap);

        // Four symbols: 0.175 reachable (one (10,0.1) + three (10,0.2)).
        let four = ResolutionProfile::for_candidates(&fam, 40);
        assert!(four.levels().iter().any(|&l| (l - 0.175).abs() < 1e-12));
        assert!(four.max_gap <= 0.025 + 1e-12, "max_gap={}", four.max_gap);
    }

    #[test]
    fn full_budget_is_semi_continuous() {
        // Under Nmax = 500 the N=10 family's worst gap inside [0.1, 0.9]
        // collapses to ~1/500-scale.
        let fam = n10_family();
        let p = ResolutionProfile::for_candidates(&fam, 500);
        assert!(p.count() > 1000, "count={}", p.count());
        let interior_gap = p
            .levels()
            .windows(2)
            .filter(|w| w[0] >= 0.1 && w[1] <= 0.9)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        assert!(interior_gap < 0.01, "interior gap {interior_gap}");
        // Any requested level is within a hair of an achievable one.
        for i in 10..=90 {
            let target = i as f64 / 100.0;
            assert!(p.error_at(target) < 0.005, "target={target}");
        }
    }

    #[test]
    fn full_candidate_set_beats_the_n10_family() {
        let cfg = SystemConfig::default();
        let t = BinomialTable::new(512);
        let all = candidate_patterns(&cfg, &t);
        // Sampling the pair space of 400+ candidates is expensive; take
        // the N = 24..=31 slice which alone out-resolves N=10.
        let slice: Vec<Candidate> = all
            .iter()
            .filter(|c| c.pattern.n() >= 24)
            .copied()
            .collect();
        let fine = ResolutionProfile::for_candidates(&slice, 120);
        let coarse = ResolutionProfile::for_candidates(&n10_family(), 120);
        assert!(fine.count() > coarse.count());
    }

    #[test]
    fn empty_candidates() {
        let p = ResolutionProfile::for_candidates(&[], 500);
        assert_eq!(p.count(), 0);
        assert_eq!(p.max_gap, 0.0);
        assert!(p.error_at(0.5).is_infinite());
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
    }
}
