//! AMPPM — Adaptive Multiple Pulse Position Modulation (§4 of the paper).
//!
//! AMPPM answers one question: *given a required dimming level `l`, which
//! slot modulation maximizes throughput without flicker?* The paper's
//! four-step procedure maps onto the submodules:
//!
//! 1. **Step 1** — [`candidates`]: compute the flicker bound
//!    `Nmax = ftx/fth` (Eq. 4). A super-symbol longer than `Nmax` slots
//!    would repeat below `fth` and its internal brightness structure would
//!    become visible (Type-I flicker).
//! 2. **Step 2** — [`candidates`]: enumerate symbol patterns `S(N, K/N)`
//!    and abandon every one whose Eq. 3 symbol error rate exceeds the
//!    configured bound (Fig. 8).
//! 3. **Step 3** — [`envelope`]: starting from the highest-rate pattern
//!    near `l = 0.5`, repeatedly connect to the pattern with the
//!    smallest-magnitude slope (Fig. 9). The result is the upper convex
//!    hull of the (dimming, normalized-rate) cloud: the *throughput
//!    envelope*.
//! 4. **Step 4** — [`mixer`]: for a target level between two hull
//!    patterns, search the integer multiplicities `(m1, m2)` whose
//!    super-symbol `⟨S1, m1, S2, m2⟩` hits the target exactly (or within
//!    the configured quantum) with the highest rate, subject to
//!    `m1·N1 + m2·N2 ≤ Nmax`.
//!
//! [`super_symbol`] holds the super-symbol type itself (Fig. 7) with its
//! slot-level encode/decode, and [`planner`] packages the whole pipeline
//! behind a cache, which is what the transmitter (and the receiver, to
//! reconstruct the pattern from the frame header) actually calls.

pub mod candidates;
pub mod envelope;
pub mod mixer;
pub mod planner;
pub mod resolution;
pub mod super_symbol;

pub use candidates::{candidate_patterns, Candidate};
pub use envelope::Envelope;
pub use mixer::{best_mix, Mix};
pub use planner::{AmppmPlanner, PlanError, SuperSymbolPlan, MAX_DEGRADE_TIER};
pub use resolution::ResolutionProfile;
pub use super_symbol::SuperSymbol;
