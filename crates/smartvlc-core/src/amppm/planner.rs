//! The AMPPM planner: dimming level in, best super-symbol out.
//!
//! This is the component labelled "AMPPM best pattern selection" in the
//! paper's architecture diagram (Fig. 2). It runs the full Step 1–4
//! pipeline once at construction (candidate enumeration + envelope), then
//! serves per-level queries out of a cache keyed by the quantized dimming
//! level — the same quantized value the transmitter puts in the frame
//! header, so a receiver running the same planner over the same
//! [`SystemConfig`] reconstructs the identical super-symbol without any
//! further signalling.

use super::candidates::{candidate_patterns, Candidate};
use super::envelope::Envelope;
use super::mixer::best_mix;
use super::super_symbol::SuperSymbol;
use crate::config::SystemConfig;
use crate::dimming::DimmingLevel;
use combinat::BinomialTable;
use smartvlc_obs as obs;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Highest degradation tier the self-healing link may request (tier 0 is
/// the paper's nominal operating point). Each tier replans the candidate
/// set under pessimistically inflated slot error probabilities (×3 per
/// tier) with a proportionally relaxed SER budget (×2 per tier), so the
/// surviving patterns are shorter and survive a degraded channel; the
/// frame header carries the tier so the receiver re-derives the identical
/// plan with no extra signalling.
pub const MAX_DEGRADE_TIER: u8 = 3;

/// A fully-resolved transmission plan for one dimming level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuperSymbolPlan {
    /// The super-symbol to modulate payload data with.
    pub super_symbol: SuperSymbol,
    /// The dimming level the super-symbol actually realizes.
    pub achieved: DimmingLevel,
    /// The (quantized) level that was requested.
    pub requested: DimmingLevel,
    /// Normalized data rate, bits per slot.
    pub norm_rate: f64,
    /// Predicted goodput in bit/s: `norm_rate · ftx · (1 − mean SER)`.
    pub rate_bps: f64,
    /// Multiplicity-weighted mean symbol error rate of the constituents.
    pub expected_ser: f64,
}

/// Why the planner could not produce a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// No symbol pattern survives the SER/flicker filters — the config is
    /// unusable (e.g. SER bound below the smallest symbol's error floor).
    NoCandidates,
    /// The requested level lies outside the envelope's dimming range.
    OutOfRange {
        /// The level that was asked for.
        requested: f64,
        /// Lowest supported level.
        min: f64,
        /// Highest supported level.
        max: f64,
    },
    /// No multiplicity combination fits within `Nmax` (only possible with
    /// pathological `fth`/`ftx` combos where `Nmax < N` of the bracket).
    NoFit,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoCandidates => {
                write!(f, "no symbol pattern satisfies the SER and flicker bounds")
            }
            PlanError::OutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "dimming level {requested:.4} outside supported range [{min:.4}, {max:.4}]"
            ),
            PlanError::NoFit => write!(f, "no multiplexing fits within Nmax"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The Step 1–3 artifacts: deterministic functions of the configuration,
/// computed once and shared read-only by every planner clone.
struct PlannerShared {
    candidates: Vec<Candidate>,
    envelope: Envelope,
}

/// The AMPPM pattern planner (Fig. 2's "best pattern selection" block).
///
/// Cloning is cheap and *shares state*: the binomial table (interned
/// process-wide via [`BinomialTable::shared`]), the candidate set and
/// envelope, and the per-quantized-level plan cache all sit behind `Arc`s,
/// so a transmitter, its receiver, and every sweep worker thread reuse one
/// planner instance's work. Because plans are a pure function of
/// `(config, quantized level)`, cache sharing is invisible except in
/// speed.
#[derive(Clone)]
pub struct AmppmPlanner {
    cfg: SystemConfig,
    table: Arc<BinomialTable>,
    shared: Arc<PlannerShared>,
    /// Lazily-built Step 1–3 artifacts for degradation tiers > 0, keyed
    /// by tier and shared across clones like the tier-0 artifacts.
    degraded: Arc<Mutex<HashMap<u8, Arc<PlannerShared>>>>,
    cache: Arc<Mutex<HashMap<(u16, u8), SuperSymbolPlan>>>,
}

impl AmppmPlanner {
    /// Build the planner: run candidate enumeration (Steps 1–2) and the
    /// envelope walk (Step 3) for the given configuration.
    pub fn new(cfg: SystemConfig) -> Result<AmppmPlanner, PlanError> {
        let table = BinomialTable::shared(cfg.n_max_super().clamp(16, 512) as usize);
        let candidates = candidate_patterns(&cfg, &table);
        let envelope = Envelope::build(&candidates).ok_or(PlanError::NoCandidates)?;
        Ok(AmppmPlanner {
            cfg,
            table,
            shared: Arc::new(PlannerShared {
                candidates,
                envelope,
            }),
            degraded: Arc::new(Mutex::new(HashMap::new())),
            cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The configuration the planner was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// All admissible candidates (Step 2 output) — the point cloud of
    /// Figs. 8 and 9.
    pub fn candidates(&self) -> &[Candidate] {
        &self.shared.candidates
    }

    /// The throughput envelope (Step 3 output) — the solid line of Fig. 9.
    pub fn envelope(&self) -> &Envelope {
        &self.shared.envelope
    }

    /// The process-shared binomial table (handy for callers that need
    /// symbol metrics).
    pub fn table(&self) -> &BinomialTable {
        &self.table
    }

    /// An owning handle to the shared binomial table, for callers that
    /// fan work out across threads.
    pub fn table_arc(&self) -> Arc<BinomialTable> {
        Arc::clone(&self.table)
    }

    /// Plan the best super-symbol for `target` (Step 4). The target is
    /// first quantized to the header grid; results are cached per grid
    /// point, and the cache is shared by every clone of this planner.
    pub fn plan(&self, target: DimmingLevel) -> Result<SuperSymbolPlan, PlanError> {
        self.plan_tiered(target, 0)
    }

    /// Like [`AmppmPlanner::plan`], but at degradation tier `tier`
    /// (clamped to [`MAX_DEGRADE_TIER`]). Tier 0 is the nominal plan;
    /// each higher tier re-runs candidate selection under slot error
    /// probabilities inflated ×3 per tier against an SER budget relaxed
    /// ×2 per tier, yielding shorter, sturdier patterns at a lower rate.
    /// The plan is still a pure function of `(config, level, tier)`, so a
    /// receiver reading the tier from the frame header reconstructs the
    /// identical super-symbol.
    pub fn plan_tiered(
        &self,
        target: DimmingLevel,
        tier: u8,
    ) -> Result<SuperSymbolPlan, PlanError> {
        let tier = tier.min(MAX_DEGRADE_TIER);
        let q = self.cfg.quantize_dimming(target.value());
        if let Some(plan) = self
            .cache
            .lock()
            .expect("plan cache poisoned")
            .get(&(q, tier))
        {
            obs::counter_add(obs::key!("core.planner.cache_hits"), 1);
            return Ok(*plan);
        }
        obs::counter_add(obs::key!("core.planner.cache_misses"), 1);
        let tier_cfg = self.tier_config(tier);
        let shared = self.shared_for_tier(tier, &tier_cfg)?;
        let l = self.cfg.dequantize_dimming(q);
        let plan = self.plan_uncached(&shared, &tier_cfg, l)?;
        self.cache
            .lock()
            .expect("plan cache poisoned")
            .insert((q, tier), plan);
        Ok(plan)
    }

    /// The effective configuration at degradation tier `tier`: slot error
    /// probabilities ×3 per tier (capped at 0.4), SER budget ×2 per tier
    /// (capped at 0.5), and the minimum symbol length relaxed so short
    /// rugged patterns remain admissible under the inflated errors.
    fn tier_config(&self, tier: u8) -> SystemConfig {
        let mut cfg = self.cfg.clone();
        if tier == 0 {
            return cfg;
        }
        let p_scale = 3f64.powi(tier as i32);
        cfg.slot_errors.p_off_error = (cfg.slot_errors.p_off_error * p_scale).min(0.4);
        cfg.slot_errors.p_on_error = (cfg.slot_errors.p_on_error * p_scale).min(0.4);
        cfg.ser_upper_bound = (cfg.ser_upper_bound * 2f64.powi(tier as i32)).min(0.5);
        cfg.n_min = cfg.n_min.clamp(2, 4);
        cfg
    }

    fn shared_for_tier(
        &self,
        tier: u8,
        tier_cfg: &SystemConfig,
    ) -> Result<Arc<PlannerShared>, PlanError> {
        if tier == 0 {
            return Ok(Arc::clone(&self.shared));
        }
        let mut map = self.degraded.lock().expect("tier artifacts poisoned");
        if let Some(s) = map.get(&tier) {
            return Ok(Arc::clone(s));
        }
        let candidates = candidate_patterns(tier_cfg, &self.table);
        let envelope = Envelope::build(&candidates).ok_or(PlanError::NoCandidates)?;
        let shared = Arc::new(PlannerShared {
            candidates,
            envelope,
        });
        map.insert(tier, Arc::clone(&shared));
        Ok(shared)
    }

    fn plan_uncached(
        &self,
        shared: &PlannerShared,
        cfg: &SystemConfig,
        l: f64,
    ) -> Result<SuperSymbolPlan, PlanError> {
        let (min, max) = shared.envelope.dimming_range();
        let (left, right) = shared.envelope.bracket(l).ok_or(PlanError::OutOfRange {
            requested: l,
            min,
            max,
        })?;
        let (left, right) = (*left, *right);
        let n_max = cfg.n_max_super().min(u32::MAX as u64) as u32;

        // Step 4, refined: the hull edge fixes the dimming span, but any
        // candidate *pair* inside that span can realize the target — often
        // with far finer granularity than the two edge endpoints alone
        // (e.g. S(27,8)+S(27,9) hits 0.2998 exactly where the hull edge
        // S(27,8)+S(29,11) can only get within 1.4e-3). The super-symbol
        // still uses at most two patterns, as the paper requires; we pick
        // the pair minimizing dimming error, then maximizing rate.
        let span_lo = left.dimming();
        let span_hi = right.dimming();
        let lows: Vec<Candidate> = shared
            .candidates
            .iter()
            .filter(|c| c.dimming() >= span_lo && c.dimming() <= l)
            .copied()
            .collect();
        let highs: Vec<Candidate> = shared
            .candidates
            .iter()
            .filter(|c| c.dimming() >= l && c.dimming() <= span_hi)
            .copied()
            .collect();
        // A dimming error within half the header quantum is indistinguishable
        // on the wire, so such mixes compete purely on rate.
        let tolerance = cfg.dimming_quantum / 2.0;
        let mut mix: Option<crate::amppm::mixer::Mix> = None;
        for a in &lows {
            for b in &highs {
                if let Some(m) = best_mix(a, b, l, tolerance, n_max, &self.table) {
                    let better = match &mix {
                        None => true,
                        Some(cur) => crate::amppm::mixer::mix_is_better(&m, cur, tolerance),
                    };
                    if better {
                        mix = Some(m);
                    }
                }
            }
        }
        let mix = mix.ok_or(PlanError::NoFit)?;
        let ser1 = cfg.slot_errors.symbol_error_rate(mix.super_symbol.s1());
        let ser2 = cfg.slot_errors.symbol_error_rate(mix.super_symbol.s2());
        let ser = mix.super_symbol.mean_symbol_error_rate(ser1, ser2);
        Ok(SuperSymbolPlan {
            super_symbol: mix.super_symbol,
            achieved: DimmingLevel::clamped(mix.dimming),
            requested: DimmingLevel::clamped(l),
            norm_rate: mix.norm_rate,
            rate_bps: mix.norm_rate * cfg.ftx_hz as f64 * (1.0 - ser),
            expected_ser: ser,
        })
    }

    /// Like [`AmppmPlanner::plan`] but clamps out-of-range targets to the
    /// nearest supported level — what the live transmitter does when
    /// ambient light swings beyond the data-carrying range.
    pub fn plan_clamped(&self, target: DimmingLevel) -> Result<SuperSymbolPlan, PlanError> {
        let (min, max) = self.shared.envelope.dimming_range();
        let l = DimmingLevel::clamped(target.value().clamp(min, max));
        self.plan(l)
    }

    /// Number of distinct levels planned so far (shared cache occupancy).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("plan cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> AmppmPlanner {
        AmppmPlanner::new(SystemConfig::default()).unwrap()
    }

    fn lv(l: f64) -> DimmingLevel {
        DimmingLevel::new(l).unwrap()
    }

    #[test]
    fn plans_all_17_paper_levels() {
        // Fig. 15 evaluates 17 levels 0.1, 0.15, ..., 0.9.
        let p = planner();
        for i in 2..=18 {
            let l = i as f64 / 20.0;
            let plan = p.plan(lv(l)).unwrap();
            // The super-symbol realizes the level within the header quantum.
            assert!(
                (plan.achieved.value() - l).abs() <= p.config().dimming_quantum,
                "l={l}: achieved {:?}",
                plan.achieved
            );
            assert!(plan.super_symbol.n_super() <= p.config().n_max_super() as u32);
        }
    }

    #[test]
    fn rate_peaks_near_half() {
        let p = planner();
        let mid = p.plan(lv(0.5)).unwrap().rate_bps;
        let low = p.plan(lv(0.1)).unwrap().rate_bps;
        let high = p.plan(lv(0.9)).unwrap().rate_bps;
        assert!(mid > low && mid > high);
        // Paper calibration: peak raw rate ~107 Kbps (0.857 * 125k).
        assert!(mid > 100_000.0 && mid < 125_000.0, "mid={mid}");
    }

    #[test]
    fn amppm_beats_mppm_n20_at_every_level() {
        // The Fig. 15 headline: AMPPM >= MPPM(N=20) at all 17 levels.
        let p = planner();
        for i in 2..=18 {
            let l = i as f64 / 20.0;
            let plan = p.plan(lv(l)).unwrap();
            let k = (l * 20.0).round() as u16;
            let mppm = crate::symbol::SymbolPattern::new(20, k).unwrap();
            let mppm_rate = mppm.bits_per_symbol(p.table()) as f64 / 20.0;
            assert!(
                plan.norm_rate >= mppm_rate - 1e-12,
                "l={l}: {} < {mppm_rate}",
                plan.norm_rate
            );
        }
    }

    #[test]
    fn cache_hits_identical_plans() {
        let p = planner();
        let a = p.plan(lv(0.33)).unwrap();
        let before = p.cache_len();
        let b = p.plan(lv(0.33)).unwrap();
        assert_eq!(a, b);
        assert_eq!(p.cache_len(), before);
        // A level within the same quantum maps to the same plan.
        let c = p.plan(lv(0.33 + 1e-5)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn receiver_reproduces_plan_from_quantized_level() {
        // TX and RX planners built from the same config must agree given
        // the header's quantized level — the premise of our 4-byte Pattern
        // field design.
        let tx = planner();
        let rx = planner();
        for i in 0..50 {
            let l = 0.08 + i as f64 * 0.017;
            let a = tx.plan_clamped(lv(l.min(1.0))).unwrap();
            let b = rx.plan_clamped(lv(l.min(1.0))).unwrap();
            assert_eq!(a.super_symbol, b.super_symbol, "l={l}");
        }
    }

    #[test]
    fn extreme_levels_plan_or_clamp() {
        let p = planner();
        // Degenerate candidates take the envelope to [0,1]; the plans at
        // the extremes carry zero bits but hold the light level.
        let plan = p.plan(lv(0.0)).unwrap();
        assert_eq!(plan.norm_rate, 0.0);
        assert_eq!(plan.achieved.value(), 0.0);
        let plan = p.plan(lv(1.0)).unwrap();
        assert_eq!(plan.achieved.value(), 1.0);
        // plan_clamped is a no-op inside the range.
        let a = p.plan(lv(0.42)).unwrap();
        let b = p.plan_clamped(lv(0.42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_candidates_is_reported() {
        let cfg = SystemConfig {
            ser_upper_bound: 1e-12,
            ..SystemConfig::default()
        };
        assert_eq!(AmppmPlanner::new(cfg).err(), Some(PlanError::NoCandidates));
    }

    #[test]
    fn expected_ser_below_bound() {
        let p = planner();
        for i in 2..=18 {
            let plan = p.plan(lv(i as f64 / 20.0)).unwrap();
            assert!(plan.expected_ser <= p.config().ser_upper_bound + 1e-12);
        }
    }

    #[test]
    fn clones_share_cache_and_table() {
        let p = planner();
        let q = p.clone();
        assert!(std::sync::Arc::ptr_eq(&p.table_arc(), &q.table_arc()));
        let a = p.plan(lv(0.37)).unwrap();
        // The clone sees the cached plan without recomputing.
        assert_eq!(q.cache_len(), p.cache_len());
        assert_eq!(q.plan(lv(0.37)).unwrap(), a);
        // ...and entries planned via the clone appear in the original.
        let before = p.cache_len();
        q.plan(lv(0.61)).unwrap();
        assert_eq!(p.cache_len(), before + 1);
    }

    #[test]
    fn shared_cache_is_thread_safe() {
        let p = planner();
        std::thread::scope(|s| {
            for i in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for j in 2..=18 {
                        let l = j as f64 / 20.0;
                        let plan = p.plan(lv(l)).unwrap();
                        assert!(plan.rate_bps >= 0.0, "worker {i} l={l}");
                    }
                });
            }
        });
        assert_eq!(p.cache_len(), 17);
    }

    #[test]
    fn tiers_trade_rate_for_ruggedness() {
        let p = planner();
        for i in 2..=18 {
            let l = lv(i as f64 / 20.0);
            let mut prev_rate = f64::INFINITY;
            for tier in 0..=MAX_DEGRADE_TIER {
                let plan = p.plan_tiered(l, tier).unwrap();
                // Rate never increases with tier...
                assert!(
                    plan.norm_rate <= prev_rate + 1e-12,
                    "l={:?} tier={tier}: {} > {prev_rate}",
                    l,
                    plan.norm_rate
                );
                prev_rate = plan.norm_rate;
                // ...and the realized level stays on target.
                assert!(
                    (plan.achieved.value() - l.value()).abs() <= p.config().dimming_quantum,
                    "l={l:?} tier={tier}: achieved {:?}",
                    plan.achieved
                );
            }
            // The top tier is materially sturdier: strictly shorter
            // constituent symbols than the nominal plan at mid dimming.
            if (0.3..=0.7).contains(&l.value()) {
                let t0 = p.plan_tiered(l, 0).unwrap();
                let t3 = p.plan_tiered(l, MAX_DEGRADE_TIER).unwrap();
                assert!(
                    t3.super_symbol.s1().n() < t0.super_symbol.s1().n(),
                    "l={l:?}: tier3 n={} vs tier0 n={}",
                    t3.super_symbol.s1().n(),
                    t0.super_symbol.s1().n()
                );
            }
        }
    }

    #[test]
    fn tier_zero_is_the_nominal_plan() {
        let p = planner();
        assert_eq!(p.plan(lv(0.5)).unwrap(), p.plan_tiered(lv(0.5), 0).unwrap());
        // Tiers beyond the maximum clamp to it.
        assert_eq!(
            p.plan_tiered(lv(0.5), MAX_DEGRADE_TIER).unwrap(),
            p.plan_tiered(lv(0.5), 200).unwrap()
        );
    }

    #[test]
    fn tiered_plans_reproduce_across_planners() {
        // The header carries (quantized level, tier); independently built
        // planners must agree on the super-symbol for every pair.
        let tx = planner();
        let rx = planner();
        for tier in 0..=MAX_DEGRADE_TIER {
            for i in 1..=9 {
                let l = lv(i as f64 / 10.0);
                let a = tx.plan_tiered(l, tier).unwrap();
                let b = rx.plan_tiered(l, tier).unwrap();
                assert_eq!(a.super_symbol, b.super_symbol, "l={l:?} tier={tier}");
            }
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = planner();
        let b = planner();
        for i in 1..=99 {
            let l = i as f64 / 100.0;
            assert_eq!(a.plan(lv(l)).unwrap(), b.plan(lv(l)).unwrap(), "l={l}");
        }
    }
}
