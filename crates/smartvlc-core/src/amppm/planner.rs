//! The AMPPM planner: dimming level in, best super-symbol out.
//!
//! This is the component labelled "AMPPM best pattern selection" in the
//! paper's architecture diagram (Fig. 2). It runs the full Step 1–4
//! pipeline once at construction (candidate enumeration + envelope), then
//! serves per-level queries out of a cache keyed by the quantized dimming
//! level — the same quantized value the transmitter puts in the frame
//! header, so a receiver running the same planner over the same
//! [`SystemConfig`] reconstructs the identical super-symbol without any
//! further signalling.

use super::candidates::{candidate_patterns, Candidate};
use super::envelope::Envelope;
use super::mixer::best_mix;
use super::super_symbol::SuperSymbol;
use crate::config::SystemConfig;
use crate::dimming::DimmingLevel;
use combinat::BinomialTable;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A fully-resolved transmission plan for one dimming level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuperSymbolPlan {
    /// The super-symbol to modulate payload data with.
    pub super_symbol: SuperSymbol,
    /// The dimming level the super-symbol actually realizes.
    pub achieved: DimmingLevel,
    /// The (quantized) level that was requested.
    pub requested: DimmingLevel,
    /// Normalized data rate, bits per slot.
    pub norm_rate: f64,
    /// Predicted goodput in bit/s: `norm_rate · ftx · (1 − mean SER)`.
    pub rate_bps: f64,
    /// Multiplicity-weighted mean symbol error rate of the constituents.
    pub expected_ser: f64,
}

/// Why the planner could not produce a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// No symbol pattern survives the SER/flicker filters — the config is
    /// unusable (e.g. SER bound below the smallest symbol's error floor).
    NoCandidates,
    /// The requested level lies outside the envelope's dimming range.
    OutOfRange {
        /// The level that was asked for.
        requested: f64,
        /// Lowest supported level.
        min: f64,
        /// Highest supported level.
        max: f64,
    },
    /// No multiplicity combination fits within `Nmax` (only possible with
    /// pathological `fth`/`ftx` combos where `Nmax < N` of the bracket).
    NoFit,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoCandidates => {
                write!(f, "no symbol pattern satisfies the SER and flicker bounds")
            }
            PlanError::OutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "dimming level {requested:.4} outside supported range [{min:.4}, {max:.4}]"
            ),
            PlanError::NoFit => write!(f, "no multiplexing fits within Nmax"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The Step 1–3 artifacts: deterministic functions of the configuration,
/// computed once and shared read-only by every planner clone.
struct PlannerShared {
    candidates: Vec<Candidate>,
    envelope: Envelope,
}

/// The AMPPM pattern planner (Fig. 2's "best pattern selection" block).
///
/// Cloning is cheap and *shares state*: the binomial table (interned
/// process-wide via [`BinomialTable::shared`]), the candidate set and
/// envelope, and the per-quantized-level plan cache all sit behind `Arc`s,
/// so a transmitter, its receiver, and every sweep worker thread reuse one
/// planner instance's work. Because plans are a pure function of
/// `(config, quantized level)`, cache sharing is invisible except in
/// speed.
#[derive(Clone)]
pub struct AmppmPlanner {
    cfg: SystemConfig,
    table: Arc<BinomialTable>,
    shared: Arc<PlannerShared>,
    cache: Arc<Mutex<HashMap<u16, SuperSymbolPlan>>>,
}

impl AmppmPlanner {
    /// Build the planner: run candidate enumeration (Steps 1–2) and the
    /// envelope walk (Step 3) for the given configuration.
    pub fn new(cfg: SystemConfig) -> Result<AmppmPlanner, PlanError> {
        let table = BinomialTable::shared(cfg.n_max_super().clamp(16, 512) as usize);
        let candidates = candidate_patterns(&cfg, &table);
        let envelope = Envelope::build(&candidates).ok_or(PlanError::NoCandidates)?;
        Ok(AmppmPlanner {
            cfg,
            table,
            shared: Arc::new(PlannerShared {
                candidates,
                envelope,
            }),
            cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The configuration the planner was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// All admissible candidates (Step 2 output) — the point cloud of
    /// Figs. 8 and 9.
    pub fn candidates(&self) -> &[Candidate] {
        &self.shared.candidates
    }

    /// The throughput envelope (Step 3 output) — the solid line of Fig. 9.
    pub fn envelope(&self) -> &Envelope {
        &self.shared.envelope
    }

    /// The process-shared binomial table (handy for callers that need
    /// symbol metrics).
    pub fn table(&self) -> &BinomialTable {
        &self.table
    }

    /// An owning handle to the shared binomial table, for callers that
    /// fan work out across threads.
    pub fn table_arc(&self) -> Arc<BinomialTable> {
        Arc::clone(&self.table)
    }

    /// Plan the best super-symbol for `target` (Step 4). The target is
    /// first quantized to the header grid; results are cached per grid
    /// point, and the cache is shared by every clone of this planner.
    pub fn plan(&self, target: DimmingLevel) -> Result<SuperSymbolPlan, PlanError> {
        let q = self.cfg.quantize_dimming(target.value());
        if let Some(plan) = self.cache.lock().expect("plan cache poisoned").get(&q) {
            return Ok(*plan);
        }
        let l = self.cfg.dequantize_dimming(q);
        let (min, max) = self.shared.envelope.dimming_range();
        let (left, right) = self
            .shared
            .envelope
            .bracket(l)
            .ok_or(PlanError::OutOfRange {
                requested: l,
                min,
                max,
            })?;
        let (left, right) = (*left, *right);
        let n_max = self.cfg.n_max_super().min(u32::MAX as u64) as u32;

        // Step 4, refined: the hull edge fixes the dimming span, but any
        // candidate *pair* inside that span can realize the target — often
        // with far finer granularity than the two edge endpoints alone
        // (e.g. S(27,8)+S(27,9) hits 0.2998 exactly where the hull edge
        // S(27,8)+S(29,11) can only get within 1.4e-3). The super-symbol
        // still uses at most two patterns, as the paper requires; we pick
        // the pair minimizing dimming error, then maximizing rate.
        let span_lo = left.dimming();
        let span_hi = right.dimming();
        let lows: Vec<Candidate> = self
            .shared
            .candidates
            .iter()
            .filter(|c| c.dimming() >= span_lo && c.dimming() <= l)
            .copied()
            .collect();
        let highs: Vec<Candidate> = self
            .shared
            .candidates
            .iter()
            .filter(|c| c.dimming() >= l && c.dimming() <= span_hi)
            .copied()
            .collect();
        // A dimming error within half the header quantum is indistinguishable
        // on the wire, so such mixes compete purely on rate.
        let tolerance = self.cfg.dimming_quantum / 2.0;
        let mut mix: Option<crate::amppm::mixer::Mix> = None;
        for a in &lows {
            for b in &highs {
                if let Some(m) = best_mix(a, b, l, tolerance, n_max, &self.table) {
                    let better = match &mix {
                        None => true,
                        Some(cur) => crate::amppm::mixer::mix_is_better(&m, cur, tolerance),
                    };
                    if better {
                        mix = Some(m);
                    }
                }
            }
        }
        let mix = mix.ok_or(PlanError::NoFit)?;
        let ser1 = self
            .cfg
            .slot_errors
            .symbol_error_rate(mix.super_symbol.s1());
        let ser2 = self
            .cfg
            .slot_errors
            .symbol_error_rate(mix.super_symbol.s2());
        let ser = mix.super_symbol.mean_symbol_error_rate(ser1, ser2);
        let plan = SuperSymbolPlan {
            super_symbol: mix.super_symbol,
            achieved: DimmingLevel::clamped(mix.dimming),
            requested: DimmingLevel::clamped(l),
            norm_rate: mix.norm_rate,
            rate_bps: mix.norm_rate * self.cfg.ftx_hz as f64 * (1.0 - ser),
            expected_ser: ser,
        };
        self.cache
            .lock()
            .expect("plan cache poisoned")
            .insert(q, plan);
        Ok(plan)
    }

    /// Like [`AmppmPlanner::plan`] but clamps out-of-range targets to the
    /// nearest supported level — what the live transmitter does when
    /// ambient light swings beyond the data-carrying range.
    pub fn plan_clamped(&self, target: DimmingLevel) -> Result<SuperSymbolPlan, PlanError> {
        let (min, max) = self.shared.envelope.dimming_range();
        let l = DimmingLevel::clamped(target.value().clamp(min, max));
        self.plan(l)
    }

    /// Number of distinct levels planned so far (shared cache occupancy).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("plan cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> AmppmPlanner {
        AmppmPlanner::new(SystemConfig::default()).unwrap()
    }

    fn lv(l: f64) -> DimmingLevel {
        DimmingLevel::new(l).unwrap()
    }

    #[test]
    fn plans_all_17_paper_levels() {
        // Fig. 15 evaluates 17 levels 0.1, 0.15, ..., 0.9.
        let p = planner();
        for i in 2..=18 {
            let l = i as f64 / 20.0;
            let plan = p.plan(lv(l)).unwrap();
            // The super-symbol realizes the level within the header quantum.
            assert!(
                (plan.achieved.value() - l).abs() <= p.config().dimming_quantum,
                "l={l}: achieved {:?}",
                plan.achieved
            );
            assert!(plan.super_symbol.n_super() <= p.config().n_max_super() as u32);
        }
    }

    #[test]
    fn rate_peaks_near_half() {
        let p = planner();
        let mid = p.plan(lv(0.5)).unwrap().rate_bps;
        let low = p.plan(lv(0.1)).unwrap().rate_bps;
        let high = p.plan(lv(0.9)).unwrap().rate_bps;
        assert!(mid > low && mid > high);
        // Paper calibration: peak raw rate ~107 Kbps (0.857 * 125k).
        assert!(mid > 100_000.0 && mid < 125_000.0, "mid={mid}");
    }

    #[test]
    fn amppm_beats_mppm_n20_at_every_level() {
        // The Fig. 15 headline: AMPPM >= MPPM(N=20) at all 17 levels.
        let p = planner();
        for i in 2..=18 {
            let l = i as f64 / 20.0;
            let plan = p.plan(lv(l)).unwrap();
            let k = (l * 20.0).round() as u16;
            let mppm = crate::symbol::SymbolPattern::new(20, k).unwrap();
            let mppm_rate = mppm.bits_per_symbol(p.table()) as f64 / 20.0;
            assert!(
                plan.norm_rate >= mppm_rate - 1e-12,
                "l={l}: {} < {mppm_rate}",
                plan.norm_rate
            );
        }
    }

    #[test]
    fn cache_hits_identical_plans() {
        let p = planner();
        let a = p.plan(lv(0.33)).unwrap();
        let before = p.cache_len();
        let b = p.plan(lv(0.33)).unwrap();
        assert_eq!(a, b);
        assert_eq!(p.cache_len(), before);
        // A level within the same quantum maps to the same plan.
        let c = p.plan(lv(0.33 + 1e-5)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn receiver_reproduces_plan_from_quantized_level() {
        // TX and RX planners built from the same config must agree given
        // the header's quantized level — the premise of our 4-byte Pattern
        // field design.
        let tx = planner();
        let rx = planner();
        for i in 0..50 {
            let l = 0.08 + i as f64 * 0.017;
            let a = tx.plan_clamped(lv(l.min(1.0))).unwrap();
            let b = rx.plan_clamped(lv(l.min(1.0))).unwrap();
            assert_eq!(a.super_symbol, b.super_symbol, "l={l}");
        }
    }

    #[test]
    fn extreme_levels_plan_or_clamp() {
        let p = planner();
        // Degenerate candidates take the envelope to [0,1]; the plans at
        // the extremes carry zero bits but hold the light level.
        let plan = p.plan(lv(0.0)).unwrap();
        assert_eq!(plan.norm_rate, 0.0);
        assert_eq!(plan.achieved.value(), 0.0);
        let plan = p.plan(lv(1.0)).unwrap();
        assert_eq!(plan.achieved.value(), 1.0);
        // plan_clamped is a no-op inside the range.
        let a = p.plan(lv(0.42)).unwrap();
        let b = p.plan_clamped(lv(0.42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_candidates_is_reported() {
        let cfg = SystemConfig {
            ser_upper_bound: 1e-12,
            ..SystemConfig::default()
        };
        assert_eq!(AmppmPlanner::new(cfg).err(), Some(PlanError::NoCandidates));
    }

    #[test]
    fn expected_ser_below_bound() {
        let p = planner();
        for i in 2..=18 {
            let plan = p.plan(lv(i as f64 / 20.0)).unwrap();
            assert!(plan.expected_ser <= p.config().ser_upper_bound + 1e-12);
        }
    }

    #[test]
    fn clones_share_cache_and_table() {
        let p = planner();
        let q = p.clone();
        assert!(std::sync::Arc::ptr_eq(&p.table_arc(), &q.table_arc()));
        let a = p.plan(lv(0.37)).unwrap();
        // The clone sees the cached plan without recomputing.
        assert_eq!(q.cache_len(), p.cache_len());
        assert_eq!(q.plan(lv(0.37)).unwrap(), a);
        // ...and entries planned via the clone appear in the original.
        let before = p.cache_len();
        q.plan(lv(0.61)).unwrap();
        assert_eq!(p.cache_len(), before + 1);
    }

    #[test]
    fn shared_cache_is_thread_safe() {
        let p = planner();
        std::thread::scope(|s| {
            for i in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for j in 2..=18 {
                        let l = j as f64 / 20.0;
                        let plan = p.plan(lv(l)).unwrap();
                        assert!(plan.rate_bps >= 0.0, "worker {i} l={l}");
                    }
                });
            }
        });
        assert_eq!(p.cache_len(), 17);
    }

    #[test]
    fn plan_is_deterministic() {
        let a = planner();
        let b = planner();
        for i in 1..=99 {
            let l = i as f64 / 100.0;
            assert_eq!(a.plan(lv(l)).unwrap(), b.plan(lv(l)).unwrap(), "l={l}");
        }
    }
}
