//! AMPPM Step 4: choose multiplicities `(m1, m2)` that realize a target
//! dimming level between two envelope patterns.
//!
//! Given the hull edge `(S1, S2)` bracketing the target level, the mixer
//! searches all integer multiplicities with `m1·N1 + m2·N2 ≤ Nmax` for the
//! super-symbol whose dimming level is closest to the target; among
//! equally-close options it takes the highest data rate, then the
//! shortest super-symbol (more header-rate agility, lower latency).
//!
//! The search space is tiny — at the paper's calibration `Nmax = 500` and
//! `N ≥ 10`, at most `51 × 51` combinations — so exhaustive enumeration
//! is both exact and cheap; no heuristics needed.

use super::candidates::Candidate;
use super::super_symbol::SuperSymbol;
use combinat::BinomialTable;

/// A concrete multiplexing choice with its figures of merit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mix {
    /// The composed super-symbol.
    pub super_symbol: SuperSymbol,
    /// Achieved dimming level (exact ratio of the super-symbol).
    pub dimming: f64,
    /// Normalized data rate (bits per slot).
    pub norm_rate: f64,
    /// Absolute dimming error versus the requested target.
    pub dimming_error: f64,
}

/// Ranking rule shared by the mixer and the planner: a dimming error at or
/// below `tolerance` is "close enough" (the header quantizes levels anyway),
/// so all in-tolerance mixes compete on rate; out-of-tolerance mixes
/// compete on error first. Ties fall through to rate, then to the shorter
/// super-symbol.
pub(crate) fn mix_is_better(m: &Mix, cur: &Mix, tolerance: f64) -> bool {
    let m_ok = m.dimming_error <= tolerance;
    let cur_ok = cur.dimming_error <= tolerance;
    if m_ok != cur_ok {
        return m_ok;
    }
    if !m_ok && (m.dimming_error - cur.dimming_error).abs() > 1e-12 {
        return m.dimming_error < cur.dimming_error;
    }
    if (m.norm_rate - cur.norm_rate).abs() > 1e-12 {
        return m.norm_rate > cur.norm_rate;
    }
    if (m.dimming_error - cur.dimming_error).abs() > 1e-12 {
        return m.dimming_error < cur.dimming_error;
    }
    m.super_symbol.n_super() < cur.super_symbol.n_super()
}

/// Find the best `(m1, m2)` for `target` between hull candidates `left`
/// and `right` (which may be the same pattern for an exact hull hit).
/// Mixes landing within `tolerance` of the target compete on rate
/// (see the crate-private `mix_is_better` ranking rule).
///
/// Returns `None` only if `n_max` is too small to fit even one symbol.
pub fn best_mix(
    left: &Candidate,
    right: &Candidate,
    target: f64,
    tolerance: f64,
    n_max: u32,
    table: &BinomialTable,
) -> Option<Mix> {
    let s1 = left.pattern;
    let s2 = right.pattern;
    let n1 = s1.n() as u32;
    let n2 = s2.n() as u32;
    let b1 = left.bits;
    let b2 = right.bits;

    let mut best: Option<Mix> = None;
    let m1_cap = n_max / n1;
    for m1 in 0..=m1_cap {
        // Same pattern on both sides: only m2 = 0 avoids double counting.
        let m2_cap = if s1 == s2 { 0 } else { (n_max - m1 * n1) / n2 };
        for m2 in 0..=m2_cap {
            if m1 == 0 && m2 == 0 {
                continue;
            }
            let n_super = m1 * n1 + m2 * n2;
            debug_assert!(n_super <= n_max);
            let ones = m1 * s1.k() as u32 + m2 * s2.k() as u32;
            let dimming = ones as f64 / n_super as f64;
            let bits = m1 * b1 + m2 * b2;
            let norm_rate = bits as f64 / n_super as f64;
            let err = (dimming - target).abs();
            let ss = SuperSymbol::new(s1, m1 as u16, s2, m2 as u16)
                .expect("m1 + m2 >= 1 by construction");
            let mix = Mix {
                super_symbol: ss,
                dimming,
                norm_rate,
                dimming_error: err,
            };
            let better = match &best {
                None => true,
                Some(cur) => mix_is_better(&mix, cur, tolerance),
            };
            if better {
                best = Some(mix);
            }
        }
    }
    // bits(table) is only used in debug builds to cross-check the inline sum.
    if let Some(m) = &best {
        debug_assert_eq!(
            m.super_symbol.bits(table),
            (m.norm_rate * m.super_symbol.n_super() as f64).round() as u32
        );
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amppm::candidates::Candidate;
    use crate::config::SystemConfig;
    use crate::symbol::SymbolPattern;

    fn cand(n: u16, k: u16, table: &BinomialTable) -> Candidate {
        Candidate::evaluate(
            SymbolPattern::new(n, k).unwrap(),
            &SystemConfig::default(),
            table,
        )
    }

    #[test]
    fn exact_hull_hit_uses_single_pattern() {
        let t = BinomialTable::new(512);
        let c = cand(21, 11, &t);
        let m = best_mix(&c, &c, c.dimming(), 0.0, 500, &t).unwrap();
        assert_eq!(m.dimming_error, 0.0);
        assert_eq!(m.super_symbol.m2(), 0);
        // Rate equals the pattern's own rate.
        assert!((m.norm_rate - c.norm_rate).abs() < 1e-12);
        // Fills the Nmax budget as tightly as possible? No: shortest
        // super-symbol wins among equal (error, rate).
        assert_eq!(m.super_symbol.m1(), 1);
    }

    #[test]
    fn paper_fig5_mix_is_found() {
        // Target 0.15 between S(10,0.1) and S(10,0.2): the 1+1 mix hits it
        // exactly (paper Fig. 5).
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(10, 2, &t);
        let m = best_mix(&a, &b, 0.15, 0.0, 500, &t).unwrap();
        assert!(m.dimming_error < 1e-12);
        assert!((m.dimming - 0.15).abs() < 1e-12);
        let ss = m.super_symbol;
        // Equal slot counts from both patterns.
        assert_eq!(
            ss.m1() as u32 * ss.s1().n() as u32,
            ss.m2() as u32 * ss.s2().n() as u32
        );
    }

    #[test]
    fn finer_target_needs_unequal_mix() {
        // Target 0.175: three (10,0.2) per one (10,0.1), paper Sec. 4.1.2.
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(10, 2, &t);
        let m = best_mix(&a, &b, 0.175, 0.0, 500, &t).unwrap();
        assert!(m.dimming_error < 1e-12);
        let ss = m.super_symbol;
        let slots1 = ss.m1() as u32 * 10;
        let slots2 = ss.m2() as u32 * 10;
        assert_eq!(slots2, 3 * slots1);
    }

    #[test]
    fn length_bound_is_respected() {
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(10, 2, &t);
        for n_max in [20u32, 40, 100, 500] {
            let m = best_mix(&a, &b, 0.147, 0.0, n_max, &t).unwrap();
            assert!(m.super_symbol.n_super() <= n_max, "n_max={n_max}");
        }
    }

    #[test]
    fn tight_budget_still_returns_something() {
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(12, 2, &t);
        let m = best_mix(&a, &b, 0.15, 0.0, 10, &t).unwrap();
        assert_eq!(m.super_symbol.n_super(), 10); // only one S1 fits
    }

    #[test]
    fn impossible_budget_returns_none() {
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(12, 2, &t);
        assert!(best_mix(&a, &b, 0.15, 0.0, 9, &t).is_none());
    }

    #[test]
    fn larger_budget_never_hurts_accuracy() {
        let t = BinomialTable::new(512);
        let a = cand(10, 1, &t);
        let b = cand(10, 2, &t);
        let mut prev_err = f64::INFINITY;
        for n_max in [20u32, 60, 120, 240, 500] {
            let m = best_mix(&a, &b, 0.1234, 0.0, n_max, &t).unwrap();
            assert!(m.dimming_error <= prev_err + 1e-15, "n_max={n_max}");
            prev_err = m.dimming_error;
        }
        // At Nmax = 500 the grid is fine enough for ~1e-3 accuracy.
        assert!(prev_err < 2e-3, "err={prev_err}");
    }

    #[test]
    fn rate_matches_envelope_interpolation_closely() {
        // Between two same-N hull points the best mix's rate should be
        // close to (and never meaningfully above) the linear interpolation.
        let t = BinomialTable::new(512);
        let a = cand(21, 10, &t);
        let b = cand(21, 11, &t);
        let target = 0.5; // between 10/21 and 11/21
        let m = best_mix(&a, &b, target, 0.0, 500, &t).unwrap();
        let ta = (target - a.dimming()) / (b.dimming() - a.dimming());
        let interp = a.norm_rate + ta * (b.norm_rate - a.norm_rate);
        assert!(
            (m.norm_rate - interp).abs() < 0.02,
            "mix={} interp={interp}",
            m.norm_rate
        );
    }
}
