//! AMPPM Steps 1–2: enumerate symbol patterns and filter by flicker and
//! symbol-error-rate bounds (Fig. 8 of the paper).

use crate::config::SystemConfig;
use crate::symbol::SymbolPattern;
use combinat::BinomialTable;
use serde::{Deserialize, Serialize};

/// A symbol pattern that survived the Step-1/Step-2 filters, with its
/// precomputed figures of merit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The pattern `S(N, K/N)`.
    pub pattern: SymbolPattern,
    /// Data bits per symbol, `⌊log2 C(N,K)⌋`.
    pub bits: u32,
    /// Normalized data rate, `bits / N` (bits per slot).
    pub norm_rate: f64,
    /// Eq. 3 symbol error rate on the configured channel.
    pub ser: f64,
}

impl Candidate {
    /// Dimming level `K/N` as a plain `f64`.
    pub fn dimming(&self) -> f64 {
        self.pattern.dimming().value()
    }

    /// Evaluate a pattern against a config (no filtering).
    pub fn evaluate(
        pattern: SymbolPattern,
        cfg: &SystemConfig,
        table: &BinomialTable,
    ) -> Candidate {
        let bits = pattern.bits_per_symbol(table);
        Candidate {
            pattern,
            bits,
            norm_rate: bits as f64 / pattern.n() as f64,
            ser: cfg.slot_errors.symbol_error_rate(pattern),
        }
    }
}

/// Enumerate every admissible symbol pattern under the paper's two
/// constraints:
///
/// * **Step 1 (flicker / Eq. 4):** a single symbol must fit inside one
///   super-symbol, so `N ≤ Nmax = ftx/fth`.
/// * **Step 2 (reliability / Eq. 3, Fig. 8):** patterns with
///   `PSER > ser_upper_bound` are abandoned.
///
/// All `K ∈ [0, N]` are considered: the `K = 0` / `K = N` degenerate
/// patterns carry no data (`bits = 0`) but let the envelope reach the
/// extreme dimming levels, exactly as compensation slots do in OOK-CT.
///
/// The returned list is sorted by `(dimming, -norm_rate)`. It is empty only
/// for pathological configs (SER bound below the error floor of the
/// smallest admissible symbol).
pub fn candidate_patterns(cfg: &SystemConfig, table: &BinomialTable) -> Vec<Candidate> {
    let n_cap = cfg
        .n_max_super()
        .min(table.max_n() as u64)
        .min(u16::MAX as u64) as u16;
    let mut out = Vec::new();
    for n in cfg.n_min..=n_cap {
        let mut any = false;
        for k in 0..=n {
            let pattern = SymbolPattern::new(n, k).expect("k <= n by construction");
            // Cheap SER test first; only survivors pay for the binomial.
            let ser = cfg.slot_errors.symbol_error_rate(pattern);
            if ser > cfg.ser_upper_bound {
                continue;
            }
            any = true;
            out.push(Candidate::evaluate(pattern, cfg, table));
        }
        // SER at fixed dimming grows monotonically with N, so once a whole
        // row is filtered out no larger N can pass either. (Both P1 and P2
        // contribute per-slot, so every K of a longer symbol errs more than
        // the same-dimming K of a shorter one.)
        if !any {
            break;
        }
    }
    out.sort_by(|a, b| {
        a.dimming()
            .partial_cmp(&b.dimming())
            .expect("dimming is finite")
            .then(
                b.norm_rate
                    .partial_cmp(&a.norm_rate)
                    .expect("rate is finite"),
            )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConfig, BinomialTable) {
        (SystemConfig::default(), BinomialTable::new(512))
    }

    #[test]
    fn all_candidates_satisfy_both_bounds() {
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.ser <= cfg.ser_upper_bound, "{:?}", c);
            assert!((c.pattern.n() as u64) <= cfg.n_max_super());
            assert!(c.pattern.n() >= cfg.n_min);
        }
    }

    #[test]
    fn paper_fig9_range_is_admitted() {
        // Fig. 9 plots candidates N = 10..=21 around l = 0.5; all must
        // survive the calibrated bound, including the chosen S(21, 0.524).
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        for n in 10..=21u16 {
            let k = n / 2;
            assert!(
                cands
                    .iter()
                    .any(|c| c.pattern.n() == n && c.pattern.k() == k),
                "S({n},{k}) missing"
            );
        }
        assert!(cands
            .iter()
            .any(|c| c.pattern.n() == 21 && c.pattern.k() == 11));
    }

    #[test]
    fn mppm_baseline_n20_is_admitted_everywhere() {
        // The paper's MPPM baseline uses N=20 across all 17 dimming levels.
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        for k in 0..=20u16 {
            assert!(
                cands
                    .iter()
                    .any(|c| c.pattern.n() == 20 && c.pattern.k() == k),
                "S(20,{k}) missing"
            );
        }
    }

    #[test]
    fn oversized_n_is_filtered_by_ser() {
        // With the measured P1/P2, N=50 exceeds 2.5e-3 for every K
        // (SER >= 50 * 8e-5 = 4e-3), mirroring Fig. 8's abandonment.
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        assert!(cands.iter().all(|c| c.pattern.n() < 50));
    }

    #[test]
    fn stricter_bound_shrinks_candidate_set() {
        let (mut cfg, t) = setup();
        let full = candidate_patterns(&cfg, &t).len();
        cfg.ser_upper_bound = 1e-3; // the paper's stated figure
        let strict = candidate_patterns(&cfg, &t);
        assert!(strict.len() < full);
        // Under the strict reading, S(21,11) itself is abandoned.
        assert!(!strict
            .iter()
            .any(|c| c.pattern.n() == 21 && c.pattern.k() == 11));
    }

    #[test]
    fn flicker_bound_caps_n_when_ser_allows_more() {
        // With a near-ideal channel the SER filter admits everything, so
        // the Eq. 4 bound must be the one that caps N.
        let (mut cfg, t) = setup();
        cfg.slot_errors.p_off_error = 1e-9;
        cfg.slot_errors.p_on_error = 1e-9;
        cfg.fth_hz = 12_500; // Nmax = 10
        let cands = candidate_patterns(&cfg, &t);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.pattern.n() == 10)); // n_min = Nmax = 10
    }

    #[test]
    fn sorted_by_dimming_then_rate() {
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        for w in cands.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(
                a.dimming() < b.dimming()
                    || (a.dimming() == b.dimming() && a.norm_rate >= b.norm_rate)
            );
        }
    }

    #[test]
    fn degenerate_patterns_reach_extremes() {
        let (cfg, t) = setup();
        let cands = candidate_patterns(&cfg, &t);
        assert_eq!(cands.first().unwrap().dimming(), 0.0);
        assert_eq!(cands.last().unwrap().dimming(), 1.0);
        assert_eq!(cands.first().unwrap().bits, 0);
    }

    #[test]
    fn impossible_bound_yields_empty_set() {
        let (mut cfg, t) = setup();
        cfg.ser_upper_bound = 1e-12;
        assert!(candidate_patterns(&cfg, &t).is_empty());
    }
}
