//! AMPPM Step 3: the slope-based throughput envelope (Fig. 9).
//!
//! Plot every admissible candidate as a point `(l = K/N, r = bits/N)`.
//! The paper's procedure — start from the highest-rate pattern near
//! `l = 0.5`, then repeatedly connect to the next pattern whose connecting
//! segment has the smallest slope (magnitude) — is a gift-wrapping walk
//! that produces the **upper convex hull** of the point cloud on each side
//! of the peak. Any dimming level between two adjacent hull points is then
//! served by multiplexing those two patterns (Step 4), and the achievable
//! normalized rate is the linear interpolation along the hull edge —
//! that's why the hull, and not any other chain, is the throughput
//! envelope.

use super::candidates::Candidate;

/// The throughput envelope: hull candidates sorted by dimming level.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Hull points in increasing dimming order. Invariants: non-empty;
    /// strictly increasing dimming; slopes non-increasing (concave chain).
    points: Vec<Candidate>,
    /// Index of the peak (highest-rate) point within `points`.
    peak: usize,
}

impl Envelope {
    /// Build the envelope from a candidate set (paper Fig. 9 procedure).
    /// Returns `None` when `candidates` is empty.
    pub fn build(candidates: &[Candidate]) -> Option<Envelope> {
        if candidates.is_empty() {
            return None;
        }
        // Per dimming level keep only the best (highest-rate) candidate;
        // among rate ties prefer the shortest symbol (lower SER, lower
        // latency, more copies fit under Nmax).
        let mut best: Vec<Candidate> = Vec::new();
        let mut sorted: Vec<Candidate> = candidates.to_vec();
        sorted.sort_by(|a, b| {
            a.dimming()
                .partial_cmp(&b.dimming())
                .expect("finite")
                .then(b.norm_rate.partial_cmp(&a.norm_rate).expect("finite"))
                .then(a.pattern.n().cmp(&b.pattern.n()))
        });
        for c in sorted {
            match best.last() {
                Some(last) if last.dimming() == c.dimming() => {} // dominated
                _ => best.push(c),
            }
        }

        // Peak: the global best normalized rate, ties broken toward l=0.5
        // ("the available patterns whose dimming level is around 0.5").
        let peak_idx = (0..best.len())
            .max_by(|&a, &b| {
                best[a]
                    .norm_rate
                    .partial_cmp(&best[b].norm_rate)
                    .expect("finite")
                    .then_with(|| {
                        let da = (best[a].dimming() - 0.5).abs();
                        let db = (best[b].dimming() - 0.5).abs();
                        db.partial_cmp(&da).expect("finite")
                    })
            })
            .expect("non-empty");

        // Gift-wrapping walk to the right of the peak: among candidates at
        // strictly larger dimming, pick the one maximizing the connecting
        // slope (all slopes are <= 0 right of the peak, so the maximum is
        // the smallest in magnitude — the paper's phrasing).
        let mut right = Vec::new();
        let mut cur = peak_idx;
        loop {
            let mut next: Option<usize> = None;
            let mut next_slope = f64::NEG_INFINITY;
            for (j, c) in best.iter().enumerate().skip(cur + 1) {
                let slope =
                    (c.norm_rate - best[cur].norm_rate) / (c.dimming() - best[cur].dimming());
                // Tie: extend as far as possible in one segment.
                if slope > next_slope + 1e-15
                    || ((slope - next_slope).abs() <= 1e-15
                        && next.is_none_or(|n| c.dimming() > best[n].dimming()))
                {
                    next = Some(j);
                    next_slope = slope;
                }
            }
            match next {
                Some(j) => {
                    right.push(j);
                    cur = j;
                }
                None => break,
            }
        }

        // Mirror walk to the left: minimize the slope (all slopes are >= 0
        // left of the peak; the minimum is again the smallest magnitude).
        let mut left = Vec::new();
        let mut cur = peak_idx;
        loop {
            let mut next: Option<usize> = None;
            let mut next_slope = f64::INFINITY;
            for (j, c) in best.iter().enumerate().take(cur) {
                let slope =
                    (best[cur].norm_rate - c.norm_rate) / (best[cur].dimming() - c.dimming());
                if slope < next_slope - 1e-15
                    || ((slope - next_slope).abs() <= 1e-15
                        && next.is_none_or(|n| c.dimming() < best[n].dimming()))
                {
                    next = Some(j);
                    next_slope = slope;
                }
            }
            match next {
                Some(j) => {
                    left.push(j);
                    cur = j;
                }
                None => break,
            }
        }

        let mut points = Vec::with_capacity(left.len() + 1 + right.len());
        for &i in left.iter().rev() {
            points.push(best[i]);
        }
        let peak = points.len();
        points.push(best[peak_idx]);
        for &i in &right {
            points.push(best[i]);
        }
        Some(Envelope { points, peak })
    }

    /// The hull points in increasing dimming order.
    pub fn points(&self) -> &[Candidate] {
        &self.points
    }

    /// The peak (highest normalized rate) hull point.
    pub fn peak(&self) -> &Candidate {
        &self.points[self.peak]
    }

    /// Dimming range `[min, max]` covered by the envelope.
    pub fn dimming_range(&self) -> (f64, f64) {
        (
            self.points.first().expect("non-empty").dimming(),
            self.points.last().expect("non-empty").dimming(),
        )
    }

    /// The pair of adjacent hull points whose dimming interval contains
    /// `l` (returns the same point twice at exact hull levels and at the
    /// endpoints). `None` outside the envelope range.
    pub fn bracket(&self, l: f64) -> Option<(&Candidate, &Candidate)> {
        let (lo, hi) = self.dimming_range();
        if !(lo..=hi).contains(&l) {
            return None;
        }
        // Exact hit?
        if let Some(c) = self.points.iter().find(|c| c.dimming() == l) {
            return Some((c, c));
        }
        let idx = self
            .points
            .windows(2)
            .position(|w| w[0].dimming() < l && l < w[1].dimming())
            .expect("l inside range and not on a vertex");
        Some((&self.points[idx], &self.points[idx + 1]))
    }

    /// The envelope value at `l`: linear interpolation of normalized rate
    /// along the containing hull edge. `None` outside the range.
    pub fn rate_at(&self, l: f64) -> Option<f64> {
        let (a, b) = self.bracket(l)?;
        if a.pattern == b.pattern {
            return Some(a.norm_rate);
        }
        let t = (l - a.dimming()) / (b.dimming() - a.dimming());
        Some(a.norm_rate + t * (b.norm_rate - a.norm_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amppm::candidates::candidate_patterns;
    use crate::config::SystemConfig;
    use crate::symbol::SymbolPattern;
    use combinat::BinomialTable;

    fn paper_envelope() -> Envelope {
        let cfg = SystemConfig::default();
        let t = BinomialTable::new(512);
        let cands = candidate_patterns(&cfg, &t);
        Envelope::build(&cands).expect("non-empty candidates")
    }

    fn cand(n: u16, k: u16, rate: f64) -> Candidate {
        Candidate {
            pattern: SymbolPattern::new(n, k).unwrap(),
            bits: (rate * n as f64).round() as u32,
            norm_rate: rate,
            ser: 0.0,
        }
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(Envelope::build(&[]).is_none());
    }

    #[test]
    fn single_candidate_is_its_own_envelope() {
        let e = Envelope::build(&[cand(10, 5, 0.8)]).unwrap();
        assert_eq!(e.points().len(), 1);
        assert_eq!(e.rate_at(0.5), Some(0.8));
        assert_eq!(e.rate_at(0.4), None);
    }

    #[test]
    fn hull_dominates_all_candidates() {
        // Every candidate must lie on or below the envelope.
        let cfg = SystemConfig::default();
        let t = BinomialTable::new(512);
        let cands = candidate_patterns(&cfg, &t);
        let e = Envelope::build(&cands).unwrap();
        for c in &cands {
            let env = e.rate_at(c.dimming()).expect("within range");
            assert!(env >= c.norm_rate - 1e-12, "{:?} above envelope ({env})", c);
        }
    }

    #[test]
    fn hull_is_concave() {
        // Slopes along the chain must be non-increasing left to right.
        let e = paper_envelope();
        let pts = e.points();
        let slopes: Vec<f64> = pts
            .windows(2)
            .map(|w| (w[1].norm_rate - w[0].norm_rate) / (w[1].dimming() - w[0].dimming()))
            .collect();
        for w in slopes.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "slopes not concave: {slopes:?}");
        }
    }

    #[test]
    fn dimming_strictly_increasing() {
        let e = paper_envelope();
        for w in e.points().windows(2) {
            assert!(w[0].dimming() < w[1].dimming());
        }
    }

    #[test]
    fn peak_is_global_max() {
        let e = paper_envelope();
        let max = e
            .points()
            .iter()
            .map(|c| c.norm_rate)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(e.peak().norm_rate, max);
        // With the paper calibration the peak must be one of the
        // near-balanced large-N patterns around l = 0.5.
        assert!((e.peak().dimming() - 0.5).abs() < 0.06, "{:?}", e.peak());
    }

    #[test]
    fn envelope_spans_full_dimming_range() {
        // K=0 / K=N degenerate candidates anchor the ends.
        let e = paper_envelope();
        assert_eq!(e.dimming_range(), (0.0, 1.0));
    }

    #[test]
    fn envelope_beats_every_fixed_n_mppm() {
        // The paper's claim behind Fig. 15: the envelope is at least as
        // good as MPPM N=20 at every one of the 17 dimming levels.
        let t = BinomialTable::new(512);
        let e = paper_envelope();
        for i in 2..=18u16 {
            let l = i as f64 / 20.0; // 0.1, 0.15, ..., 0.9
            let k = (l * 20.0).round() as u16;
            let mppm = SymbolPattern::new(20, k).unwrap();
            let mppm_rate = mppm.bits_per_symbol(&t) as f64 / 20.0;
            let env = e.rate_at(l).expect("within range");
            assert!(
                env >= mppm_rate - 1e-12,
                "l={l}: envelope {env} < MPPM {mppm_rate}"
            );
        }
    }

    #[test]
    fn bracket_exact_hit_returns_same_point() {
        let e = paper_envelope();
        let peak_l = e.peak().dimming();
        let (a, b) = e.bracket(peak_l).unwrap();
        assert_eq!(a.pattern, b.pattern);
    }

    #[test]
    fn bracket_interior_returns_adjacent_pair() {
        let e = paper_envelope();
        let pts = e.points();
        let mid = (pts[0].dimming() + pts[1].dimming()) / 2.0;
        let (a, b) = e.bracket(mid).unwrap();
        assert_eq!(a.pattern, pts[0].pattern);
        assert_eq!(b.pattern, pts[1].pattern);
    }

    #[test]
    fn interpolation_is_linear_between_hull_points() {
        let a = cand(10, 2, 0.4);
        let b = cand(10, 6, 0.8);
        let e = Envelope::build(&[a, b]).unwrap();
        let r = e.rate_at(0.4).unwrap(); // halfway between l=0.2 and l=0.6
        assert!((r - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dominated_candidate_is_excluded() {
        // c sits below the a-b segment and must not be a hull vertex.
        let a = cand(10, 2, 0.4);
        let b = cand(10, 6, 0.8);
        let c = cand(10, 4, 0.5); // segment value at 0.4 is 0.6 > 0.5
        let e = Envelope::build(&[a, c, b]).unwrap();
        assert_eq!(e.points().len(), 2);
        assert!((e.rate_at(0.4).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn above_segment_candidate_is_included() {
        let a = cand(10, 2, 0.4);
        let b = cand(10, 6, 0.8);
        let c = cand(10, 4, 0.75); // above the segment
        let e = Envelope::build(&[a, c, b]).unwrap();
        assert_eq!(e.points().len(), 3);
    }
}
