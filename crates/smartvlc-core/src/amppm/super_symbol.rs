//! Super-symbols (Figs. 5 and 7 of the paper).
//!
//! A super-symbol `⟨S1(N1,l1), m1, S2(N2,l2), m2⟩` multiplexes `m1` copies
//! of pattern `S1` with `m2` copies of `S2`. Its dimming level is the
//! slot-weighted average
//!
//! ```text
//! lsuper = (l1·m1·N1 + l2·m2·N2) / (m1·N1 + m2·N2)
//! ```
//!
//! and — the crucial property from §4.1.2 — multiplexing does **not**
//! raise the symbol error rate, because each constituent symbol is decoded
//! independently.
//!
//! ## Symbol ordering
//!
//! The paper defines a super-symbol as a concatenation and bounds its
//! *length* (`Nsuper ≤ Nmax`, Eq. 4) so the brightness difference between
//! its two halves repeats fast enough to be invisible. We additionally
//! *interleave* the copies evenly (a Bresenham spread), which strictly
//! reduces the low-frequency content of the waveform relative to plain
//! `S1…S1 S2…S2` concatenation while conveying exactly the same data. The
//! ordering is a pure function of `(S1, m1, S2, m2)`, so the receiver
//! reconstructs it from the frame header without extra signalling.

use crate::symbol::SymbolPattern;
use combinat::{BigUint, BinomialTable, BitReader, BitWriter, CodewordError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A super-symbol `⟨S1, m1, S2, m2⟩`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SuperSymbol {
    s1: SymbolPattern,
    m1: u16,
    s2: SymbolPattern,
    m2: u16,
}

impl SuperSymbol {
    /// Compose a super-symbol. Returns `None` if both multiplicities are
    /// zero.
    pub fn new(s1: SymbolPattern, m1: u16, s2: SymbolPattern, m2: u16) -> Option<SuperSymbol> {
        if m1 == 0 && m2 == 0 {
            None
        } else {
            Some(SuperSymbol { s1, m1, s2, m2 })
        }
    }

    /// A super-symbol made of a single pattern (`m2 = 0`).
    pub fn uniform(s: SymbolPattern, m: u16) -> Option<SuperSymbol> {
        SuperSymbol::new(s, m, s, 0)
    }

    /// First constituent pattern.
    pub fn s1(&self) -> SymbolPattern {
        self.s1
    }

    /// Copies of the first pattern.
    pub fn m1(&self) -> u16 {
        self.m1
    }

    /// Second constituent pattern.
    pub fn s2(&self) -> SymbolPattern {
        self.s2
    }

    /// Copies of the second pattern.
    pub fn m2(&self) -> u16 {
        self.m2
    }

    /// Total slots `Nsuper = m1·N1 + m2·N2`.
    pub fn n_super(&self) -> u32 {
        self.m1 as u32 * self.s1.n() as u32 + self.m2 as u32 * self.s2.n() as u32
    }

    /// Total ON slots.
    pub fn ones(&self) -> u32 {
        self.m1 as u32 * self.s1.k() as u32 + self.m2 as u32 * self.s2.k() as u32
    }

    /// The super-symbol's dimming level `lsuper` (exact ratio).
    pub fn dimming(&self) -> f64 {
        self.ones() as f64 / self.n_super() as f64
    }

    /// Total data bits carried by one super-symbol.
    pub fn bits(&self, table: &BinomialTable) -> u32 {
        self.m1 as u32 * self.s1.bits_per_symbol(table)
            + self.m2 as u32 * self.s2.bits_per_symbol(table)
    }

    /// Normalized data rate (bits per slot).
    pub fn normalized_rate(&self, table: &BinomialTable) -> f64 {
        self.bits(table) as f64 / self.n_super() as f64
    }

    /// Expected fraction of constituent symbols decoded in error, given
    /// per-pattern SERs (§4.1.2: symbols are decoded independently, so the
    /// super-symbol does not multiply error rates).
    pub fn mean_symbol_error_rate(&self, ser1: f64, ser2: f64) -> f64 {
        let total = (self.m1 + self.m2) as f64;
        (self.m1 as f64 * ser1 + self.m2 as f64 * ser2) / total
    }

    /// The deterministic transmission order of constituent symbols: `m1`
    /// copies of `S1` spread evenly among `m2` copies of `S2`.
    pub fn symbol_sequence(&self) -> Vec<SymbolPattern> {
        let total = (self.m1 + self.m2) as u32;
        let mut out = Vec::with_capacity(total as usize);
        // Slot i carries S1 iff the scaled index crosses an integer
        // boundary — exactly m1 of the total positions do.
        let m1 = self.m1 as u32;
        for i in 0..total {
            let before = (i * m1) / total;
            let after = ((i + 1) * m1) / total;
            out.push(if after > before { self.s1 } else { self.s2 });
        }
        out
    }

    /// Encode data bits from `reader` into the slot waveform of one
    /// super-symbol. If the reader runs dry the remaining data words are
    /// zero (the framing layer sizes payloads so this only happens on the
    /// final super-symbol).
    pub fn encode(&self, table: &BinomialTable, reader: &mut BitReader<'_>) -> Vec<bool> {
        let mut slots = Vec::with_capacity(self.n_super() as usize);
        for pattern in self.symbol_sequence() {
            let bits = pattern.bits_per_symbol(table) as usize;
            let mut word = reader.read_bits(bits);
            word.resize(bits, false); // zero-pad a dry reader
            let value = BigUint::from_bits_msb(&word);
            let symbol = pattern
                .encode(table, &value)
                .expect("value width bounded by bits_per_symbol");
            slots.extend_from_slice(&symbol);
        }
        slots
    }

    /// Decode one super-symbol's worth of received slots, appending the
    /// recovered bits to `writer`. Returns the number of constituent
    /// symbols that failed their constant-weight check (each failed symbol
    /// contributes zero-bits so downstream framing keeps its alignment).
    pub fn decode(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        writer: &mut BitWriter,
    ) -> Result<u32, CodewordError> {
        if slots.len() != self.n_super() as usize {
            return Err(CodewordError::WrongLength {
                expected: self.n_super() as usize,
                got: slots.len(),
            });
        }
        let mut offset = 0usize;
        let mut failures = 0u32;
        for pattern in self.symbol_sequence() {
            let n = pattern.n() as usize;
            let bits = pattern.bits_per_symbol(table);
            let word = &slots[offset..offset + n];
            match pattern.decode(table, word) {
                // A corrupted symbol can keep its weight by chance yet
                // rank beyond the 2^bits window actually used for data
                // (C(N,K) is not a power of two); that is a symbol error
                // too, not a panic.
                Ok(value) if value.bit_length() <= bits => {
                    for b in value.to_bits_msb(bits) {
                        writer.write_bit(b);
                    }
                }
                Ok(_) | Err(CodewordError::WrongWeight { .. }) => {
                    // Symbol corrupted: emit placeholder zeros to keep
                    // alignment; the frame CRC will catch the damage.
                    failures += 1;
                    for _ in 0..bits {
                        writer.write_bit(false);
                    }
                }
                Err(e) => return Err(e),
            }
            offset += n;
        }
        Ok(failures)
    }
}

impl fmt::Debug for SuperSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} x{}, {} x{}>", self.s1, self.m1, self.s2, self.m2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(512)
    }

    fn s(n: u16, k: u16) -> SymbolPattern {
        SymbolPattern::new(n, k).unwrap()
    }

    #[test]
    fn paper_fig5_example() {
        // Append S(10,0.2) to S(10,0.1): lsuper = 0.15, Nsuper = 20.
        let ss = SuperSymbol::new(s(10, 1), 1, s(10, 2), 1).unwrap();
        assert_eq!(ss.n_super(), 20);
        assert!((ss.dimming() - 0.15).abs() < 1e-12);
        // Three copies of (10,0.2) after one (10,0.1): l = 7/40 = 0.175.
        let ss = SuperSymbol::new(s(10, 1), 1, s(10, 2), 3).unwrap();
        assert!((ss.dimming() - 0.175).abs() < 1e-12);
    }

    #[test]
    fn both_multiplicities_zero_rejected() {
        assert!(SuperSymbol::new(s(10, 1), 0, s(10, 2), 0).is_none());
    }

    #[test]
    fn lsuper_formula() {
        // lsuper = (l1 m1 N1 + l2 m2 N2)/(m1 N1 + m2 N2), Sec. 4.2.
        let ss = SuperSymbol::new(s(21, 11), 3, s(21, 12), 2).unwrap();
        let expect = (11.0 * 3.0 + 12.0 * 2.0) / (21.0 * 5.0);
        assert!((ss.dimming() - expect).abs() < 1e-12);
    }

    #[test]
    fn bits_sum_over_constituents() {
        let t = table();
        let ss = SuperSymbol::new(s(21, 11), 2, s(20, 10), 1).unwrap();
        let expect = 2 * s(21, 11).bits_per_symbol(&t) + s(20, 10).bits_per_symbol(&t);
        assert_eq!(ss.bits(&t), expect);
    }

    #[test]
    fn sequence_has_exact_multiplicities_and_is_spread() {
        let ss = SuperSymbol::new(s(10, 1), 3, s(12, 2), 9).unwrap();
        let seq = ss.symbol_sequence();
        assert_eq!(seq.len(), 12);
        assert_eq!(seq.iter().filter(|&&p| p == s(10, 1)).count(), 3);
        // Evenly spread: no two S1 adjacent when m2 >= 2*m1.
        for w in seq.windows(2) {
            assert!(!(w[0] == s(10, 1) && w[1] == s(10, 1)));
        }
    }

    #[test]
    fn sequence_is_deterministic() {
        let ss = SuperSymbol::new(s(11, 3), 5, s(13, 7), 8).unwrap();
        assert_eq!(ss.symbol_sequence(), ss.symbol_sequence());
    }

    #[test]
    fn uniform_super_symbol() {
        let ss = SuperSymbol::uniform(s(20, 10), 4).unwrap();
        assert_eq!(ss.n_super(), 80);
        assert_eq!(ss.dimming(), 0.5);
        assert_eq!(ss.symbol_sequence().len(), 4);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = table();
        let ss = SuperSymbol::new(s(21, 11), 2, s(10, 4), 3).unwrap();
        let payload: Vec<u8> = (0u8..64).collect();
        let mut reader = BitReader::new(&payload);
        let slots = ss.encode(&t, &mut reader);
        assert_eq!(slots.len(), ss.n_super() as usize);
        // The waveform realizes the promised dimming level exactly.
        assert_eq!(slots.iter().filter(|&&b| b).count() as u32, ss.ones());
        let mut w = BitWriter::new();
        let failures = ss.decode(&t, &slots, &mut w).unwrap();
        assert_eq!(failures, 0);
        let consumed = ss.bits(&t) as usize;
        let (bytes, nbits) = w.finish();
        assert_eq!(nbits, consumed);
        // Compare against the bits actually read.
        let mut orig = BitReader::new(&payload);
        let mut got = BitReader::new(&bytes);
        for _ in 0..consumed {
            assert_eq!(orig.read_bit(), got.read_bit());
        }
    }

    #[test]
    fn encode_pads_dry_reader_with_zeros() {
        let t = table();
        let ss = SuperSymbol::new(s(20, 10), 10, s(20, 10), 0).unwrap();
        let mut reader = BitReader::new(&[0xFF]); // 8 bits for 170+ bit capacity
        let slots = ss.encode(&t, &mut reader);
        assert_eq!(slots.len(), 200);
        // Still a valid constant-weight waveform.
        assert_eq!(slots.iter().filter(|&&b| b).count(), 100);
    }

    #[test]
    fn decode_flags_corrupted_symbols_but_keeps_alignment() {
        let t = table();
        let ss = SuperSymbol::new(s(10, 4), 4, s(10, 4), 0).unwrap();
        let payload = [0xA5u8; 8];
        let mut reader = BitReader::new(&payload);
        let mut slots = ss.encode(&t, &mut reader);
        slots[1] = !slots[1]; // corrupt the first symbol
        let mut w = BitWriter::new();
        let failures = ss.decode(&t, &slots, &mut w).unwrap();
        assert_eq!(failures, 1);
        let (_, nbits) = w.finish();
        assert_eq!(nbits as u32, ss.bits(&t), "alignment preserved");
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let t = table();
        let ss = SuperSymbol::uniform(s(10, 5), 2).unwrap();
        let mut w = BitWriter::new();
        assert!(matches!(
            ss.decode(&t, &[false; 19], &mut w),
            Err(CodewordError::WrongLength {
                expected: 20,
                got: 19
            })
        ));
    }

    #[test]
    fn mean_ser_is_multiplicity_weighted() {
        let ss = SuperSymbol::new(s(10, 1), 1, s(10, 2), 3).unwrap();
        let m = ss.mean_symbol_error_rate(0.004, 0.002);
        assert!((m - (0.004 + 3.0 * 0.002) / 4.0).abs() < 1e-15);
    }
}
