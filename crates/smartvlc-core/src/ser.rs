//! Symbol-error and data-rate models — Eqs. 2 and 3 of the paper.
//!
//! The paper models photodiode detection as a Poisson photon-counting
//! process [Sugiyama & Nosu '89]; what reaches this module is its
//! distilled form: per-slot error probabilities `P1` (an OFF decoded as
//! ON) and `P2` (an ON decoded as OFF). A whole MPPM symbol decodes
//! correctly only when *every* slot does, giving Eq. 3:
//!
//! ```text
//! PSER = 1 − (1−P1)^(N−K) · (1−P2)^K
//! ```
//!
//! and the achievable data rate of pattern `S(N, l=K/N)` is Eq. 2:
//!
//! ```text
//! R = ⌊log2 C(N,K)⌋ / (N · tslot) · (1 − PSER)   bit/s
//! ```
//!
//! These analytic forms drive AMPPM's candidate filtering (Step 2) and the
//! figure generators; the Monte-Carlo channel in `vlc-channel` produces
//! the *empirical* counterparts the end-to-end experiments measure.

use crate::symbol::SymbolPattern;
use combinat::BinomialTable;
use serde::{Deserialize, Serialize};

/// Per-slot detection error probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlotErrorProbs {
    /// `P1`: probability an OFF slot is decoded as ON (ambient/receiver
    /// noise pushing a dark slot over threshold). Paper measurement: 9e-5.
    pub p_off_error: f64,
    /// `P2`: probability an ON slot is decoded as OFF (shot noise /
    /// attenuation pulling a lit slot under threshold). Paper: 8e-5.
    pub p_on_error: f64,
}

impl SlotErrorProbs {
    /// The paper's measured values (§6.1: 3.6 m, high ambient noise).
    pub fn paper_measured() -> SlotErrorProbs {
        SlotErrorProbs {
            p_off_error: 9e-5,
            p_on_error: 8e-5,
        }
    }

    /// An error-free channel (useful in unit tests).
    pub fn ideal() -> SlotErrorProbs {
        SlotErrorProbs {
            p_off_error: 0.0,
            p_on_error: 0.0,
        }
    }

    /// Eq. 3: symbol error rate of pattern `s` on this channel.
    pub fn symbol_error_rate(&self, s: SymbolPattern) -> f64 {
        let n = s.n() as i32;
        let k = s.k() as i32;
        1.0 - (1.0 - self.p_off_error).powi(n - k) * (1.0 - self.p_on_error).powi(k)
    }

    /// Eq. 2: achievable data rate of pattern `s` in bit/s, given the slot
    /// duration.
    pub fn data_rate_bps(&self, s: SymbolPattern, tslot_secs: f64, table: &BinomialTable) -> f64 {
        let bits = s.bits_per_symbol(table) as f64;
        let t_symbol = s.n() as f64 * tslot_secs;
        bits / t_symbol * (1.0 - self.symbol_error_rate(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16, k: u16) -> SymbolPattern {
        SymbolPattern::new(n, k).unwrap()
    }

    #[test]
    fn ideal_channel_has_zero_ser() {
        let p = SlotErrorProbs::ideal();
        assert_eq!(p.symbol_error_rate(s(120, 60)), 0.0);
    }

    #[test]
    fn ser_matches_linear_approximation_for_small_p() {
        // For small P: PSER ~ (N-K)P1 + K*P2.
        let p = SlotErrorProbs::paper_measured();
        let pat = s(20, 10);
        let approx = 10.0 * 9e-5 + 10.0 * 8e-5;
        let exact = p.symbol_error_rate(pat);
        assert!((exact - approx).abs() / approx < 1e-2, "exact={exact}");
    }

    #[test]
    fn ser_grows_with_n_at_fixed_dimming() {
        // Fig. 4's message: larger N means higher SER at every dimming level.
        let p = SlotErrorProbs::paper_measured();
        let mut prev = 0.0;
        for n in [10u16, 30, 50, 80, 120] {
            let ser = p.symbol_error_rate(s(n, n / 2));
            assert!(ser > prev, "N={n}: {ser} <= {prev}");
            prev = ser;
        }
    }

    #[test]
    fn ser_is_asymmetric_in_p1_p2() {
        // P1 > P2, so at fixed N a darker symbol (more OFF slots) errs more.
        let p = SlotErrorProbs::paper_measured();
        assert!(p.symbol_error_rate(s(50, 5)) > p.symbol_error_rate(s(50, 45)));
    }

    #[test]
    fn paper_fig9_pattern_ser() {
        // S(21, 0.524): PSER = 1 - (1-9e-5)^10 (1-8e-5)^11 ~ 1.78e-3... it is
        // the value that motivates our 2.5e-3 default bound (see config.rs).
        let p = SlotErrorProbs::paper_measured();
        let ser = p.symbol_error_rate(s(21, 11));
        assert!((ser - 1.78e-3).abs() < 2e-5, "ser={ser}");
        assert!(ser > 1e-3, "exceeds the paper's stated 1e-3 bound");
        assert!(ser < 2.5e-3, "within our calibrated bound");
    }

    #[test]
    fn data_rate_matches_paper_mppm_baseline() {
        // MPPM N=20 at l=0.1 -> 7 bits / 160 us ~ 43.75 Kbps (paper: 44.3
        // measured). SER correction is negligible at these probabilities.
        let p = SlotErrorProbs::paper_measured();
        let t = BinomialTable::new(64);
        let rate = p.data_rate_bps(s(20, 2), 8e-6, &t);
        assert!((rate - 43_750.0).abs() < 100.0, "rate={rate}");
    }

    #[test]
    fn data_rate_scales_with_slot_clock() {
        let p = SlotErrorProbs::ideal();
        let t = BinomialTable::new(64);
        let r1 = p.data_rate_bps(s(10, 5), 8e-6, &t);
        let r2 = p.data_rate_bps(s(10, 5), 4e-6, &t);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extreme_error_probs_cap_rate_at_zero_ser_one() {
        let p = SlotErrorProbs {
            p_off_error: 1.0,
            p_on_error: 1.0,
        };
        let pat = s(10, 5);
        assert_eq!(p.symbol_error_rate(pat), 1.0);
        let t = BinomialTable::new(64);
        assert_eq!(p.data_rate_bps(pat, 8e-6, &t), 0.0);
    }
}
