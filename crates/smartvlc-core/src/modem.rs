//! The slot-domain modem abstraction shared by all schemes.
//!
//! A [`SlotModem`] turns payload bytes into a slot waveform (`true` = LED
//! ON for one `tslot`) at a specific dimming level, and back. The frame
//! layer (Table 1) composes a modem with the preamble/header/compensation
//! machinery; the link layer feeds the waveform through the simulated
//! channel.
//!
//! Schemes implemented:
//! * [`crate::schemes::MppmModem`] — compensation-free baseline (§2.1),
//! * [`crate::schemes::OokCtModem`] — compensation-based baseline (§2.1),
//! * [`crate::schemes::VppmModem`] — IEEE 802.15.7 VPPM reference (§7),
//! * [`crate::schemes::AmppmModem`] — the paper's contribution (§4).

use crate::dimming::DimmingLevel;
use combinat::{BinomialTable, CodewordError};
use std::fmt;

/// Statistics from demodulating one payload block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DemodStats {
    /// Symbols whose constant-weight (or pulse-shape) check failed.
    pub symbol_failures: u32,
    /// Total symbols processed.
    pub symbols: u32,
}

impl DemodStats {
    /// Merge statistics from consecutive blocks.
    pub fn merge(self, other: DemodStats) -> DemodStats {
        DemodStats {
            symbol_failures: self.symbol_failures + other.symbol_failures,
            symbols: self.symbols + other.symbols,
        }
    }
}

/// Errors from demodulation.
#[derive(Clone, Debug, PartialEq)]
pub enum DemodError {
    /// The slot buffer does not match the expected block length.
    LengthMismatch {
        /// Expected number of slots.
        expected: usize,
        /// Received number of slots.
        got: usize,
    },
    /// A structural codec error (not a mere symbol corruption).
    Codeword(CodewordError),
    /// The modem configuration cannot carry data (e.g. VPPM with a pulse
    /// width of 0 or N).
    Unmodulatable(&'static str),
}

impl fmt::Display for DemodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemodError::LengthMismatch { expected, got } => {
                write!(f, "slot block of {got}, expected {expected}")
            }
            DemodError::Codeword(e) => write!(f, "codec error: {e}"),
            DemodError::Unmodulatable(why) => write!(f, "unmodulatable: {why}"),
        }
    }
}

impl std::error::Error for DemodError {}

impl From<CodewordError> for DemodError {
    fn from(e: CodewordError) -> Self {
        DemodError::Codeword(e)
    }
}

/// A block modem: bytes ⇄ slot waveform at a fixed dimming level.
///
/// Implementations must be deterministic: the same bytes produce the same
/// waveform, and `slots_for_payload` must predict `modulate`'s output
/// length exactly (the receiver uses it to delimit the payload field).
pub trait SlotModem {
    /// The dimming level the modulated waveform realizes (block average;
    /// for OOK-CT this is exact only in expectation over scrambled data).
    fn dimming(&self) -> DimmingLevel;

    /// Exact waveform length for an `n_bytes` payload block.
    fn slots_for_payload(&self, table: &BinomialTable, n_bytes: usize) -> usize;

    /// Modulate a payload block into slot states.
    fn modulate(&self, table: &BinomialTable, bytes: &[u8]) -> Vec<bool>;

    /// Demodulate a slot block back into exactly `n_bytes` bytes.
    ///
    /// Corrupted symbols are zero-filled and counted in the returned
    /// stats; the caller's CRC decides the frame's fate.
    fn demodulate(
        &self,
        table: &BinomialTable,
        slots: &[bool],
        n_bytes: usize,
    ) -> Result<(Vec<u8>, DemodStats), DemodError>;

    /// Ideal information rate in bits per slot (ignoring errors); used by
    /// the analytic throughput models.
    fn norm_rate(&self, table: &BinomialTable) -> f64;
}

/// Convenience: bits required for `n_bytes`.
pub(crate) fn bits_for(n_bytes: usize) -> usize {
    n_bytes * 8
}

/// Convenience: ceiling division.
pub(crate) fn div_ceil(a: usize, b: usize) -> usize {
    assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_adds() {
        let a = DemodStats {
            symbol_failures: 1,
            symbols: 10,
        };
        let b = DemodStats {
            symbol_failures: 2,
            symbols: 5,
        };
        assert_eq!(
            a.merge(b),
            DemodStats {
                symbol_failures: 3,
                symbols: 15
            }
        );
    }

    #[test]
    fn demod_error_display() {
        let e = DemodError::LengthMismatch {
            expected: 10,
            got: 9,
        };
        assert!(e.to_string().contains("expected 10"));
    }

    #[test]
    fn helpers() {
        assert_eq!(bits_for(128), 1024);
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
    }
}
