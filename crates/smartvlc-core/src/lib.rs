//! # smartvlc-core — the SmartVLC modulation and lighting co-design layer
//!
//! This crate implements the contribution of *"SmartVLC: When Smart
//! Lighting Meets VLC"* (Wu, Wang, Xiong, Zuniga — CoNEXT 2017): a visible
//! light link whose LED simultaneously serves *illumination* (fine-grained,
//! flicker-free dimming that keeps ambient + LED light constant) and
//! *communication* (maximum throughput at every dimming level).
//!
//! ## Map from paper to modules
//!
//! | Paper section | Module |
//! |---|---|
//! | §2 dimming schemes (OOK-CT, MPPM) + VPPM (§7) | [`schemes`] |
//! | §2.2 flickering (Type-I, Type-II) | [`flicker`] |
//! | §4.1 symbols, dimming resolution, Eq. 1–3 | [`symbol`], [`dimming`], [`ser`] |
//! | §4.1.2 multiplexing / super-symbols (Fig. 5–7) | [`amppm::super_symbol`] |
//! | §4.2 AMPPM steps 1–4 (Fig. 8–9) | [`amppm`] |
//! | §4.3 perception-domain adaptation (Fig. 10) | [`adaptation`] |
//! | §4.4 Algorithms 1–2 (enumerative codec) | re-exported from the `combinat` crate |
//! | §4.5 frame format (Table 1) | [`frame`] |
//! | §6.1 system parameters | [`config`] |
//!
//! The crate is pure computation: no I/O, no clocks, no randomness. Slot
//! waveforms are plain `Vec<bool>` (`true` = LED ON for one `tslot`);
//! everything physical (noise, distance, sampling) lives in the
//! `vlc-channel` and `vlc-hw` substrate crates, and the end-to-end link in
//! `smartvlc-link`.
//!
//! # Example
//!
//! Ask the §4.2 planner for the throughput-optimal AMPPM super-symbol at
//! a dimming level — the core operation every transmitter tick performs:
//!
//! ```
//! use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
//!
//! let planner = AmppmPlanner::new(SystemConfig::default()).expect("valid config");
//! let plan = planner
//!     .plan_clamped(DimmingLevel::clamped(0.5))
//!     .expect("mid-range dimming is always plannable");
//! // Mid-range dimming is AMPPM's sweet spot: plenty of both ON and OFF
//! // slots to permute, so the planned rate is far above zero …
//! assert!(plan.rate_bps > 10_000.0);
//! // … and the emitted pattern really dims to ~50%.
//! assert!((plan.achieved.value() - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod amppm;
pub mod config;
pub mod dimming;
pub mod flicker;
pub mod frame;
pub mod modem;
pub mod schemes;
pub mod ser;
pub mod symbol;

pub use amppm::planner::{AmppmPlanner, PlanError, SuperSymbolPlan, MAX_DEGRADE_TIER};
pub use config::SystemConfig;
pub use dimming::DimmingLevel;
pub use flicker::{FlickerReport, FlickerRules};
pub use ser::SlotErrorProbs;
pub use symbol::SymbolPattern;
