//! MPPM symbol patterns — `S(N, l)` from §3 of the paper.
//!
//! A *symbol* is a group of `N` time slots with exactly `K` ON slots; the
//! positions of the ONs carry `⌊log2 C(N,K)⌋` data bits (Eq. 2). Following
//! the paper, a *symbol pattern* `S(N, l)` names the `(N, K)` shape, not a
//! specific ON/OFF arrangement; the concrete arrangement is chosen by the
//! enumerative codec in the `combinat` crate.

use crate::dimming::DimmingLevel;
use combinat::{
    decode_codeword, decode_codeword_with, encode_codeword, encode_codeword_into, BigUint,
    BinomialTable, CodewordError, EncodeScratch,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symbol pattern `S(N, l = K/N)`: `N` slots, `K` of them ON.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymbolPattern {
    n: u16,
    k: u16,
}

impl SymbolPattern {
    /// Create a pattern with `n` slots and `k` ONs.
    /// Returns `None` for `n == 0` or `k > n`.
    pub fn new(n: u16, k: u16) -> Option<SymbolPattern> {
        if n == 0 || k > n {
            None
        } else {
            Some(SymbolPattern { n, k })
        }
    }

    /// The pattern with `n` slots whose dimming level is closest to `l`
    /// (`K = round(l·N)`).
    pub fn from_dimming(n: u16, l: DimmingLevel) -> SymbolPattern {
        assert!(n > 0, "n must be positive");
        let k = (l.value() * n as f64).round() as u16;
        SymbolPattern { n, k: k.min(n) }
    }

    /// Number of slots `N`.
    pub fn n(self) -> u16 {
        self.n
    }

    /// Number of ON slots `K`.
    pub fn k(self) -> u16 {
        self.k
    }

    /// The dimming level `l = K/N` (Eq. 1).
    pub fn dimming(self) -> DimmingLevel {
        DimmingLevel::from_ratio(self.k as u32, self.n as u32).expect("invariant k<=n, n>0")
    }

    /// Data bits per symbol: `⌊log2 C(N,K)⌋` (Eq. 2 numerator).
    pub fn bits_per_symbol(self, table: &BinomialTable) -> u32 {
        table
            .bits_per_symbol(self.n as usize, self.k as usize)
            .expect("invariant k<=n")
    }

    /// Normalized data rate: bits per slot, `⌊log2 C(N,K)⌋ / N` — the
    /// y-axis of Figs. 6 and 9.
    pub fn normalized_rate(self, table: &BinomialTable) -> f64 {
        self.bits_per_symbol(table) as f64 / self.n as f64
    }

    /// Encode one data word into slot states (Algorithm 1).
    pub fn encode(
        self,
        table: &BinomialTable,
        value: &BigUint,
    ) -> Result<Vec<bool>, CodewordError> {
        encode_codeword(table, self.n as usize, self.k as usize, value)
    }

    /// Decode received slot states back into the data word (Algorithm 2).
    pub fn decode(self, table: &BinomialTable, slots: &[bool]) -> Result<BigUint, CodewordError> {
        decode_codeword(table, self.n as usize, self.k as usize, slots)
    }

    /// Encode one data word, appending slots to `out` and reusing
    /// `scratch` — the modems' per-frame hot path (no per-symbol
    /// allocation).
    pub fn encode_into(
        self,
        table: &BinomialTable,
        value: &BigUint,
        scratch: &mut EncodeScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), CodewordError> {
        encode_codeword_into(table, self.n as usize, self.k as usize, value, scratch, out)
    }

    /// Decode received slot states reusing `scratch` for the accumulator.
    pub fn decode_with(
        self,
        table: &BinomialTable,
        slots: &[bool],
        scratch: &mut EncodeScratch,
    ) -> Result<BigUint, CodewordError> {
        decode_codeword_with(table, self.n as usize, self.k as usize, slots, scratch)
    }
}

impl fmt::Debug for SymbolPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SymbolPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S({}, {:.3})", self.n, self.k as f64 / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(512)
    }

    #[test]
    fn constructor_validates() {
        assert!(SymbolPattern::new(10, 2).is_some());
        assert!(SymbolPattern::new(10, 10).is_some());
        assert!(SymbolPattern::new(10, 11).is_none());
        assert!(SymbolPattern::new(0, 0).is_none());
    }

    #[test]
    fn dimming_matches_eq_1() {
        let s = SymbolPattern::new(10, 2).unwrap();
        assert_eq!(s.dimming().value(), 0.2);
    }

    #[test]
    fn from_dimming_rounds_to_nearest_k() {
        let l = DimmingLevel::new(0.524).unwrap();
        let s = SymbolPattern::from_dimming(21, l);
        assert_eq!((s.n(), s.k()), (21, 11)); // paper's S(21, 0.524)
        let s = SymbolPattern::from_dimming(10, DimmingLevel::new(0.97).unwrap());
        assert_eq!(s.k(), 10);
    }

    #[test]
    fn bits_match_paper_examples() {
        let t = table();
        // S(20, 0.1): C(20,2)=190 -> 7 bits; normalized 0.35.
        let s = SymbolPattern::new(20, 2).unwrap();
        assert_eq!(s.bits_per_symbol(&t), 7);
        assert!((s.normalized_rate(&t) - 0.35).abs() < 1e-12);
        // S(21, 0.524): 18 bits -> 18/21 = 0.857 (Fig. 9's peak point).
        let s = SymbolPattern::new(21, 11).unwrap();
        assert_eq!(s.bits_per_symbol(&t), 18);
        assert!((s.normalized_rate(&t) - 18.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = table();
        let s = SymbolPattern::new(21, 11).unwrap();
        for v in [0u64, 1, 352_715, 77_777] {
            let val = BigUint::from_u64(v);
            let slots = s.encode(&t, &val).unwrap();
            assert_eq!(slots.len(), 21);
            assert_eq!(slots.iter().filter(|&&b| b).count(), 11);
            assert_eq!(s.decode(&t, &slots).unwrap(), val);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = SymbolPattern::new(21, 11).unwrap();
        assert_eq!(s.to_string(), "S(21, 0.524)");
    }
}
