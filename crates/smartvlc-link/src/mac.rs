//! Streaming ARQ over the Wi-Fi ACK side channel.
//!
//! The paper's MAC acknowledges every clean frame over the ESP8266 uplink
//! and drops (no ACK) any frame whose CRC fails (§6.1). The downlink
//! never stalls waiting for an ACK — at ~5 ms Wi-Fi round trip versus
//! ~10 ms frame airtime, stop-and-wait would halve throughput, and the
//! paper's reported numbers are clearly pipeline-style. So the MAC here
//! streams frames back-to-back, tracks outstanding sequence numbers, and
//! re-queues any frame unacknowledged after a timeout.
//!
//! Retransmission timeouts back off exponentially with deterministic
//! jitter: a flaky uplink (ACK loss bursts, congestion jitter) would
//! otherwise lock the MAC into retransmitting at exactly the cadence that
//! collides with the recovering channel. Each retry doubles the frame's
//! deadline (capped) and adds a jitter drawn from the tracker's own
//! seeded stream, so runs stay bit-reproducible.
//!
//! The 2-byte sequence number travels as a MAC header *inside* the frame
//! payload (the Table 1 frame format has no sequence field of its own).

use crate::error::LinkError;
use desim::{DetRng, SimDuration, SimTime};
use smartvlc_obs as obs;
use std::collections::{HashMap, HashSet, VecDeque};

/// The MAC header carried in the first bytes of every payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacHeader {
    /// Frame sequence number.
    pub seq: u16,
}

impl MacHeader {
    /// Wire size.
    pub const WIRE_BYTES: usize = 2;

    /// Prepend this header to a data payload.
    pub fn encapsulate(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_BYTES + data.len());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Split a received payload into header and data.
    pub fn decapsulate(payload: &[u8]) -> Option<(MacHeader, &[u8])> {
        if payload.len() < Self::WIRE_BYTES {
            return None;
        }
        let seq = u16::from_be_bytes([payload[0], payload[1]]);
        Some((MacHeader { seq }, &payload[Self::WIRE_BYTES..]))
    }
}

/// State of one outstanding frame.
#[derive(Clone, Debug)]
struct Outstanding {
    /// When the current (re)transmission went out.
    sent_at: SimTime,
    /// Jitter added to this attempt's deadline (zero on first send).
    jitter: SimDuration,
    data_bytes: usize,
    retries: u32,
}

/// What one timeout scan did — the transmitter's only channel-quality
/// feedback (it cannot see the receiver's CRC results directly).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeoutScan {
    /// Frames newly queued for retransmission.
    pub expired: u32,
    /// Frames abandoned after exhausting their retry budget; the caller
    /// must drop any per-seq state (payload copies) it still holds.
    pub abandoned_seqs: Vec<u16>,
}

impl TimeoutScan {
    /// Frames abandoned by this scan.
    pub fn abandoned(&self) -> u32 {
        self.abandoned_seqs.len() as u32
    }

    /// Total negative outcomes this scan observed (expired + abandoned) —
    /// the loss samples to feed a rate-degradation controller.
    pub fn failures(&self) -> u32 {
        self.expired + self.abandoned()
    }
}

/// Transmit-side ARQ bookkeeping.
pub struct AckTracker {
    timeout: SimDuration,
    max_retries: u32,
    next_seq: u16,
    outstanding: HashMap<u16, Outstanding>,
    /// Sequence numbers due for retransmission, in FIFO order.
    retry_queue: VecDeque<u16>,
    /// Membership mirror of `retry_queue` for O(1) `contains` checks:
    /// deep retry backlogs (chaos regimes) used to pay O(n²) for linear
    /// scans on every timeout sweep.
    retry_pending: HashSet<u16>,
    /// Jitter source for backoff (None = fixed deadlines, legacy tests).
    jitter_rng: Option<DetRng>,
    /// Frames abandoned after max retries.
    pub abandoned: u64,
    /// Unique data bytes acknowledged.
    pub bytes_acked: u64,
    /// ACKs received (including duplicates).
    pub acks_seen: u64,
    /// Frames that were eventually ACKed, but only after at least one
    /// retransmission — "delivered late" in the chaos metrics.
    pub late_deliveries: u64,
    /// Fresh registrations skipped because the sequence number was still
    /// outstanding after a full wrap (see [`AckTracker::register_new`]).
    pub seq_collisions: u64,
}

/// Retry backoff exponent cap: 2^6 = 64× the base timeout. Beyond that a
/// longer wait tells us nothing the channel hasn't already said.
const MAX_BACKOFF_SHIFT: u32 = 6;

impl AckTracker {
    /// Create a tracker with fixed (non-backoff) deadlines. The
    /// paper-scale default is a 30 ms timeout (≈ 3 frame airtimes +
    /// Wi-Fi RTT) and 3 retries.
    pub fn new(timeout: SimDuration, max_retries: u32) -> AckTracker {
        AckTracker {
            timeout,
            max_retries,
            next_seq: 0,
            outstanding: HashMap::new(),
            retry_queue: VecDeque::new(),
            retry_pending: HashSet::new(),
            jitter_rng: None,
            abandoned: 0,
            bytes_acked: 0,
            acks_seen: 0,
            late_deliveries: 0,
            seq_collisions: 0,
        }
    }

    /// Create a tracker whose retries back off exponentially (double per
    /// retry, capped at 2^6×) with jitter drawn from `rng` — up to a
    /// quarter of the backed-off timeout, decorrelating retransmissions
    /// from periodic channel impairments.
    pub fn with_backoff(timeout: SimDuration, max_retries: u32, rng: DetRng) -> AckTracker {
        let mut t = Self::new(timeout, max_retries);
        t.jitter_rng = Some(rng);
        t
    }

    /// The backed-off timeout after `retries` prior attempts: the base
    /// timeout doubled per retry, capped at 2^6×. Evaluated lazily at
    /// scan time so a later `ensure_timeout_covers` still protects frames
    /// already in flight.
    ///
    /// Saturates at the end of representable time: a base timeout large
    /// enough to overflow the multiplication must clamp to the *maximum*
    /// deadline, not silently reset to the base (which would make an
    /// overflowing backoff the most aggressive retransmitter in the
    /// system — the exact opposite of backing off).
    fn backed_off_timeout(&self, retries: u32) -> SimDuration {
        let shift = retries.min(MAX_BACKOFF_SHIFT);
        self.timeout
            .checked_mul(1u64 << shift)
            .unwrap_or(SimDuration::nanos(u64::MAX))
    }

    /// Draw the jitter for a retry numbered `retries` (first transmission
    /// keeps the crisp base deadline; only retries are decorrelated). Up
    /// to a quarter of the backed-off timeout.
    fn draw_jitter(&mut self, retries: u32) -> SimDuration {
        let bound = self.backed_off_timeout(retries).as_nanos() / 4 + 1;
        match (&mut self.jitter_rng, retries) {
            (Some(rng), r) if r > 0 => SimDuration::nanos(rng.next_below(bound)),
            _ => SimDuration::ZERO,
        }
    }

    /// Allocate the next free sequence number for a fresh frame of
    /// `data_bytes` of user data, sent at `now`.
    ///
    /// When `next_seq` wraps past `u16::MAX` while that number is still
    /// outstanding, the colliding value is *skipped* (the old entry keeps
    /// its accounting and its pending ACK stays creditable) and the scan
    /// continues to the next free number. Returns
    /// [`LinkError::SeqSpaceExhausted`] only if every one of the 65536
    /// sequence numbers is simultaneously in flight.
    pub fn register_new(&mut self, now: SimTime, data_bytes: usize) -> Result<u16, LinkError> {
        for _ in 0..=u16::MAX as u32 {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            if self.outstanding.contains_key(&seq) {
                self.seq_collisions += 1;
                obs::counter_add(obs::key!("link.mac.seq_collisions"), 1);
                continue;
            }
            self.outstanding.insert(
                seq,
                Outstanding {
                    sent_at: now,
                    jitter: SimDuration::ZERO,
                    data_bytes,
                    retries: 0,
                },
            );
            return Ok(seq);
        }
        Err(LinkError::SeqSpaceExhausted)
    }

    /// Raise the timeout if frames have grown longer than it: a timeout
    /// below one frame airtime + the Wi-Fi RTT would retransmit *every*
    /// frame while its ACK is still in flight.
    pub fn ensure_timeout_covers(&mut self, frame_airtime: SimDuration) {
        let floor = frame_airtime * 2 + SimDuration::millis(10);
        if self.timeout < floor {
            self.timeout = floor;
        }
    }

    /// Record a retransmission of `seq` at `now`; its next deadline backs
    /// off exponentially (plus jitter when configured).
    pub fn register_retry(&mut self, seq: u16, now: SimTime) {
        if let Some(mut o) = self.outstanding.remove(&seq) {
            o.retries += 1;
            o.sent_at = now;
            o.jitter = self.draw_jitter(o.retries);
            obs::counter_add(obs::key!("link.mac.retries"), 1);
            obs::observe(
                obs::key!("link.mac.backoff_wait_ns"),
                self.backed_off_timeout(o.retries)
                    .as_nanos()
                    .saturating_add(o.jitter.as_nanos()),
            );
            self.outstanding.insert(seq, o);
        }
    }

    /// Process an arriving ACK. Returns the acknowledged data bytes the
    /// first time a sequence is ACKed, `None` for duplicates/unknown.
    pub fn on_ack(&mut self, seq: u16) -> Option<usize> {
        self.acks_seen += 1;
        obs::counter_add(obs::key!("link.mac.acks"), 1);
        let Some(o) = self.outstanding.remove(&seq) else {
            obs::counter_add(obs::key!("link.mac.dup_acks"), 1);
            return None;
        };
        // O(1) membership probe; the O(n) queue sweep runs only on the
        // rare ACK that races an already-queued retransmission.
        if self.retry_pending.remove(&seq) {
            self.retry_queue.retain(|&s| s != seq);
        }
        self.bytes_acked += o.data_bytes as u64;
        if o.retries > 0 {
            self.late_deliveries += 1;
        }
        Some(o.data_bytes)
    }

    /// Scan for timeouts at `now`; moves expired frames to the retry
    /// queue or abandons them past `max_retries`. The returned counts are
    /// the transmitter's SER feedback signal.
    pub fn scan_timeouts(&mut self, now: SimTime) -> TimeoutScan {
        let max_retries = self.max_retries;
        let mut expired: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(seq, o)| {
                // Saturating deadline arithmetic: a near-end-of-time
                // backoff means "never expires within this run", not an
                // overflow panic.
                let deadline = o
                    .sent_at
                    .saturating_add(self.backed_off_timeout(o.retries))
                    .saturating_add(o.jitter);
                now >= deadline && !self.retry_pending.contains(seq)
            })
            .map(|(&seq, _)| seq)
            .collect();
        expired.sort_unstable(); // deterministic order
        let mut scan = TimeoutScan::default();
        for seq in expired {
            let retries = self.outstanding[&seq].retries;
            if retries >= max_retries {
                self.outstanding.remove(&seq);
                self.abandoned += 1;
                obs::counter_add(obs::key!("link.mac.abandoned"), 1);
                obs::event(now, obs::key!("link.mac.abandoned"), seq as u64);
                scan.abandoned_seqs.push(seq);
            } else {
                self.retry_queue.push_back(seq);
                self.retry_pending.insert(seq);
                scan.expired += 1;
            }
        }
        scan
    }

    /// Pop the next frame due for retransmission, if any. FIFO: the pop
    /// order is exactly the order `scan_timeouts` queued the expiries
    /// (bit-identical to the pre-`VecDeque` drain, minus the O(n) shift).
    pub fn next_retry(&mut self) -> Option<u16> {
        let seq = self.retry_queue.pop_front()?;
        self.retry_pending.remove(&seq);
        Some(seq)
    }

    /// Frames in flight (sent, not yet ACKed or abandoned).
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn header_roundtrip() {
        let h = MacHeader { seq: 0xBEEF };
        let p = h.encapsulate(&[1, 2, 3]);
        assert_eq!(p.len(), 5);
        let (back, data) = MacHeader::decapsulate(&p).unwrap();
        assert_eq!(back, h);
        assert_eq!(data, &[1, 2, 3]);
        assert!(MacHeader::decapsulate(&[0]).is_none());
    }

    #[test]
    fn sequences_increment_and_wrap() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        assert_eq!(a.register_new(t(0), 10).unwrap(), 0);
        assert_eq!(a.register_new(t(0), 10).unwrap(), 1);
        a.on_ack(0);
        a.on_ack(1);
        a.next_seq = u16::MAX;
        assert_eq!(a.register_new(t(0), 10).unwrap(), u16::MAX);
        assert_eq!(a.register_new(t(0), 10).unwrap(), 0);
    }

    #[test]
    fn wraparound_collision_skips_outstanding_seq() {
        // Regression: `register_new` used to silently overwrite a
        // still-outstanding entry when the sequence space wrapped,
        // losing its accounting and crediting its late ACK to the new
        // frame. The colliding number must now be skipped.
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let first = a.register_new(t(0), 100).unwrap();
        assert_eq!(first, 0);
        // Wrap the counter all the way around while seq 0 is in flight.
        a.next_seq = 0;
        let reassigned = a.register_new(t(5), 7).unwrap();
        assert_eq!(reassigned, 1, "colliding seq 0 must be skipped");
        assert_eq!(a.seq_collisions, 1);
        assert_eq!(a.in_flight(), 2);
        // The old frame's late ACK still credits the *old* accounting.
        assert_eq!(a.on_ack(0), Some(100));
        assert_eq!(a.on_ack(1), Some(7));
        assert_eq!(a.bytes_acked, 107);
    }

    #[test]
    fn full_window_errors_instead_of_clobbering() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        for _ in 0..=u16::MAX as u32 {
            a.register_new(t(0), 1).unwrap();
        }
        assert_eq!(a.in_flight(), 65536);
        assert_eq!(a.register_new(t(0), 1), Err(LinkError::SeqSpaceExhausted));
        // Freeing one slot makes that exact sequence available again.
        a.on_ack(123);
        assert_eq!(a.register_new(t(0), 1).unwrap(), 123);
    }

    #[test]
    fn ack_credits_once() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let seq = a.register_new(t(0), 128).unwrap();
        assert_eq!(a.on_ack(seq), Some(128));
        assert_eq!(a.on_ack(seq), None, "duplicate ACK ignored");
        assert_eq!(a.bytes_acked, 128);
        assert_eq!(a.acks_seen, 2);
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.late_deliveries, 0, "first-try ACK is not late");
    }

    #[test]
    fn timeout_triggers_retry_then_abandon() {
        let mut a = AckTracker::new(SimDuration::millis(30), 2);
        let seq = a.register_new(t(0), 128).unwrap();
        assert_eq!(a.scan_timeouts(t(10)), TimeoutScan::default());
        assert!(a.next_retry().is_none(), "not expired yet");
        let scan = a.scan_timeouts(t(31));
        assert_eq!(scan.expired, 1);
        assert_eq!(a.next_retry(), Some(seq));
        a.register_retry(seq, t(31));
        // Retry 1 backs off to 2x the base timeout.
        assert_eq!(a.scan_timeouts(t(62)), TimeoutScan::default());
        let scan = a.scan_timeouts(t(91));
        assert_eq!(scan.expired, 1);
        assert_eq!(a.next_retry(), Some(seq));
        a.register_retry(seq, t(91));
        // Retry 2 backs off to 4x; its expiry exceeds max_retries = 2.
        let scan = a.scan_timeouts(t(211));
        assert_eq!(scan.abandoned_seqs, vec![seq]);
        assert_eq!(scan.failures(), 1);
        assert_eq!(a.next_retry(), None);
        assert_eq!(a.abandoned, 1);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn late_ack_after_retry_counts_late() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let seq = a.register_new(t(0), 64).unwrap();
        a.scan_timeouts(t(40));
        assert_eq!(a.next_retry(), Some(seq));
        a.register_retry(seq, t(40));
        assert_eq!(a.on_ack(seq), Some(64));
        assert_eq!(a.late_deliveries, 1);
    }

    #[test]
    fn ack_while_queued_for_retry_cancels_retry() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let seq = a.register_new(t(0), 64).unwrap();
        a.scan_timeouts(t(40));
        // The late ACK arrives before the retransmission goes out.
        assert_eq!(a.on_ack(seq), Some(64));
        assert_eq!(a.next_retry(), None);
    }

    #[test]
    fn scan_does_not_double_queue() {
        let mut a = AckTracker::new(SimDuration::millis(30), 5);
        let seq = a.register_new(t(0), 64).unwrap();
        a.scan_timeouts(t(40));
        a.scan_timeouts(t(41));
        assert_eq!(a.next_retry(), Some(seq));
        assert_eq!(a.next_retry(), None);
    }
}

#[cfg(test)]
mod backoff_tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn deadlines_double_per_retry() {
        let mut a = AckTracker::new(SimDuration::millis(10), 10);
        let seq = a.register_new(t(0), 1).unwrap();
        let mut now = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..4 {
            // Step forward 1 ms at a time until the frame expires.
            let expired_at = loop {
                now += SimDuration::millis(1);
                if a.scan_timeouts(now).expired > 0 {
                    break now;
                }
            };
            gaps.push(expired_at);
            assert_eq!(a.next_retry(), Some(seq));
            a.register_retry(seq, now);
        }
        // Expiry gaps: 10, 20, 40, 80 ms (no jitter configured).
        let deltas: Vec<u64> = gaps
            .windows(2)
            .map(|w| (w[1].as_nanos() - w[0].as_nanos()) / 1_000_000)
            .collect();
        assert_eq!(deltas, vec![20, 40, 80]);
    }

    #[test]
    fn backoff_caps_at_64x() {
        let a = AckTracker::new(SimDuration::millis(1), 100);
        let d_lo = a.backed_off_timeout(MAX_BACKOFF_SHIFT);
        let d_hi = a.backed_off_timeout(MAX_BACKOFF_SHIFT + 20);
        assert_eq!(d_lo, d_hi, "backoff must saturate");
        assert_eq!(d_lo, SimDuration::millis(64));
    }

    #[test]
    fn backoff_overflow_saturates_at_cap() {
        // Regression: `backed_off_timeout` used to fall back to the *base*
        // timeout when the shift overflowed `u64` — an overflowing backoff
        // silently became the most aggressive deadline in the system. It
        // must instead clamp to the maximum representable duration.
        let base = SimDuration::nanos(u64::MAX - 10);
        let mut a = AckTracker::new(base, 3);
        assert_eq!(a.backed_off_timeout(0), base, "no retries: base timeout");
        for retries in 1..=MAX_BACKOFF_SHIFT + 5 {
            assert_eq!(
                a.backed_off_timeout(retries),
                SimDuration::nanos(u64::MAX),
                "retry {retries}: overflowed backoff must saturate, not reset"
            );
        }
        // And a frame under that saturated deadline never spuriously
        // expires (deadline arithmetic saturates instead of panicking).
        let seq = a.register_new(SimTime::ZERO, 8).unwrap();
        a.register_retry(seq, SimTime::ZERO);
        let scan = a.scan_timeouts(SimTime::from_millis(u64::MAX / 2_000_000));
        assert_eq!(scan, TimeoutScan::default(), "saturated deadline expired");
        assert_eq!(a.next_retry(), None);
    }

    #[test]
    fn retry_pop_order_is_fifo_minus_acked() {
        // Regression guard for the `Vec` → `VecDeque` + membership-set
        // swap: pops must come out in exactly the order `scan_timeouts`
        // queued them (ascending seq per scan), with ACKed entries
        // surgically removed and the rest undisturbed.
        let mut a = AckTracker::new(SimDuration::millis(10), 5);
        let n: u16 = 100;
        for _ in 0..n {
            a.register_new(SimTime::ZERO, 4).unwrap();
        }
        let scan = a.scan_timeouts(SimTime::from_millis(20));
        assert_eq!(scan.expired, n as u32);
        // ACK a scattered subset while they sit in the retry queue.
        let acked: Vec<u16> = (0..n).filter(|s| s % 7 == 3).collect();
        for &s in &acked {
            assert!(a.on_ack(s).is_some());
        }
        let mut popped = Vec::new();
        while let Some(s) = a.next_retry() {
            popped.push(s);
        }
        let expected: Vec<u16> = (0..n).filter(|s| s % 7 != 3).collect();
        assert_eq!(popped, expected, "pop order must be scan order minus ACKs");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mk = || {
            AckTracker::with_backoff(
                SimDuration::millis(10),
                5,
                DetRng::seed_from_u64(99).fork("mac-backoff"),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let ja: Vec<SimDuration> = (1..5).map(|r| a.draw_jitter(r)).collect();
        let jb: Vec<SimDuration> = (1..5).map(|r| b.draw_jitter(r)).collect();
        assert_eq!(ja, jb, "same seed, same jitter");
        assert!(
            ja.iter().any(|j| !j.is_zero()),
            "jitter must actually engage: {ja:?}"
        );
        for (r, j) in (1u32..5).zip(&ja) {
            let cap = a.backed_off_timeout(r).as_nanos() / 4;
            assert!(j.as_nanos() <= cap, "retry {r}: jitter {j:?} above cap");
        }
        // First transmission never jitters: the crisp deadline is what
        // `ensure_timeout_covers` reasons about.
        assert_eq!(a.draw_jitter(0), SimDuration::ZERO);
    }
}

#[cfg(test)]
mod timeout_floor_tests {
    use super::*;

    #[test]
    fn timeout_floor_prevents_spurious_retransmission() {
        // Regression: a 60 ms frame with a 30 ms timeout must not expire
        // while its ACK is still in flight.
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        a.ensure_timeout_covers(SimDuration::millis(60));
        let seq = a.register_new(SimTime::ZERO, 128).unwrap();
        // Frame lands at 60 ms, ACK arrives ~66 ms.
        a.scan_timeouts(SimTime::from_millis(66));
        assert_eq!(a.next_retry(), None, "expired before the ACK could arrive");
        assert_eq!(a.on_ack(seq), Some(128));
        // The floor only raises, never lowers.
        let mut b = AckTracker::new(SimDuration::millis(500), 3);
        b.ensure_timeout_covers(SimDuration::millis(1));
        b.register_new(SimTime::ZERO, 1).unwrap();
        b.scan_timeouts(SimTime::from_millis(400));
        assert_eq!(b.next_retry(), None, "configured timeout was lowered");
    }
}
