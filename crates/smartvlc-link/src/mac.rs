//! Streaming ARQ over the Wi-Fi ACK side channel.
//!
//! The paper's MAC acknowledges every clean frame over the ESP8266 uplink
//! and drops (no ACK) any frame whose CRC fails (§6.1). The downlink
//! never stalls waiting for an ACK — at ~5 ms Wi-Fi round trip versus
//! ~10 ms frame airtime, stop-and-wait would halve throughput, and the
//! paper's reported numbers are clearly pipeline-style. So the MAC here
//! streams frames back-to-back, tracks outstanding sequence numbers, and
//! re-queues any frame unacknowledged after a timeout.
//!
//! The 2-byte sequence number travels as a MAC header *inside* the frame
//! payload (the Table 1 frame format has no sequence field of its own).

use desim::{SimDuration, SimTime};
use std::collections::HashMap;

/// The MAC header carried in the first bytes of every payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacHeader {
    /// Frame sequence number.
    pub seq: u16,
}

impl MacHeader {
    /// Wire size.
    pub const WIRE_BYTES: usize = 2;

    /// Prepend this header to a data payload.
    pub fn encapsulate(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_BYTES + data.len());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Split a received payload into header and data.
    pub fn decapsulate(payload: &[u8]) -> Option<(MacHeader, &[u8])> {
        if payload.len() < Self::WIRE_BYTES {
            return None;
        }
        let seq = u16::from_be_bytes([payload[0], payload[1]]);
        Some((MacHeader { seq }, &payload[Self::WIRE_BYTES..]))
    }
}

/// State of one outstanding frame.
#[derive(Clone, Debug)]
struct Outstanding {
    sent_at: SimTime,
    data_bytes: usize,
    retries: u32,
}

/// Transmit-side ARQ bookkeeping.
pub struct AckTracker {
    timeout: SimDuration,
    max_retries: u32,
    next_seq: u16,
    outstanding: HashMap<u16, Outstanding>,
    /// Sequence numbers due for retransmission.
    retry_queue: Vec<u16>,
    /// Frames abandoned after max retries.
    pub abandoned: u64,
    /// Unique data bytes acknowledged.
    pub bytes_acked: u64,
    /// ACKs received (including duplicates).
    pub acks_seen: u64,
}

impl AckTracker {
    /// Create a tracker. The paper-scale default is a 30 ms timeout
    /// (≈ 3 frame airtimes + Wi-Fi RTT) and 3 retries.
    pub fn new(timeout: SimDuration, max_retries: u32) -> AckTracker {
        Self::with_config(timeout, max_retries)
    }

    fn with_config(timeout: SimDuration, max_retries: u32) -> AckTracker {
        AckTracker {
            timeout,
            max_retries,
            next_seq: 0,
            outstanding: HashMap::new(),
            retry_queue: Vec::new(),
            abandoned: 0,
            bytes_acked: 0,
            acks_seen: 0,
        }
    }

    /// Allocate the next sequence number for a fresh frame of
    /// `data_bytes` of user data, sent at `now`.
    pub fn register_new(&mut self, now: SimTime, data_bytes: usize) -> u16 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding.insert(
            seq,
            Outstanding {
                sent_at: now,
                data_bytes,
                retries: 0,
            },
        );
        seq
    }

    /// Raise the timeout if frames have grown longer than it: a timeout
    /// below one frame airtime + the Wi-Fi RTT would retransmit *every*
    /// frame while its ACK is still in flight.
    pub fn ensure_timeout_covers(&mut self, frame_airtime: SimDuration) {
        let floor = frame_airtime * 2 + SimDuration::millis(10);
        if self.timeout < floor {
            self.timeout = floor;
        }
    }

    /// Record a retransmission of `seq` at `now`.
    pub fn register_retry(&mut self, seq: u16, now: SimTime) {
        if let Some(o) = self.outstanding.get_mut(&seq) {
            o.sent_at = now;
            o.retries += 1;
        }
    }

    /// Process an arriving ACK. Returns the acknowledged data bytes the
    /// first time a sequence is ACKed, `None` for duplicates/unknown.
    pub fn on_ack(&mut self, seq: u16) -> Option<usize> {
        self.acks_seen += 1;
        let o = self.outstanding.remove(&seq)?;
        self.retry_queue.retain(|&s| s != seq);
        self.bytes_acked += o.data_bytes as u64;
        Some(o.data_bytes)
    }

    /// Scan for timeouts at `now`; moves expired frames to the retry
    /// queue or abandons them past `max_retries`.
    pub fn scan_timeouts(&mut self, now: SimTime) {
        let timeout = self.timeout;
        let max_retries = self.max_retries;
        let mut expired: Vec<u16> = self
            .outstanding
            .iter()
            .filter(|(seq, o)| {
                now.checked_duration_since(o.sent_at)
                    .is_some_and(|d| d >= timeout)
                    && !self.retry_queue.contains(seq)
            })
            .map(|(&seq, _)| seq)
            .collect();
        expired.sort_unstable(); // deterministic order
        for seq in expired {
            let retries = self.outstanding[&seq].retries;
            if retries >= max_retries {
                self.outstanding.remove(&seq);
                self.abandoned += 1;
            } else {
                self.retry_queue.push(seq);
            }
        }
    }

    /// Pop the next frame due for retransmission, if any.
    pub fn next_retry(&mut self) -> Option<u16> {
        if self.retry_queue.is_empty() {
            None
        } else {
            Some(self.retry_queue.remove(0))
        }
    }

    /// Frames in flight (sent, not yet ACKed or abandoned).
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn header_roundtrip() {
        let h = MacHeader { seq: 0xBEEF };
        let p = h.encapsulate(&[1, 2, 3]);
        assert_eq!(p.len(), 5);
        let (back, data) = MacHeader::decapsulate(&p).unwrap();
        assert_eq!(back, h);
        assert_eq!(data, &[1, 2, 3]);
        assert!(MacHeader::decapsulate(&[0]).is_none());
    }

    #[test]
    fn sequences_increment_and_wrap() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        assert_eq!(a.register_new(t(0), 10), 0);
        assert_eq!(a.register_new(t(0), 10), 1);
        a.next_seq = u16::MAX;
        assert_eq!(a.register_new(t(0), 10), u16::MAX);
        assert_eq!(a.register_new(t(0), 10), 0);
    }

    #[test]
    fn ack_credits_once() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let seq = a.register_new(t(0), 128);
        assert_eq!(a.on_ack(seq), Some(128));
        assert_eq!(a.on_ack(seq), None, "duplicate ACK ignored");
        assert_eq!(a.bytes_acked, 128);
        assert_eq!(a.acks_seen, 2);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn timeout_triggers_retry_then_abandon() {
        let mut a = AckTracker::new(SimDuration::millis(30), 2);
        let seq = a.register_new(t(0), 128);
        a.scan_timeouts(t(10));
        assert!(a.next_retry().is_none(), "not expired yet");
        a.scan_timeouts(t(31));
        assert_eq!(a.next_retry(), Some(seq));
        a.register_retry(seq, t(31));
        a.scan_timeouts(t(62));
        assert_eq!(a.next_retry(), Some(seq));
        a.register_retry(seq, t(62));
        // Third expiry exceeds max_retries = 2.
        a.scan_timeouts(t(93));
        assert_eq!(a.next_retry(), None);
        assert_eq!(a.abandoned, 1);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn ack_while_queued_for_retry_cancels_retry() {
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        let seq = a.register_new(t(0), 64);
        a.scan_timeouts(t(40));
        // The late ACK arrives before the retransmission goes out.
        assert_eq!(a.on_ack(seq), Some(64));
        assert_eq!(a.next_retry(), None);
    }

    #[test]
    fn scan_does_not_double_queue() {
        let mut a = AckTracker::new(SimDuration::millis(30), 5);
        let seq = a.register_new(t(0), 64);
        a.scan_timeouts(t(40));
        a.scan_timeouts(t(41));
        assert_eq!(a.next_retry(), Some(seq));
        assert_eq!(a.next_retry(), None);
    }
}

#[cfg(test)]
mod timeout_floor_tests {
    use super::*;

    #[test]
    fn timeout_floor_prevents_spurious_retransmission() {
        // Regression: a 60 ms frame with a 30 ms timeout must not expire
        // while its ACK is still in flight.
        let mut a = AckTracker::new(SimDuration::millis(30), 3);
        a.ensure_timeout_covers(SimDuration::millis(60));
        let seq = a.register_new(SimTime::ZERO, 128);
        // Frame lands at 60 ms, ACK arrives ~66 ms.
        a.scan_timeouts(SimTime::from_millis(66));
        assert_eq!(a.next_retry(), None, "expired before the ACK could arrive");
        assert_eq!(a.on_ack(seq), Some(128));
        // The floor only raises, never lowers.
        let mut b = AckTracker::new(SimDuration::millis(500), 3);
        b.ensure_timeout_covers(SimDuration::millis(1));
        b.register_new(SimTime::ZERO, 1);
        b.scan_timeouts(SimTime::from_millis(400));
        assert_eq!(b.next_retry(), None, "configured timeout was lowered");
    }
}
