//! A VLC uplink — the paper's footnote-2 future work, built to see
//! exactly why the prototype used Wi-Fi instead.
//!
//! "We use WiFi for the ACKs only because of the fact that in practice,
//! the field-of-view of LEDs residing at the mobile nodes are not
//! powerful enough to support the required communication coverage. […]
//! We can use VLC for both uplink and downlink in the future when more
//! advanced LEDs are available for mobile nodes."
//!
//! The mobile node's LED is a few hundred milliwatts into a wide
//! (Lambertian, m ≈ 1) beam; the luminaire-side photodiode sees it
//! against the full office ambient. [`VlcUplink`] models that reverse
//! path with the same optics/noise machinery as the downlink and
//! delivers uplink messages only when the short ACK frame survives —
//! which it does at arm's length and stops doing well before the
//! downlink's 3.6 m reach.

use desim::{DetRng, SimDuration, SimTime};
use vlc_channel::frontend::AnalogFrontend;
use vlc_channel::led::LedModel;
use vlc_channel::link::{ChannelConfig, OpticalChannel};
use vlc_channel::optics::LambertianLink;
use vlc_channel::photodiode::Photodiode;
use vlc_hw::wifi::{SideChannel, SideChannelMsg};

/// Parameters of the mobile node's uplink LED path.
#[derive(Clone, Copy, Debug)]
pub struct VlcUplinkConfig {
    /// Mobile LED optical power, watts (flashlight-class: ~350 mW —
    /// even this generous figure only covers arm's length against the
    /// bright-office noise floor).
    pub tx_optical_w: f64,
    /// Mobile LED half-power semi-angle, degrees (wide, unaimed).
    pub semi_angle_deg: f64,
    /// Link distance, metres (same geometry as the downlink).
    pub distance_m: f64,
    /// Ambient illuminance at the luminaire's photodiode, lux.
    pub ambient_lux: f64,
    /// ACK frame length on the uplink, slots (preamble + header + CRC).
    pub ack_slots: u32,
}

impl VlcUplinkConfig {
    /// A phone-style mobile node at `distance_m` in the bright office.
    pub fn mobile_node(distance_m: f64) -> VlcUplinkConfig {
        VlcUplinkConfig {
            tx_optical_w: 0.35,
            semi_angle_deg: 60.0,
            distance_m,
            ambient_lux: 8080.0,
            ack_slots: 200,
        }
    }
}

/// The uplink channel: computes the ACK frame's survival probability
/// from the reverse optical budget and delivers accordingly.
pub struct VlcUplink<T> {
    success_prob: f64,
    airtime: SimDuration,
    slot_error_prob: f64,
    rng: DetRng,
    in_flight: Vec<SideChannelMsg<T>>,
}

impl<T> VlcUplink<T> {
    /// Build the uplink from its optical configuration.
    pub fn new(cfg: VlcUplinkConfig, rng: DetRng) -> VlcUplink<T> {
        // The reverse path reuses the downlink machinery with the mobile
        // LED's parameters.
        let channel_cfg = ChannelConfig {
            led: LedModel {
                rise_tau_s: 0.2e-6, // small indicator LEDs switch fast
                fall_tau_s: 0.2e-6,
                on_power_w: cfg.tx_optical_w,
                off_fraction: 0.0,
            },
            geometry: LambertianLink {
                semi_angle_deg: cfg.semi_angle_deg,
                rx_area_m2: 7.5e-6, // the luminaire hosts another SFH206K
                rx_fov_deg: 60.0,
                distance_m: cfg.distance_m,
                off_axis_deg: 0.0,
                diffuse: None,
            },
            rx_diode: Photodiode::sfh206k(),
            frontend: AnalogFrontend::paper_receiver(),
            tslot_s: 8e-6,
            samples_per_slot: 4,
            ambient_lux: cfg.ambient_lux,
            ambient_rin: 4.7e-3,
        };
        let channel = OpticalChannel::new(channel_cfg, rng.fork("probe"));
        let probs = channel.analytic_error_probs();
        let p_slot = 0.5 * (probs.p_off_error + probs.p_on_error);
        let success_prob = (1.0 - p_slot).powi(cfg.ack_slots as i32);
        VlcUplink {
            success_prob,
            slot_error_prob: p_slot,
            airtime: SimDuration::nanos(cfg.ack_slots as u64 * 8_000),
            rng: rng.fork("loss"),
            in_flight: Vec::new(),
        }
    }

    /// Probability one uplink frame survives.
    pub fn success_prob(&self) -> f64 {
        self.success_prob
    }

    /// Analytic per-slot error probability of the reverse path.
    pub fn slot_error_prob(&self) -> f64 {
        self.slot_error_prob
    }

    /// One-way latency (the ACK frame's airtime; no Wi-Fi stack).
    pub fn airtime(&self) -> SimDuration {
        self.airtime
    }
}

impl<T> SideChannel<T> for VlcUplink<T> {
    fn send(&mut self, now: SimTime, payload: T) -> Option<SimTime> {
        if !self.rng.chance(self.success_prob) {
            return None;
        }
        let deliver_at = now + self.airtime;
        self.in_flight.push(SideChannelMsg {
            deliver_at,
            payload,
        });
        Some(deliver_at)
    }

    fn deliver_due(&mut self, now: SimTime) -> Vec<T> {
        let mut due = Vec::new();
        let mut still = Vec::with_capacity(self.in_flight.len());
        for m in self.in_flight.drain(..) {
            if m.deliver_at <= now {
                due.push(m);
            } else {
                still.push(m);
            }
        }
        self.in_flight = still;
        due.sort_by_key(|m| m.deliver_at);
        due.into_iter().map(|m| m.payload).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uplink(d: f64) -> VlcUplink<u16> {
        VlcUplink::new(VlcUplinkConfig::mobile_node(d), DetRng::seed_from_u64(1))
    }

    #[test]
    fn works_at_arms_length() {
        let u = uplink(0.5);
        assert!(u.success_prob() > 0.99, "p={}", u.success_prob());
    }

    #[test]
    fn dies_well_before_the_downlink_reach() {
        // Footnote 2's rationale, quantified: even a flashlight-class
        // wide-beam mobile LED cannot cover the downlink's 3+ m geometry.
        let mid = uplink(1.5);
        let far = uplink(3.0);
        assert!(
            mid.success_prob() < 0.9,
            "1.5 m should already struggle: p={}",
            mid.success_prob()
        );
        assert!(
            far.success_prob() < 0.05,
            "3 m must be hopeless: p={}",
            far.success_prob()
        );
    }

    #[test]
    fn stronger_future_led_fixes_it() {
        // "...when more advanced LEDs are available for mobile nodes":
        // a 3 W narrow-beam (aimed) uplink LED covers the full downlink
        // reach — roughly the luminaire's own class of emitter.
        let mut cfg = VlcUplinkConfig::mobile_node(3.6);
        cfg.tx_optical_w = 3.0;
        cfg.semi_angle_deg = 15.0;
        let u: VlcUplink<u16> = VlcUplink::new(cfg, DetRng::seed_from_u64(2));
        assert!(u.success_prob() > 0.95, "p={}", u.success_prob());
    }

    #[test]
    fn latency_is_one_airtime() {
        let mut u = uplink(0.5);
        assert_eq!(u.airtime(), SimDuration::micros(1600)); // 200 slots x 8 us
        let at = u.send(SimTime::ZERO, 7).unwrap();
        assert_eq!(at, SimTime::from_micros(1600));
        assert!(u.deliver_due(SimTime::from_micros(1599)).is_empty());
        assert_eq!(u.deliver_due(at), vec![7]);
    }

    #[test]
    fn losses_match_the_probability() {
        // A short ACK at 0.7 m sits in the partially-lossy regime where
        // the delivery statistics are measurable.
        let mut cfg = VlcUplinkConfig::mobile_node(0.7);
        cfg.ack_slots = 20;
        let mut u: VlcUplink<u16> = VlcUplink::new(cfg, DetRng::seed_from_u64(3));
        let p = u.success_prob();
        assert!(p > 0.01 && p < 0.99, "pick a lossy point: p={p}");
        let n = 20_000;
        let mut ok = 0;
        for i in 0..n {
            if u.send(SimTime::from_millis(i), 0u16).is_some() {
                ok += 1;
            }
        }
        let measured = ok as f64 / n as f64;
        assert!((measured - p).abs() < 0.02, "measured={measured} p={p}");
    }
}
