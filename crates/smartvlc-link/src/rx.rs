//! The receiver state machine: preamble scan → frame parse → ACK
//! decision.
//!
//! [`Receiver`] consumes an unsegmented stream of decided slots (idle
//! filler, frames, noise — whatever the light carried), locks onto
//! preambles, and parses frames with the shared [`FrameCodec`]. Frames
//! with a clean CRC produce [`RxEvent::Frame`]; corrupted ones produce
//! [`RxEvent::CrcFailed`] and are dropped without an ACK, exactly as
//! §6.1 describes.

use crate::error::LinkError;
use smartvlc_obs as obs;

use smartvlc_core::frame::codec::{
    FrameCodec, FrameCodecError, FrameStats, PREAMBLE_SLOTS, PREAMBLE_TOLERANCE, PREFIX_SLOTS,
};
use smartvlc_core::frame::format::Frame;
use smartvlc_core::SystemConfig;
use std::collections::VecDeque;

/// Where the receiver's clock stands relative to the slot stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncStatus {
    /// Start-up: no frame has ever been decoded.
    Acquiring,
    /// Frames are decoding; the preamble hunt is cheap and local.
    InSync,
    /// Synchronisation was lost (a long stretch of slots scanned without
    /// a single lock); the receiver is re-hunting within its budget.
    Hunting,
}

/// Something the receiver observed in the slot stream.
#[derive(Clone, Debug, PartialEq)]
pub enum RxEvent {
    /// A frame with a verified CRC.
    Frame {
        /// The parsed frame.
        frame: Frame,
        /// Receiver-side statistics.
        stats: FrameStats,
        /// Stream offset (slots since receiver start) of the frame start.
        at_slot: u64,
    },
    /// A frame structure was found but its CRC failed.
    CrcFailed {
        /// Receiver-side statistics (symbol failure counts etc.).
        stats: FrameStats,
        /// Stream offset of the frame start.
        at_slot: u64,
    },
}

/// Streaming frame receiver.
pub struct Receiver {
    codec: FrameCodec,
    buffer: VecDeque<bool>,
    /// Slots consumed from the stream so far (offset of buffer[0]).
    consumed: u64,
    /// Upper bound on a single frame's slot footprint; a "frame" whose
    /// claimed length implies more is treated as a false preamble lock.
    max_frame_slots: usize,
    /// Count of positions scanned past without a lock.
    pub scan_skips: u64,
    /// Sync state machine (see [`SyncStatus`]).
    status: SyncStatus,
    /// Times the receiver fell from [`SyncStatus::InSync`] to
    /// [`SyncStatus::Hunting`].
    pub sync_losses: u64,
    /// Slots scanned past (without decoding a frame) since the last
    /// cleanly decoded frame.
    slots_since_frame: u64,
    /// Hunt cost of the most recent reacquisition: how many slots the
    /// receiver scanned between losing sync and the next clean frame.
    pub last_resync_slots: Option<u64>,
    /// Scan threshold beyond which an in-sync receiver declares loss.
    sync_loss_after: u64,
    /// Extra scan budget a hunting receiver gets before it reports
    /// [`LinkError::ResyncBudgetExhausted`] (and re-arms).
    resync_budget: u64,
    /// Scan depth at which the next budget overrun fires.
    next_overrun_at: u64,
    /// Latched budget overrun, reported once via [`Receiver::poll_resync`].
    overrun: Option<u64>,
}

impl Receiver {
    /// Build a receiver for the configuration.
    pub fn new(cfg: SystemConfig) -> Result<Receiver, FrameCodecError> {
        // Generous bound: the configured payload modulated by the least
        // efficient admissible scheme, plus fixed fields and margin.
        let max_frame_slots = (cfg.payload_len + 64) * 8 * 32;
        // Loss threshold: a couple of max-size frames' worth of scanning
        // without a single lock cannot happen on a healthy stream (the
        // inter-frame gap is tens of slots).
        let sync_loss_after = 2 * max_frame_slots as u64;
        let resync_budget = 8 * max_frame_slots as u64;
        Ok(Receiver {
            codec: FrameCodec::new(cfg).map_err(FrameCodecError::Plan)?,
            buffer: VecDeque::new(),
            consumed: 0,
            max_frame_slots,
            scan_skips: 0,
            status: SyncStatus::Acquiring,
            sync_losses: 0,
            slots_since_frame: 0,
            last_resync_slots: None,
            sync_loss_after,
            resync_budget,
            next_overrun_at: u64::MAX,
            overrun: None,
        })
    }

    /// Current sync state.
    pub fn sync_status(&self) -> SyncStatus {
        self.status
    }

    /// Slots scanned without a decode since the last clean frame.
    pub fn slots_since_frame(&self) -> u64 {
        self.slots_since_frame
    }

    /// Report (once) that the bounded resync budget ran out. The hunt
    /// itself continues — the receiver never gives up, it just re-arms the
    /// budget — but the caller learns the link has been dark for a long
    /// time and can act (e.g. count it, reset state, degrade further).
    pub fn poll_resync(&mut self) -> Result<SyncStatus, LinkError> {
        match self.overrun.take() {
            Some(scanned_slots) => Err(LinkError::ResyncBudgetExhausted { scanned_slots }),
            None => Ok(self.status),
        }
    }

    /// Account `n` scanned-past slots and run the sync state machine.
    ///
    /// The checks are sequential, not exclusive: a single bulk scan (the
    /// bounded buffer dropping a flood in one go) can cross the loss
    /// threshold *and* the resync budget in the same call.
    fn note_scan(&mut self, n: u64) {
        self.slots_since_frame += n;
        obs::counter_add(obs::key!("link.rx.scan_skips"), n);
        if self.status == SyncStatus::InSync && self.slots_since_frame >= self.sync_loss_after {
            self.status = SyncStatus::Hunting;
            self.sync_losses += 1;
            obs::counter_add(obs::key!("link.rx.sync_losses"), 1);
            // Budget measured from the last frame, not from wherever the
            // scan happened to stand when loss was declared.
            self.next_overrun_at = self.sync_loss_after + self.resync_budget;
        }
        if self.status == SyncStatus::Hunting && self.slots_since_frame >= self.next_overrun_at {
            self.overrun = Some(self.slots_since_frame);
            self.next_overrun_at = self.slots_since_frame + self.resync_budget;
            obs::counter_add(obs::key!("link.rx.resync_overruns"), 1);
        }
    }

    /// A clean frame decoded: (re)enter sync.
    fn note_frame(&mut self) {
        if self.status == SyncStatus::Hunting {
            self.last_resync_slots = Some(self.slots_since_frame);
            // Resync search depth: slots hunted before a clean frame.
            obs::observe(
                obs::key!("link.rx.resync_depth_slots"),
                self.slots_since_frame,
            );
        }
        obs::counter_add(obs::key!("link.rx.frames_ok"), 1);
        self.status = SyncStatus::InSync;
        self.slots_since_frame = 0;
        self.next_overrun_at = u64::MAX;
        self.overrun = None;
    }

    fn preamble_at_front(&self) -> bool {
        if self.buffer.len() < PREAMBLE_SLOTS {
            return false;
        }
        let mismatches = self
            .buffer
            .iter()
            .take(PREAMBLE_SLOTS)
            .enumerate()
            .filter(|&(i, &s)| s != (i % 2 == 0))
            .count();
        mismatches <= PREAMBLE_TOLERANCE
    }

    fn pop_front(&mut self, n: usize) {
        self.buffer.drain(..n.min(self.buffer.len()));
        self.consumed += n as u64;
    }

    /// Feed decided slots; returns any frames completed by this input.
    pub fn push_slots(&mut self, slots: &[bool]) -> Vec<RxEvent> {
        self.buffer.extend(slots.iter().copied());
        // Bounded memory: anything older than one max-size frame plus its
        // prefix can never complete a parse — a flood of garbage (or a
        // saturated front end) must not grow the buffer without bound.
        let cap = self.max_frame_slots + PREFIX_SLOTS;
        if self.buffer.len() > cap {
            let drop = self.buffer.len() - cap;
            self.pop_front(drop);
            self.scan_skips += drop as u64;
            self.note_scan(drop as u64);
        }
        let mut events = Vec::new();
        loop {
            // Hunt for a preamble at the front of the buffer.
            while self.buffer.len() >= PREAMBLE_SLOTS && !self.preamble_at_front() {
                self.pop_front(1);
                self.scan_skips += 1;
                self.note_scan(1);
            }
            if self.buffer.len() < PREFIX_SLOTS + 2 {
                return events; // need more input
            }
            // `make_contiguous` rotates in place (amortized free: the
            // buffer is drained from the front and refilled at the back,
            // so it is usually already contiguous) — no per-parse copy.
            match self.codec.parse(self.buffer.make_contiguous()) {
                Ok((frame, stats)) => {
                    let at_slot = self.consumed;
                    if stats.crc_ok {
                        self.pop_front(stats.total_slots);
                        self.note_frame();
                        events.push(RxEvent::Frame {
                            frame,
                            stats,
                            at_slot,
                        });
                    } else {
                        // A failed CRC might be a false preamble lock that
                        // mis-measured the frame extent; consuming
                        // `total_slots` could swallow a real frame right
                        // behind it. Advance one slot and re-hunt instead.
                        self.pop_front(1);
                        self.note_scan(1);
                        events.push(RxEvent::CrcFailed { stats, at_slot });
                    }
                }
                Err(FrameCodecError::Truncated { needed, .. }) => {
                    if needed > self.max_frame_slots {
                        // Nonsense length: false lock, resume hunting.
                        self.pop_front(1);
                        self.scan_skips += 1;
                        self.note_scan(1);
                    } else {
                        return events; // genuine partial frame: wait
                    }
                }
                Err(_) => {
                    // Bad header / compensation overrun / unsupported
                    // pattern: advance one slot and re-hunt.
                    self.pop_front(1);
                    self.scan_skips += 1;
                    self.note_scan(1);
                }
            }
        }
    }

    /// Slots currently buffered awaiting more input.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Provision (or de-provision) the receiver for the FEC outer code.
    /// An unprovisioned receiver rejects FEC-flagged headers as
    /// corruption — see [`FrameCodec::set_accept_fec`].
    pub fn set_accept_fec(&mut self, accept: bool) {
        self.codec.set_accept_fec(accept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartvlc_core::frame::format::{amppm_descriptor, Frame};
    use smartvlc_core::DimmingLevel;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn make_frame(l: f64, payload: Vec<u8>) -> (Frame, Vec<bool>) {
        let c = cfg();
        let d = amppm_descriptor(&c, DimmingLevel::new(l).unwrap());
        let frame = Frame::new(d, payload).unwrap();
        let mut codec = FrameCodec::new(c).unwrap();
        let slots = codec.emit(&frame).unwrap();
        (frame, slots)
    }

    #[test]
    fn parses_frame_with_leading_noise() {
        let (frame, slots) = make_frame(0.5, (0..64).collect());
        let mut rx = Receiver::new(cfg()).unwrap();
        // Idle filler before the frame: constant-ish dim pattern.
        let mut stream: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let noise_len = stream.len() as u64;
        stream.extend(&slots);
        let events = rx.push_slots(&stream);
        assert_eq!(events.len(), 1);
        match &events[0] {
            RxEvent::Frame {
                frame: f, at_slot, ..
            } => {
                assert_eq!(f, &frame);
                assert!(*at_slot >= noise_len - 2 && *at_slot <= noise_len + 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reassembles_across_partial_pushes() {
        let (frame, slots) = make_frame(0.4, (0..128).collect());
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut events = Vec::new();
        for chunk in slots.chunks(97) {
            events.extend(rx.push_slots(chunk));
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], RxEvent::Frame { frame: f, .. } if f == &frame));
    }

    #[test]
    fn parses_back_to_back_frames() {
        let (f1, s1) = make_frame(0.5, vec![1; 32]);
        let (f2, s2) = make_frame(0.5, vec![2; 32]);
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], RxEvent::Frame { frame, .. } if frame == &f1));
        assert!(matches!(&events[1], RxEvent::Frame { frame, .. } if frame == &f2));
    }

    #[test]
    fn corrupted_frame_yields_crc_event_and_resync() {
        let (_, mut s1) = make_frame(0.5, vec![3; 64]);
        let (f2, s2) = make_frame(0.5, vec![4; 64]);
        let mid = s1.len() / 2;
        s1[mid] = !s1[mid]; // corrupt frame 1 mid-payload (not padding)
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        assert!(
            matches!(&events[0], RxEvent::CrcFailed { .. }),
            "{events:?}"
        );
        // Frame 2 survives the resync (possibly after spurious rescan
        // events inside frame 1's corrupted body).
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f2)));
    }

    #[test]
    fn garbage_only_produces_no_events() {
        let mut rx = Receiver::new(cfg()).unwrap();
        // Random-ish but deterministic garbage.
        let garbage: Vec<bool> = (0u64..5000)
            .map(|i| (i.wrapping_mul(2654435761)) & 4 != 0)
            .collect();
        let events = rx.push_slots(&garbage);
        assert!(events.is_empty(), "{events:?}");
        assert!(rx.scan_skips > 0);
    }

    #[test]
    fn destroyed_preamble_loses_frame_but_not_receiver() {
        let (_, mut s1) = make_frame(0.5, vec![5; 64]);
        for s in s1.iter_mut().take(8) {
            *s = !*s; // obliterate the preamble
        }
        let (f2, s2) = make_frame(0.5, vec![6; 64]);
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        // Frame 1 is unrecoverable; frame 2 must still be found.
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f2)));
    }

    #[test]
    fn buffered_reflects_pending_input() {
        let mut rx = Receiver::new(cfg()).unwrap();
        rx.push_slots(&[true; 10]);
        assert!(rx.buffered() <= 10);
    }

    fn garbage(n: usize) -> Vec<bool> {
        (0u64..n as u64)
            .map(|i| (i.wrapping_mul(2654435761)) & 4 != 0)
            .collect()
    }

    #[test]
    fn sync_state_machine_tracks_loss_and_reacquisition() {
        let (_, slots) = make_frame(0.5, vec![7; 64]);
        let mut rx = Receiver::new(cfg()).unwrap();
        assert_eq!(rx.sync_status(), SyncStatus::Acquiring);

        rx.push_slots(&slots);
        assert_eq!(rx.sync_status(), SyncStatus::InSync);
        assert_eq!(rx.sync_losses, 0);

        // A long dark stretch (occlusion: every slot garbage) must trip
        // the loss detector exactly once.
        rx.push_slots(&garbage(3 * rx.max_frame_slots));
        assert_eq!(rx.sync_status(), SyncStatus::Hunting);
        assert_eq!(rx.sync_losses, 1);

        // The fault clears: the next clean frame reacquires and records
        // the hunt cost.
        let (f2, s2) = make_frame(0.5, vec![8; 64]);
        let events = rx.push_slots(&s2);
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f2)));
        assert_eq!(rx.sync_status(), SyncStatus::InSync);
        assert!(rx.last_resync_slots.unwrap() >= rx.sync_loss_after);
        assert_eq!(rx.slots_since_frame(), 0);
    }

    #[test]
    fn normal_interframe_gaps_never_count_as_sync_loss() {
        let mut rx = Receiver::new(cfg()).unwrap();
        for i in 0..20u8 {
            let (_, slots) = make_frame(0.5, vec![i; 64]);
            let mut stream: Vec<bool> = (0..64).map(|j| j % 4 == 0).collect();
            stream.extend(&slots);
            rx.push_slots(&stream);
        }
        assert_eq!(rx.sync_status(), SyncStatus::InSync);
        assert_eq!(rx.sync_losses, 0);
    }

    #[test]
    fn resync_budget_overrun_reports_once_and_rearms() {
        let (_, slots) = make_frame(0.5, vec![9; 64]);
        let mut rx = Receiver::new(cfg()).unwrap();
        rx.push_slots(&slots);
        // Scan far past loss threshold + budget.
        let deep = rx.sync_loss_after + rx.resync_budget + rx.max_frame_slots as u64;
        rx.push_slots(&garbage(deep as usize + 1000));
        match rx.poll_resync() {
            Err(LinkError::ResyncBudgetExhausted { scanned_slots }) => {
                assert!(scanned_slots >= rx.sync_loss_after + rx.resync_budget)
            }
            other => panic!("{other:?}"),
        }
        // Consumed: a second poll without further scanning is clean.
        assert_eq!(rx.poll_resync(), Ok(SyncStatus::Hunting));
    }

    #[test]
    fn buffer_stays_bounded_under_garbage_flood() {
        let mut rx = Receiver::new(cfg()).unwrap();
        for _ in 0..10 {
            rx.push_slots(&garbage(2 * rx.max_frame_slots));
            assert!(rx.buffered() <= rx.max_frame_slots + PREFIX_SLOTS);
        }
        // Still functional afterwards.
        let (f, s) = make_frame(0.5, vec![1; 64]);
        let events = rx.push_slots(&s);
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f)));
    }
}
