//! The receiver state machine: preamble scan → frame parse → ACK
//! decision.
//!
//! [`Receiver`] consumes an unsegmented stream of decided slots (idle
//! filler, frames, noise — whatever the light carried), locks onto
//! preambles, and parses frames with the shared [`FrameCodec`]. Frames
//! with a clean CRC produce [`RxEvent::Frame`]; corrupted ones produce
//! [`RxEvent::CrcFailed`] and are dropped without an ACK, exactly as
//! §6.1 describes.

use smartvlc_core::frame::codec::{
    FrameCodec, FrameCodecError, FrameStats, PREAMBLE_SLOTS, PREAMBLE_TOLERANCE, PREFIX_SLOTS,
};
use smartvlc_core::frame::format::Frame;
use smartvlc_core::SystemConfig;
use std::collections::VecDeque;

/// Something the receiver observed in the slot stream.
#[derive(Clone, Debug, PartialEq)]
pub enum RxEvent {
    /// A frame with a verified CRC.
    Frame {
        /// The parsed frame.
        frame: Frame,
        /// Receiver-side statistics.
        stats: FrameStats,
        /// Stream offset (slots since receiver start) of the frame start.
        at_slot: u64,
    },
    /// A frame structure was found but its CRC failed.
    CrcFailed {
        /// Receiver-side statistics (symbol failure counts etc.).
        stats: FrameStats,
        /// Stream offset of the frame start.
        at_slot: u64,
    },
}

/// Streaming frame receiver.
pub struct Receiver {
    codec: FrameCodec,
    buffer: VecDeque<bool>,
    /// Slots consumed from the stream so far (offset of buffer[0]).
    consumed: u64,
    /// Upper bound on a single frame's slot footprint; a "frame" whose
    /// claimed length implies more is treated as a false preamble lock.
    max_frame_slots: usize,
    /// Count of positions scanned past without a lock.
    pub scan_skips: u64,
}

impl Receiver {
    /// Build a receiver for the configuration.
    pub fn new(cfg: SystemConfig) -> Result<Receiver, FrameCodecError> {
        // Generous bound: the configured payload modulated by the least
        // efficient admissible scheme, plus fixed fields and margin.
        let max_frame_slots = (cfg.payload_len + 64) * 8 * 32;
        Ok(Receiver {
            codec: FrameCodec::new(cfg).map_err(FrameCodecError::Plan)?,
            buffer: VecDeque::new(),
            consumed: 0,
            max_frame_slots,
            scan_skips: 0,
        })
    }

    fn preamble_at_front(&self) -> bool {
        if self.buffer.len() < PREAMBLE_SLOTS {
            return false;
        }
        let mismatches = self
            .buffer
            .iter()
            .take(PREAMBLE_SLOTS)
            .enumerate()
            .filter(|&(i, &s)| s != (i % 2 == 0))
            .count();
        mismatches <= PREAMBLE_TOLERANCE
    }

    fn pop_front(&mut self, n: usize) {
        for _ in 0..n.min(self.buffer.len()) {
            self.buffer.pop_front();
        }
        self.consumed += n as u64;
    }

    /// Feed decided slots; returns any frames completed by this input.
    pub fn push_slots(&mut self, slots: &[bool]) -> Vec<RxEvent> {
        self.buffer.extend(slots.iter().copied());
        let mut events = Vec::new();
        loop {
            // Hunt for a preamble at the front of the buffer.
            while self.buffer.len() >= PREAMBLE_SLOTS && !self.preamble_at_front() {
                self.pop_front(1);
                self.scan_skips += 1;
            }
            if self.buffer.len() < PREFIX_SLOTS + 2 {
                return events; // need more input
            }
            let contiguous: Vec<bool> = self.buffer.iter().copied().collect();
            match self.codec.parse(&contiguous) {
                Ok((frame, stats)) => {
                    let at_slot = self.consumed;
                    if stats.crc_ok {
                        self.pop_front(stats.total_slots);
                        events.push(RxEvent::Frame {
                            frame,
                            stats,
                            at_slot,
                        });
                    } else {
                        // A failed CRC might be a false preamble lock that
                        // mis-measured the frame extent; consuming
                        // `total_slots` could swallow a real frame right
                        // behind it. Advance one slot and re-hunt instead.
                        self.pop_front(1);
                        events.push(RxEvent::CrcFailed { stats, at_slot });
                    }
                }
                Err(FrameCodecError::Truncated { needed, .. }) => {
                    if needed > self.max_frame_slots {
                        // Nonsense length: false lock, resume hunting.
                        self.pop_front(1);
                        self.scan_skips += 1;
                    } else {
                        return events; // genuine partial frame: wait
                    }
                }
                Err(_) => {
                    // Bad header / compensation overrun / unsupported
                    // pattern: advance one slot and re-hunt.
                    self.pop_front(1);
                    self.scan_skips += 1;
                }
            }
        }
    }

    /// Slots currently buffered awaiting more input.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartvlc_core::frame::format::{amppm_descriptor, Frame};
    use smartvlc_core::DimmingLevel;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn make_frame(l: f64, payload: Vec<u8>) -> (Frame, Vec<bool>) {
        let c = cfg();
        let d = amppm_descriptor(&c, DimmingLevel::new(l).unwrap());
        let frame = Frame::new(d, payload).unwrap();
        let mut codec = FrameCodec::new(c).unwrap();
        let slots = codec.emit(&frame).unwrap();
        (frame, slots)
    }

    #[test]
    fn parses_frame_with_leading_noise() {
        let (frame, slots) = make_frame(0.5, (0..64).collect());
        let mut rx = Receiver::new(cfg()).unwrap();
        // Idle filler before the frame: constant-ish dim pattern.
        let mut stream: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let noise_len = stream.len() as u64;
        stream.extend(&slots);
        let events = rx.push_slots(&stream);
        assert_eq!(events.len(), 1);
        match &events[0] {
            RxEvent::Frame {
                frame: f, at_slot, ..
            } => {
                assert_eq!(f, &frame);
                assert!(*at_slot >= noise_len - 2 && *at_slot <= noise_len + 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reassembles_across_partial_pushes() {
        let (frame, slots) = make_frame(0.4, (0..128).collect());
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut events = Vec::new();
        for chunk in slots.chunks(97) {
            events.extend(rx.push_slots(chunk));
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], RxEvent::Frame { frame: f, .. } if f == &frame));
    }

    #[test]
    fn parses_back_to_back_frames() {
        let (f1, s1) = make_frame(0.5, vec![1; 32]);
        let (f2, s2) = make_frame(0.5, vec![2; 32]);
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], RxEvent::Frame { frame, .. } if frame == &f1));
        assert!(matches!(&events[1], RxEvent::Frame { frame, .. } if frame == &f2));
    }

    #[test]
    fn corrupted_frame_yields_crc_event_and_resync() {
        let (_, mut s1) = make_frame(0.5, vec![3; 64]);
        let (f2, s2) = make_frame(0.5, vec![4; 64]);
        let mid = s1.len() / 2;
        s1[mid] = !s1[mid]; // corrupt frame 1 mid-payload (not padding)
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        assert!(
            matches!(&events[0], RxEvent::CrcFailed { .. }),
            "{events:?}"
        );
        // Frame 2 survives the resync (possibly after spurious rescan
        // events inside frame 1's corrupted body).
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f2)));
    }

    #[test]
    fn garbage_only_produces_no_events() {
        let mut rx = Receiver::new(cfg()).unwrap();
        // Random-ish but deterministic garbage.
        let garbage: Vec<bool> = (0u64..5000)
            .map(|i| (i.wrapping_mul(2654435761)) & 4 != 0)
            .collect();
        let events = rx.push_slots(&garbage);
        assert!(events.is_empty(), "{events:?}");
        assert!(rx.scan_skips > 0);
    }

    #[test]
    fn destroyed_preamble_loses_frame_but_not_receiver() {
        let (_, mut s1) = make_frame(0.5, vec![5; 64]);
        for s in s1.iter_mut().take(8) {
            *s = !*s; // obliterate the preamble
        }
        let (f2, s2) = make_frame(0.5, vec![6; 64]);
        let mut rx = Receiver::new(cfg()).unwrap();
        let mut stream = s1;
        stream.extend(&s2);
        let events = rx.push_slots(&stream);
        // Frame 1 is unrecoverable; frame 2 must still be found.
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::Frame { frame, .. } if frame == &f2)));
    }

    #[test]
    fn buffered_reflects_pending_input() {
        let mut rx = Receiver::new(cfg()).unwrap();
        rx.push_slots(&[true; 10]);
        assert!(rx.buffered() <= 10);
    }
}
