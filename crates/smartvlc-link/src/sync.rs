//! Slot clock recovery from the oversampled ADC stream.
//!
//! The receiver samples at `fs = 4·ftx` without any shared clock with the
//! transmitter, so before slots can be decided it must find the *phase*:
//! which of the 4 sample positions within a slot period line up with slot
//! boundaries. The alternating preamble makes this easy — it is a square
//! wave at `ftx/2`, so correlating each candidate phase against the
//! expected pattern and picking the strongest lock recovers the phase
//! (the classic early/late gate, done block-wise).

use crate::error::LinkError;
use vlc_channel::detector::SlotDetector;

/// Result of a phase search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseLock {
    /// Samples to skip before the first full slot (0..samples_per_slot).
    pub phase: usize,
    /// Correlation score of the winning phase, in [0, 1].
    pub quality: f64,
}

/// Recover the slot phase from a window of raw samples containing an
/// alternating preamble.
///
/// `samples` are input-referred current levels at `spp` samples per slot.
/// Returns the phase whose decimated slot stream best matches an
/// alternating pattern, judged over `probe_slots` slots.
pub fn find_slot_phase(
    samples: &[f64],
    spp: usize,
    detector: &SlotDetector,
    probe_slots: usize,
) -> Option<PhaseLock> {
    assert!(spp >= 2, "need oversampling to search phase");
    if samples.len() < (probe_slots + 1) * spp {
        return None;
    }
    let mut best: Option<PhaseLock> = None;
    for phase in 0..spp {
        let levels = decimate(samples, spp, phase, probe_slots);
        if levels.len() < probe_slots {
            continue;
        }
        // Score: decisions must alternate AND the analog eye must be wide
        // open. Hard-decision alternation alone cannot separate phases
        // (a majority of clean samples out-votes the smeared edge sample
        // at every phase); the mean margin to threshold can.
        let decisions: Vec<bool> = levels.iter().map(|&v| detector.decide(v)).collect();
        let alternations = decisions.windows(2).filter(|w| w[0] != w[1]).count();
        let alt_frac = alternations as f64 / (decisions.len() - 1) as f64;
        let half_swing = ((detector.mu_on_a - detector.mu_off_a) / 2.0)
            .abs()
            .max(1e-30);
        let thr = detector.threshold();
        let margin = levels.iter().map(|&v| (v - thr).abs()).sum::<f64>()
            / (levels.len() as f64 * half_swing);
        let quality = alt_frac * margin.min(1.0);
        if best.is_none_or(|b| quality > b.quality) {
            best = Some(PhaseLock { phase, quality });
        }
    }
    best
}

/// A lock found by the bounded resync search: where in the sample stream
/// the preamble starts, and how good the lock is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReacquiredLock {
    /// Samples to skip from the start of the searched stream before the
    /// first full slot of the lock.
    pub sample_offset: usize,
    /// Correlation score of the winning phase, in [0, 1].
    pub quality: f64,
}

/// Bounded re-acquisition after sync loss: slide a `probe_slots`-slot
/// probe window across `samples` one slot at a time, up to a budget of
/// `max_scan_slots` window positions, and return the first lock whose
/// quality clears `min_quality`.
///
/// This is the recovery-path counterpart of [`find_slot_phase`]: the
/// initial search can assume a preamble is somewhere near the front, but
/// after an occlusion burst or a symbol slip the stream may hold an
/// arbitrary amount of garbage first. The budget makes the search cost
/// (and the caller's worst-case latency) explicit — on exhaustion the
/// caller gets [`LinkError::ResyncBudgetExhausted`] and decides what to
/// do (keep waiting, reset, degrade), instead of the search spinning
/// unboundedly.
pub fn reacquire_phase(
    samples: &[f64],
    spp: usize,
    detector: &SlotDetector,
    probe_slots: usize,
    min_quality: f64,
    max_scan_slots: u64,
) -> Result<ReacquiredLock, LinkError> {
    assert!(spp >= 2, "need oversampling to search phase");
    let window = (probe_slots + 1) * spp;
    let mut scanned = 0u64;
    let mut offset = 0usize;
    while offset + window <= samples.len() {
        if scanned > max_scan_slots {
            return Err(LinkError::ResyncBudgetExhausted {
                scanned_slots: scanned,
            });
        }
        if let Some(lock) = find_slot_phase(
            &samples[offset..offset + window],
            spp,
            detector,
            probe_slots,
        ) {
            if lock.quality >= min_quality {
                return Ok(ReacquiredLock {
                    sample_offset: offset + lock.phase,
                    quality: lock.quality,
                });
            }
        }
        offset += spp; // advance one whole slot; find_slot_phase covers sub-slot phases
        scanned += 1;
    }
    Err(LinkError::ResyncBudgetExhausted {
        scanned_slots: scanned,
    })
}

/// Decimate an oversampled stream at the locked phase: each slot's level
/// is the mean of its interior samples (the first sample after each
/// boundary straddles the LED transition and is skipped).
pub fn decimate(samples: &[f64], spp: usize, phase: usize, max_slots: usize) -> Vec<f64> {
    let usable = samples.len().saturating_sub(phase);
    let slots = (usable / spp).min(max_slots);
    let mut out = Vec::with_capacity(slots);
    for s in 0..slots {
        let start = phase + s * spp;
        let interior = &samples[start + 1..start + spp];
        out.push(interior.iter().sum::<f64>() / interior.len() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an oversampled stream of alternating slots with a phase
    /// offset and edge smearing on the first sample of each slot.
    fn preamble_samples(spp: usize, phase: usize, slots: usize) -> Vec<f64> {
        let mut out = vec![0.5; phase]; // garbage before the first boundary
        let mut prev = 0.0;
        for i in 0..slots {
            let level = if i % 2 == 0 { 1.0 } else { 0.0 };
            out.push((level + prev) / 2.0); // smeared edge sample
            for _ in 1..spp {
                out.push(level);
            }
            prev = level;
        }
        out
    }

    fn detector() -> SlotDetector {
        SlotDetector::from_levels(1.0, 0.0, 0.05)
    }

    #[test]
    fn finds_each_phase() {
        for phase in 0..4 {
            let samples = preamble_samples(4, phase, 24);
            let lock = find_slot_phase(&samples, 4, &detector(), 20).unwrap();
            assert_eq!(lock.phase, phase, "phase={phase}");
            assert!(lock.quality > 0.95, "quality={}", lock.quality);
        }
    }

    #[test]
    fn wrong_phase_scores_lower() {
        let samples = preamble_samples(4, 2, 24);
        let d = detector();
        let right = decimate(&samples, 4, 2, 20);
        let wrong = decimate(&samples, 4, 0, 20);
        let score = |lv: &[f64]| {
            let dec: Vec<bool> = lv.iter().map(|&v| d.decide(v)).collect();
            dec.windows(2).filter(|w| w[0] != w[1]).count()
        };
        assert!(score(&right) > score(&wrong));
    }

    #[test]
    fn too_short_input_returns_none() {
        let samples = preamble_samples(4, 0, 3);
        assert!(find_slot_phase(&samples, 4, &detector(), 20).is_none());
    }

    #[test]
    fn decimate_skips_edge_sample() {
        // Slot: [edge=0.5, 1.0, 1.0, 1.0] -> level must be 1.0, not 0.875.
        let samples = vec![0.5, 1.0, 1.0, 1.0, 0.5, 0.0, 0.0, 0.0];
        let levels = decimate(&samples, 4, 0, 10);
        assert_eq!(levels, vec![1.0, 0.0]);
    }

    #[test]
    fn decimate_respects_phase_and_cap() {
        let samples: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let levels = decimate(&samples, 4, 2, 3);
        assert_eq!(levels.len(), 3);
        // First slot starts at index 2; interior = indices 3,4,5.
        assert_eq!(levels[0], 4.0);
    }

    #[test]
    fn reacquire_finds_preamble_after_garbage() {
        let mut samples = vec![0.5; 4 * 37]; // 37 slots of mid-rail garbage
        let offset = samples.len();
        samples.extend(preamble_samples(4, 2, 24));
        let lock = reacquire_phase(&samples, 4, &detector(), 20, 0.8, 200).unwrap();
        assert!(lock.quality > 0.8);
        // Lands on the preamble (offset + its phase). The coarse search
        // advances whole slots and can lock a couple of slots early (a
        // window straddling the garbage/preamble boundary already scores
        // above threshold), so allow ±3 slots.
        let expected = offset + 2;
        assert!(
            (lock.sample_offset as i64 - expected as i64).abs() <= 12,
            "offset={} expected~{}",
            lock.sample_offset,
            expected
        );
    }

    #[test]
    fn reacquire_respects_its_budget() {
        let samples = vec![0.5; 4 * 500]; // garbage only
        let err = reacquire_phase(&samples, 4, &detector(), 20, 0.8, 64).unwrap_err();
        match err {
            crate::error::LinkError::ResyncBudgetExhausted { scanned_slots } => {
                assert!(scanned_slots >= 64, "{scanned_slots}")
            }
            other => panic!("{other:?}"),
        }
        // And with no budget it fails immediately rather than panicking.
        assert!(reacquire_phase(&samples, 4, &detector(), 20, 0.8, 0).is_err());
    }

    #[test]
    fn noisy_preamble_still_locks() {
        use desim::DetRng;
        let mut rng = DetRng::seed_from_u64(11);
        let mut samples = preamble_samples(4, 1, 24);
        for s in &mut samples {
            *s += rng.next_normal(0.0, 0.12);
        }
        let lock = find_slot_phase(&samples, 4, &detector(), 20).unwrap();
        assert_eq!(lock.phase, 1);
    }
}
