//! The transmitter state machine — the numbered steps of §3.
//!
//! 1. Update knowledge of ambient light; compute the required LED
//!    dimming level to keep `Iamb + Iled` constant (Eq. 5).
//! 2. Adapt the LED gradually in the perception domain (§4.3).
//! 3. Select the best modulation for the level (AMPPM planner, or a
//!    baseline scheme for the comparison experiments).
//! 4. Frame the data (Table 1) and emit the slot waveform.

use crate::error::LinkError;
use crate::mac::MacHeader;
use desim::DetRng;
use smartvlc_core::adaptation::{
    AdaptationCounter, AdaptationStepper, FixedStepper, PerceptionStepper,
};
use smartvlc_core::dimming::IlluminationTarget;
use smartvlc_core::frame::codec::{FrameCodec, FrameCodecError};
use smartvlc_core::frame::format::{FecMode, Frame, PatternDescriptor, MAX_PAYLOAD};
use smartvlc_core::{DimmingLevel, SystemConfig, MAX_DEGRADE_TIER};
use smartvlc_obs as obs;

/// Which payload modulation the link runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's contribution.
    Amppm,
    /// Compensation-free baseline with fixed symbol length `N`.
    Mppm(u16),
    /// Compensation-based baseline.
    OokCt,
    /// IEEE 802.15.7 VPPM with symbol length `N`.
    Vppm(u16),
    /// Overlapping PPM with symbol length `N` (paper reference \[8\]).
    Oppm(u16),
    /// DarkLight-style night mode (fixed sub-1% duty; ignores the
    /// dimming level — there is no illumination to serve).
    Darklight,
}

impl SchemeKind {
    /// Build the Table 1 pattern descriptor for this scheme at a level.
    /// Levels are clamped into each scheme's data-carrying range.
    /// `tier` is the AMPPM degradation tier (0 = nominal); the baseline
    /// schemes have no tiered variants and ignore it.
    pub fn descriptor(
        self,
        cfg: &SystemConfig,
        level: DimmingLevel,
        tier: u8,
    ) -> PatternDescriptor {
        match self {
            SchemeKind::Amppm => PatternDescriptor::Amppm {
                dimming_q: cfg.quantize_dimming(level.value()),
                tier: tier.min(MAX_DEGRADE_TIER),
            },
            SchemeKind::Mppm(n) => {
                let k = ((level.value() * n as f64).round() as u16).clamp(1, n - 1);
                PatternDescriptor::Mppm { n, k }
            }
            SchemeKind::OokCt => {
                let l = level.value().clamp(0.02, 0.98);
                PatternDescriptor::OokCt {
                    dimming_q: cfg.quantize_dimming(l),
                }
            }
            SchemeKind::Vppm(n) => {
                let w = ((level.value() * n as f64).round() as u8).clamp(1, (n - 1) as u8);
                PatternDescriptor::Vppm {
                    n: n as u8,
                    width: w,
                }
            }
            SchemeKind::Oppm(n) => {
                let w = ((level.value() * n as f64).round() as u8).clamp(1, (n - 1) as u8);
                PatternDescriptor::Oppm {
                    n: n as u8,
                    width: w,
                }
            }
            SchemeKind::Darklight => PatternDescriptor::Darklight {
                positions: 128,
                pulse_w: 1,
            },
        }
    }
}

/// Graceful rate degradation driven by ARQ feedback.
///
/// The transmitter cannot see the receiver's CRC counters — its only
/// visibility into link health is the ACK stream: an ACK is a delivered
/// frame, an expired/abandoned retry is a (probably) lost one. This
/// controller keeps an exponential moving average of that loss signal
/// and climbs a unified degradation ladder with hysteresis:
///
/// * EMA above [`DegradeController::RAISE_ABOVE`] → one rung up.
/// * EMA below [`DegradeController::LOWER_BELOW`] → one rung down.
///
/// The ladder's *lower* rungs (when the link runs an outer code) raise
/// the FEC parity profile — more correction power at the same dimming
/// level and the same payload size, costing only airtime. Only once the
/// parity ladder is exhausted do further rungs raise the AMPPM
/// degradation tier (sturdier, slower plan — still never sacrificing
/// illumination). Recovery walks back down in the same order: tiers
/// first, then parity. With `fec_rungs = 0` (no outer code) the ladder
/// reduces exactly to the original tier-only controller.
///
/// After each move the EMA is re-armed to the midpoint so a single
/// outcome cannot bounce the rung; several consecutive frames must agree
/// before the next move.
#[derive(Clone, Debug)]
pub struct DegradeController {
    ema: f64,
    rung: u8,
    /// Parity rungs available below the modulation tiers.
    fec_rungs: u8,
    /// Rung increases performed (link got worse).
    pub escalations: u64,
    /// Rung decreases performed (link recovered).
    pub recoveries: u64,
    /// Highest AMPPM tier reached so far.
    pub max_tier: u8,
    /// Highest FEC boost (parity rungs above nominal) reached so far.
    pub max_fec_boost: u8,
}

impl Default for DegradeController {
    fn default() -> Self {
        DegradeController::with_fec_rungs(0)
    }
}

impl DegradeController {
    /// EMA weight of the newest frame outcome (~20-frame memory).
    pub const ALPHA: f64 = 0.1;
    /// Escalate when the loss EMA exceeds this.
    pub const RAISE_ABOVE: f64 = 0.5;
    /// Recover when the loss EMA falls below this.
    pub const LOWER_BELOW: f64 = 0.1;
    /// Re-arm value after a rung move (midway between the thresholds).
    const REARM: f64 = 0.25;

    /// A controller whose ladder starts with `fec_rungs` parity rungs
    /// before the AMPPM tiers (0 = tier-only, the pre-FEC behavior).
    pub fn with_fec_rungs(fec_rungs: u8) -> DegradeController {
        DegradeController {
            ema: 0.0,
            rung: 0,
            fec_rungs,
            escalations: 0,
            recoveries: 0,
            max_tier: 0,
            max_fec_boost: 0,
        }
    }

    /// Current AMPPM degradation tier (0 = nominal rate). Stays at 0
    /// while the parity ladder still has room.
    pub fn tier(&self) -> u8 {
        self.rung.saturating_sub(self.fec_rungs)
    }

    /// Parity rungs currently engaged above the nominal FEC profile.
    pub fn fec_boost(&self) -> u8 {
        self.rung.min(self.fec_rungs)
    }

    /// Current loss-rate estimate in [0, 1].
    pub fn loss_estimate(&self) -> f64 {
        self.ema
    }

    /// Record one frame outcome from the ARQ: `delivered` = an ACK came
    /// back; `!delivered` = the retry timer expired (or the frame was
    /// abandoned). Returns the AMPPM tier to use for the next frame.
    pub fn record_outcome(&mut self, delivered: bool) -> u8 {
        let sample = if delivered { 0.0 } else { 1.0 };
        self.ema += Self::ALPHA * (sample - self.ema);
        let top = self.fec_rungs + MAX_DEGRADE_TIER;
        if self.ema > Self::RAISE_ABOVE && self.rung < top {
            let tier_before = self.tier();
            self.rung += 1;
            self.max_tier = self.max_tier.max(self.tier());
            self.max_fec_boost = self.max_fec_boost.max(self.fec_boost());
            self.escalations += 1;
            self.ema = Self::REARM;
            if self.tier() != tier_before {
                obs::counter_add(obs::key!("link.tx.tier_escalations"), 1);
                obs::gauge_set(obs::key!("link.tx.degrade_tier"), self.tier() as f64);
            } else {
                obs::counter_add(obs::key!("link.tx.fec_escalations"), 1);
                obs::gauge_set(obs::key!("link.tx.fec_boost"), self.fec_boost() as f64);
            }
        } else if self.ema < Self::LOWER_BELOW && self.rung > 0 {
            let tier_before = self.tier();
            self.rung -= 1;
            self.recoveries += 1;
            self.ema = Self::REARM;
            if self.tier() != tier_before {
                obs::counter_add(obs::key!("link.tx.tier_recoveries"), 1);
                obs::gauge_set(obs::key!("link.tx.degrade_tier"), self.tier() as f64);
            } else {
                obs::counter_add(obs::key!("link.tx.fec_recoveries"), 1);
                obs::gauge_set(obs::key!("link.tx.fec_boost"), self.fec_boost() as f64);
            }
        }
        self.tier()
    }
}

/// The SmartVLC transmitter.
pub struct Transmitter {
    cfg: SystemConfig,
    codec: FrameCodec,
    scheme: SchemeKind,
    illum: IlluminationTarget,
    smart_stepper: PerceptionStepper,
    /// The "existing method" stepper, tracked in parallel for the
    /// Fig. 19(c) comparison (it takes no real effect on the LED).
    fixed_stepper: FixedStepper,
    led_level: f64,
    /// Adaptation accounting for the perception-domain stepper.
    pub smart_adaptation: AdaptationCounter,
    /// Hypothetical accounting for the fixed-step baseline.
    pub fixed_adaptation: AdaptationCounter,
    /// ARQ-fed graceful rate degradation (parity rungs, then AMPPM
    /// tiers).
    pub degrade: DegradeController,
    /// Outer-code profile used while the ladder sits at rung 0
    /// ([`FecMode::Off`] = uncoded, the pre-FEC pipeline).
    nominal_fec: FecMode,
    /// Payload+CRC bytes handed to the outer encoder, cumulative.
    pub fec_data_bytes: u64,
    /// On-air block bytes after coding, cumulative (equal to
    /// `fec_data_bytes` when FEC is off).
    pub fec_coded_bytes: u64,
    rng: DetRng,
}

impl Transmitter {
    /// Build a transmitter.
    ///
    /// * `illum_target` — the desired constant total illumination,
    ///   normalized to full LED output.
    /// * `initial_ambient` — normalized ambient at start-up (the LED
    ///   jumps straight to its complement; there is no user to flicker at
    ///   power-on).
    /// * `fixed_floor` — the darkest LED level the deployment can reach,
    ///   used to size the flicker-safe fixed step of the baseline.
    /// * `fec` — nominal outer-code profile; the degradation ladder can
    ///   escalate it toward Heavy before touching the AMPPM tiers.
    pub fn new(
        cfg: SystemConfig,
        scheme: SchemeKind,
        illum_target: f64,
        initial_ambient: f64,
        fixed_floor: f64,
        fec: FecMode,
        rng: DetRng,
    ) -> Result<Transmitter, LinkError> {
        let codec = FrameCodec::new(cfg.clone()).map_err(FrameCodecError::Plan)?;
        let illum = IlluminationTarget::new(illum_target);
        let led_level = illum.led_level_for(initial_ambient).value();
        let tau_p = cfg.tau_p;
        let fec_rungs = fec.profile().map_or(0, |p| p.rungs_above());
        Ok(Transmitter {
            cfg,
            codec,
            scheme,
            illum,
            smart_stepper: PerceptionStepper::new(tau_p),
            fixed_stepper: FixedStepper::flicker_safe(tau_p, fixed_floor),
            led_level,
            smart_adaptation: AdaptationCounter::default(),
            fixed_adaptation: AdaptationCounter::default(),
            degrade: DegradeController::with_fec_rungs(fec_rungs),
            nominal_fec: fec,
            fec_data_bytes: 0,
            fec_coded_bytes: 0,
            rng,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current LED dimming level (measured domain, normalized).
    pub fn led_level(&self) -> f64 {
        self.led_level
    }

    /// The outer-code mode the next frame will carry: the nominal profile
    /// escalated by however many parity rungs the ARQ feedback has
    /// engaged. [`FecMode::Off`] stays off — the ladder then has no
    /// parity rungs at all.
    pub fn current_fec(&self) -> FecMode {
        match self.nominal_fec.profile() {
            None => FecMode::Off,
            Some(mut p) => {
                for _ in 0..self.degrade.fec_boost() {
                    p = p.escalate();
                }
                FecMode::from_profile(p)
            }
        }
    }

    /// Cumulative parity overhead actually spent on the air
    /// (`coded/data - 1`; 0 while FEC is off or nothing was sent).
    pub fn fec_overhead_ratio(&self) -> f64 {
        if self.fec_data_bytes == 0 {
            return 0.0;
        }
        self.fec_coded_bytes as f64 / self.fec_data_bytes as f64 - 1.0
    }

    /// Step 1 + 2: sense ambient (normalized) and adapt the LED to the
    /// new complement level, counting the perception-domain steps taken
    /// and the steps the fixed-τ baseline would have taken.
    pub fn update_ambient(&mut self, ambient_norm: f64) {
        use smartvlc_core::adaptation::perceived;
        let target = self.illum.led_level_for(ambient_norm).value();
        // Deadband: a change smaller than one perceptual quantum is
        // invisible by definition; chasing it would only burn adjustments
        // (Goal 2: "the number of adaptation times should be minimized")
        // and amplify sensor noise.
        if (perceived(target) - perceived(self.led_level)).abs() < self.smart_stepper.tau_p {
            return;
        }
        let smart = self.smart_stepper.step_count(self.led_level, target);
        let fixed = self.fixed_stepper.step_count(self.led_level, target);
        if smart > 0 {
            self.smart_adaptation.record(smart);
            self.fixed_adaptation.record(fixed);
            self.led_level = target;
        }
    }

    /// Steps 3 + 4: build and modulate one frame carrying `seq` and
    /// `data` at the degradation tier the ARQ feedback currently calls
    /// for. Returns the frame and its slot waveform.
    pub fn build_frame(&mut self, seq: u16, data: &[u8]) -> Result<(Frame, Vec<bool>), LinkError> {
        let level = DimmingLevel::clamped(self.led_level);
        let descriptor = self
            .scheme
            .descriptor(&self.cfg, level, self.degrade.tier());
        let payload = MacHeader { seq }.encapsulate(data);
        let len = payload.len();
        let fec = self.current_fec();
        let frame =
            Frame::with_fec(descriptor, fec, payload).ok_or(LinkError::PayloadTooLarge {
                len,
                max: MAX_PAYLOAD,
            })?;
        // Overhead accounting: the payload+CRC block vs its on-air size.
        let block = len as u64 + 2;
        self.fec_data_bytes += block;
        self.fec_coded_bytes += fec.coded_len(block as usize) as u64;
        let slots = self.codec.emit(&frame)?;
        obs::counter_add(obs::key!("link.tx.frames_built"), 1);
        Ok((frame, slots))
    }

    /// A fresh random data payload sized so the MAC frame matches the
    /// configured payload length (paper: 128 B including the MAC header).
    ///
    /// Under degradation the payload halves per tier (floor 16 B): slot
    /// errors are i.i.d., so a frame's delivery probability falls
    /// exponentially with its length — shrinking the frame is the one
    /// knob that makes each attempt *more likely to land* on a channel
    /// that is eating frames, at the cost of per-frame goodput. Paired
    /// with the sturdier tier plan this is the "lower rate, higher
    /// success" fallback; recovery restores the full payload.
    pub fn random_data(&mut self) -> Vec<u8> {
        let mut out = vec![0u8; self.payload_budget()];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// How many user-data bytes the next MAC frame can carry at the
    /// current degradation tier (the MTU a datagram layer fragments
    /// against). Same halving-per-tier math as [`Self::random_data`]:
    /// full payload at tier 0, floor 16 B, minus the MAC header.
    pub fn payload_budget(&self) -> usize {
        let full = self.cfg.payload_len;
        let shrunk = (full >> self.degrade.tier()).max(16);
        shrunk.saturating_sub(MacHeader::WIRE_BYTES)
    }

    /// Idle filler holding the current dimming level between frames.
    ///
    /// Ones are spread evenly in *pairs* of slots: the duty cycle is
    /// preserved and the waveform stays flicker-free, but the result can
    /// never contain the preamble's strict slot-rate alternation (at
    /// `l = 0.5` an evenly-spread single-slot pattern would be exactly
    /// the preamble and keep the receiver chasing false locks).
    pub fn idle_filler(&self, slots: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(slots);
        self.idle_filler_into(slots, &mut out);
        out
    }

    /// Append the idle filler to `out` without clearing it — callers
    /// building an on-air stream (gap + frame) extend one reused buffer.
    pub fn idle_filler_into(&self, slots: usize, out: &mut Vec<bool>) {
        let pairs = slots / 2;
        let ones = (self.led_level * pairs as f64).round() as usize;
        out.reserve(slots);
        for i in 0..pairs {
            let on = (i * ones) / pairs.max(1) != ((i + 1) * ones) / pairs.max(1);
            out.push(on);
            out.push(on);
        }
        if slots % 2 == 1 {
            out.push(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(scheme: SchemeKind) -> Transmitter {
        tx_fec(scheme, FecMode::Off)
    }

    fn tx_fec(scheme: SchemeKind, fec: FecMode) -> Transmitter {
        Transmitter::new(
            SystemConfig::default(),
            scheme,
            1.0,
            0.5,
            0.1,
            fec,
            DetRng::seed_from_u64(3),
        )
        .unwrap()
    }

    #[test]
    fn initial_level_complements_ambient() {
        let t = tx(SchemeKind::Amppm);
        assert!((t.led_level() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_ambient_counts_steps_both_ways() {
        let mut t = tx(SchemeKind::Amppm);
        t.update_ambient(0.3); // LED must rise 0.5 -> 0.7
        assert!((t.led_level() - 0.7).abs() < 1e-12);
        assert!(t.smart_adaptation.adjustments > 0);
        assert!(t.fixed_adaptation.adjustments > t.smart_adaptation.adjustments);
        // No-op update records nothing.
        let before = t.smart_adaptation.events;
        t.update_ambient(0.3);
        assert_eq!(t.smart_adaptation.events, before);
    }

    #[test]
    fn fig19c_ratio_around_two() {
        // Sweep ambient across the dynamic scenario's range; the fixed
        // stepper should take roughly 2x the adjustments (paper: 50%).
        let mut t = tx(SchemeKind::Amppm);
        for i in 0..=100 {
            let amb = 0.05 + 0.80 * i as f64 / 100.0;
            t.update_ambient(amb);
        }
        for i in 0..=100 {
            let amb = 0.85 - 0.80 * i as f64 / 100.0;
            t.update_ambient(amb);
        }
        let ratio = t.fixed_adaptation.adjustments as f64 / t.smart_adaptation.adjustments as f64;
        assert!((1.5..=2.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn descriptors_follow_scheme() {
        let cfg = SystemConfig::default();
        let l = DimmingLevel::new(0.3).unwrap();
        assert!(matches!(
            SchemeKind::Amppm.descriptor(&cfg, l, 0),
            PatternDescriptor::Amppm { tier: 0, .. }
        ));
        assert!(matches!(
            SchemeKind::Amppm.descriptor(&cfg, l, 2),
            PatternDescriptor::Amppm { tier: 2, .. }
        ));
        // Out-of-range tiers clamp rather than poison the wire format.
        assert!(matches!(
            SchemeKind::Amppm.descriptor(&cfg, l, 200),
            PatternDescriptor::Amppm {
                tier: MAX_DEGRADE_TIER,
                ..
            }
        ));
        assert_eq!(
            SchemeKind::Mppm(20).descriptor(&cfg, l, 0),
            PatternDescriptor::Mppm { n: 20, k: 6 }
        );
        assert!(matches!(
            SchemeKind::OokCt.descriptor(&cfg, l, 0),
            PatternDescriptor::OokCt { .. }
        ));
        assert_eq!(
            SchemeKind::Vppm(10).descriptor(&cfg, l, 0),
            PatternDescriptor::Vppm { n: 10, width: 3 }
        );
    }

    #[test]
    fn descriptor_clamps_degenerate_levels() {
        let cfg = SystemConfig::default();
        let lo = DimmingLevel::new(0.001).unwrap();
        assert_eq!(
            SchemeKind::Mppm(20).descriptor(&cfg, lo, 0),
            PatternDescriptor::Mppm { n: 20, k: 1 }
        );
        let hi = DimmingLevel::new(0.999).unwrap();
        assert_eq!(
            SchemeKind::Vppm(10).descriptor(&cfg, hi, 0),
            PatternDescriptor::Vppm { n: 10, width: 9 }
        );
    }

    #[test]
    fn build_frame_produces_parseable_slots() {
        let mut t = tx(SchemeKind::Amppm);
        let data = t.random_data();
        let (frame, slots) = t.build_frame(7, &data).unwrap();
        assert_eq!(frame.payload.len(), t.config().payload_len);
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        let (parsed, stats) = codec.parse(&slots).unwrap();
        assert!(stats.crc_ok);
        let (hdr, body) = MacHeader::decapsulate(&parsed.payload).unwrap();
        assert_eq!(hdr.seq, 7);
        assert_eq!(body, &data[..]);
    }

    #[test]
    fn frames_work_across_adaptation_range() {
        let mut t = tx(SchemeKind::Amppm);
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        for amb in [0.1, 0.45, 0.8] {
            t.update_ambient(amb);
            let data = t.random_data();
            let (_, slots) = t.build_frame(1, &data).unwrap();
            let (_, stats) = codec.parse(&slots).unwrap();
            assert!(stats.crc_ok, "ambient={amb}");
        }
    }

    #[test]
    fn idle_filler_holds_dimming() {
        let mut t = tx(SchemeKind::Amppm);
        t.update_ambient(0.75); // LED at 0.25
        let filler = t.idle_filler(400);
        let duty = filler.iter().filter(|&&b| b).count() as f64 / 400.0;
        assert!((duty - 0.25).abs() < 0.01);
    }

    #[test]
    fn degrade_controller_escalates_and_recovers_with_hysteresis() {
        let mut d = DegradeController::default();
        assert_eq!(d.tier(), 0);
        // A single loss must not move the tier (hysteresis).
        d.record_outcome(false);
        assert_eq!(d.tier(), 0);
        // A sustained loss burst escalates, one tier at a time.
        for _ in 0..30 {
            d.record_outcome(false);
        }
        assert!(d.tier() >= 1, "tier={}", d.tier());
        assert!(d.escalations >= 1);
        let peak = d.tier();
        // Sustained clean delivery walks the tier back to nominal.
        for _ in 0..200 {
            d.record_outcome(true);
        }
        assert_eq!(d.tier(), 0);
        assert!(d.recoveries as u8 >= peak);
        assert_eq!(d.max_tier, peak);
    }

    #[test]
    fn fec_ladder_escalates_before_tiers_and_recovers_after() {
        // Two parity rungs (Light → Medium → Heavy) absorb the first two
        // escalations; only then do AMPPM tiers move. Recovery unwinds in
        // the opposite order.
        let mut d = DegradeController::with_fec_rungs(2);
        let mut boosts = Vec::new();
        let mut tiers = Vec::new();
        for _ in 0..(2 + MAX_DEGRADE_TIER) {
            let before = (d.fec_boost(), d.tier());
            while (d.fec_boost(), d.tier()) == before {
                d.record_outcome(false);
            }
            boosts.push(d.fec_boost());
            tiers.push(d.tier());
        }
        assert_eq!(&boosts[..2], &[1, 2], "parity first");
        assert_eq!(&tiers[..2], &[0, 0], "tiers untouched while parity climbs");
        assert_eq!(*tiers.last().unwrap(), MAX_DEGRADE_TIER);
        assert_eq!(d.max_fec_boost, 2);
        assert_eq!(d.max_tier, MAX_DEGRADE_TIER);
        // Saturated: further losses change nothing.
        for _ in 0..1000 {
            d.record_outcome(false);
        }
        assert_eq!((d.fec_boost(), d.tier()), (2, MAX_DEGRADE_TIER));
        // Clean delivery walks tiers down first, then parity.
        while d.tier() > 0 {
            d.record_outcome(true);
            assert_eq!(d.fec_boost(), 2, "parity stays up while tiers recover");
        }
        while d.fec_boost() > 0 {
            d.record_outcome(true);
            assert_eq!(d.tier(), 0);
        }
    }

    #[test]
    fn transmitter_fec_mode_follows_the_ladder() {
        let mut t = tx_fec(SchemeKind::Amppm, FecMode::Light);
        assert_eq!(t.current_fec(), FecMode::Light);
        // Climb the whole ladder.
        for _ in 0..10_000 {
            t.degrade.record_outcome(false);
        }
        assert_eq!(t.current_fec(), FecMode::Heavy);
        assert_eq!(t.degrade.tier(), MAX_DEGRADE_TIER);
        // The boosted profile reaches the wire and still roundtrips.
        let data = t.random_data();
        let (frame, slots) = t.build_frame(4, &data).unwrap();
        assert_eq!(frame.header.fec, FecMode::Heavy);
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        let (parsed, stats) = codec.parse(&slots).unwrap();
        assert!(stats.crc_ok);
        assert_eq!(parsed, frame);
        assert!(t.fec_overhead_ratio() > 0.0);
    }

    #[test]
    fn fec_off_transmitter_has_no_parity_rungs() {
        let mut t = tx(SchemeKind::Amppm);
        assert_eq!(t.current_fec(), FecMode::Off);
        for _ in 0..10_000 {
            t.degrade.record_outcome(false);
        }
        // The ladder is tier-only: identical to the pre-FEC controller.
        assert_eq!(t.current_fec(), FecMode::Off);
        assert_eq!(t.degrade.tier(), MAX_DEGRADE_TIER);
        assert_eq!(t.degrade.escalations, MAX_DEGRADE_TIER as u64);
        assert_eq!(t.degrade.max_fec_boost, 0);
        let data = t.random_data();
        let (frame, _) = t.build_frame(5, &data).unwrap();
        assert_eq!(frame.header.fec, FecMode::Off);
        assert_eq!(t.fec_overhead_ratio(), 0.0);
    }

    #[test]
    fn degrade_controller_saturates_at_max_tier() {
        let mut d = DegradeController::default();
        for _ in 0..10_000 {
            d.record_outcome(false);
        }
        assert_eq!(d.tier(), MAX_DEGRADE_TIER);
        assert_eq!(d.escalations, MAX_DEGRADE_TIER as u64);
    }

    #[test]
    fn degraded_tier_halves_the_payload() {
        let mut t = tx(SchemeKind::Amppm);
        let full = t.random_data().len();
        assert_eq!(full, t.cfg.payload_len - MacHeader::WIRE_BYTES);
        while t.degrade.tier() < MAX_DEGRADE_TIER {
            t.degrade.record_outcome(false);
        }
        let shrunk = t.random_data().len() + MacHeader::WIRE_BYTES;
        assert_eq!(
            shrunk,
            (t.cfg.payload_len >> MAX_DEGRADE_TIER).max(16),
            "tier-{MAX_DEGRADE_TIER} frames must carry the shrunken payload"
        );
        assert!(shrunk < full);
    }

    #[test]
    fn degraded_tier_reaches_the_wire() {
        let mut t = tx(SchemeKind::Amppm);
        for _ in 0..40 {
            t.degrade.record_outcome(false);
        }
        assert!(t.degrade.tier() >= 1);
        let data = t.random_data();
        let (frame, slots) = t.build_frame(9, &data).unwrap();
        match frame.header.pattern {
            PatternDescriptor::Amppm { tier, .. } => assert_eq!(tier, t.degrade.tier()),
            other => panic!("{other:?}"),
        }
        // The receiver replans from the wire tier and still decodes.
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        let (parsed, stats) = codec.parse(&slots).unwrap();
        assert!(stats.crc_ok);
        assert_eq!(parsed, frame);
    }

    #[test]
    fn baseline_schemes_roundtrip_too() {
        for scheme in [
            SchemeKind::Mppm(20),
            SchemeKind::OokCt,
            SchemeKind::Vppm(10),
        ] {
            let mut t = tx(scheme);
            t.update_ambient(0.6);
            let data = t.random_data();
            let (_, slots) = t.build_frame(2, &data).unwrap();
            let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
            let (parsed, stats) = codec.parse(&slots).unwrap();
            assert!(stats.crc_ok, "{scheme:?}");
            let (hdr, body) = MacHeader::decapsulate(&parsed.payload).unwrap();
            assert_eq!(hdr.seq, 2);
            assert_eq!(body, &data[..], "{scheme:?}");
        }
    }
}
