//! The transmitter state machine — the numbered steps of §3.
//!
//! 1. Update knowledge of ambient light; compute the required LED
//!    dimming level to keep `Iamb + Iled` constant (Eq. 5).
//! 2. Adapt the LED gradually in the perception domain (§4.3).
//! 3. Select the best modulation for the level (AMPPM planner, or a
//!    baseline scheme for the comparison experiments).
//! 4. Frame the data (Table 1) and emit the slot waveform.

use crate::mac::MacHeader;
use desim::DetRng;
use smartvlc_core::adaptation::{
    AdaptationCounter, AdaptationStepper, FixedStepper, PerceptionStepper,
};
use smartvlc_core::dimming::IlluminationTarget;
use smartvlc_core::frame::codec::{FrameCodec, FrameCodecError};
use smartvlc_core::frame::format::{Frame, PatternDescriptor};
use smartvlc_core::{DimmingLevel, SystemConfig};

/// Which payload modulation the link runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's contribution.
    Amppm,
    /// Compensation-free baseline with fixed symbol length `N`.
    Mppm(u16),
    /// Compensation-based baseline.
    OokCt,
    /// IEEE 802.15.7 VPPM with symbol length `N`.
    Vppm(u16),
    /// Overlapping PPM with symbol length `N` (paper reference \[8\]).
    Oppm(u16),
    /// DarkLight-style night mode (fixed sub-1% duty; ignores the
    /// dimming level — there is no illumination to serve).
    Darklight,
}

impl SchemeKind {
    /// Build the Table 1 pattern descriptor for this scheme at a level.
    /// Levels are clamped into each scheme's data-carrying range.
    pub fn descriptor(self, cfg: &SystemConfig, level: DimmingLevel) -> PatternDescriptor {
        match self {
            SchemeKind::Amppm => PatternDescriptor::Amppm {
                dimming_q: cfg.quantize_dimming(level.value()),
            },
            SchemeKind::Mppm(n) => {
                let k = ((level.value() * n as f64).round() as u16).clamp(1, n - 1);
                PatternDescriptor::Mppm { n, k }
            }
            SchemeKind::OokCt => {
                let l = level.value().clamp(0.02, 0.98);
                PatternDescriptor::OokCt {
                    dimming_q: cfg.quantize_dimming(l),
                }
            }
            SchemeKind::Vppm(n) => {
                let w = ((level.value() * n as f64).round() as u8).clamp(1, (n - 1) as u8);
                PatternDescriptor::Vppm {
                    n: n as u8,
                    width: w,
                }
            }
            SchemeKind::Oppm(n) => {
                let w = ((level.value() * n as f64).round() as u8).clamp(1, (n - 1) as u8);
                PatternDescriptor::Oppm {
                    n: n as u8,
                    width: w,
                }
            }
            SchemeKind::Darklight => PatternDescriptor::Darklight {
                positions: 128,
                pulse_w: 1,
            },
        }
    }
}

/// The SmartVLC transmitter.
pub struct Transmitter {
    cfg: SystemConfig,
    codec: FrameCodec,
    scheme: SchemeKind,
    illum: IlluminationTarget,
    smart_stepper: PerceptionStepper,
    /// The "existing method" stepper, tracked in parallel for the
    /// Fig. 19(c) comparison (it takes no real effect on the LED).
    fixed_stepper: FixedStepper,
    led_level: f64,
    /// Adaptation accounting for the perception-domain stepper.
    pub smart_adaptation: AdaptationCounter,
    /// Hypothetical accounting for the fixed-step baseline.
    pub fixed_adaptation: AdaptationCounter,
    rng: DetRng,
}

impl Transmitter {
    /// Build a transmitter.
    ///
    /// * `illum_target` — the desired constant total illumination,
    ///   normalized to full LED output.
    /// * `initial_ambient` — normalized ambient at start-up (the LED
    ///   jumps straight to its complement; there is no user to flicker at
    ///   power-on).
    /// * `fixed_floor` — the darkest LED level the deployment can reach,
    ///   used to size the flicker-safe fixed step of the baseline.
    pub fn new(
        cfg: SystemConfig,
        scheme: SchemeKind,
        illum_target: f64,
        initial_ambient: f64,
        fixed_floor: f64,
        rng: DetRng,
    ) -> Result<Transmitter, FrameCodecError> {
        let codec = FrameCodec::new(cfg.clone()).map_err(FrameCodecError::Plan)?;
        let illum = IlluminationTarget::new(illum_target);
        let led_level = illum.led_level_for(initial_ambient).value();
        let tau_p = cfg.tau_p;
        Ok(Transmitter {
            cfg,
            codec,
            scheme,
            illum,
            smart_stepper: PerceptionStepper::new(tau_p),
            fixed_stepper: FixedStepper::flicker_safe(tau_p, fixed_floor),
            led_level,
            smart_adaptation: AdaptationCounter::default(),
            fixed_adaptation: AdaptationCounter::default(),
            rng,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current LED dimming level (measured domain, normalized).
    pub fn led_level(&self) -> f64 {
        self.led_level
    }

    /// Step 1 + 2: sense ambient (normalized) and adapt the LED to the
    /// new complement level, counting the perception-domain steps taken
    /// and the steps the fixed-τ baseline would have taken.
    pub fn update_ambient(&mut self, ambient_norm: f64) {
        use smartvlc_core::adaptation::perceived;
        let target = self.illum.led_level_for(ambient_norm).value();
        // Deadband: a change smaller than one perceptual quantum is
        // invisible by definition; chasing it would only burn adjustments
        // (Goal 2: "the number of adaptation times should be minimized")
        // and amplify sensor noise.
        if (perceived(target) - perceived(self.led_level)).abs() < self.smart_stepper.tau_p {
            return;
        }
        let smart = self.smart_stepper.step_count(self.led_level, target);
        let fixed = self.fixed_stepper.step_count(self.led_level, target);
        if smart > 0 {
            self.smart_adaptation.record(smart);
            self.fixed_adaptation.record(fixed);
            self.led_level = target;
        }
    }

    /// Steps 3 + 4: build and modulate one frame carrying `seq` and
    /// `data`. Returns the frame and its slot waveform.
    pub fn build_frame(
        &mut self,
        seq: u16,
        data: &[u8],
    ) -> Result<(Frame, Vec<bool>), FrameCodecError> {
        let level = DimmingLevel::clamped(self.led_level);
        let descriptor = self.scheme.descriptor(&self.cfg, level);
        let payload = MacHeader { seq }.encapsulate(data);
        let frame = Frame::new(descriptor, payload).expect("payload bounded by config");
        let slots = self.codec.emit(&frame)?;
        Ok((frame, slots))
    }

    /// A fresh random data payload sized so the MAC frame matches the
    /// configured payload length (paper: 128 B including the MAC header).
    pub fn random_data(&mut self) -> Vec<u8> {
        let n = self.cfg.payload_len.saturating_sub(MacHeader::WIRE_BYTES);
        let mut out = vec![0u8; n];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// Idle filler holding the current dimming level between frames.
    ///
    /// Ones are spread evenly in *pairs* of slots: the duty cycle is
    /// preserved and the waveform stays flicker-free, but the result can
    /// never contain the preamble's strict slot-rate alternation (at
    /// `l = 0.5` an evenly-spread single-slot pattern would be exactly
    /// the preamble and keep the receiver chasing false locks).
    pub fn idle_filler(&self, slots: usize) -> Vec<bool> {
        let pairs = slots / 2;
        let ones = (self.led_level * pairs as f64).round() as usize;
        let mut out = Vec::with_capacity(slots);
        for i in 0..pairs {
            let on = (i * ones) / pairs.max(1) != ((i + 1) * ones) / pairs.max(1);
            out.push(on);
            out.push(on);
        }
        if slots % 2 == 1 {
            out.push(false);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(scheme: SchemeKind) -> Transmitter {
        Transmitter::new(
            SystemConfig::default(),
            scheme,
            1.0,
            0.5,
            0.1,
            DetRng::seed_from_u64(3),
        )
        .unwrap()
    }

    #[test]
    fn initial_level_complements_ambient() {
        let t = tx(SchemeKind::Amppm);
        assert!((t.led_level() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_ambient_counts_steps_both_ways() {
        let mut t = tx(SchemeKind::Amppm);
        t.update_ambient(0.3); // LED must rise 0.5 -> 0.7
        assert!((t.led_level() - 0.7).abs() < 1e-12);
        assert!(t.smart_adaptation.adjustments > 0);
        assert!(t.fixed_adaptation.adjustments > t.smart_adaptation.adjustments);
        // No-op update records nothing.
        let before = t.smart_adaptation.events;
        t.update_ambient(0.3);
        assert_eq!(t.smart_adaptation.events, before);
    }

    #[test]
    fn fig19c_ratio_around_two() {
        // Sweep ambient across the dynamic scenario's range; the fixed
        // stepper should take roughly 2x the adjustments (paper: 50%).
        let mut t = tx(SchemeKind::Amppm);
        for i in 0..=100 {
            let amb = 0.05 + 0.80 * i as f64 / 100.0;
            t.update_ambient(amb);
        }
        for i in 0..=100 {
            let amb = 0.85 - 0.80 * i as f64 / 100.0;
            t.update_ambient(amb);
        }
        let ratio = t.fixed_adaptation.adjustments as f64 / t.smart_adaptation.adjustments as f64;
        assert!((1.5..=2.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn descriptors_follow_scheme() {
        let cfg = SystemConfig::default();
        let l = DimmingLevel::new(0.3).unwrap();
        assert!(matches!(
            SchemeKind::Amppm.descriptor(&cfg, l),
            PatternDescriptor::Amppm { .. }
        ));
        assert_eq!(
            SchemeKind::Mppm(20).descriptor(&cfg, l),
            PatternDescriptor::Mppm { n: 20, k: 6 }
        );
        assert!(matches!(
            SchemeKind::OokCt.descriptor(&cfg, l),
            PatternDescriptor::OokCt { .. }
        ));
        assert_eq!(
            SchemeKind::Vppm(10).descriptor(&cfg, l),
            PatternDescriptor::Vppm { n: 10, width: 3 }
        );
    }

    #[test]
    fn descriptor_clamps_degenerate_levels() {
        let cfg = SystemConfig::default();
        let lo = DimmingLevel::new(0.001).unwrap();
        assert_eq!(
            SchemeKind::Mppm(20).descriptor(&cfg, lo),
            PatternDescriptor::Mppm { n: 20, k: 1 }
        );
        let hi = DimmingLevel::new(0.999).unwrap();
        assert_eq!(
            SchemeKind::Vppm(10).descriptor(&cfg, hi),
            PatternDescriptor::Vppm { n: 10, width: 9 }
        );
    }

    #[test]
    fn build_frame_produces_parseable_slots() {
        let mut t = tx(SchemeKind::Amppm);
        let data = t.random_data();
        let (frame, slots) = t.build_frame(7, &data).unwrap();
        assert_eq!(frame.payload.len(), t.config().payload_len);
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        let (parsed, stats) = codec.parse(&slots).unwrap();
        assert!(stats.crc_ok);
        let (hdr, body) = MacHeader::decapsulate(&parsed.payload).unwrap();
        assert_eq!(hdr.seq, 7);
        assert_eq!(body, &data[..]);
    }

    #[test]
    fn frames_work_across_adaptation_range() {
        let mut t = tx(SchemeKind::Amppm);
        let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
        for amb in [0.1, 0.45, 0.8] {
            t.update_ambient(amb);
            let data = t.random_data();
            let (_, slots) = t.build_frame(1, &data).unwrap();
            let (_, stats) = codec.parse(&slots).unwrap();
            assert!(stats.crc_ok, "ambient={amb}");
        }
    }

    #[test]
    fn idle_filler_holds_dimming() {
        let mut t = tx(SchemeKind::Amppm);
        t.update_ambient(0.75); // LED at 0.25
        let filler = t.idle_filler(400);
        let duty = filler.iter().filter(|&&b| b).count() as f64 / 400.0;
        assert!((duty - 0.25).abs() < 0.01);
    }

    #[test]
    fn baseline_schemes_roundtrip_too() {
        for scheme in [
            SchemeKind::Mppm(20),
            SchemeKind::OokCt,
            SchemeKind::Vppm(10),
        ] {
            let mut t = tx(scheme);
            t.update_ambient(0.6);
            let data = t.random_data();
            let (_, slots) = t.build_frame(2, &data).unwrap();
            let mut codec = FrameCodec::new(SystemConfig::default()).unwrap();
            let (parsed, stats) = codec.parse(&slots).unwrap();
            assert!(stats.crc_ok, "{scheme:?}");
            let (hdr, body) = MacHeader::decapsulate(&parsed.payload).unwrap();
            assert_eq!(hdr.seq, 2);
            assert_eq!(body, &data[..], "{scheme:?}");
        }
    }
}
