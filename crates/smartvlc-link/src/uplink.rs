//! Messages on the ESP8266 uplink (§3 step 5 and §5.1 footnote 2).
//!
//! Two things flow back from the receiver: ACKs for clean frames, and
//! the receiver's ambient-light readings (the receiver, not the
//! luminaire, sits in the "area of interest" whose illumination the
//! system regulates).

/// One uplink message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UplinkMsg {
    /// Acknowledge a frame whose CRC verified.
    Ack {
        /// The acknowledged MAC sequence number.
        seq: u16,
    },
    /// The receiver's latest ambient illuminance sample.
    AmbientReport {
        /// Measured illuminance, lux.
        lux: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{DetRng, SimTime};
    use vlc_hw::WifiSideChannel;

    #[test]
    fn mixed_traffic_flows_over_one_channel() {
        let mut ch: WifiSideChannel<UplinkMsg> = WifiSideChannel::ideal(DetRng::seed_from_u64(1));
        let t = SimTime::from_millis(5);
        ch.send(t, UplinkMsg::Ack { seq: 7 });
        ch.send(t, UplinkMsg::AmbientReport { lux: 8080.0 });
        let got = ch.deliver_due(t);
        assert_eq!(got.len(), 2);
        assert!(got.contains(&UplinkMsg::Ack { seq: 7 }));
        assert!(got
            .iter()
            .any(|m| matches!(m, UplinkMsg::AmbientReport { lux } if *lux == 8080.0)));
    }
}
