//! The typed fault taxonomy of the link layer.
//!
//! A deployed luminaire sees ambient spikes, occlusion bursts, desynced
//! receivers and a flaky uplink as *routine operating conditions*, not
//! programming errors — so the link layer never panics on them. Every
//! fallible path in this crate returns a [`LinkError`] and the callers
//! degrade gracefully (drop the frame, fall back to a sturdier rate tier,
//! re-hunt for sync). `unwrap`/`expect` remain only on genuinely
//! infallible invariants, each with a comment saying why it cannot fire.

use smartvlc_core::frame::codec::FrameCodecError;
use smartvlc_core::PlanError;
use std::fmt;

/// Everything that can go wrong on the link's TX/RX/MAC paths.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkError {
    /// Frame emission or parsing failed (codec-level structure).
    Codec(FrameCodecError),
    /// AMPPM planning failed for a dimming level/tier.
    Plan(PlanError),
    /// A payload exceeded the frame format's capacity.
    PayloadTooLarge {
        /// Offered payload length, bytes.
        len: usize,
        /// The format's maximum, bytes.
        max: usize,
    },
    /// Every 16-bit MAC sequence number is simultaneously outstanding —
    /// the window wrapped all the way around onto itself.
    SeqSpaceExhausted,
    /// The MAC queued a retransmission for a sequence number whose
    /// payload is no longer stored (tracker/store desync).
    RetryStateMissing {
        /// The orphaned sequence number.
        seq: u16,
    },
    /// The receiver lost slot synchronisation and exhausted its bounded
    /// resync budget without finding a preamble.
    ResyncBudgetExhausted {
        /// Slots scanned since synchronisation was lost.
        scanned_slots: u64,
    },
    /// A scenario configuration is unusable (bad geometry, degenerate
    /// duration, …).
    Config(&'static str),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Codec(e) => write!(f, "codec: {e}"),
            LinkError::Plan(e) => write!(f, "planning: {e}"),
            LinkError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} B exceeds the {max} B frame capacity")
            }
            LinkError::SeqSpaceExhausted => {
                write!(f, "all 65536 MAC sequence numbers are outstanding")
            }
            LinkError::RetryStateMissing { seq } => {
                write!(f, "retry queued for seq {seq} but its payload is gone")
            }
            LinkError::ResyncBudgetExhausted { scanned_slots } => {
                write!(f, "no preamble found within {scanned_slots} resync slots")
            }
            LinkError::Config(what) => write!(f, "bad scenario config: {what}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<FrameCodecError> for LinkError {
    fn from(e: FrameCodecError) -> Self {
        // Collapse the nested plan variant so matching stays flat.
        match e {
            FrameCodecError::Plan(p) => LinkError::Plan(p),
            other => LinkError::Codec(other),
        }
    }
}

impl From<PlanError> for LinkError {
    fn from(e: PlanError) -> Self {
        LinkError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(LinkError, &str)> = vec![
            (LinkError::PayloadTooLarge { len: 9000, max: 2 }, "9000"),
            (LinkError::SeqSpaceExhausted, "65536"),
            (LinkError::RetryStateMissing { seq: 7 }, "seq 7"),
            (LinkError::ResyncBudgetExhausted { scanned_slots: 99 }, "99"),
            (LinkError::Config("zero duration"), "zero duration"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn codec_plan_errors_flatten() {
        let e: LinkError = FrameCodecError::Plan(PlanError::NoCandidates).into();
        assert_eq!(e, LinkError::Plan(PlanError::NoCandidates));
        let e: LinkError = FrameCodecError::BadPreamble.into();
        assert_eq!(e, LinkError::Codec(FrameCodecError::BadPreamble));
    }
}
