//! # smartvlc-link — the end-to-end SmartVLC link
//!
//! This crate wires the modulation layer (`smartvlc-core`), the optical
//! channel (`vlc-channel`) and the platform substrate (`vlc-hw`) into the
//! running system of the paper's Fig. 2:
//!
//! * [`tx`] — the transmitter state machine: sense ambient → compute the
//!   required dimming level (Eq. 5) → adapt gradually in the perception
//!   domain → plan the AMPPM pattern → frame and modulate.
//! * [`sync`] — receiver clock recovery: find the slot phase in the 4×
//!   oversampled ADC stream from the preamble edges, then decimate.
//! * [`rx`] — the receiver state machine: scan for preambles in the slot
//!   stream, parse frames, verify CRCs, extract MAC sequence numbers.
//! * [`mac`] — the streaming ARQ: frames flow back-to-back (the VLC
//!   downlink never idles waiting — ACK latency over Wi-Fi would halve
//!   throughput); ACKs arrive asynchronously over the ESP8266 side
//!   channel and unacknowledged frames are retransmitted after a timeout.
//! * [`stats`] — counters and the 1-second throughput recorder behind
//!   Fig. 19(a).
//! * [`link`] — [`link::LinkSimulation`]: the whole system against a
//!   scenario (geometry, ambient profile, scheme, duration), producing a
//!   [`link::LinkReport`].
//!
//! # Example
//!
//! Fly a short AMPPM link at the paper's bench geometry under constant
//! office ambient and read the goodput off the report:
//!
//! ```
//! use desim::SimDuration;
//! use smartvlc_link::{LinkConfig, LinkSimulation, SchemeKind};
//! use vlc_channel::ambient::ConstantAmbient;
//!
//! let mut cfg = LinkConfig::paper_static(2.0, SchemeKind::Amppm, 7);
//! cfg.duration = SimDuration::millis(60);
//! let mut sim = LinkSimulation::new(cfg).expect("valid config");
//! let report = sim.run(&mut ConstantAmbient { lux: 4000.0 });
//! // 2 m is comfortably inside the Fig. 16 range: frames flow.
//! assert!(report.mean_goodput_bps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod link;
pub mod mac;
pub mod rx;
pub mod stats;
pub mod sync;
pub mod tx;
pub mod uplink;
pub mod uplink_vlc;

pub use error::LinkError;
pub use link::{
    ChannelFidelity, LinkConfig, LinkReport, LinkSimulation, RandomTraffic, SchemeKind,
    TrafficSource, UplinkKind, TRAFFIC_IDLE_STEP,
};
pub use mac::{AckTracker, MacHeader, TimeoutScan};
pub use rx::{Receiver, RxEvent, SyncStatus};
pub use stats::{LinkStats, ThroughputRecorder};
pub use tx::Transmitter;
pub use uplink_vlc::{VlcUplink, VlcUplinkConfig};
