//! Link statistics and the per-second throughput recorder.

use desim::{SimDuration, SimTime};

/// Cumulative link counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames the transmitter put on the air (including retransmissions).
    pub frames_sent: u64,
    /// Frames the receiver parsed with a clean CRC.
    pub frames_ok: u64,
    /// Frames parsed but failing the CRC (dropped, no ACK).
    pub frames_crc_fail: u64,
    /// Frames whose preamble/header never locked at the receiver.
    pub frames_lost: u64,
    /// Retransmissions performed by the MAC.
    pub retransmissions: u64,
    /// ACKs that arrived back at the transmitter.
    pub acks_received: u64,
    /// Unique payload bytes delivered and acknowledged.
    pub payload_bytes_acked: u64,
    /// Total slots transmitted.
    pub slots_sent: u64,
    /// Brightness adaptation steps performed (Fig. 19(c)).
    pub adaptation_steps: u64,
    /// Frames abandoned after exhausting the MAC retry budget.
    pub frames_abandoned: u64,
    /// Orphaned retransmissions dropped because their payload was gone
    /// (tracker/store desync — should stay 0; counted, never panicked on).
    pub retry_state_missing: u64,
}

impl LinkStats {
    /// Frame error rate seen by the receiver.
    pub fn frame_error_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            1.0 - self.frames_ok as f64 / self.frames_sent as f64
        }
    }

    /// Acknowledged goodput over a wall-clock duration.
    pub fn goodput_bps(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.payload_bytes_acked as f64 * 8.0 / elapsed.as_secs_f64()
        }
    }
}

/// Bucketed throughput time series — "the system reports the average
/// throughput every second" (Fig. 19(a)).
#[derive(Clone, Debug)]
pub struct ThroughputRecorder {
    bucket: SimDuration,
    bits: Vec<u64>,
}

impl ThroughputRecorder {
    /// Create a recorder with the given bucket width (1 s in the paper).
    pub fn new(bucket: SimDuration) -> ThroughputRecorder {
        assert!(!bucket.is_zero(), "bucket must be positive");
        ThroughputRecorder {
            bucket,
            bits: Vec::new(),
        }
    }

    /// Credit `bits` delivered at time `t`.
    pub fn record(&mut self, t: SimTime, bits: u64) {
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        if self.bits.len() <= idx {
            self.bits.resize(idx + 1, 0);
        }
        self.bits[idx] += bits;
    }

    /// The series as (bucket start time, bits/s).
    pub fn series_bps(&self) -> Vec<(SimTime, f64)> {
        let secs = self.bucket.as_secs_f64();
        self.bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                (
                    SimTime::from_nanos(i as u64 * self.bucket.as_nanos()),
                    b as f64 / secs,
                )
            })
            .collect()
    }

    /// Total bits credited so far.
    pub fn total_bits(&self) -> u64 {
        self.bits.iter().sum()
    }

    /// Mean throughput over an explicit experiment duration.
    ///
    /// Dividing by the number of *recorded* buckets would silently ignore
    /// idle time after the last delivery — a run whose traffic dies at 3 s
    /// of a 10 s experiment would report the 3-bucket mean, inflating
    /// Fig. 19(a)-style throughput. The caller must therefore supply the
    /// run duration; trailing idle time counts as zero-throughput time.
    pub fn mean_bps_over(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            return 0.0;
        }
        self.total_bits() as f64 / duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fer_math() {
        let s = LinkStats {
            frames_sent: 10,
            frames_ok: 9,
            ..Default::default()
        };
        assert!((s.frame_error_rate() - 0.1).abs() < 1e-12);
        assert_eq!(LinkStats::default().frame_error_rate(), 0.0);
    }

    #[test]
    fn goodput_math() {
        let s = LinkStats {
            payload_bytes_acked: 12_500,
            ..Default::default()
        };
        assert!((s.goodput_bps(SimDuration::secs(1)) - 100_000.0).abs() < 1e-9);
        assert_eq!(s.goodput_bps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn recorder_buckets_by_time() {
        let mut r = ThroughputRecorder::new(SimDuration::secs(1));
        r.record(SimTime::from_millis(100), 1000);
        r.record(SimTime::from_millis(900), 1000);
        r.record(SimTime::from_millis(1100), 500);
        let s = r.series_bps();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, 2000.0);
        assert_eq!(s[1].1, 500.0);
        assert_eq!(s[1].0, SimTime::from_secs(1));
    }

    #[test]
    fn recorder_mean_over_duration() {
        let mut r = ThroughputRecorder::new(SimDuration::secs(1));
        r.record(SimTime::from_millis(500), 3000);
        r.record(SimTime::from_millis(2500), 1000); // bucket 2; bucket 1 empty
        assert!((r.mean_bps_over(SimDuration::secs(4)) - 1000.0).abs() < 1e-9);
        assert_eq!(r.total_bits(), 4000);
        assert_eq!(r.mean_bps_over(SimDuration::ZERO), 0.0);
        assert_eq!(
            ThroughputRecorder::new(SimDuration::secs(1)).mean_bps_over(SimDuration::secs(5)),
            0.0
        );
    }

    #[test]
    fn recorder_mean_counts_trailing_idle_time() {
        // Regression: traffic dies at 3 s of a 10 s experiment. The old
        // bucket-count mean reported 3000/3 s = 1000 bps (inflated); the
        // duration-aware mean must spread the same bits over all 10 s.
        let mut r = ThroughputRecorder::new(SimDuration::secs(1));
        r.record(SimTime::from_millis(500), 1000);
        r.record(SimTime::from_millis(1500), 1000);
        r.record(SimTime::from_millis(2500), 1000);
        assert!((r.mean_bps_over(SimDuration::secs(10)) - 300.0).abs() < 1e-9);
    }
}
