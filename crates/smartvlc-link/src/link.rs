//! The end-to-end link simulation — the whole Fig. 2 system under a
//! scenario.
//!
//! One [`LinkSimulation`] runs a transmitter, the optical channel, a
//! receiver, and the Wi-Fi ACK path against an ambient-light profile for
//! a configured duration, producing the measurements the paper's
//! evaluation section reports: goodput (per second and average), frame
//! statistics, the ambient/LED/sum intensity traces of Fig. 19(b), and
//! the cumulative adaptation counts of Fig. 19(c).

pub use crate::tx::SchemeKind;

use crate::error::LinkError;
use crate::mac::{AckTracker, MacHeader};
use crate::rx::{Receiver, RxEvent};
use crate::stats::{LinkStats, ThroughputRecorder};
use crate::tx::Transmitter;
use crate::uplink::UplinkMsg;
use crate::uplink_vlc::{VlcUplink, VlcUplinkConfig};
use desim::{DetRng, SimDuration, SimTime};
use smartvlc_core::frame::format::FecMode;
use smartvlc_core::SystemConfig;
use smartvlc_obs as obs;
use std::collections::HashMap;
use vlc_channel::ambient::AmbientProfile;
use vlc_channel::faults::{ChannelFaultState, FaultPlan, UplinkFaultState};
use vlc_channel::link::{ChannelConfig, OpticalChannel, RxScratch};
use vlc_channel::shadowing::{ShadowingModel, ShadowingProcess};
use vlc_hw::wifi::SideChannel;

/// How faithfully the channel is simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelFidelity {
    /// Full pipeline: LED dynamics → optics → photodiode → ADC samples →
    /// slot averaging. ~12 noise draws per slot; use for validation runs.
    Sampled,
    /// Per-slot i.i.d. errors at the channel's analytic P1/P2 — the same
    /// statistics Eq. 3 assumes, two orders of magnitude faster. The
    /// `monte_carlo_error_rate_matches_analytic` test in `vlc-channel`
    /// validates the equivalence.
    SlotIid,
}

/// Scenario configuration.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Modulation/system parameters (§6.1).
    pub sys: SystemConfig,
    /// Physical channel (geometry, parts, ambient coupling).
    pub channel: ChannelConfig,
    /// Payload modulation scheme.
    pub scheme: SchemeKind,
    /// Desired constant total illumination, normalized to full LED.
    pub illum_target: f64,
    /// Ambient illuminance mapped to normalized intensity 1.0, lux.
    pub full_scale_lux: f64,
    /// How often the transmitter senses ambient light.
    pub sense_interval: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Channel fidelity.
    pub fidelity: ChannelFidelity,
    /// Master seed (everything derives from it).
    pub seed: u64,
    /// MAC retransmission timeout.
    pub ack_timeout: SimDuration,
    /// MAC retry budget per frame.
    pub max_retries: u32,
    /// Idle filler slots between frames.
    pub interframe_gap_slots: usize,
    /// Darkest LED level the deployment reaches, used to size the
    /// flicker-safe fixed step of the Fig. 19(c) baseline. A deployment
    /// must be safe at its darkest reachable level, so the baseline is
    /// sized for 0.10 — the bottom of the dynamic scenario's sweep.
    pub fixed_step_floor: f64,
    /// §3 step 5: the receiver reports its ambient reading over Wi-Fi
    /// each sensing interval; the transmitter prefers a fresh report over
    /// its own sensor (the receiver sits in the area of interest). Off =
    /// transmitter-local sensing only.
    pub rx_ambient_reports: bool,
    /// Optional line-of-sight blockage process (people crossing the
    /// beam); `None` keeps the paper's always-clear path.
    pub shadowing: Option<ShadowingModel>,
    /// Which medium carries ACKs and ambient reports back.
    pub uplink: UplinkKind,
    /// Chaos-mode fault schedule (empty = the cooperative channel the
    /// paper evaluates on). See [`vlc_channel::faults`].
    pub faults: FaultPlan,
    /// Nominal outer-code profile ([`FecMode::Off`] = the uncoded
    /// pre-FEC pipeline). The degradation ladder may escalate it toward
    /// Heavy before dropping AMPPM tiers. `SMARTVLC_FEC=off` (or `0`)
    /// forces `Off` regardless of this field.
    pub fec: FecMode,
}

/// How long the simulation idles when a traffic source has nothing to
/// send right now (a datagram layer between bursts). Short enough that
/// queued arrivals see at most ~1 ms of polling latency, long enough
/// that an idle link doesn't spin the event loop per slot.
pub const TRAFFIC_IDLE_STEP: SimDuration = SimDuration::millis(1);

/// Where the frames come from: the MAC pulls its next payload from a
/// traffic source and reports per-frame fates back to it. The legacy
/// saturating random generator ([`RandomTraffic`]) is one such source;
/// `smartvlc-net` plugs a fragmenting datagram scheduler into the same
/// four hooks.
pub trait TrafficSource {
    /// Produce the next frame body, or `None` if nothing is ready to send
    /// (the link then idles [`TRAFFIC_IDLE_STEP`] and polls again). The
    /// transmitter is passed so sources can size payloads against
    /// [`Transmitter::payload_budget`] (tier-shrunk MTU).
    fn next_data(&mut self, now: SimTime, tx: &mut Transmitter) -> Option<Vec<u8>>;

    /// A frame carrying `body` was delivered for the first time (clean
    /// decode at the receiver, not a duplicate).
    fn on_delivered(&mut self, _now: SimTime, _body: &[u8]) {}

    /// A frame carrying `body` exhausted its retry budget and was
    /// abandoned by the ARQ — the bytes are lost.
    fn on_abandoned(&mut self, _now: SimTime, _body: &[u8]) {}

    /// Called once per MAC loop iteration before the frame pick; sources
    /// with internal clocks (workload generators) advance them here.
    fn on_tick(&mut self, _now: SimTime) {}
}

/// The pre-net behavior: every frame is a fresh random payload sized by
/// the transmitter's current budget. Never idles, never tracks fates —
/// [`LinkSimulation::run`] with this source is bit-identical to the
/// original loop.
pub struct RandomTraffic;

impl TrafficSource for RandomTraffic {
    fn next_data(&mut self, _now: SimTime, tx: &mut Transmitter) -> Option<Vec<u8>> {
        Some(tx.random_data())
    }
}

/// The reverse path's physical medium.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UplinkKind {
    /// The paper's ESP8266 Wi-Fi module.
    Wifi,
    /// Footnote-2 future work: a VLC uplink from a mobile LED of the
    /// given optical power (watts), same geometry as the downlink.
    Vlc {
        /// Mobile-node LED optical power, watts.
        tx_optical_w: f64,
    },
}

impl LinkConfig {
    /// The paper's static bench: AMPPM at `distance_m`, constant ambient,
    /// 10-second measurement.
    pub fn paper_static(distance_m: f64, scheme: SchemeKind, seed: u64) -> LinkConfig {
        LinkConfig {
            sys: SystemConfig::default(),
            channel: ChannelConfig::paper_bench(distance_m),
            scheme,
            illum_target: 1.0,
            full_scale_lux: 10_000.0,
            sense_interval: SimDuration::millis(200),
            duration: SimDuration::secs(10),
            fidelity: ChannelFidelity::SlotIid,
            seed,
            ack_timeout: SimDuration::millis(30),
            max_retries: 3,
            interframe_gap_slots: 32,
            fixed_step_floor: 0.10,
            rx_ambient_reports: true,
            shadowing: None,
            uplink: UplinkKind::Wifi,
            faults: FaultPlan::default(),
            fec: FecMode::Off,
        }
    }
}

/// One point of the Fig. 19(b) intensity trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Time, seconds.
    pub t_s: f64,
    /// Normalized ambient intensity.
    pub ambient: f64,
    /// Normalized LED level.
    pub led: f64,
}

/// Self-healing metrics of one run — how the link weathered its faults.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Times the receiver declared sync loss.
    pub sync_losses: u64,
    /// Times the receiver's bounded resync budget ran dry (it re-arms
    /// and keeps hunting; this counts how often).
    pub resync_overruns: u64,
    /// Seconds from the last downlink-impairing fault clearing to the
    /// first cleanly decoded frame after it. `None` when the plan has no
    /// downlink faults, or the link never recovered within the run.
    pub resync_time_s: Option<f64>,
    /// Frames eventually ACKed but only after ≥ 1 retransmission
    /// ("delivered late").
    pub late_deliveries: u64,
    /// Frames abandoned after exhausting their retry budget ("lost").
    pub frames_abandoned: u64,
    /// Sequence numbers skipped due to wraparound collisions.
    pub seq_collisions: u64,
    /// Highest AMPPM degradation tier the ARQ feedback drove the
    /// transmitter to.
    pub max_degrade_tier: u8,
    /// Ladder escalations (link got worse) and recoveries (link healed);
    /// with FEC on these count parity-rung moves too.
    pub tier_escalations: u64,
    /// Ladder steps back toward nominal.
    pub tier_recoveries: u64,
    /// Symbol errors the outer code corrected in place across the run
    /// (0 with FEC off).
    pub fec_corrected_symbols: u64,
    /// Frames whose outer decode failed and fell back to CRC + ARQ.
    pub fec_decode_failures: u64,
    /// Parity overhead actually spent on the air (`coded/data - 1`).
    pub fec_overhead_ratio: f64,
}

/// The measurements of one run.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Cumulative counters.
    pub stats: LinkStats,
    /// Per-second receiver goodput, (second, bit/s) — Fig. 19(a).
    pub throughput_bps: Vec<(f64, f64)>,
    /// Mean receiver goodput over the run, bit/s.
    pub mean_goodput_bps: f64,
    /// Ambient/LED traces at each sensing instant — Fig. 19(b).
    pub trace: Vec<TracePoint>,
    /// Cumulative adaptation counts (t, SmartVLC, fixed-step baseline) —
    /// Fig. 19(c).
    pub adaptation: Vec<(f64, u64, u64)>,
    /// Run duration, seconds.
    pub duration_s: f64,
    /// Fault-recovery metrics (all zero on a fault-free run).
    pub recovery: RecoveryReport,
}

/// The composed simulation.
pub struct LinkSimulation {
    cfg: LinkConfig,
    tx: Transmitter,
    rx: Receiver,
    channel: OpticalChannel,
    tracker: AckTracker,
    wifi: Box<dyn SideChannel<UplinkMsg>>,
    payload_store: HashMap<u16, Vec<u8>>,
    rng: DetRng,
    rx_sensor_rng: DetRng,
    /// Dedicated stream for fault-injection draws (ACK loss/dup coin
    /// flips, slip garbage) — forked unconditionally so a plan's presence
    /// never perturbs the other streams.
    fault_rng: DetRng,
    shadowing: Option<ShadowingProcess>,
    /// Latest receiver-side ambient report (arrival time, lux).
    rx_ambient: Option<(SimTime, f64)>,
    /// Smoothed ambient estimate (EMA over sense samples): sensor noise
    /// above the adaptation deadband would otherwise trigger spurious
    /// brightness adjustments in both directions.
    ambient_ema: Option<f64>,
    /// Reused receive-path buffers: on-air slot stream, sampled-channel
    /// scratch, and decided slots. Steady-state frames allocate nothing.
    air_buf: Vec<bool>,
    rx_scratch: RxScratch,
    decided_buf: Vec<bool>,
}

impl LinkSimulation {
    /// Build a simulation from a scenario config.
    pub fn new(cfg: LinkConfig) -> Result<LinkSimulation, LinkError> {
        if cfg.duration.is_zero() {
            return Err(LinkError::Config("duration must be positive"));
        }
        if cfg.full_scale_lux <= 0.0 || cfg.full_scale_lux.is_nan() {
            return Err(LinkError::Config("full_scale_lux must be positive"));
        }
        let root = DetRng::seed_from_u64(cfg.seed);
        let initial_ambient = 0.0; // set properly on the first sense tick
                                   // The kill switch is read once per simulation, not per frame:
                                   // `SMARTVLC_FEC=off` forces the uncoded pipeline with identical
                                   // bookkeeping, keeping fec-off artifacts byte-identical.
        let fec = if smartvlc_fec::enabled_from_env() {
            cfg.fec
        } else {
            FecMode::Off
        };
        let tx = Transmitter::new(
            cfg.sys.clone(),
            cfg.scheme,
            cfg.illum_target,
            initial_ambient,
            cfg.fixed_step_floor,
            fec,
            root.fork("tx-payload"),
        )?;
        let mut rx = Receiver::new(cfg.sys.clone()).map_err(LinkError::from)?;
        // An uncoded link rejects FEC-flagged headers as corruption
        // (nobody legitimately sends them), so the fec-off event stream
        // and telemetry match a build without the outer code at all.
        rx.set_accept_fec(fec != FecMode::Off);
        let channel = OpticalChannel::new(cfg.channel, root.fork("channel"));
        let tracker = AckTracker::with_backoff(cfg.ack_timeout, cfg.max_retries, root.fork("mac"));
        let wifi: Box<dyn SideChannel<UplinkMsg>> = match cfg.uplink {
            UplinkKind::Wifi => Box::new(vlc_hw::WifiSideChannel::esp8266(root.fork("wifi"))),
            UplinkKind::Vlc { tx_optical_w } => {
                let mut up_cfg = VlcUplinkConfig::mobile_node(cfg.channel.geometry.distance_m);
                up_cfg.tx_optical_w = tx_optical_w;
                up_cfg.ambient_lux = cfg.channel.ambient_lux;
                Box::new(VlcUplink::new(up_cfg, root.fork("vlc-uplink")))
            }
        };
        let shadowing = cfg
            .shadowing
            .map(|m| ShadowingProcess::new(m, root.fork("shadowing")));
        Ok(LinkSimulation {
            rng: root.fork("link"),
            rx_sensor_rng: root.fork("rx-sensor"),
            fault_rng: root.fork("faults"),
            shadowing,
            cfg,
            tx,
            rx,
            channel,
            tracker,
            wifi,
            payload_store: HashMap::new(),
            rx_ambient: None,
            ambient_ema: None,
            air_buf: Vec::new(),
            rx_scratch: RxScratch::new(),
            decided_buf: Vec::new(),
        })
    }

    /// Run the scenario against an ambient profile with the legacy
    /// saturating random-payload source (bit-identical to the pre-net
    /// loop).
    pub fn run(&mut self, ambient: &mut dyn AmbientProfile) -> LinkReport {
        self.run_traffic(ambient, &mut RandomTraffic)
    }

    /// Run the scenario pulling frame payloads from `src` and reporting
    /// per-frame fates (first delivery, abandonment) back to it.
    pub fn run_traffic(
        &mut self,
        ambient: &mut dyn AmbientProfile,
        src: &mut dyn TrafficSource,
    ) -> LinkReport {
        let tslot = SimDuration::nanos(self.cfg.sys.tslot_nanos());
        let tslot_s = tslot.as_secs_f64();
        let mut now = SimTime::ZERO;
        let mut next_sense = SimTime::ZERO;
        let mut stats = LinkStats::default();
        let mut recorder = ThroughputRecorder::new(SimDuration::secs(1));
        let mut trace = Vec::new();
        let mut adaptation = Vec::new();
        let mut delivered_seqs: std::collections::HashSet<u16> = Default::default();
        let chaos = !self.cfg.faults.is_empty();
        // Recovery clock: the instant the last downlink fault clears.
        let recovery_from = self.cfg.faults.last_downlink_fault_end();
        let mut first_clean_after_fault: Option<SimTime> = None;
        let mut resync_overruns = 0u64;
        let mut fault_was_clear = true;
        let mut fec_corrected_symbols = 0u64;
        let mut fec_decode_failures = 0u64;

        while now < SimTime::ZERO + self.cfg.duration {
            // Chaos mode: replay the scheduled impairment state for this
            // instant onto the optical channel.
            if chaos {
                let st = self.cfg.faults.channel_state_at(now);
                let clear = st == ChannelFaultState::CLEAR;
                if clear != fault_was_clear {
                    // Journal the transition edge (1 = fault onset,
                    // 0 = fault cleared) at sim time.
                    obs::event(
                        now,
                        obs::key!("link.run.fault_transition"),
                        u64::from(!clear),
                    );
                    fault_was_clear = clear;
                }
                self.channel.set_fault_state(st);
            }
            // Sense ambient and adapt (Steps 1-2 of Fig. 2).
            if now >= next_sense {
                let lux = ambient.lux_at(now);
                self.channel.set_ambient_lux(lux);
                // Step 5: the receiver samples the same office light with
                // its own OPT101-class sensor (~0.5% noise after on-chip
                // integration) and reports over Wi-Fi; the report arrives
                // later in this loop.
                if self.cfg.rx_ambient_reports {
                    let measured =
                        (lux * (1.0 + self.rx_sensor_rng.next_normal(0.0, 0.005))).max(0.0);
                    self.wifi
                        .send(now, UplinkMsg::AmbientReport { lux: measured });
                }
                // The transmitter prefers a fresh receiver report (the
                // receiver sits in the area of interest); stale or absent
                // reports fall back to the local sensor.
                let fresh_window = self.cfg.sense_interval * 3;
                let effective_lux = match self.rx_ambient {
                    Some((at, rx_lux))
                        if now
                            .checked_duration_since(at)
                            .is_some_and(|d| d <= fresh_window) =>
                    {
                        rx_lux
                    }
                    _ => lux,
                };
                // EMA smoothing (alpha = 0.25, ~4-sample settling): the
                // adaptation should follow the light, not the sensor noise.
                let ema = match self.ambient_ema {
                    Some(prev) => prev + 0.25 * (effective_lux - prev),
                    None => effective_lux,
                };
                self.ambient_ema = Some(ema);
                let norm = (ema / self.cfg.full_scale_lux).clamp(0.0, 1.0);
                self.tx.update_ambient(norm);
                trace.push(TracePoint {
                    t_s: now.as_secs_f64(),
                    ambient: norm,
                    led: self.tx.led_level(),
                });
                adaptation.push((
                    now.as_secs_f64(),
                    self.tx.smart_adaptation.adjustments,
                    self.tx.fixed_adaptation.adjustments,
                ));
                next_sense += self.cfg.sense_interval;
            }

            // Deliver uplink traffic that has arrived over Wi-Fi.
            for msg in self.wifi.deliver_due(now) {
                match msg {
                    UplinkMsg::Ack { seq } => {
                        if self.tracker.on_ack(seq).is_some() {
                            self.payload_store.remove(&seq);
                            // A delivered frame is the ARQ's "link is
                            // fine" signal.
                            self.tx.degrade.record_outcome(true);
                        }
                        stats.acks_received += 1;
                    }
                    UplinkMsg::AmbientReport { lux } => {
                        self.rx_ambient = Some((now, lux));
                    }
                }
            }
            let scan = self.tracker.scan_timeouts(now);
            for &seq in &scan.abandoned_seqs {
                // The retry budget is spent; nothing will ever need this
                // payload again — but the traffic source learns its bytes
                // are gone (a net layer marks the fragment lost).
                if let Some(data) = self.payload_store.remove(&seq) {
                    src.on_abandoned(now, &data);
                }
            }
            stats.frames_abandoned += scan.abandoned() as u64;
            // Every expiry/abandonment is a loss sample for the graceful
            // rate-degradation controller.
            for _ in 0..scan.failures() {
                self.tx.degrade.record_outcome(false);
            }

            // Pick the next frame: retransmission first, else fresh data.
            src.on_tick(now);
            let (seq, data, is_retry) = match self.tracker.next_retry() {
                Some(seq) => match self.payload_store.get(&seq) {
                    Some(data) => {
                        let data = data.clone();
                        self.tracker.register_retry(seq, now);
                        (seq, data, true)
                    }
                    None => {
                        // Tracker/store desync (LinkError::RetryStateMissing
                        // territory). Self-heal: drop the orphaned retry and
                        // move on rather than panicking on a missing key.
                        stats.retry_state_missing += 1;
                        continue;
                    }
                },
                None => match src.next_data(now, &mut self.tx) {
                    Some(data) => match self.tracker.register_new(now, data.len()) {
                        Ok(seq) => {
                            self.payload_store.insert(seq, data.clone());
                            (seq, data, false)
                        }
                        Err(_) => {
                            // Entire sequence space in flight: idle one
                            // timeout so scans can abandon/expire entries,
                            // then try again. The produced payload is
                            // dropped — only reachable with 65536 frames
                            // simultaneously outstanding.
                            now += self.cfg.ack_timeout;
                            continue;
                        }
                    },
                    None => {
                        // Nothing to send right now: hold the light and
                        // poll the source again shortly.
                        now += TRAFFIC_IDLE_STEP;
                        continue;
                    }
                },
            };
            if is_retry {
                stats.retransmissions += 1;
            }

            // People in the beam attenuate this frame's optical path.
            if let Some(shadow) = self.shadowing.as_mut() {
                let gain = shadow.gain_at(now);
                self.channel.set_blockage_gain(gain);
            }

            // Modulate, fly, decide.
            let Ok((_, slots)) = self.tx.build_frame(seq, &data) else {
                // Degenerate dimming level: hold the light and idle for a
                // sense interval (no data can flow at l ~ 0 or ~ 1).
                now += self.cfg.sense_interval;
                continue;
            };
            // Reused buffers: take them out of self for the duration of
            // the borrow-heavy stretch, hand them back at the bottom.
            let mut air = std::mem::take(&mut self.air_buf);
            air.clear();
            self.tx
                .idle_filler_into(self.cfg.interframe_gap_slots, &mut air);
            air.extend_from_slice(&slots);
            let mut decided = std::mem::take(&mut self.decided_buf);
            self.fly_into(&air, &mut decided);
            stats.frames_sent += 1;
            stats.slots_sent += air.len() as u64;
            let airtime = tslot * air.len() as u64;
            self.tracker.ensure_timeout_covers(airtime);
            let rx_done = now + airtime;

            // Chaos mode: timing faults mutate the *received* stream —
            // clock drift and slips insert or delete slots.
            if chaos {
                let slip = self.cfg.faults.slip_slots_between(now, rx_done, tslot_s);
                self.apply_slip(&mut decided, slip);
            }

            // Receive.
            let mut got_ok = false;
            for ev in self.rx.push_slots(&decided) {
                match ev {
                    RxEvent::Frame {
                        frame,
                        stats: fstats,
                        ..
                    } => {
                        got_ok = true;
                        stats.frames_ok += 1;
                        fec_corrected_symbols += fstats.fec_corrected as u64;
                        fec_decode_failures += u64::from(fstats.fec_failed_codewords > 0);
                        if first_clean_after_fault.is_none()
                            && recovery_from.is_some_and(|end| rx_done >= end)
                        {
                            first_clean_after_fault = Some(rx_done);
                            obs::event(rx_done, obs::key!("link.run.first_clean_after_fault"), 1);
                        }
                        if let Some((hdr, body)) = MacHeader::decapsulate(&frame.payload) {
                            // ACK over the side channel (which the fault
                            // plan may drop, duplicate, or delay — on top
                            // of the channel's own loss and jitter).
                            self.send_ack(rx_done, hdr.seq);
                            if delivered_seqs.insert(hdr.seq) {
                                stats.payload_bytes_acked += body.len() as u64;
                                recorder.record(rx_done, body.len() as u64 * 8);
                                src.on_delivered(rx_done, body);
                            }
                        }
                    }
                    RxEvent::CrcFailed { stats: fstats, .. } => {
                        stats.frames_crc_fail += 1;
                        fec_corrected_symbols += fstats.fec_corrected as u64;
                        fec_decode_failures += u64::from(fstats.fec_failed_codewords > 0);
                    }
                }
            }
            if self.rx.poll_resync().is_err() {
                // The bounded resync budget ran out; the receiver re-arms
                // and keeps hunting. Count it — a run may overrun many
                // times under a long blackout without ever panicking.
                resync_overruns += 1;
            }
            if !got_ok && stats.frames_sent > 0 {
                // Neither clean nor CRC-failed: preamble/header never
                // locked (deep-fade region of Fig. 16).
                stats.frames_lost += 1;
            }
            self.air_buf = air;
            self.decided_buf = decided;
            now = rx_done;
        }

        stats.adaptation_steps = self.tx.smart_adaptation.adjustments;
        obs::counter_add(obs::key!("link.run.completed"), 1);
        // Simulated (virtual-clock) run length — deterministic, unlike any
        // wall-clock timing, so it is safe to snapshot.
        obs::observe(obs::key!("link.run.sim_ns"), self.cfg.duration.as_nanos());
        let duration_s = self.cfg.duration.as_secs_f64();
        let recovery = RecoveryReport {
            sync_losses: self.rx.sync_losses,
            resync_overruns,
            resync_time_s: match (recovery_from, first_clean_after_fault) {
                (Some(end), Some(first)) => Some(
                    first
                        .checked_duration_since(end)
                        .map_or(0.0, |d| d.as_secs_f64()),
                ),
                _ => None,
            },
            late_deliveries: self.tracker.late_deliveries,
            frames_abandoned: self.tracker.abandoned,
            seq_collisions: self.tracker.seq_collisions,
            max_degrade_tier: self.tx.degrade.max_tier,
            tier_escalations: self.tx.degrade.escalations,
            tier_recoveries: self.tx.degrade.recoveries,
            fec_corrected_symbols,
            fec_decode_failures,
            fec_overhead_ratio: self.tx.fec_overhead_ratio(),
        };
        // Telemetry: only a coded run emits the fec.* gauge, so fec-off
        // snapshots stay byte-identical to the pre-FEC pipeline's.
        if self.tx.current_fec() != FecMode::Off || recovery.fec_corrected_symbols > 0 {
            obs::gauge_set(obs::key!("fec.overhead_ratio"), recovery.fec_overhead_ratio);
        }
        LinkReport {
            // Duration-aware mean: idle time after the last delivery counts
            // as zero-throughput time (see ThroughputRecorder::mean_bps_over).
            mean_goodput_bps: recorder.mean_bps_over(self.cfg.duration),
            // Drop a trailing partial bucket: its bits/s would read low
            // only because the run ended mid-second.
            throughput_bps: recorder
                .series_bps()
                .iter()
                .filter(|&&(t, _)| t.as_secs_f64() + 1.0 <= duration_s + 1e-9)
                .map(|&(t, bps)| (t.as_secs_f64(), bps))
                .collect(),
            stats,
            trace,
            adaptation,
            duration_s,
            recovery,
        }
    }

    /// Send one ACK through the side channel, applying any scheduled
    /// uplink impairment (loss, duplication, extra delay) on top of the
    /// channel's own behavior.
    fn send_ack(&mut self, at: SimTime, seq: u16) {
        let st = if self.cfg.faults.is_empty() {
            UplinkFaultState::CLEAR
        } else {
            self.cfg.faults.uplink_state_at(at)
        };
        if st.loss_prob > 0.0 && self.fault_rng.chance(st.loss_prob) {
            return; // eaten by the impaired uplink
        }
        let at = at + st.extra_delay;
        self.wifi.send(at, UplinkMsg::Ack { seq });
        if st.dup_prob > 0.0 && self.fault_rng.chance(st.dup_prob) {
            self.wifi.send(at, UplinkMsg::Ack { seq });
        }
    }

    /// Mutate a decided slot stream for a timing fault: `slip > 0`
    /// inserts that many garbage slots at the front (the receiver sees
    /// extra slots it cannot frame), `slip < 0` deletes from the front
    /// (slots the receiver never saw).
    fn apply_slip(&mut self, decided: &mut Vec<bool>, slip: i64) {
        if slip > 0 {
            let n = (slip as usize).min(1 << 20); // sanity bound
            let mut garbage: Vec<bool> = (0..n).map(|_| self.fault_rng.chance(0.5)).collect();
            garbage.extend(decided.iter().copied());
            *decided = garbage;
        } else if slip < 0 {
            let n = slip.unsigned_abs() as usize;
            if n >= decided.len() {
                decided.clear();
            } else {
                decided.drain(..n);
            }
        }
    }

    /// Fly a slot stream through the channel into a reused output buffer.
    ///
    /// The per-frame `analytic_error_probs` query is served from the
    /// channel's operating-point memo — it recomputes only when the sense
    /// tick, shadowing, or fault replay actually changed the channel state
    /// since the previous frame.
    fn fly_into(&mut self, slots: &[bool], out: &mut Vec<bool>) {
        match self.cfg.fidelity {
            ChannelFidelity::Sampled => {
                self.channel
                    .transmit_and_decide_into(slots, &mut self.rx_scratch);
                out.clear();
                std::mem::swap(out, &mut self.rx_scratch.decided);
            }
            ChannelFidelity::SlotIid => {
                let probs = self.channel.analytic_error_probs();
                out.clear();
                out.reserve(slots.len());
                for &s in slots {
                    let p = if s {
                        probs.p_on_error
                    } else {
                        probs.p_off_error
                    };
                    out.push(if self.rng.chance(p) { !s } else { s });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlc_channel::ambient::{BlindRamp, ConstantAmbient};

    fn short_static(distance: f64, scheme: SchemeKind) -> LinkReport {
        let mut cfg = LinkConfig::paper_static(distance, scheme, 42);
        cfg.duration = SimDuration::millis(500);
        let mut sim = LinkSimulation::new(cfg).unwrap();
        sim.run(&mut ConstantAmbient { lux: 5000.0 })
    }

    #[test]
    fn healthy_link_delivers_frames() {
        let r = short_static(3.0, SchemeKind::Amppm);
        assert!(r.stats.frames_sent > 10, "{:?}", r.stats);
        assert!(r.stats.frame_error_rate() < 0.3, "{:?}", r.stats);
        assert!(r.mean_goodput_bps > 50_000.0, "{}", r.mean_goodput_bps);
        assert!(r.stats.acks_received > 0);
    }

    #[test]
    fn dead_link_delivers_nothing() {
        let r = short_static(6.0, SchemeKind::Amppm);
        assert_eq!(r.stats.frames_ok, 0, "{:?}", r.stats);
        assert_eq!(r.mean_goodput_bps, 0.0);
    }

    #[test]
    fn amppm_beats_baselines_off_center() {
        // Ambient 5000 lux -> LED at 0.5... use dimmer ambient for an
        // off-center level where AMPPM's advantage shows.
        let run = |scheme| {
            let mut cfg = LinkConfig::paper_static(3.0, scheme, 7);
            cfg.duration = SimDuration::millis(500);
            let mut sim = LinkSimulation::new(cfg).unwrap();
            sim.run(&mut ConstantAmbient { lux: 8500.0 }) // LED at 0.15
                .mean_goodput_bps
        };
        let amppm = run(SchemeKind::Amppm);
        let mppm = run(SchemeKind::Mppm(20));
        let ook = run(SchemeKind::OokCt);
        let vppm = run(SchemeKind::Vppm(10));
        assert!(amppm > mppm, "amppm={amppm} mppm={mppm}");
        assert!(mppm > ook, "mppm={mppm} ook={ook}");
        assert!(ook > vppm * 0.8, "ook={ook} vppm={vppm}");
    }

    #[test]
    fn sampled_and_iid_fidelity_agree_on_goodput() {
        let mk = |fidelity| {
            let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 11);
            cfg.duration = SimDuration::millis(300);
            cfg.fidelity = fidelity;
            let mut sim = LinkSimulation::new(cfg).unwrap();
            sim.run(&mut ConstantAmbient { lux: 5000.0 })
                .mean_goodput_bps
        };
        let sampled = mk(ChannelFidelity::Sampled);
        let iid = mk(ChannelFidelity::SlotIid);
        let ratio = sampled / iid;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "sampled={sampled} iid={iid}"
        );
    }

    #[test]
    fn dynamic_run_traces_lighting_goals() {
        let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 5);
        cfg.duration = SimDuration::secs(4);
        let mut sim = LinkSimulation::new(cfg).unwrap();
        let mut ramp = BlindRamp::linearized(500.0, 8000.0, 4.0);
        let r = sim.run(&mut ramp);
        assert!(r.trace.len() >= 10);
        // Goal 1: ambient + LED stays ~ constant at the set-point.
        for p in &r.trace[1..] {
            let sum = p.ambient + p.led;
            assert!((sum - 1.0).abs() < 0.05, "t={} sum={sum}", p.t_s);
        }
        // LED dims as ambient brightens.
        assert!(r.trace.last().unwrap().led < r.trace[1].led);
        // Fig. 19(c): fixed stepper needs more adjustments.
        let (_, smart, fixed) = *r.adaptation.last().unwrap();
        assert!(fixed > smart, "smart={smart} fixed={fixed}");
        assert!(smart > 0);
    }

    #[test]
    fn deterministic_runs() {
        let a = short_static(3.3, SchemeKind::Amppm);
        let b = short_static(3.3, SchemeKind::Amppm);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_goodput_bps, b.mean_goodput_bps);
    }

    #[test]
    fn lossy_link_retransmits() {
        let mut cfg = LinkConfig::paper_static(3.95, SchemeKind::Amppm, 13);
        cfg.duration = SimDuration::secs(1);
        let mut sim = LinkSimulation::new(cfg).unwrap();
        let r = sim.run(&mut ConstantAmbient { lux: 8500.0 });
        assert!(
            r.stats.frames_crc_fail + r.stats.frames_lost > 0,
            "{:?}",
            r.stats
        );
        assert!(r.stats.retransmissions > 0, "{:?}", r.stats);
        // Still makes some forward progress at 3.95 m.
        assert!(r.stats.frames_ok > 0, "{:?}", r.stats);
    }
}

#[cfg(test)]
mod uplink_report_tests {
    use super::*;
    use vlc_channel::ambient::BlindRamp;

    fn run(reports: bool) -> LinkReport {
        let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 77);
        cfg.duration = SimDuration::secs(2);
        cfg.rx_ambient_reports = reports;
        let mut sim = LinkSimulation::new(cfg).unwrap();
        sim.run(&mut BlindRamp::linearized(1000.0, 7000.0, 2.0))
    }

    #[test]
    fn rx_reports_drive_the_transmitter() {
        let with = run(true);
        let without = run(false);
        // The 2% receiver sensor noise must be visible in the adaptation
        // trajectory (extra micro-corrections), proving the report path
        // is live...
        assert!(
            with.stats.adaptation_steps != without.stats.adaptation_steps
                || with
                    .trace
                    .iter()
                    .zip(&without.trace)
                    .any(|(a, b)| a.led != b.led),
            "reports had no effect"
        );
        // ...while Goal 1 still holds under report delay and noise.
        for p in &with.trace[1..] {
            assert!((p.ambient + p.led - 1.0).abs() < 0.06, "{p:?}");
        }
        // And throughput is not materially hurt.
        assert!(with.mean_goodput_bps > 0.85 * without.mean_goodput_bps);
    }
}

#[cfg(test)]
mod shadowing_tests {
    use super::*;
    use vlc_channel::ambient::ConstantAmbient;
    use vlc_channel::shadowing::ShadowingModel;

    #[test]
    fn arq_recovers_from_blockage() {
        // A pathological walkway: blocked ~25% of the time in short
        // bursts. Frames in the shadow die; the ARQ retransmits them and
        // unique data still gets through.
        let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 21);
        cfg.duration = SimDuration::secs(3);
        cfg.shadowing = Some(ShadowingModel {
            mean_clear_s: 0.3,
            mean_blocked_s: 0.1,
            blocked_gain: 0.001,
        });
        let mut sim = LinkSimulation::new(cfg.clone()).unwrap();
        let shadowed = sim.run(&mut ConstantAmbient { lux: 5000.0 });

        cfg.shadowing = None;
        let mut sim = LinkSimulation::new(cfg).unwrap();
        let clear = sim.run(&mut ConstantAmbient { lux: 5000.0 });

        // Blockage visibly hurts...
        assert!(
            shadowed.stats.frames_lost + shadowed.stats.frames_crc_fail > 10,
            "{:?}",
            shadowed.stats
        );
        assert!(shadowed.stats.retransmissions > 5, "{:?}", shadowed.stats);
        assert!(shadowed.mean_goodput_bps < 0.9 * clear.mean_goodput_bps);
        // ...but the link keeps working between shadows.
        assert!(
            shadowed.mean_goodput_bps > 0.3 * clear.mean_goodput_bps,
            "shadowed {} vs clear {}",
            shadowed.mean_goodput_bps,
            clear.mean_goodput_bps
        );
    }
}

#[cfg(test)]
mod vlc_uplink_link_tests {
    use super::*;
    use vlc_channel::ambient::ConstantAmbient;

    fn run(uplink: UplinkKind, distance: f64) -> LinkReport {
        let mut cfg = LinkConfig::paper_static(distance, SchemeKind::Amppm, 33);
        cfg.duration = SimDuration::secs(1);
        cfg.uplink = uplink;
        let mut sim = LinkSimulation::new(cfg).unwrap();
        sim.run(&mut ConstantAmbient { lux: 5000.0 })
    }

    #[test]
    fn vlc_uplink_matches_wifi_at_arms_length() {
        // At 0.5 m both uplinks deliver every ACK; goodput is identical
        // modulo ACK-timing noise.
        let wifi = run(UplinkKind::Wifi, 0.5);
        let vlc = run(UplinkKind::Vlc { tx_optical_w: 0.35 }, 0.5);
        assert!(vlc.stats.acks_received > 0);
        assert!(
            (vlc.mean_goodput_bps / wifi.mean_goodput_bps - 1.0).abs() < 0.1,
            "wifi={} vlc={}",
            wifi.mean_goodput_bps,
            vlc.mean_goodput_bps
        );
    }

    #[test]
    fn vlc_uplink_collapses_the_mac_at_3m() {
        // Footnote 2 at the system level: the downlink still decodes at
        // 3 m, but with no ACKs coming back the MAC burns its retries on
        // every frame and abandons them.
        let wifi = run(UplinkKind::Wifi, 3.0);
        let vlc = run(UplinkKind::Vlc { tx_optical_w: 0.35 }, 3.0);
        assert!(vlc.stats.frames_ok > 0, "downlink itself still works");
        assert_eq!(vlc.stats.acks_received, 0, "{:?}", vlc.stats);
        assert!(vlc.stats.retransmissions > wifi.stats.retransmissions * 5);
        // Unique acked goodput collapses even though frames decode.
        assert!(vlc.mean_goodput_bps < 0.5 * wifi.mean_goodput_bps);
    }
}
