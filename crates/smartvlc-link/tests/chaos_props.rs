//! Robustness properties of the frame path under chaos-style stream
//! mutations.
//!
//! The chaos scenarios mutate decided slot streams (noise flips,
//! truncation, symbol slips); these properties pin down the two
//! invariants the self-healing link depends on:
//!
//! 1. **Totality** — no mutation of the slot stream may panic the
//!    receiver or the codec. Garbage in, events (or silence) out.
//! 2. **No false accepts** — whatever the mutation, a frame event with
//!    `crc_ok` must carry exactly the payload that was transmitted.
//!    (A 16-bit CRC admits collisions in principle; a deterministic
//!    generator that produced one would be pinned here, not flaky.)

use proptest::prelude::*;
use smartvlc_core::frame::codec::FrameCodec;
use smartvlc_core::frame::format::{amppm_descriptor, Frame};
use smartvlc_core::{DimmingLevel, SystemConfig};
use smartvlc_link::{Receiver, RxEvent};

fn emit_frame(level: f64, payload: Vec<u8>) -> (Vec<u8>, Vec<bool>) {
    let cfg = SystemConfig::default();
    let d = amppm_descriptor(&cfg, DimmingLevel::new(level).unwrap());
    let frame = Frame::new(d, payload.clone()).unwrap();
    let mut codec = FrameCodec::new(cfg).unwrap();
    let slots = codec.emit(&frame).unwrap();
    (payload, slots)
}

/// Feed a stream to a fresh receiver; panic-free by construction, and
/// every clean frame must match the expected payload.
fn assert_no_false_accept(stream: &[bool], expected: &[u8]) {
    let mut rx = Receiver::new(SystemConfig::default()).unwrap();
    for ev in rx.push_slots(stream) {
        if let RxEvent::Frame { frame, stats, .. } = ev {
            assert!(stats.crc_ok);
            assert_eq!(frame.payload, expected, "CRC accepted a corrupted payload");
        }
    }
}

proptest! {
    /// Random bit flips anywhere in the stream: never panic, never
    /// deliver a payload that differs from the transmitted one.
    #[test]
    fn bit_flips_never_false_accept(
        level in 0.15f64..0.85,
        payload in proptest::collection::vec(any::<u8>(), 8..96),
        flips in proptest::collection::vec(any::<u16>(), 0..24),
    ) {
        let (expected, mut slots) = emit_frame(level, payload);
        let n = slots.len();
        for f in flips {
            let i = f as usize % n;
            slots[i] = !slots[i];
        }
        assert_no_false_accept(&slots, &expected);
    }

    /// Truncation at an arbitrary point: the receiver must neither panic
    /// nor conjure a complete frame out of a prefix.
    #[test]
    fn truncation_never_panics_or_false_accepts(
        level in 0.2f64..0.8,
        payload in proptest::collection::vec(any::<u8>(), 8..96),
        cut_permille in 0u16..1000,
    ) {
        let (expected, slots) = emit_frame(level, payload);
        let keep = slots.len() * cut_permille as usize / 1000;
        assert_no_false_accept(&slots[..keep], &expected);
    }

    /// Symbol slip: slots inserted or deleted at an arbitrary offset
    /// (the chaos runner's clock-drift/slip mutation). Totality and no
    /// false accepts must survive both signs.
    #[test]
    fn slips_never_panic_or_false_accept(
        level in 0.2f64..0.8,
        payload in proptest::collection::vec(any::<u8>(), 8..64),
        at_permille in 0u16..1000,
        slip in -24i32..24,
        fill in any::<bool>(),
    ) {
        let (expected, mut slots) = emit_frame(level, payload);
        let at = slots.len() * at_permille as usize / 1000;
        if slip >= 0 {
            for _ in 0..slip {
                slots.insert(at, fill);
            }
        } else {
            let n = (-slip) as usize;
            let end = (at + n).min(slots.len());
            slots.drain(at..end);
        }
        assert_no_false_accept(&slots, &expected);
    }

    /// Pure garbage of arbitrary length: the receiver stays silent (or
    /// reports CRC failures), never panics, and its buffer stays bounded.
    #[test]
    fn arbitrary_garbage_is_survivable(
        stream in proptest::collection::vec(any::<bool>(), 0..4000),
    ) {
        let mut rx = Receiver::new(SystemConfig::default()).unwrap();
        for ev in rx.push_slots(&stream) {
            // A spontaneous clean frame from coin flips would be a CRC
            // collision against a structurally valid header — pin it.
            prop_assert!(!matches!(ev, RxEvent::Frame { .. }), "garbage decoded as a frame");
        }
        let _ = rx.poll_resync();
    }

    /// An undamaged frame always round-trips regardless of level and
    /// payload — the control for the mutation properties above.
    #[test]
    fn clean_frames_always_decode(
        level in 0.15f64..0.85,
        payload in proptest::collection::vec(any::<u8>(), 8..96),
    ) {
        let (expected, slots) = emit_frame(level, payload);
        let mut rx = Receiver::new(SystemConfig::default()).unwrap();
        let events = rx.push_slots(&slots);
        let ok = events.iter().any(
            |e| matches!(e, RxEvent::Frame { frame, .. } if frame.payload == expected),
        );
        prop_assert!(ok, "clean frame failed to decode: {events:?}");
    }
}
