//! Regression tests: a frame header that declares more payload than the
//! format allows — or than the receiver actually holds — must surface as
//! a typed [`LinkError`], never be silently truncated or panic.
//!
//! A corrupted Length word is routine under occlusion (the OOK header is
//! uncoded), so this is an operating condition, not a programming error.

use smartvlc_core::frame::codec::{FrameCodec, FrameCodecError, PREAMBLE_SLOTS};
use smartvlc_core::frame::format::{
    amppm_descriptor, DescriptorError, Frame, FrameHeader, MAX_PAYLOAD,
};
use smartvlc_core::{DimmingLevel, SystemConfig};
use smartvlc_link::error::LinkError;

/// Overwrite the 16 OOK slots of the Length word with `value`, MSB first.
fn forge_length_word(slots: &mut [bool], value: u16) {
    for bit in 0..16 {
        slots[PREAMBLE_SLOTS + bit] = (value >> (15 - bit)) & 1 == 1;
    }
}

fn emitted_frame() -> (FrameCodec, Vec<bool>) {
    let cfg = SystemConfig::default();
    let mut codec = FrameCodec::new(cfg.clone()).unwrap();
    let d = amppm_descriptor(&cfg, DimmingLevel::new(0.5).unwrap());
    let frame = Frame::new(d, vec![0xA5; 64]).unwrap();
    let slots = codec.emit(&frame).unwrap();
    (codec, slots)
}

#[test]
fn declared_length_beyond_max_payload_is_a_typed_error() {
    let (mut codec, mut slots) = emitted_frame();
    // 8191 fits the 13-bit length field but exceeds MAX_PAYLOAD.
    forge_length_word(&mut slots, 8191);
    let err = codec.parse(&slots).unwrap_err();
    assert_eq!(
        err,
        FrameCodecError::BadHeader(DescriptorError::OversizeLength(8191))
    );
    // And it maps to a typed LinkError, not a panic or a truncated frame.
    let link_err: LinkError = err.into();
    assert!(
        matches!(
            link_err,
            LinkError::Codec(FrameCodecError::BadHeader(DescriptorError::OversizeLength(
                8191
            )))
        ),
        "{link_err}"
    );
}

#[test]
fn declared_length_beyond_received_buffer_is_a_typed_error() {
    let (mut codec, mut slots) = emitted_frame();
    // 2000 B is a legal payload length, but this buffer only carries a
    // 64 B frame: the parser must report the shortfall, not truncate.
    forge_length_word(&mut slots, 2000);
    match codec.parse(&slots) {
        Err(FrameCodecError::Truncated { needed, got }) => {
            assert!(needed > got, "needed={needed} got={got}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn reserved_fec_bits_in_length_word_are_a_typed_error() {
    let (mut codec, mut slots) = emitted_frame();
    // Profile bits set without the FEC flag: only corruption does this.
    forge_length_word(&mut slots, 64 | (0b011 << 13));
    assert_eq!(
        codec.parse(&slots).unwrap_err(),
        FrameCodecError::BadHeader(DescriptorError::UnknownFec(0b011))
    );
}

#[test]
fn max_payload_boundary_still_parses() {
    // The hardening must not reject the legal extreme.
    let h = FrameHeader::from_bytes(
        &Frame::new(
            amppm_descriptor(&SystemConfig::default(), DimmingLevel::new(0.5).unwrap()),
            vec![0; MAX_PAYLOAD],
        )
        .unwrap()
        .header
        .to_bytes(),
    );
    assert!(h.is_ok());
    assert_eq!(h.unwrap().payload_len as usize, MAX_PAYLOAD);
}
