//! Fig. 19(b) — recorded ambient / LED / sum light intensity during the
//! dynamic scenario (Goal 1 of §4.3: the sum stays constant).

use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::run_dynamic;

fn main() {
    let secs = if full_run() { 67.0 } else { 20.0 };
    println!("Fig. 19(b) — normalized light intensities over a {secs:.0} s blind pull\n");
    let outcome = run_dynamic(SchemeKind::Amppm, Some(secs), 19);
    let trace = &outcome.report.trace;

    let rows: Vec<Vec<String>> = trace
        .iter()
        .step_by((trace.len() / 25).max(1))
        .map(|p| {
            vec![
                f(p.t_s, 1),
                f(p.ambient, 3),
                f(p.led, 3),
                f(p.ambient + p.led, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["t (s)", "ambient", "LED", "sum"], &rows)
    );
    let xs: Vec<f64> = trace.iter().map(|p| p.t_s).collect();
    println!(
        "{}",
        ascii_chart(
            "normalized intensity vs time",
            "t (s)",
            "intensity",
            &xs,
            &[
                ("ambient", trace.iter().map(|p| p.ambient).collect()),
                ("LED", trace.iter().map(|p| p.led).collect()),
                ("sum", trace.iter().map(|p| p.ambient + p.led).collect()),
            ],
            12
        )
    );

    // Goal-1 check: worst deviation of the sum from the set-point,
    // ignoring the first sample (cold start).
    let worst = trace[1..]
        .iter()
        .map(|p| (p.ambient + p.led - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!("max |sum - setpoint| after start-up: {worst:.3} (paper: 'nearly constant')");

    write_csv(
        results_dir().join("fig19b.csv"),
        &["t_s", "ambient", "led", "sum"],
        &trace
            .iter()
            .map(|p| {
                vec![
                    f(p.t_s, 2),
                    f(p.ambient, 4),
                    f(p.led, 4),
                    f(p.ambient + p.led, 4),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
}
