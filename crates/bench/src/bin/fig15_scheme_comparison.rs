//! Fig. 15 — throughput of AMPPM vs OOK-CT vs MPPM(N=20) across the 17
//! dimming levels at 3 m, measured end-to-end through the simulated
//! channel, plus the §6.2 headline ratios.
//!
//! Run with `--full` for paper-length 30 s points; the default 2 s points
//! reproduce the same shape in seconds.

use smartvlc_bench::{f, point_duration, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::static_run::{paper_levels, run_scheme_matrix};

fn main() {
    let levels = paper_levels();
    let dur = point_duration();
    println!(
        "Fig. 15 — scheme comparison at 3 m, {} s per point, 128 B payloads\n",
        dur.as_secs_f64()
    );

    // All 3 × 17 cells fan out as one flat batch on the work pool.
    let schemes = [SchemeKind::Amppm, SchemeKind::Mppm(20), SchemeKind::OokCt];
    let mut sweeps = run_scheme_matrix(&schemes, &levels, dur, 15).into_iter();
    let (amppm, mppm, ook) = (
        sweeps.next().unwrap(),
        sweeps.next().unwrap(),
        sweeps.next().unwrap(),
    );

    let mut rows = Vec::new();
    for i in 0..levels.len() {
        rows.push(vec![
            f(levels[i], 2),
            f(amppm[i].goodput_bps / 1000.0, 1),
            f(ook[i].goodput_bps / 1000.0, 1),
            f(mppm[i].goodput_bps / 1000.0, 1),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["dimming", "AMPPM Kbps", "OOK-CT Kbps", "MPPM Kbps"],
            &rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "goodput (Kbps) vs dimming level",
            "dimming",
            "Kbps",
            &levels,
            &[
                ("AMPPM", amppm.iter().map(|p| p.goodput_bps / 1e3).collect()),
                ("OOK-CT", ook.iter().map(|p| p.goodput_bps / 1e3).collect()),
                ("MPPM", mppm.iter().map(|p| p.goodput_bps / 1e3).collect()),
            ],
            14
        )
    );

    // The Sec. 6.2 headline numbers.
    let ratio = |a: f64, b: f64| (a / b - 1.0) * 100.0;
    let sum =
        |pts: &[smartvlc_sim::StaticPoint]| -> f64 { pts.iter().map(|p| p.goodput_bps).sum() };
    let max_vs = |a: &[smartvlc_sim::StaticPoint], b: &[smartvlc_sim::StaticPoint]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| ratio(x.goodput_bps, y.goodput_bps))
            .fold(f64::MIN, f64::max)
    };
    println!("Sec. 6.2 headline comparison (paper in parentheses):");
    println!(
        "  AMPPM vs OOK-CT: up to +{:.0}% (170%), average +{:.0}% (40%)",
        max_vs(&amppm, &ook),
        ratio(sum(&amppm), sum(&ook))
    );
    println!(
        "  AMPPM vs MPPM:   up to +{:.0}% (30%),  average +{:.0}% (12%)",
        max_vs(&amppm, &mppm),
        ratio(sum(&amppm), sum(&mppm))
    );
    let crossover: Vec<f64> = levels
        .iter()
        .zip(amppm.iter().zip(&ook))
        .filter(|(_, (a, o))| o.goodput_bps > a.goodput_bps)
        .map(|(&l, _)| l)
        .collect();
    println!(
        "  OOK-CT beats AMPPM only at l = {:?} (paper: a narrow 0.47-0.53 window)",
        crossover
    );
    println!("\n(see EXPERIMENTS.md for the gain-at-extremes discussion: the paper's");
    println!(" +170%/+30% extremes correspond to its 'optimistic' calibration,");
    println!(" SystemConfig::paper_optimistic(), whose SER bound admits N ~ 110.)");

    let mut csv = Vec::new();
    for i in 0..levels.len() {
        csv.push(vec![
            f(levels[i], 2),
            f(amppm[i].goodput_bps, 1),
            f(ook[i].goodput_bps, 1),
            f(mppm[i].goodput_bps, 1),
        ]);
    }
    write_csv(
        results_dir().join("fig15.csv"),
        &["dimming", "amppm_bps", "ookct_bps", "mppm_bps"],
        &csv,
    )
    .expect("write csv");
}
