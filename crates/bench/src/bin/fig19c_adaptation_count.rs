//! Fig. 19(c) — cumulative brightness-adaptation adjustments during the
//! dynamic scenario: SmartVLC's perception-domain stepper vs the
//! fixed-step "existing method" (paper: ~50% fewer adjustments).

use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::run_dynamic;

fn main() {
    let secs = if full_run() { 67.0 } else { 20.0 };
    println!("Fig. 19(c) — cumulative adaptation adjustments over {secs:.0} s\n");
    let outcome = run_dynamic(SchemeKind::Amppm, Some(secs), 19);
    let adapt = &outcome.report.adaptation;

    let rows: Vec<Vec<String>> = adapt
        .iter()
        .step_by((adapt.len() / 25).max(1))
        .map(|&(t, smart, fixed)| vec![f(t, 1), smart.to_string(), fixed.to_string()])
        .collect();
    println!(
        "{}",
        markdown_table(&["t (s)", "SmartVLC", "existing method"], &rows)
    );
    let xs: Vec<f64> = adapt.iter().map(|&(t, _, _)| t).collect();
    println!(
        "{}",
        ascii_chart(
            "cumulative adjustments vs time",
            "t (s)",
            "count",
            &xs,
            &[
                (
                    "SmartVLC",
                    adapt.iter().map(|&(_, s, _)| s as f64).collect()
                ),
                (
                    "existing",
                    adapt.iter().map(|&(_, _, f)| f as f64).collect()
                ),
            ],
            12
        )
    );

    let (_, smart, fixed) = *adapt.last().unwrap();
    println!(
        "final: SmartVLC {smart} vs existing {fixed} adjustments -> {:.0}% reduction \
         (paper: ~50%)",
        outcome.adaptation_reduction * 100.0
    );

    write_csv(
        results_dir().join("fig19c.csv"),
        &["t_s", "smartvlc", "existing"],
        &adapt
            .iter()
            .map(|&(t, s, fx)| vec![f(t, 2), s.to_string(), fx.to_string()])
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
}
