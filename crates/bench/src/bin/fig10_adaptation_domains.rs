//! Fig. 10 — brightness adaptation in the measured vs the perception
//! domain.
//!
//! Walks the LED from 10% to 90% with both steppers and prints the two
//! set-point trajectories: the fixed-τ baseline takes equal measured
//! steps (Fig. 10(a)); SmartVLC takes equal *perceptual* steps, whose
//! measured size grows with brightness (Fig. 10(b)) — fewer steps, same
//! invisibility.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::adaptation::{perceived, AdaptationStepper, FixedStepper, PerceptionStepper};
use smartvlc_core::SystemConfig;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::default();
    let (from, to) = (0.10, 0.90);
    let smart = PerceptionStepper::new(cfg.tau_p);
    let fixed = FixedStepper::flicker_safe(cfg.tau_p, from);

    let smart_steps = smart.steps(from, to);
    let fixed_steps = fixed.steps(from, to);
    println!("Fig. 10 — adapting the LED {from} -> {to} without visible flicker\n");
    println!(
        "measured-domain stepper (existing): {} steps of tau = {:.5}",
        fixed_steps.len(),
        fixed.tau
    );
    println!(
        "perception-domain stepper (SmartVLC): {} steps of tau_p = {}",
        smart_steps.len(),
        smart.tau_p
    );
    println!(
        "reduction: {:.0}%\n",
        (1.0 - smart_steps.len() as f64 / fixed_steps.len() as f64) * 100.0
    );

    // Show how the measured step size varies along the smart trajectory.
    let mut rows = Vec::new();
    let mut prev = from;
    for (i, &x) in smart_steps.iter().enumerate() {
        if i % (smart_steps.len() / 12).max(1) == 0 || i == smart_steps.len() - 1 {
            rows.push(vec![
                i.to_string(),
                f(x, 4),
                f(x - prev, 5),
                f(perceived(x) - perceived(prev), 5),
            ]);
        }
        prev = x;
    }
    println!(
        "{}",
        markdown_table(
            &[
                "step#",
                "measured level",
                "measured delta",
                "perceptual delta"
            ],
            &rows
        )
    );

    // The Fig. 10 curves: perceived vs measured for both trajectories.
    let xs: Vec<f64> = (0..=40)
        .map(|i| from + (to - from) * i as f64 / 40.0)
        .collect();
    let p: Vec<f64> = xs.iter().map(|&x| perceived(x) * 100.0).collect();
    println!(
        "{}",
        ascii_chart(
            "perceived (%) vs measured (%) brightness — the nonlinearity both panels share",
            "measured",
            "perceived %",
            &xs,
            &[("Ip=100*sqrt(Im/100)", p)],
            10
        )
    );

    let csv: Vec<Vec<String>> = smart_steps
        .iter()
        .map(|&x| vec![f(x, 6), f(perceived(x), 6)])
        .collect();
    write_csv(
        results_dir().join("fig10_smart_trajectory.csv"),
        &["measured", "perceived"],
        &csv,
    )
    .expect("write csv");
    let csv: Vec<Vec<String>> = fixed_steps
        .iter()
        .map(|&x| vec![f(x, 6), f(perceived(x), 6)])
        .collect();
    write_csv(
        results_dir().join("fig10_fixed_trajectory.csv"),
        &["measured", "perceived"],
        &csv,
    )
    .expect("write csv");
}
