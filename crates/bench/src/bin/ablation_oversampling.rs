//! Ablation: receiver oversampling factor (footnote 3's ADC headroom).
//!
//! The paper samples at `fs = 4·ftx` and notes the ADS7883 could do
//! 3 MS/s ("a sampling rate of 500 KHz is enough" given the LED
//! bottleneck). This sweep quantifies that: more samples per slot
//! average more noise out of each decision (σ/√(spp−1)), buying link
//! margin with diminishing returns — 4× is indeed the knee.

use desim::DetRng;
use smartvlc_bench::{f, results_dir};
use smartvlc_sim::report::{markdown_table, write_csv};
use vlc_channel::link::{ChannelConfig, OpticalChannel};

fn main() {
    println!("Oversampling ablation — analytic P1 and reach vs samples/slot\n");
    let mut rows = Vec::new();
    for spp in [2usize, 3, 4, 6, 8, 24] {
        let mut cfg = ChannelConfig::paper_bench(3.6);
        cfg.samples_per_slot = spp;
        let ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(1));
        let p1 = ch.analytic_error_probs().p_off_error;
        // Reach: the distance where P1 crosses 1e-3 (frame-level cliff).
        let mut lo = 0.5f64;
        let mut hi = 12.0f64;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let mut c = ChannelConfig::paper_bench(mid);
            c.samples_per_slot = spp;
            let p = OpticalChannel::new(c, DetRng::seed_from_u64(1))
                .analytic_error_probs()
                .p_off_error;
            if p > 1e-3 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        rows.push(vec![
            format!("{spp}x ({} kS/s)", spp * 125),
            format!("{p1:.2e}"),
            f(lo, 2),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["oversampling", "P1 at 3.6 m", "reach (P1<1e-3), m"],
            &rows
        )
    );
    println!("reading: 2x barely averages (one usable interior sample) and gives");
    println!("up ~1 m of reach; the paper's 4x already lands the reported 3.6 m.");
    println!("The ADC's full 3 MS/s (24x) would stretch reach toward 6.6 m, but");
    println!("per footnote 3 the LED (not the ADC) is the prototype's bottleneck.");

    write_csv(
        results_dir().join("ablation_oversampling.csv"),
        &["spp", "p1_at_3_6m", "reach_m"],
        &rows,
    )
    .expect("write csv");
}
