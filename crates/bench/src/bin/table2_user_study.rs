//! Table 2 — users' perception of flickering: percentage of the
//! 20-subject panel perceiving each dimming resolution, under indirect
//! and direct viewing across the three ambient conditions. Also reprints
//! the §6.1 fth (Type-I) study that selected 250 Hz.

use smartvlc_bench::results_dir;
use smartvlc_sim::par_map;
use smartvlc_sim::perception::{StudyCondition, UserStudy, Viewing};
use smartvlc_sim::report::{markdown_table, write_csv};

fn main() {
    let study = UserStudy::recruit(20, 2017);
    println!("Table 2 — users' perception of flickering (20 virtual subjects)\n");

    let print_panel = |viewing: Viewing, resolutions: &[f64], name: &str, csv: &str| {
        // Each resolution polls the whole panel independently — fan out.
        let rows = par_map(resolutions, |_, &r| {
            let mut row = vec![format!("{r}")];
            for c in StudyCondition::ALL {
                row.push(format!(
                    "{:.0}%",
                    study.percent_perceiving_step(viewing, c, r)
                ));
            }
            row
        });
        println!("({name})");
        println!("{}", markdown_table(&["Res.", "L1", "L2", "L3"], &rows));
        write_csv(results_dir().join(csv), &["res", "l1", "l2", "l3"], &rows).expect("write csv");
    };

    print_panel(
        Viewing::Indirect,
        &[0.04, 0.05, 0.06, 0.07, 0.08],
        "a: under indirect viewing",
        "table2a.csv",
    );
    print_panel(
        Viewing::Direct,
        &[0.003, 0.004, 0.005, 0.006, 0.007],
        "b: under direct viewing",
        "table2b.csv",
    );

    let tau_p = study
        .max_safe_resolution(&[0.003, 0.004, 0.005, 0.006, 0.007])
        .expect("some safe resolution");
    println!("=> largest universally-invisible resolution: {tau_p} (paper: tau_p = 0.003)\n");

    println!("Sec. 6.1 — Type-I study: % perceiving an ON/OFF toggle at f:");
    let freqs = [100.0, 150.0, 200.0, 250.0, 300.0];
    let rows: Vec<Vec<String>> = freqs
        .iter()
        .map(|&hz| {
            vec![
                format!("{hz:.0} Hz"),
                format!("{:.0}%", study.percent_perceiving_frequency(hz)),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["frequency", "perceiving"], &rows));
    let fth = study
        .min_safe_frequency(&freqs)
        .expect("some safe frequency");
    println!("=> selected fth = {fth:.0} Hz (paper: 250 Hz, above 802.15.7's 200 Hz)");
    println!("=> Nmax = ftx/fth = {}", (125_000.0 / fth) as u64);
}
