//! Fig. 6 — supported dimming levels before and after multiplexing
//! (N = 10 base symbols).
//!
//! Before: nine discrete levels 0.1..0.9 at resolution 0.1. After
//! multiplexing two patterns into super-symbols: a "semi-continuous"
//! lattice of levels, each with its normalized data rate.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::amppm::{best_mix, Candidate};
use smartvlc_core::{SymbolPattern, SystemConfig};
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::default();
    let table = combinat::BinomialTable::new(512);

    // Before multiplexing: the 9 discrete S(10, K/10) patterns.
    println!("Fig. 6(a) — before multiplexing (N = 10): 9 discrete levels\n");
    let mut rows = Vec::new();
    let mut before_x = Vec::new();
    let mut before_y = Vec::new();
    for k in 1..=9u16 {
        let s = SymbolPattern::new(10, k).unwrap();
        let rate = s.normalized_rate(&table);
        rows.push(vec![f(s.dimming().value(), 2), f(rate, 3)]);
        before_x.push(s.dimming().value());
        before_y.push(rate);
    }
    println!("{}", markdown_table(&["dimming", "norm rate"], &rows));

    // After multiplexing: every target on a 0.025 grid is served by the
    // best two-pattern mix of N = 10 symbols within Nmax.
    println!("Fig. 6(b) — after multiplexing: semi-continuous levels\n");
    let candidates: Vec<Candidate> = (0..=10u16)
        .map(|k| Candidate::evaluate(SymbolPattern::new(10, k).unwrap(), &cfg, &table))
        .collect();
    let mut rows = Vec::new();
    let mut after_x = Vec::new();
    let mut after_y = Vec::new();
    let n_max = cfg.n_max_super() as u32;
    let mut grid = Vec::new();
    let mut t = 0.10;
    while t <= 0.901 {
        grid.push(t);
        t += 0.025;
    }
    for &target in &grid {
        let lo = candidates
            .iter()
            .rfind(|c| c.dimming() <= target + 1e-9)
            .expect("grid within range");
        let hi = candidates
            .iter()
            .find(|c| c.dimming() >= target - 1e-9)
            .expect("grid within range");
        let mix = best_mix(lo, hi, target, 1e-9, n_max, &table).expect("fits");
        rows.push(vec![
            f(target, 3),
            f(mix.dimming, 4),
            f(mix.norm_rate, 3),
            format!("{:?}", mix.super_symbol),
        ]);
        after_x.push(mix.dimming);
        after_y.push(mix.norm_rate);
    }
    println!(
        "{}",
        markdown_table(&["target", "achieved", "norm rate", "super-symbol"], &rows)
    );
    println!(
        "{}",
        ascii_chart(
            "normalized rate vs dimming after multiplexing (Fig. 6(b))",
            "dimming",
            "rate",
            &after_x,
            &[("after", after_y.clone())],
            12
        )
    );
    println!(
        "levels before: {}   levels after (0.025 grid all hit exactly): {}",
        before_x.len(),
        after_x.len()
    );

    let hdrs = ["target", "achieved", "norm_rate", "super_symbol"];
    write_csv(results_dir().join("fig06.csv"), &hdrs, &rows).expect("write csv");
}
