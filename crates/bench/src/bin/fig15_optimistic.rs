//! Fig. 15 under the paper's *stated* parameter reading — the
//! "optimistic" calibration (`SystemConfig::paper_optimistic()`).
//!
//! The paper's measured AMPPM throughput at extreme dimming levels
//! (55.6 Kbps at l = 0.1/0.9) implies symbol lengths around N ≈ 110 —
//! admissible only under its stated SER bound 1e-3 with the slot error
//! probabilities of a *mid-range* operating point (9e-6/8e-6), not the
//! 3.6 m worst case it also reports. This binary runs the analytic
//! scheme comparison under that reading, reproducing the paper's
//! headline extremes; the default calibration (`fig15_scheme_comparison`)
//! reproduces its mid-range instead. Both cannot hold at once — see
//! EXPERIMENTS.md.

use combinat::BinomialTable;
use smartvlc_bench::{f, results_dir};
use smartvlc_core::modem::SlotModem;
use smartvlc_core::schemes::{MppmModem, OokCtModem};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_sim::par_map;
use smartvlc_sim::report::{markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::paper_optimistic();
    println!(
        "Fig. 15 (optimistic calibration): P1={:.0e}, P2={:.0e}, SER bound {:.0e}\n",
        cfg.slot_errors.p_off_error, cfg.slot_errors.p_on_error, cfg.ser_upper_bound
    );
    let planner = AmppmPlanner::new(cfg.clone()).expect("valid config");
    let table = BinomialTable::shared(512);
    let ftx = cfg.ftx_hz as f64;

    // Analytic, so each level is cheap — but the shared planner cache and
    // interned table make the fan-out free, and the pool keeps the plan
    // search for large-N optimistic symbols off the critical path.
    let levels: Vec<f64> = (2..=18).map(|i| i as f64 / 20.0).collect();
    let rows: Vec<Vec<String>> = par_map(&levels, |_, &l| {
        let level = DimmingLevel::new(l).unwrap();
        let plan = planner.plan(level).unwrap();
        let mppm = MppmModem::paper_baseline(level).norm_rate(&table) * ftx;
        let ook = OokCtModem::new(level).unwrap().norm_rate(&table) * ftx;
        vec![
            f(l, 2),
            f(plan.rate_bps / 1e3, 1),
            f(ook / 1e3, 1),
            f(mppm / 1e3, 1),
            format!("{:?}", plan.super_symbol),
        ]
    });
    println!(
        "{}",
        markdown_table(
            &[
                "dimming",
                "AMPPM Kbps",
                "OOK-CT Kbps",
                "MPPM Kbps",
                "super-symbol"
            ],
            &rows
        )
    );

    let extreme = planner
        .plan(DimmingLevel::new(0.1).unwrap())
        .unwrap()
        .rate_bps
        / 1e3;
    println!(
        "AMPPM at l = 0.1: {extreme:.1} Kbps raw (paper measured: 55.6; \
         default calibration: ~47.6)"
    );
    let largest_n = planner
        .candidates()
        .iter()
        .map(|c| c.pattern.n())
        .max()
        .unwrap();
    println!("largest admissible symbol: N = {largest_n} (default calibration: 31)");

    write_csv(
        results_dir().join("fig15_optimistic.csv"),
        &[
            "dimming",
            "amppm_kbps",
            "ookct_kbps",
            "mppm_kbps",
            "super_symbol",
        ],
        &rows,
    )
    .expect("write csv");
}
