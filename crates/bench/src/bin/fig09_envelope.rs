//! Fig. 9 — the slope-based best-pattern envelope (AMPPM Step 3).
//!
//! Prints the hull vertices of the throughput envelope (the paper's
//! blue line), and the interpolated super-symbols at fine-grained levels
//! between two adjacent hull points (the '+' markers), zoomed on the
//! paper's l ∈ [0.5, 0.7] window.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};

fn main() {
    let planner = AmppmPlanner::new(SystemConfig::default()).expect("valid config");

    println!("Fig. 9 — throughput envelope hull vertices\n");
    let rows: Vec<Vec<String>> = planner
        .envelope()
        .points()
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.pattern),
                f(c.dimming(), 4),
                f(c.norm_rate, 4),
                format!("{:.2e}", c.ser),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["pattern", "dimming", "norm rate", "SER"], &rows)
    );
    write_csv(
        results_dir().join("fig09_hull.csv"),
        &["pattern", "dimming", "norm_rate", "ser"],
        &rows,
    )
    .expect("write csv");

    // The paper's zoom window: fine-grained levels between hull points.
    println!("zoom l in [0.50, 0.70]: interpolated super-symbols ('+' markers)\n");
    let mut zoom_rows = Vec::new();
    let mut xs = Vec::new();
    let mut env = Vec::new();
    let mut achieved = Vec::new();
    for i in 0..=20 {
        let l = 0.50 + i as f64 * 0.01;
        let plan = planner
            .plan(DimmingLevel::new(l).unwrap())
            .expect("within envelope");
        let hull_rate = planner.envelope().rate_at(l).unwrap();
        zoom_rows.push(vec![
            f(l, 2),
            f(plan.achieved.value(), 4),
            f(plan.norm_rate, 4),
            f(hull_rate, 4),
            format!("{:?}", plan.super_symbol),
        ]);
        xs.push(l);
        env.push(hull_rate);
        achieved.push(plan.norm_rate);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "target",
                "achieved l",
                "mix rate",
                "hull rate",
                "super-symbol"
            ],
            &zoom_rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "normalized rate: envelope (o) vs realized mixes (*)",
            "dimming",
            "rate",
            &xs,
            &[("mix", achieved.clone()), ("hull", env.clone())],
            10
        )
    );
    let worst_gap = xs
        .iter()
        .enumerate()
        .map(|(i, _)| env[i] - achieved[i])
        .fold(f64::MIN, f64::max);
    println!("largest hull-to-mix gap in the window: {worst_gap:.4} bits/slot");
    write_csv(
        results_dir().join("fig09_zoom.csv"),
        &[
            "target",
            "achieved",
            "mix_rate",
            "hull_rate",
            "super_symbol",
        ],
        &zoom_rows,
    )
    .expect("write csv");
}
