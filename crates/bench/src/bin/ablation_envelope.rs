//! Ablation: what each piece of AMPPM buys (Fig. 9's red-dash line,
//! extended).
//!
//! Three selection strategies over the same candidate set:
//!
//! 1. **no multiplexing** — snap to the nearest single pattern and use
//!    its rate (the paper's red-dash "without multiplexing" line): the
//!    dimming error can be large and the rate sub-hull.
//! 2. **greedy nearest-pair** — multiplex, but mix only the two patterns
//!    closest in dimming rather than the hull bracket: fine granularity,
//!    rate below the envelope.
//! 3. **AMPPM (hull)** — the full Step 3+4 pipeline.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::amppm::{best_mix, candidate_patterns};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::default();
    let table = combinat::BinomialTable::new(512);
    let candidates = candidate_patterns(&cfg, &table);
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();

    let mut rows = Vec::new();
    let (mut xs, mut single_s, mut greedy_s, mut hull_s) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut single_err_worst = 0.0f64;
    for i in 4..=36 {
        let l = i as f64 / 40.0; // 0.1 .. 0.9 in 0.025 steps
                                 // 1. Nearest single pattern.
        let single = candidates
            .iter()
            .filter(|c| c.bits > 0)
            .min_by(|a, b| {
                let da = (a.dimming() - l).abs();
                let db = (b.dimming() - l).abs();
                da.partial_cmp(&db)
                    .unwrap()
                    .then(b.norm_rate.partial_cmp(&a.norm_rate).unwrap())
            })
            .expect("candidates exist");
        single_err_worst = single_err_worst.max((single.dimming() - l).abs());

        // 2. Greedy nearest-pair mix.
        let below = candidates
            .iter()
            .filter(|c| c.dimming() <= l)
            .max_by(|a, b| a.dimming().partial_cmp(&b.dimming()).unwrap())
            .expect("below exists");
        let above = candidates
            .iter()
            .filter(|c| c.dimming() >= l)
            .min_by(|a, b| a.dimming().partial_cmp(&b.dimming()).unwrap())
            .expect("above exists");
        let greedy = best_mix(
            below,
            above,
            l,
            cfg.dimming_quantum / 2.0,
            cfg.n_max_super() as u32,
            &table,
        )
        .expect("fits");

        // 3. Full AMPPM.
        let hull = planner.plan(DimmingLevel::new(l).unwrap()).unwrap();

        rows.push(vec![
            f(l, 3),
            format!("{} ({:+.3})", f(single.norm_rate, 3), single.dimming() - l),
            f(greedy.norm_rate, 3),
            f(hull.norm_rate, 3),
        ]);
        xs.push(l);
        single_s.push(single.norm_rate);
        greedy_s.push(greedy.norm_rate);
        hull_s.push(hull.norm_rate);
    }
    println!("Envelope ablation — normalized rate by selection strategy:\n");
    println!(
        "{}",
        markdown_table(
            &[
                "target l",
                "single (dimming err)",
                "greedy pair",
                "AMPPM hull"
            ],
            &rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "normalized rate: single (o) vs greedy (+) vs AMPPM (*)",
            "dimming",
            "rate",
            &xs,
            &[
                ("AMPPM", hull_s.clone()),
                ("single", single_s.clone()),
                ("greedy", greedy_s.clone()),
            ],
            12
        )
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean rate: AMPPM {:.3}  greedy {:.3}  single {:.3}",
        mean(&hull_s),
        mean(&greedy_s),
        mean(&single_s)
    );
    println!(
        "worst single-pattern dimming error: {single_err_worst:.4} (AMPPM: < {:.4})",
        cfg.dimming_quantum
    );
    assert!(mean(&hull_s) >= mean(&greedy_s) - 1e-9);
    assert!(mean(&hull_s) >= mean(&single_s) - 1e-9);

    write_csv(
        results_dir().join("ablation_envelope.csv"),
        &["target", "single", "greedy", "hull"],
        &xs.iter()
            .enumerate()
            .map(|(i, &l)| {
                vec![
                    f(l, 3),
                    f(single_s[i], 4),
                    f(greedy_s[i], 4),
                    f(hull_s[i], 4),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
}
