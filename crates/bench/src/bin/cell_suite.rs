//! Cell suite: the multi-luminaire room under mobile load.
//!
//! Runs the grid-size × user-count battery from `smartvlc_sim::cell`
//! (2×2 / 3×3 / 4×4 ceiling grids, each serving 2 / 6 / 12 waypoint
//! users), prints the aggregate-goodput and handover tables, and writes
//! the curves as JSON to `results/BENCH_cell.json` plus the telemetry
//! export to `results/TELEMETRY_cell.csv`.
//!
//! The suite then re-runs itself at `SMARTVLC_THREADS=1` and `=8` and
//! verifies the two reports are byte-identical — the runner's
//! determinism contract, enforced on the cell path every time this
//! binary runs (CI diffs the same pair).

use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_sim::cell::{cell_suite_artifacts, CellSuiteSummary};
use smartvlc_sim::report::markdown_table;

const BASE_SEED: u64 = 0xce11_5eed;

fn run_at(threads: Option<usize>, replicates: usize) -> (String, String, Vec<CellSuiteSummary>) {
    let old = std::env::var("SMARTVLC_THREADS").ok();
    if let Some(n) = threads {
        std::env::set_var("SMARTVLC_THREADS", n.to_string());
    }
    let out = cell_suite_artifacts(replicates, BASE_SEED);
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    out
}

fn main() {
    let replicates = if full_run() { 5 } else { 2 };

    // Determinism gate first: the serial run both feeds the tables and
    // becomes the written artifact, so what we print is what we checked.
    let t0 = std::time::Instant::now();
    let (serial, serial_csv, summaries) = run_at(Some(1), replicates);
    let serial_wall_s = t0.elapsed().as_secs_f64();
    let (parallel, parallel_csv, _) = run_at(Some(8), replicates);
    assert_eq!(
        serial, parallel,
        "cell suite differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        serial_csv, parallel_csv,
        "cell telemetry CSV differs between SMARTVLC_THREADS=1 and 8"
    );

    // Wall-clock is legitimately nondeterministic, so it is spliced into
    // the artifact only AFTER the 1-vs-8 byte-equality gate above ran on
    // the pristine strings (CI's determinism diff filters this line out).
    let slots: f64 = summaries.iter().map(|s| s.slots_equivalent).sum();
    let wall_ns_per_slot = serial_wall_s * 1e9 / slots.max(1.0);
    let hits: u64 = summaries.iter().map(|s| s.opcache_hits).sum();
    let misses: u64 = summaries.iter().map(|s| s.opcache_misses).sum();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let serial = serial.replacen(
        "  \"suite\": \"cell\",\n",
        &format!("  \"suite\": \"cell\",\n  \"wall_ns_per_slot\": {wall_ns_per_slot:.1},\n"),
        1,
    );

    let mut rows = Vec::new();
    for s in &summaries {
        rows.push(vec![
            s.scenario.name.clone(),
            format!("{}x{}", s.scenario.nx, s.scenario.ny),
            s.scenario.n_users.to_string(),
            f(s.mean_aggregate_goodput_bps / 1000.0, 1),
            f(s.mean_per_user_goodput_bps / 1000.0, 1),
            s.handovers.to_string(),
            f(s.handover_rate_per_user_min, 2),
            s.mean_handover_latency_s
                .map_or("-".into(), |v| f(v * 1000.0, 0)),
            f(s.outage_fraction * 100.0, 2),
            f(s.interference_limited_fraction * 100.0, 1),
        ]);
    }
    println!("# Cell suite — multi-luminaire room under mobile load\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "grid",
                "users",
                "aggregate kbit/s",
                "per-user kbit/s",
                "handovers",
                "HO/user/min",
                "HO latency ms",
                "outage %",
                "interf-limited %",
            ],
            &rows,
        )
    );
    println!("determinism: SMARTVLC_THREADS=1 and 8 reports are byte-identical");
    println!(
        "rx hot path: {hits} op-point cache hits / {misses} misses ({:.2}% hit rate; \
         the wobbling blind ramp makes every tick a distinct operating point), \
         {wall_ns_per_slot:.0} ns per slot-equivalent (serial wall-clock)",
        hit_rate * 100.0
    );

    let path = results_dir().join("BENCH_cell.json");
    std::fs::write(&path, &serial).expect("write BENCH_cell.json");
    println!("wrote {}", path.display());
    let csv_path = results_dir().join("TELEMETRY_cell.csv");
    std::fs::write(&csv_path, &serial_csv).expect("write TELEMETRY_cell.csv");
    println!("wrote {}", csv_path.display());
}
