//! Cell suite: the multi-luminaire room under mobile load.
//!
//! Runs the grid-size × user-count battery from `smartvlc_sim::cell`
//! (2×2 / 3×3 / 4×4 ceiling grids, each serving 2 / 6 / 12 waypoint
//! users) on the event-driven core, prints the aggregate-goodput and
//! handover tables, and writes the curves as JSON to
//! `results/BENCH_cell.json` plus the telemetry export to
//! `results/TELEMETRY_cell.csv`.
//!
//! On top of the legacy battery, the **scale battery** (8×8×100 up to
//! 32×32×1000 — the grids the event queue's per-user FoV window exists
//! for) is run once per scenario, timed, and reported as the
//! wall-clock/events-per-second scaling curve: a deterministic
//! `"scaling"` section plus a nondeterministic `"scaling_wall"` line
//! that is spliced in only after the byte-equality gates (CI's
//! determinism diff filters it out; CI's perf gate asserts its 8×8
//! events/sec against a tracked floor).
//!
//! The **policy battery** compares the TDMA scheduling policies
//! (equal-share, proportional-fair, coordinated-edge) on the reference
//! 4×4 and 8×8 grids with the smartvlc-net workload mix replayed:
//! per-policy goodput, Jain fairness, cell-edge (p5) user rate and
//! per-flow completion times land in the `"policies"` section, and an
//! in-binary gate asserts the coordinated scheduler never leaves
//! cell-edge users worse off than equal share on the 4×4 grid.
//!
//! The suite re-runs itself at `SMARTVLC_THREADS=1` and `=8` and
//! verifies all batteries' reports are byte-identical — the runner's
//! determinism contract, enforced on the cell path every time this
//! binary runs (CI diffs the same pair).

use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_sim::cell::{
    cell_policy_json, cell_scale_json, cell_scale_scenarios, cell_suite_artifacts, run_cell,
    run_cell_policies, run_cell_scale, CellSuiteSummary, ScalePoint,
};
use smartvlc_sim::report::markdown_table;
use smartvlc_sim::task_seed;

const BASE_SEED: u64 = 0xce11_5eed;
const SCALE_SEED: u64 = 0x5ca1_ab1e;

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let old = std::env::var("SMARTVLC_THREADS").ok();
    std::env::set_var("SMARTVLC_THREADS", threads.to_string());
    let out = f();
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    out
}

fn run_at(threads: usize, replicates: usize) -> (String, String, Vec<CellSuiteSummary>) {
    with_threads(threads, || cell_suite_artifacts(replicates, BASE_SEED))
}

fn main() {
    let replicates = if full_run() { 5 } else { 2 };

    // Determinism gate first: the serial run both feeds the tables and
    // becomes the written artifact, so what we print is what we checked.
    let t0 = std::time::Instant::now();
    let (serial, serial_csv, summaries) = run_at(1, replicates);
    let serial_wall_s = t0.elapsed().as_secs_f64();
    let (parallel, parallel_csv, _) = run_at(8, replicates);
    assert_eq!(
        serial, parallel,
        "cell suite differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        serial_csv, parallel_csv,
        "cell telemetry CSV differs between SMARTVLC_THREADS=1 and 8"
    );

    // Scale battery: each scenario run serially (timed — the wall-clock
    // curve is the point), reproducing the pool's per-scenario seeds so
    // the 8-thread pool leg below must match byte-for-byte.
    let scale_scenarios = cell_scale_scenarios();
    let mut points: Vec<ScalePoint> = Vec::new();
    let mut wall_ms: Vec<f64> = Vec::new();
    for (i, sc) in scale_scenarios.iter().enumerate() {
        let seed = task_seed(SCALE_SEED, i as u64);
        let t = std::time::Instant::now();
        let r = run_cell(&sc.config(), seed);
        wall_ms.push(t.elapsed().as_secs_f64() * 1e3);
        points.push(ScalePoint::from_report(sc, &r));
    }
    let scale_json = cell_scale_json(&points);
    let pooled = with_threads(8, || run_cell_scale(SCALE_SEED));
    assert_eq!(
        scale_json,
        cell_scale_json(&pooled),
        "scale battery differs between serial and SMARTVLC_THREADS=8"
    );

    // Policy battery: every scheduling policy on the reference grids with
    // the net workload mix replayed — deterministic end to end, so the
    // 1-vs-8-thread byte gate covers it like the main battery. Policies
    // sharing a grid run the same seed, so the columns compare nothing
    // but the scheduler.
    let policies = with_threads(1, || run_cell_policies(BASE_SEED));
    let policy_json = cell_policy_json(&policies);
    let policies_par = with_threads(8, || run_cell_policies(BASE_SEED));
    assert_eq!(
        policy_json,
        cell_policy_json(&policies_par),
        "policy battery differs between SMARTVLC_THREADS=1 and 8"
    );
    // Coordination gate: on the reference 4×4 grid the coordinated
    // scheduler must not leave cell-edge users worse off than equal
    // share (CI re-checks this from the written artifact).
    let p5 = |policy: &str| {
        policies
            .iter()
            .find(|p| p.nx == 4 && p.policy == policy)
            .map(|p| p.edge_p5_goodput_bps)
            .expect("4x4 policy point present")
    };
    assert!(
        p5("coordinated_edge") >= p5("equal_share"),
        "cell-edge p5 regressed under coordination: {} < {}",
        p5("coordinated_edge"),
        p5("equal_share")
    );

    // Wall-clock is legitimately nondeterministic, so it is spliced into
    // the artifact only AFTER the byte-equality gates above ran on the
    // pristine strings (CI's determinism diff filters these lines out).
    let slots: f64 = summaries.iter().map(|s| s.slots_equivalent).sum();
    let wall_ns_per_slot = serial_wall_s * 1e9 / slots.max(1.0);
    let hits: u64 = summaries.iter().map(|s| s.opcache_hits).sum();
    let misses: u64 = summaries.iter().map(|s| s.opcache_misses).sum();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let qhits: u64 = summaries.iter().map(|s| s.opcache_hits_quantized).sum();
    let qmisses: u64 = summaries.iter().map(|s| s.opcache_misses_quantized).sum();
    let qhit_rate = qhits as f64 / (qhits + qmisses).max(1) as f64;
    let scaling_wall: Vec<String> = points
        .iter()
        .zip(&wall_ms)
        .map(|(p, w)| {
            format!(
                "{{\"name\": \"{}\", \"wall_ms\": {w:.1}, \"events_per_sec\": {:.0}}}",
                p.name,
                p.events as f64 / (w / 1e3).max(1e-9)
            )
        })
        .collect();
    let serial = serial.replacen(
        "  \"suite\": \"cell\",\n",
        &format!(
            "  \"suite\": \"cell\",\n  \"wall_ns_per_slot\": {wall_ns_per_slot:.1},\n  \
             \"scaling_wall\": [{}],\n",
            scaling_wall.join(", ")
        ),
        1,
    );
    // The deterministic half of the scaling curve participated in the
    // byte gate above, so it can live as a regular section.
    let serial = serial.replacen(
        "  \"scenarios\": [",
        &format!("  \"scaling\": {scale_json},\n  \"scenarios\": ["),
        1,
    );
    // The policy comparison is deterministic end to end (gated above).
    let serial = serial.replacen(
        "  \"scenarios\": [",
        &format!("  \"policies\": {policy_json},\n  \"scenarios\": ["),
        1,
    );

    let mut rows = Vec::new();
    for s in &summaries {
        rows.push(vec![
            s.scenario.name.clone(),
            format!("{}x{}", s.scenario.cfg.nx, s.scenario.cfg.ny),
            s.scenario.cfg.n_users.to_string(),
            f(s.mean_aggregate_goodput_bps / 1000.0, 1),
            f(s.mean_per_user_goodput_bps / 1000.0, 1),
            s.handovers.to_string(),
            f(s.handover_rate_per_user_min, 2),
            s.mean_handover_latency_s
                .map_or("-".into(), |v| f(v * 1000.0, 0)),
            f(s.outage_fraction * 100.0, 2),
            f(s.interference_limited_fraction * 100.0, 1),
        ]);
    }
    println!("# Cell suite — multi-luminaire room under mobile load\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "grid",
                "users",
                "aggregate kbit/s",
                "per-user kbit/s",
                "handovers",
                "HO/user/min",
                "HO latency ms",
                "outage %",
                "interf-limited %",
            ],
            &rows,
        )
    );
    println!("determinism: SMARTVLC_THREADS=1 and 8 reports are byte-identical");
    println!(
        "rx hot path: {hits} op-point cache hits / {misses} misses ({:.2}% hit rate raw, \
         {:.1}% with 50-lux sensor quantization), \
         {wall_ns_per_slot:.0} ns per slot-equivalent (serial wall-clock)",
        hit_rate * 100.0,
        qhit_rate * 100.0,
    );

    let mut scale_rows = Vec::new();
    for (p, w) in points.iter().zip(&wall_ms) {
        scale_rows.push(vec![
            p.name.clone(),
            format!("{}x{}", p.nx, p.ny),
            p.users.to_string(),
            p.events.to_string(),
            p.queue_peak.to_string(),
            f(*w, 0),
            f(p.events as f64 / (w / 1e3).max(1e-9) / 1000.0, 0),
            f(p.aggregate_goodput_bps / 1000.0, 0),
        ]);
    }
    println!("\n# Scaling — event-driven core, one simulated minute per point\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "grid",
                "users",
                "events",
                "queue peak",
                "wall ms",
                "k events/s",
                "aggregate kbit/s",
            ],
            &scale_rows,
        )
    );

    let mut policy_rows = Vec::new();
    for p in &policies {
        let t = p.traffic.as_ref();
        policy_rows.push(vec![
            format!("{}x{}", p.nx, p.ny),
            p.users.to_string(),
            p.policy.to_string(),
            f(p.aggregate_goodput_bps / 1000.0, 1),
            f(p.jain_fairness, 3),
            f(p.edge_p5_goodput_bps / 1000.0, 1),
            format!("{}/{}", p.coord_grants, p.coord_blocked),
            t.map_or("-".into(), |t| {
                format!("{}/{}", t.flows_completed, t.flows_offered)
            }),
            t.and_then(|t| t.fct_p50_s).map_or("-".into(), |v| f(v, 2)),
            t.and_then(|t| t.fct_p95_s).map_or("-".into(), |v| f(v, 2)),
        ]);
    }
    println!("\n# Scheduling policies — net workload replay, same seed per grid\n");
    println!(
        "{}",
        markdown_table(
            &[
                "grid",
                "users",
                "policy",
                "aggregate kbit/s",
                "Jain",
                "edge p5 kbit/s",
                "coord ok/blocked",
                "flows done/offered",
                "FCT p50 s",
                "FCT p95 s",
            ],
            &policy_rows,
        )
    );
    println!("gate: coordinated_edge cell-edge p5 >= equal_share on the 4x4 grid");

    let path = results_dir().join("BENCH_cell.json");
    std::fs::write(&path, &serial).expect("write BENCH_cell.json");
    println!("wrote {}", path.display());
    let csv_path = results_dir().join("TELEMETRY_cell.csv");
    std::fs::write(&csv_path, &serial_csv).expect("write TELEMETRY_cell.csv");
    println!("wrote {}", csv_path.display());
}
