//! Broadcast extension table: one luminaire, a room of receivers.
//!
//! §3 describes "a transmitter and receivers"; the paper's measurements
//! place one receiver at a time. This generator fills in the implied
//! multi-receiver picture: the same AMPPM waveform reaching six office
//! seats, with per-seat goodput determined by each seat's geometry —
//! a two-dimensional composition of Figs. 16 and 17.

use desim::SimDuration;
use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_sim::report::{markdown_table, write_csv};
use smartvlc_sim::{run_broadcast, Seat};

fn main() {
    let seats = [
        (
            "desk under lamp",
            Seat {
                distance_m: 1.2,
                off_axis_deg: 0.0,
            },
        ),
        (
            "neighbour desk",
            Seat {
                distance_m: 2.2,
                off_axis_deg: 6.0,
            },
        ),
        (
            "meeting chair",
            Seat {
                distance_m: 3.0,
                off_axis_deg: 3.0,
            },
        ),
        (
            "window seat",
            Seat {
                distance_m: 3.3,
                off_axis_deg: 12.0,
            },
        ),
        (
            "far corner",
            Seat {
                distance_m: 4.6,
                off_axis_deg: 4.0,
            },
        ),
        (
            "next room door",
            Seat {
                distance_m: 3.0,
                off_axis_deg: 40.0,
            },
        ),
    ];
    let dur = if full_run() {
        SimDuration::secs(10)
    } else {
        SimDuration::secs(1)
    };
    println!(
        "Broadcast: one AMPPM luminaire at l = 0.5 serving six seats ({} s)\n",
        dur.as_secs_f64()
    );
    let raw: Vec<Seat> = seats.iter().map(|&(_, s)| s).collect();
    let reports = run_broadcast(0.5, &raw, dur, 2017);

    let rows: Vec<Vec<String>> = seats
        .iter()
        .zip(&reports)
        .map(|(&(name, s), r)| {
            vec![
                name.to_string(),
                f(s.distance_m, 1),
                f(s.off_axis_deg, 0),
                r.frames_ok.to_string(),
                r.frames_bad.to_string(),
                f(r.goodput_bps / 1e3, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "seat",
                "dist m",
                "angle",
                "frames ok",
                "frames bad",
                "goodput Kbps"
            ],
            &rows
        )
    );
    println!("reading: all in-beam seats within ~3.5 m receive the identical");
    println!("broadcast at full rate; the Fig. 16 distance cliff and the Fig. 17");
    println!("angular cut-off each claim a seat; beyond the FoV there is nothing.");

    write_csv(
        results_dir().join("tableB_broadcast.csv"),
        &["seat", "dist_m", "angle_deg", "ok", "bad", "goodput_kbps"],
        &rows,
    )
    .expect("write csv");
}
