//! Ablation: super-symbol ordering — even interleave (ours) vs plain
//! concatenation (the paper's Fig. 7).
//!
//! The paper bounds the *length* of a super-symbol (Eq. 4) so its
//! internal brightness structure repeats above fth, and concatenates
//! `m1 × S1` then `m2 × S2`. We additionally spread the copies evenly.
//! This binary quantifies what that buys: the peak short-window
//! brightness excursion of the waveform (the quantity the eye's
//! fth-period integration sees) for both orderings, across dimming
//! levels. Same data, same rate, same length — strictly less
//! low-frequency ripple.

use combinat::{BigUint, BinomialTable, BitReader};
use smartvlc_bench::{f, results_dir};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_sim::report::{markdown_table, write_csv};

/// Peak absolute deviation of the sliding `w`-slot mean from the global
/// duty (the eye-filtered ripple amplitude).
fn ripple(slots: &[bool], w: usize) -> f64 {
    if slots.len() < w {
        return 0.0;
    }
    let duty = slots.iter().filter(|&&b| b).count() as f64 / slots.len() as f64;
    let mut ones: i64 = slots[..w].iter().map(|&b| b as i64).sum();
    let mut worst = 0.0f64;
    for i in 0..=slots.len() - w {
        if i > 0 {
            ones += slots[i + w - 1] as i64 - slots[i - 1] as i64;
        }
        worst = worst.max((ones as f64 / w as f64 - duty).abs());
    }
    worst
}

fn main() {
    let cfg = SystemConfig::default();
    let planner = AmppmPlanner::new(cfg.clone()).unwrap();
    let table = BinomialTable::new(512);
    let payload = vec![0x5Au8; 256];
    let w = 125; // 1 ms window: intra-super-symbol timescale

    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for i in 1..=9 {
        let l = i as f64 / 10.0;
        let plan = planner.plan(DimmingLevel::new(l).unwrap()).unwrap();
        let ss = plan.super_symbol;
        if ss.m1() == 0 || ss.m2() == 0 {
            continue; // single-pattern super-symbol: orderings coincide
        }

        // Build both waveforms from the same data bits.
        let build = |patterns: &[smartvlc_core::SymbolPattern], table: &BinomialTable| {
            let mut reader = BitReader::new(&payload);
            let mut slots = Vec::new();
            for _ in 0..4 {
                // four super-symbols worth
                for &p in patterns {
                    let bits = p.bits_per_symbol(table) as usize;
                    let mut word = reader.read_bits(bits);
                    word.resize(bits, false);
                    let v = BigUint::from_bits_msb(&word);
                    slots.extend(p.encode(table, &v).unwrap());
                }
            }
            slots
        };
        let interleaved = build(&ss.symbol_sequence(), &table);
        let mut concat_seq = vec![ss.s1(); ss.m1() as usize];
        concat_seq.extend(vec![ss.s2(); ss.m2() as usize]);
        let concatenated = build(&concat_seq, &table);

        let r_int = ripple(&interleaved, w);
        let r_cat = ripple(&concatenated, w);
        improvements.push(r_cat / r_int.max(1e-12));
        rows.push(vec![
            f(l, 1),
            format!("{:?}", ss),
            f(r_cat, 4),
            f(r_int, 4),
            format!("{:.2}x", r_cat / r_int.max(1e-12)),
        ]);
    }
    println!("Super-symbol ordering ablation — 1 ms-window brightness ripple:\n");
    println!(
        "{}",
        markdown_table(
            &[
                "level",
                "super-symbol",
                "concat ripple",
                "interleaved ripple",
                "reduction"
            ],
            &rows
        )
    );
    let mean = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
    println!("mean ripple reduction from interleaving: {mean:.2}x");
    println!("(both orderings satisfy Eq. 4; interleaving just leaves more margin)");
    assert!(mean >= 1.0, "interleaving must not be worse on average");

    write_csv(
        results_dir().join("ablation_interleaving.csv"),
        &[
            "level",
            "super_symbol",
            "concat",
            "interleaved",
            "reduction",
        ],
        &rows,
    )
    .expect("write csv");
}
