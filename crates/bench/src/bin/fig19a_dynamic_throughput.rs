//! Fig. 19(a) — throughput over the 67-second blind pull.
//!
//! The blind opens at constant speed; ambient brightens; the LED dims
//! from ~0.95 toward ~0.2; throughput traces the static Fig. 15 curve as
//! the operating level sweeps through the hump.

use smartvlc_bench::{f, full_run, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::run_dynamic;

fn main() {
    let secs = if full_run() { 67.0 } else { 20.0 };
    println!("Fig. 19(a) — dynamic throughput over a {secs:.0} s blind pull\n");
    let outcome = run_dynamic(SchemeKind::Amppm, Some(secs), 19);
    let tp = &outcome.report.throughput_bps;

    let rows: Vec<Vec<String>> = tp
        .iter()
        .map(|&(t, bps)| vec![f(t, 0), f(bps / 1e3, 1)])
        .collect();
    println!("{}", markdown_table(&["t (s)", "Kbps"], &rows));
    let xs: Vec<f64> = tp.iter().map(|&(t, _)| t).collect();
    let ys: Vec<f64> = tp.iter().map(|&(_, b)| b / 1e3).collect();
    println!(
        "{}",
        ascii_chart(
            "throughput (Kbps) vs time (s)",
            "t",
            "Kbps",
            &xs,
            &[("AMPPM", ys.clone())],
            12
        )
    );

    let peak = ys.iter().copied().fold(f64::MIN, f64::max);
    let start = ys.first().copied().unwrap_or(0.0);
    let end = ys.last().copied().unwrap_or(0.0);
    println!("shape: starts ~{start:.0}, peaks ~{peak:.0} mid-sweep, ends ~{end:.0} Kbps");
    println!("(paper: ~60 -> ~105 -> ~55 Kbps, near-symmetric, tracking Fig. 15)");

    write_csv(results_dir().join("fig19a.csv"), &["t_s", "kbps"], &rows).expect("write csv");
}
