//! Platform ablation (the quantitative form of §5.2's discussion): which
//! BBB GPIO access methods can sustain the paper's clocks, and what each
//! would cap the system throughput at.
//!
//! This is the table behind the paper's implementation claim that the
//! PRUs — not sysfs, mmap or a Xenomai kernel — are what make a $60
//! board run a 125 kHz VLC transmitter and a 500 kS/s receiver.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use smartvlc_sim::report::{markdown_table, write_csv};
use vlc_hw::pru::{AccessMethod, PruTimingModel};

fn main() {
    println!("Platform rates — Sec. 5.2's four GPIO access methods on the BBB\n");
    let planner = AmppmPlanner::new(SystemConfig::default()).unwrap();
    let peak_norm = planner
        .plan(DimmingLevel::new(0.5).unwrap())
        .unwrap()
        .norm_rate;

    let mut rows = Vec::new();
    for m in AccessMethod::ALL {
        let t = PruTimingModel::bbb(m);
        let slot_hz = t.max_rate_hz();
        let spi_hz = t.max_spi_sample_rate_hz();
        // The achievable ftx is also capped by the LED (125 kHz) and the
        // receiver needs fs = 4 ftx.
        let ftx = slot_hz.min(spi_hz / 4.0).min(125_000.0);
        rows.push(vec![
            t.method.name().to_string(),
            f(slot_hz / 1e3, 1),
            f(spi_hz / 1e3, 1),
            if t.supports_hz(125_000.0) && spi_hz >= 500_000.0 {
                "yes".into()
            } else {
                "NO".into()
            },
            f(ftx * peak_norm / 1e3, 1),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "method",
                "max toggle kHz",
                "max ADC kS/s",
                "sustains paper clocks?",
                "peak AMPPM Kbps"
            ],
            &rows
        )
    );
    println!("paper checkpoints: sysfs ~ sub-10 kHz; mmap ~10x sysfs; Xenomai ~50 kHz [38];");
    println!("PRU reaches Mbps-order — only it sustains ftx = 125 kHz + fs = 500 kS/s.");

    write_csv(
        results_dir().join("tableA_platform.csv"),
        &["method", "toggle_khz", "adc_ksps", "sustains", "peak_kbps"],
        &rows,
    )
    .expect("write csv");
}
