//! Fig. 5 / §4.1.2 — dimming resolution through multiplexing.
//!
//! The paper's worked example: nine N = 10 levels at resolution 0.1;
//! one appended symbol halves it to 0.05 (Fig. 5's 0.15 example); a
//! three-to-one mix reaches 0.025 (the 0.175 example); the full Nmax
//! budget makes the level set semi-continuous (Fig. 6(b)). This
//! generator prints that progression exactly, then the resolution of the
//! full AMPPM candidate set.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::amppm::{candidate_patterns, Candidate, ResolutionProfile};
use smartvlc_core::{SymbolPattern, SystemConfig};
use smartvlc_sim::report::{markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::default();
    let table = combinat::BinomialTable::new(512);
    let n10: Vec<Candidate> = (1..=9u16)
        .map(|k| Candidate::evaluate(SymbolPattern::new(10, k).unwrap(), &cfg, &table))
        .collect();

    println!("Fig. 5 — resolution vs multiplexing budget (N = 10 family)\n");
    let mut rows = Vec::new();
    for (budget, label) in [
        (10u32, "single symbol"),
        (20, "2 symbols (Fig. 5's 0.15)"),
        (40, "4 symbols (0.175 example)"),
        (100, "10 symbols"),
        (500, "full Nmax = 500"),
    ] {
        let p = ResolutionProfile::for_candidates(&n10, budget);
        rows.push(vec![
            budget.to_string(),
            label.to_string(),
            p.count().to_string(),
            f(p.max_gap, 4),
            f(p.mean_gap, 5),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["slot budget", "meaning", "levels", "max gap", "mean gap"],
            &rows
        )
    );
    write_csv(
        results_dir().join("fig05_n10.csv"),
        &["budget", "meaning", "levels", "max_gap", "mean_gap"],
        &rows,
    )
    .expect("write csv");

    // The full Step-2 candidate set, pairwise within a moderate budget
    // (the planner's own search space at one level).
    let all = candidate_patterns(&cfg, &table);
    let slice: Vec<Candidate> = all
        .iter()
        .filter(|c| c.pattern.n() >= 24)
        .copied()
        .collect();
    let p = ResolutionProfile::for_candidates(&slice, 180);
    println!(
        "full candidate set (N >= 24 slice, 180-slot budget): {} levels, \
         max gap {:.5}, mean gap {:.6}",
        p.count(),
        p.max_gap,
        p.mean_gap
    );
    println!("\npaper check: 0.1 -> 0.05 -> 0.025 progression reproduced; the");
    println!("Nmax budget makes supported levels 'semi-continuous' (Fig. 6(b)),");
    println!("with worst-case snapping error well under tau_p = 0.003.");
}
