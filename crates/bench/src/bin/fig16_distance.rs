//! Fig. 16 — throughput vs communication distance for dimming levels
//! 0.18, 0.5 and 0.7.
//!
//! Paper shape: flat peak throughput per level out to 3.6 m, then a
//! sharp collapse (frame-level error amplification of the 1/d² SNR
//! roll-off); the dimming level does not change the reach, because
//! brightness is duty-cycle, not amplitude.

use smartvlc_bench::{f, point_duration, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::run_distance_matrix;

fn main() {
    let distances: Vec<f64> = (1..=10).map(|i| i as f64 * 0.5).collect(); // 0.5..5.0 m
    let levels = [0.18, 0.5, 0.7];
    let dur = point_duration();
    println!(
        "Fig. 16 — AMPPM goodput vs distance, {} s per point\n",
        dur.as_secs_f64()
    );

    // All 3 × 10 cells fan out as one flat batch on the work pool.
    let sweeps = run_distance_matrix(SchemeKind::Amppm, &levels, &distances, dur, 16);

    let mut rows = Vec::new();
    for (i, &d) in distances.iter().enumerate() {
        rows.push(vec![
            f(d, 1),
            f(sweeps[0][i].goodput_bps / 1e3, 1),
            f(sweeps[1][i].goodput_bps / 1e3, 1),
            f(sweeps[2][i].goodput_bps / 1e3, 1),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["distance m", "l=0.18 Kbps", "l=0.5 Kbps", "l=0.7 Kbps"],
            &rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "goodput (Kbps) vs distance (m)",
            "distance",
            "Kbps",
            &distances,
            &[
                (
                    "l=0.18",
                    sweeps[0].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
                (
                    "l=0.5",
                    sweeps[1].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
                (
                    "l=0.7",
                    sweeps[2].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
            ],
            12
        )
    );

    // Where does each level lose half its peak?
    for (li, &l) in levels.iter().enumerate() {
        let peak = sweeps[li]
            .iter()
            .map(|p| p.goodput_bps)
            .fold(f64::MIN, f64::max);
        let reach = distances
            .iter()
            .zip(&sweeps[li])
            .take_while(|(_, p)| p.goodput_bps > peak / 2.0)
            .map(|(&d, _)| d)
            .last()
            .unwrap_or(0.0);
        println!(
            "l={l}: peak {:.1} Kbps held through ~{reach} m (paper: 3.6 m)",
            peak / 1e3
        );
    }

    write_csv(
        results_dir().join("fig16.csv"),
        &["distance_m", "l018_bps", "l05_bps", "l07_bps"],
        &distances
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                vec![
                    f(d, 2),
                    f(sweeps[0][i].goodput_bps, 1),
                    f(sweeps[1][i].goodput_bps, 1),
                    f(sweeps[2][i].goodput_bps, 1),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
}
