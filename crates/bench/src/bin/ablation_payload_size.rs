//! Ablation: frame payload size (§6.1's remark, quantified).
//!
//! "The gain of AMPPM will decrease if the payload is too small. This is
//! due to the overhead in the frame header. Note that for the same
//! reason, the performance of all other schemes will also degrade when
//! the payload is small."

use desim::SimDuration;
use smartvlc_bench::{f, results_dir};
use smartvlc_link::{LinkConfig, LinkSimulation, SchemeKind};
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use vlc_channel::ambient::ConstantAmbient;

fn goodput(payload_len: usize, scheme: SchemeKind) -> f64 {
    let mut cfg = LinkConfig::paper_static(3.0, scheme, 99);
    cfg.sys.payload_len = payload_len;
    cfg.duration = SimDuration::secs(1);
    // Fixed bright-office ambient; set-point puts the LED at 0.3.
    cfg.channel.ambient_lux = 8080.0;
    cfg.illum_target = 8080.0 / cfg.full_scale_lux + 0.3;
    let mut sim = LinkSimulation::new(cfg).expect("valid scenario");
    sim.run(&mut ConstantAmbient { lux: 8080.0 })
        .mean_goodput_bps
}

fn main() {
    let sizes = [16usize, 32, 64, 128, 256, 512, 1024];
    println!("Payload-size ablation at l = 0.3, 3 m (paper fixes 128 B):\n");
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut amppm_series = Vec::new();
    let mut mppm_series = Vec::new();
    for &size in &sizes {
        let amppm = goodput(size, SchemeKind::Amppm);
        let mppm = goodput(size, SchemeKind::Mppm(20));
        rows.push(vec![
            size.to_string(),
            f(amppm / 1e3, 1),
            f(mppm / 1e3, 1),
            format!("{:+.1}%", (amppm / mppm - 1.0) * 100.0),
        ]);
        xs.push(size as f64);
        amppm_series.push(amppm / 1e3);
        mppm_series.push(mppm / 1e3);
    }
    println!(
        "{}",
        markdown_table(
            &["payload B", "AMPPM Kbps", "MPPM Kbps", "AMPPM gain"],
            &rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "goodput vs payload size",
            "bytes",
            "Kbps",
            &xs,
            &[
                ("AMPPM", amppm_series.clone()),
                ("MPPM", mppm_series.clone())
            ],
            10
        )
    );
    println!("shape check: both schemes lose throughput at small payloads (fixed");
    println!("preamble/header/comp overhead per frame); AMPPM's absolute gain");
    println!("persists, exactly as Sec. 6.1 predicts.");
    assert!(
        amppm_series[0] < amppm_series[3],
        "small payloads must cost"
    );

    write_csv(
        results_dir().join("ablation_payload.csv"),
        &["payload_b", "amppm_kbps", "mppm_kbps", "gain"],
        &rows,
    )
    .expect("write csv");
}
