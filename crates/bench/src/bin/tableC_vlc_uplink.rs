//! Footnote-2 table: why the paper's ACKs ride Wi-Fi, and what LED the
//! future needs for an all-optical link.
//!
//! Sweeps mobile-node LED power × distance and prints the uplink ACK
//! delivery probability, then runs the full system at 3 m with each
//! uplink to show the MAC-level consequence.

use desim::{DetRng, SimDuration};
use smartvlc_bench::{f, results_dir};
use smartvlc_link::link::UplinkKind;
use smartvlc_link::{LinkConfig, LinkSimulation, SchemeKind, VlcUplink, VlcUplinkConfig};
use smartvlc_sim::report::{markdown_table, write_csv};
use vlc_channel::ambient::ConstantAmbient;

fn main() {
    println!("VLC uplink feasibility (footnote 2) — ACK delivery probability\n");
    let powers = [
        (0.05, "indicator 50 mW"),
        (0.35, "flashlight 350 mW"),
        (3.0, "luminaire-class 3 W"),
    ];
    let distances = [0.5, 1.0, 1.5, 2.0, 3.0, 3.6];
    let mut rows = Vec::new();
    for &(w, label) in &powers {
        let mut row = vec![label.to_string()];
        for &d in &distances {
            let mut cfg = VlcUplinkConfig::mobile_node(d);
            cfg.tx_optical_w = w;
            if w >= 3.0 {
                cfg.semi_angle_deg = 15.0; // the future LED is aimed
            }
            let u: VlcUplink<u16> = VlcUplink::new(cfg, DetRng::seed_from_u64(1));
            row.push(format!("{:.0}%", u.success_prob() * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("mobile LED".to_string())
        .chain(distances.iter().map(|d| format!("{d} m")))
        .collect();
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", markdown_table(&hdr, &rows));
    write_csv(results_dir().join("tableC_uplink.csv"), &hdr, &rows).expect("write csv");

    println!("system consequence at 3 m (1 s runs, AMPPM downlink):\n");
    let mut sys_rows = Vec::new();
    for (uplink, name) in [
        (UplinkKind::Wifi, "Wi-Fi (paper)"),
        (UplinkKind::Vlc { tx_optical_w: 0.35 }, "VLC 350 mW"),
        (UplinkKind::Vlc { tx_optical_w: 3.0 }, "VLC 3 W wide-beam"),
    ] {
        let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 44);
        cfg.duration = SimDuration::secs(1);
        cfg.uplink = uplink;
        let mut sim = LinkSimulation::new(cfg).expect("valid scenario");
        let r = sim.run(&mut ConstantAmbient { lux: 5000.0 });
        sys_rows.push(vec![
            name.to_string(),
            r.stats.frames_ok.to_string(),
            r.stats.acks_received.to_string(),
            r.stats.retransmissions.to_string(),
            f(r.mean_goodput_bps / 1e3, 1),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "uplink",
                "frames ok",
                "ACKs back",
                "retransmissions",
                "acked goodput Kbps"
            ],
            &sys_rows
        )
    );
    println!("reading: the downlink decodes fine either way; without a reverse");
    println!("channel that reaches, the ARQ spins. Exactly footnote 2's call.");
}
