//! Chaos suite: scheduled channel faults against the self-healing link.
//!
//! Runs the scenario battery from `smartvlc_sim::chaos` (ambient spikes,
//! occlusion, clock drift, symbol slips, saturation, flaky uplink, a
//! kitchen-sink combination, and the deep fade) **twice per seed** —
//! ARQ-only and with the nominal FEC outer code — prints a markdown
//! recovery table, and writes the per-scenario metrics as JSON to
//! `results/BENCH_chaos.json`. The legacy per-scenario keys come from
//! the ARQ-only leg; the coded leg rides along as a one-line `fec_on`
//! object plus a `goodput_retained_delta`, so
//! `grep '"fec_on"' results/BENCH_chaos.json` shows what the code buys.
//!
//! The suite then re-runs itself at `SMARTVLC_THREADS=1` and `=8` and
//! verifies the two JSON reports are byte-identical — the runner's
//! determinism contract, enforced on the chaos path (both legs) every
//! time this binary runs (CI diffs the same pair).

use smartvlc_bench::{f, full_run, indent_json, results_dir};
use smartvlc_obs as obs;
use smartvlc_sim::chaos::{ChaosFecComparison, ChaosSummary};
use smartvlc_sim::report::markdown_table;
use smartvlc_sim::run_chaos_suite_fec;

const BASE_SEED: u64 = 0x5eed_c4a0;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The coded leg, as a single JSON line so it stays grep-filterable.
fn fec_on_json(s: &ChaosSummary) -> String {
    format!(
        "{{\"mean_goodput_retained\": {:.6}, \"min_goodput_retained\": {:.6}, \
         \"mean_goodput_bps\": {:.3}, \"fec_corrected_symbols\": {}, \
         \"fec_decode_failures\": {}, \"mean_fec_overhead\": {:.6}}}",
        s.mean_goodput_retained,
        s.min_goodput_retained,
        s.mean_goodput_bps,
        s.fec_corrected_symbols,
        s.fec_decode_failures,
        s.mean_fec_overhead
    )
}

/// Hand-rolled JSON (the workspace is fully offline — no serde_json):
/// stable key order, fixed float formatting, so equal results mean equal
/// bytes.
fn to_json(
    comparisons: &[ChaosFecComparison],
    replicates: usize,
    telemetry: &obs::Snapshot,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base_seed\": {BASE_SEED},\n"));
    out.push_str(&format!("  \"replicates\": {replicates},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let s = &c.off;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(s.name)));
        out.push_str(&format!(
            "      \"description\": \"{}\",\n",
            json_escape(s.description)
        ));
        out.push_str(&format!(
            "      \"mean_goodput_retained\": {:.6},\n",
            s.mean_goodput_retained
        ));
        out.push_str(&format!(
            "      \"min_goodput_retained\": {:.6},\n",
            s.min_goodput_retained
        ));
        out.push_str(&format!(
            "      \"mean_goodput_bps\": {:.3},\n",
            s.mean_goodput_bps
        ));
        match s.mean_resync_s {
            Some(v) => out.push_str(&format!("      \"mean_resync_s\": {v:.6},\n")),
            None => out.push_str("      \"mean_resync_s\": null,\n"),
        }
        out.push_str(&format!(
            "      \"late_deliveries\": {},\n",
            s.late_deliveries
        ));
        out.push_str(&format!("      \"frames_lost\": {},\n", s.frames_lost));
        out.push_str(&format!("      \"sync_losses\": {},\n", s.sync_losses));
        out.push_str(&format!(
            "      \"resync_overruns\": {},\n",
            s.resync_overruns
        ));
        out.push_str(&format!(
            "      \"max_degrade_tier\": {},\n",
            s.max_degrade_tier
        ));
        out.push_str(&format!("      \"fec_on\": {},\n", fec_on_json(&c.on)));
        out.push_str(&format!(
            "      \"goodput_retained_delta\": {:.6}\n",
            c.goodput_retained_delta()
        ));
        out.push_str(if i + 1 == comparisons.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    // Telemetry block: deterministic by construction (sim-time stamps,
    // submission-order merge), so it participates in the byte-diff gate.
    out.push_str(&format!(
        "  \"telemetry\": {}\n",
        indent_json(&telemetry.to_json(), "  ")
    ));
    out.push_str("}\n");
    out
}

/// One full suite run under a fresh root recorder. Returns the JSON report
/// (with embedded telemetry) and the telemetry CSV export.
fn suite_report(replicates: usize) -> (String, String, Vec<ChaosFecComparison>) {
    let rec = obs::Recorder::new();
    let comparisons = obs::with_recorder(&rec, || run_chaos_suite_fec(replicates, BASE_SEED));
    let snap = rec.snapshot();
    (
        to_json(&comparisons, replicates, &snap),
        snap.to_csv(),
        comparisons,
    )
}

fn run_at(threads: Option<usize>, replicates: usize) -> (String, String) {
    let old = std::env::var("SMARTVLC_THREADS").ok();
    if let Some(n) = threads {
        std::env::set_var("SMARTVLC_THREADS", n.to_string());
    }
    let (json, csv, _) = suite_report(replicates);
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    (json, csv)
}

fn main() {
    let replicates = if full_run() { 5 } else { 2 };

    let (_, _, comparisons) = suite_report(replicates);
    let mut rows = Vec::new();
    for c in &comparisons {
        let s = &c.off;
        rows.push(vec![
            s.name.to_string(),
            f(s.mean_goodput_retained * 100.0, 1),
            f(c.on.mean_goodput_retained * 100.0, 1),
            f(c.goodput_retained_delta() * 100.0, 1),
            f(s.mean_goodput_bps / 1000.0, 1),
            s.mean_resync_s.map_or("-".into(), |v| f(v * 1000.0, 0)),
            s.frames_lost.to_string(),
            c.on.fec_corrected_symbols.to_string(),
            c.on.fec_decode_failures.to_string(),
        ]);
    }
    println!("# Chaos suite — fault injection vs the self-healing link\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "arq-only retained %",
                "fec-on retained %",
                "delta %",
                "goodput kbit/s",
                "resync ms",
                "lost",
                "fec corrected",
                "fec failures",
            ],
            &rows,
        )
    );

    // Determinism gate: the whole suite — both legs AND telemetry —
    // serial vs 8-way, byte-identical.
    let (serial, serial_csv) = run_at(Some(1), replicates);
    let (parallel, parallel_csv) = run_at(Some(8), replicates);
    assert_eq!(
        serial, parallel,
        "chaos suite differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        serial_csv, parallel_csv,
        "chaos telemetry CSV differs between SMARTVLC_THREADS=1 and 8"
    );
    println!("determinism: SMARTVLC_THREADS=1 and 8 reports are byte-identical");

    let path = results_dir().join("BENCH_chaos.json");
    std::fs::write(&path, &serial).expect("write BENCH_chaos.json");
    println!("wrote {}", path.display());
    let csv_path = results_dir().join("TELEMETRY_chaos.csv");
    std::fs::write(&csv_path, &serial_csv).expect("write TELEMETRY_chaos.csv");
    println!("wrote {}", csv_path.display());
}
