//! Chaos suite: scheduled channel faults against the self-healing link.
//!
//! Runs the scenario battery from `smartvlc_sim::chaos` (ambient spikes,
//! occlusion, clock drift, symbol slips, saturation, flaky uplink, and a
//! kitchen-sink combination), prints a markdown recovery table, and
//! writes the per-scenario metrics as JSON to `results/BENCH_chaos.json`.
//!
//! The suite then re-runs itself at `SMARTVLC_THREADS=1` and `=8` and
//! verifies the two JSON reports are byte-identical — the runner's
//! determinism contract, enforced on the chaos path every time this
//! binary runs (CI diffs the same pair).

use smartvlc_bench::{f, full_run, indent_json, results_dir};
use smartvlc_obs as obs;
use smartvlc_sim::chaos::ChaosSummary;
use smartvlc_sim::report::markdown_table;
use smartvlc_sim::run_chaos_suite;

const BASE_SEED: u64 = 0x5eed_c4a0;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hand-rolled JSON (the workspace is fully offline — no serde_json):
/// stable key order, fixed float formatting, so equal results mean equal
/// bytes.
fn to_json(summaries: &[ChaosSummary], replicates: usize, telemetry: &obs::Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base_seed\": {BASE_SEED},\n"));
    out.push_str(&format!("  \"replicates\": {replicates},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(s.name)));
        out.push_str(&format!(
            "      \"description\": \"{}\",\n",
            json_escape(s.description)
        ));
        out.push_str(&format!(
            "      \"mean_goodput_retained\": {:.6},\n",
            s.mean_goodput_retained
        ));
        out.push_str(&format!(
            "      \"min_goodput_retained\": {:.6},\n",
            s.min_goodput_retained
        ));
        out.push_str(&format!(
            "      \"mean_goodput_bps\": {:.3},\n",
            s.mean_goodput_bps
        ));
        match s.mean_resync_s {
            Some(v) => out.push_str(&format!("      \"mean_resync_s\": {v:.6},\n")),
            None => out.push_str("      \"mean_resync_s\": null,\n"),
        }
        out.push_str(&format!(
            "      \"late_deliveries\": {},\n",
            s.late_deliveries
        ));
        out.push_str(&format!("      \"frames_lost\": {},\n", s.frames_lost));
        out.push_str(&format!("      \"sync_losses\": {},\n", s.sync_losses));
        out.push_str(&format!(
            "      \"resync_overruns\": {},\n",
            s.resync_overruns
        ));
        out.push_str(&format!(
            "      \"max_degrade_tier\": {}\n",
            s.max_degrade_tier
        ));
        out.push_str(if i + 1 == summaries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    // Telemetry block: deterministic by construction (sim-time stamps,
    // submission-order merge), so it participates in the byte-diff gate.
    out.push_str(&format!(
        "  \"telemetry\": {}\n",
        indent_json(&telemetry.to_json(), "  ")
    ));
    out.push_str("}\n");
    out
}

/// One full suite run under a fresh root recorder. Returns the JSON report
/// (with embedded telemetry) and the telemetry CSV export.
fn suite_report(replicates: usize) -> (String, String, Vec<ChaosSummary>) {
    let rec = obs::Recorder::new();
    let summaries = obs::with_recorder(&rec, || run_chaos_suite(replicates, BASE_SEED));
    let snap = rec.snapshot();
    (
        to_json(&summaries, replicates, &snap),
        snap.to_csv(),
        summaries,
    )
}

fn run_at(threads: Option<usize>, replicates: usize) -> (String, String) {
    let old = std::env::var("SMARTVLC_THREADS").ok();
    if let Some(n) = threads {
        std::env::set_var("SMARTVLC_THREADS", n.to_string());
    }
    let (json, csv, _) = suite_report(replicates);
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    (json, csv)
}

fn main() {
    let replicates = if full_run() { 5 } else { 2 };

    let (_, _, summaries) = suite_report(replicates);
    let mut rows = Vec::new();
    for s in &summaries {
        rows.push(vec![
            s.name.to_string(),
            f(s.mean_goodput_retained * 100.0, 1),
            f(s.mean_goodput_bps / 1000.0, 1),
            s.mean_resync_s.map_or("-".into(), |v| f(v * 1000.0, 0)),
            s.late_deliveries.to_string(),
            s.frames_lost.to_string(),
            s.sync_losses.to_string(),
            s.max_degrade_tier.to_string(),
        ]);
    }
    println!("# Chaos suite — fault injection vs the self-healing link\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "goodput retained %",
                "goodput kbit/s",
                "resync ms",
                "late",
                "lost",
                "sync losses",
                "max tier",
            ],
            &rows,
        )
    );

    // Determinism gate: the whole suite — results AND telemetry — serial
    // vs 8-way, byte-identical.
    let (serial, serial_csv) = run_at(Some(1), replicates);
    let (parallel, parallel_csv) = run_at(Some(8), replicates);
    assert_eq!(
        serial, parallel,
        "chaos suite differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        serial_csv, parallel_csv,
        "chaos telemetry CSV differs between SMARTVLC_THREADS=1 and 8"
    );
    println!("determinism: SMARTVLC_THREADS=1 and 8 reports are byte-identical");

    let path = results_dir().join("BENCH_chaos.json");
    std::fs::write(&path, &serial).expect("write BENCH_chaos.json");
    println!("wrote {}", path.display());
    let csv_path = results_dir().join("TELEMETRY_chaos.csv");
    std::fs::write(&csv_path, &serial_csv).expect("write TELEMETRY_chaos.csv");
    println!("wrote {}", csv_path.display());
}
