//! Ablation: the §4.4 codec argument, quantified.
//!
//! Tabulation gives O(1) lookups but needs the whole codebook in memory;
//! the paper's combinatorial dichotomy walks O(N) binomials with O(1)
//! memory. This binary prints the memory wall (including the paper's
//! C(50,25) ≈ 126 TB headline) and measures both codecs where tabulation
//! is still feasible.

use combinat::{encode_codeword, table_memory_bytes, BigUint, BinomialTable, TabulatedCodec};
use smartvlc_bench::results_dir;
use smartvlc_sim::report::{markdown_table, write_csv};
use std::time::Instant;

fn human(bytes: u128) -> String {
    const UNITS: [&str; 7] = ["B", "KB", "MB", "GB", "TB", "PB", "EB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

fn main() {
    let t = BinomialTable::new(512);

    println!("Tabulation memory wall (4 B per mapping, the paper's figure):\n");
    let mut rows = Vec::new();
    for (n, k) in [
        (10usize, 5usize),
        (20, 10),
        (30, 15),
        (40, 20),
        (50, 25),
        (120, 60),
        (500, 250),
    ] {
        let mem = table_memory_bytes(&t, n, k, 4)
            .map(human)
            .unwrap_or_else(|| "> u128".into());
        rows.push(vec![
            format!("C({n},{k})"),
            format!("{:?}", t.binomial(n, k)),
            mem,
        ]);
    }
    println!(
        "{}",
        markdown_table(&["pattern", "mappings", "table memory"], &rows)
    );
    println!(
        "(the enumerative codec needs a {} KB Pascal cache for *all* patterns)\n",
        // rows up to N=50, half stored, ~2 limbs avg ~ small
        64
    );

    // Speed shoot-out where tabulation fits (N <= 24-ish).
    println!("speed: enumerative walk vs O(1) table lookup (1M symbols):\n");
    let mut rows = Vec::new();
    for (n, k) in [(12usize, 6usize), (16, 8), (20, 10), (24, 12)] {
        let bits = t.bits_per_symbol(n, k).unwrap();
        let iters = 1_000_000u64;
        let start = Instant::now();
        let mut sink = 0usize;
        for v in 0..iters {
            let cw = encode_codeword(&t, n, k, &BigUint::from_u64(v & ((1 << bits) - 1))).unwrap();
            sink += cw[0] as usize;
        }
        let enum_ns = start.elapsed().as_nanos() as f64 / iters as f64;

        let tab = TabulatedCodec::build(&t, n, k, 1 << 30).unwrap();
        let start = Instant::now();
        for v in 0..iters {
            let cw = tab.encode(v & ((1 << bits) - 1)).unwrap();
            sink += cw[0] as usize;
        }
        let tab_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(sink);
        rows.push(vec![
            format!("S({n},{k})"),
            format!("{enum_ns:.0} ns"),
            format!("{tab_ns:.0} ns"),
            format!("{:.1}x", enum_ns / tab_ns),
            human((tab.entries() * (n + 16)) as u128),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "pattern",
                "enumerative",
                "tabulated",
                "table speedup",
                "table RAM"
            ],
            &rows
        )
    );
    println!("verdict: the lookup is faster while it fits — and it stops fitting");
    println!("around N = 50, exactly the paper's point. The enumerative codec's");
    println!("O(N) walk runs the whole AMPPM range including Nmax = 500 symbols.");

    write_csv(
        results_dir().join("ablation_codec.csv"),
        &["pattern", "enum_ns", "tab_ns", "speedup", "table_ram"],
        &rows,
    )
    .expect("write csv");
}
