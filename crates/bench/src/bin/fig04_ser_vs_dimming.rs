//! Fig. 4 — symbol error rate as a function of dimming level in MPPM,
//! for N ∈ {10, 30, 50, 80, 120} (Eq. 3 with the measured P1/P2).
//!
//! Paper message: larger N buys finer dimming resolution but pays in SER,
//! so "we should not simply use a large N".

use smartvlc_bench::{f, results_dir};
use smartvlc_core::{SlotErrorProbs, SymbolPattern};
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};

fn main() {
    let probs = SlotErrorProbs::paper_measured();
    let ns = [10u16, 30, 50, 80, 120];
    let levels: Vec<f64> = (1..=19).map(|i| i as f64 / 20.0).collect();

    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> =
        ns.iter().map(|n| (format!("N={n}"), Vec::new())).collect();
    for &l in &levels {
        let mut row = vec![f(l, 2)];
        for (i, &n) in ns.iter().enumerate() {
            let k = (l * n as f64).round() as u16;
            let s = SymbolPattern::new(n, k).expect("k <= n");
            let ser = probs.symbol_error_rate(s);
            row.push(format!("{:.3e}", ser));
            series[i].1.push(ser * 1e3);
        }
        rows.push(row);
    }

    println!("Fig. 4 — PSER vs dimming level in MPPM (P1=9e-5, P2=8e-5)\n");
    let headers: Vec<String> = std::iter::once("dimming".to_string())
        .chain(ns.iter().map(|n| format!("SER N={n}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", markdown_table(&hdr_refs, &rows));
    let chart_series: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "PSER (x1e-3) vs dimming level",
            "dimming",
            "PSER x1e-3",
            &levels,
            &chart_series,
            12
        )
    );
    println!("paper shape check: SER rises with N at every level; the P1 > P2");
    println!("asymmetry tilts each curve slightly toward low dimming levels.");

    write_csv(results_dir().join("fig04.csv"), &hdr_refs, &rows).expect("write csv");
}
