//! Fig. 8 — available patterns under the SER upper bound (AMPPM Step 2).
//!
//! Plots PSER vs dimming for N ∈ {10, 30, 50} against the bound and
//! reports which patterns are abandoned, then prints the surviving
//! candidate set of the full Step-1+2 filter.

use smartvlc_bench::{f, results_dir};
use smartvlc_core::amppm::candidate_patterns;
use smartvlc_core::{SymbolPattern, SystemConfig};
use smartvlc_sim::report::{markdown_table, write_csv};

fn main() {
    let cfg = SystemConfig::default();
    let table = combinat::BinomialTable::new(512);

    println!(
        "Fig. 8 — SER curves vs the bound ({:.1e}); abandoned patterns marked\n",
        cfg.ser_upper_bound
    );
    let mut rows = Vec::new();
    for n in [10u16, 30, 50] {
        for k in 1..n {
            let s = SymbolPattern::new(n, k).unwrap();
            let ser = cfg.slot_errors.symbol_error_rate(s);
            if k % (n / 10).max(1) == 0 {
                rows.push(vec![
                    format!("S({n}, {:.2})", s.dimming().value()),
                    format!("{ser:.3e}"),
                    if ser > cfg.ser_upper_bound {
                        "ABANDONED".into()
                    } else {
                        "kept".into()
                    },
                ]);
            }
        }
    }
    println!("{}", markdown_table(&["pattern", "PSER", "verdict"], &rows));

    let candidates = candidate_patterns(&cfg, &table);
    let n_values: std::collections::BTreeSet<u16> =
        candidates.iter().map(|c| c.pattern.n()).collect();
    println!(
        "surviving candidates: {} patterns, N in {:?}..={:?}",
        candidates.len(),
        n_values.iter().next().unwrap(),
        n_values.iter().last().unwrap()
    );
    println!("paper check: every S(50, l) exceeds the bound (50 slots x ~8.5e-5/slot");
    println!(
        "= 4.2e-3 > {:.1e}) and is abandoned, as in Fig. 8's N=50 curve.",
        cfg.ser_upper_bound
    );
    assert!(candidates.iter().all(|c| c.pattern.n() < 50));

    let csv_rows: Vec<Vec<String>> = candidates
        .iter()
        .map(|c| {
            vec![
                c.pattern.n().to_string(),
                c.pattern.k().to_string(),
                f(c.dimming(), 4),
                f(c.norm_rate, 4),
                format!("{:.3e}", c.ser),
            ]
        })
        .collect();
    write_csv(
        results_dir().join("fig08.csv"),
        &["n", "k", "dimming", "norm_rate", "ser"],
        &csv_rows,
    )
    .expect("write csv");
}
