//! Fig. 17 — throughput vs incidence angle at 1.3 m, 2.3 m, and 3.3 m.
//!
//! Paper shape: performance holds within the LED's field of view, and
//! longer distances hit their cut-off angle earlier (the link has no SNR
//! margin left for the `cosᵐ` beam roll-off).

use smartvlc_bench::{f, point_duration, results_dir};
use smartvlc_link::SchemeKind;
use smartvlc_sim::report::{ascii_chart, markdown_table, write_csv};
use smartvlc_sim::run_incidence_matrix;

fn main() {
    let angles: Vec<f64> = (0..=8).map(|i| i as f64 * 2.0).collect(); // 0..16 deg
    let distances = [1.3, 2.3, 3.3];
    let dur = point_duration();
    println!(
        "Fig. 17 — AMPPM goodput vs incidence angle at l = 0.5, {} s per point\n",
        dur.as_secs_f64()
    );

    // All 3 × 9 cells fan out as one flat batch on the work pool.
    let sweeps = run_incidence_matrix(SchemeKind::Amppm, 0.5, &distances, &angles, dur, 17);

    let mut rows = Vec::new();
    for (i, &a) in angles.iter().enumerate() {
        rows.push(vec![
            f(a, 0),
            f(sweeps[0][i].goodput_bps / 1e3, 1),
            f(sweeps[1][i].goodput_bps / 1e3, 1),
            f(sweeps[2][i].goodput_bps / 1e3, 1),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["angle deg", "1.3 m Kbps", "2.3 m Kbps", "3.3 m Kbps"],
            &rows
        )
    );
    println!(
        "{}",
        ascii_chart(
            "goodput (Kbps) vs incidence angle (deg)",
            "angle",
            "Kbps",
            &angles,
            &[
                (
                    "1.3m",
                    sweeps[0].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
                (
                    "2.3m",
                    sweeps[1].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
                (
                    "3.3m",
                    sweeps[2].iter().map(|p| p.goodput_bps / 1e3).collect()
                ),
            ],
            12
        )
    );

    for (di, &d) in distances.iter().enumerate() {
        let boresight = sweeps[di][0].goodput_bps;
        let cutoff = angles
            .iter()
            .zip(&sweeps[di])
            .take_while(|(_, p)| p.goodput_bps > boresight / 2.0)
            .map(|(&a, _)| a)
            .last()
            .unwrap_or(0.0);
        println!(
            "d={d} m: holds >50% of boresight through ~{cutoff} deg \
             (paper: longer distance => shorter cut-off)"
        );
    }

    write_csv(
        results_dir().join("fig17.csv"),
        &["angle_deg", "d13_bps", "d23_bps", "d33_bps"],
        &angles
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                vec![
                    f(a, 1),
                    f(sweeps[0][i].goodput_bps, 1),
                    f(sweeps[1][i].goodput_bps, 1),
                    f(sweeps[2][i].goodput_bps, 1),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .expect("write csv");
}
