//! Net suite: workload mixes over the datagram layer.
//!
//! Runs the mix battery from `smartvlc_sim::net_suite` (web pair, video
//! call, IoT swarm, and the oversubscribed bulk-vs-keepalive fairness
//! case) **twice per seed** — FEC off and with the nominal outer code —
//! prints a markdown table of flow-completion and tail-latency numbers,
//! and writes the per-mix metrics as JSON to `results/BENCH_net.json`.
//! The top-level keys come from the uncoded leg; the coded leg rides
//! along as a one-line `fec_on` object per mix, so
//! `grep '"fec_on"' results/BENCH_net.json` shows what the code buys in
//! datagram terms.
//!
//! The suite then re-runs itself at `SMARTVLC_THREADS=1` and `=8` and
//! verifies the two JSON reports are byte-identical — the runner's
//! determinism contract, enforced on the datagram path (both legs)
//! every time this binary runs (CI diffs the same pair).

use smartvlc_bench::{f, full_run, indent_json, results_dir};
use smartvlc_obs as obs;
use smartvlc_sim::net_suite::{NetFecComparison, NetSummary};
use smartvlc_sim::report::markdown_table;
use smartvlc_sim::run_net_suite_fec;
use smartvlc_sim::stats_util::Percentiles;

const BASE_SEED: u64 = 0x5eed_4e71;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Percentile triple as a one-line JSON object (`null` when the mix
/// delivered nothing, e.g. a dead-link leg).
fn pct_json(p: &Option<Percentiles>) -> String {
    match p {
        Some(p) => format!(
            "{{\"n\": {}, \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}",
            p.n, p.p50, p.p95, p.p99
        ),
        None => "null".to_string(),
    }
}

/// The coded leg, as a single JSON line so it stays grep-filterable.
fn fec_on_json(s: &NetSummary) -> String {
    format!(
        "{{\"delivery_ratio\": {:.6}, \"delivered_dgrams\": {}, \
         \"flows_completed\": {}, \"latency_ms\": {}, \"fct_ms\": {}, \
         \"mean_goodput_bps\": {:.3}}}",
        s.delivery_ratio,
        s.delivered_dgrams,
        s.flows_completed,
        pct_json(&s.latency_ms),
        pct_json(&s.fct_ms),
        s.mean_goodput_bps
    )
}

/// Hand-rolled JSON (the workspace is fully offline — no serde_json):
/// stable key order, fixed float formatting, so equal results mean equal
/// bytes.
fn to_json(
    comparisons: &[NetFecComparison],
    replicates: usize,
    telemetry: &obs::Snapshot,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base_seed\": {BASE_SEED},\n"));
    out.push_str(&format!("  \"replicates\": {replicates},\n"));
    out.push_str("  \"mixes\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let s = &c.off;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(s.name)));
        out.push_str(&format!(
            "      \"description\": \"{}\",\n",
            json_escape(s.description)
        ));
        out.push_str(&format!(
            "      \"offered_dgrams\": {},\n",
            s.offered_dgrams
        ));
        out.push_str(&format!(
            "      \"delivered_dgrams\": {},\n",
            s.delivered_dgrams
        ));
        out.push_str(&format!("      \"lost_dgrams\": {},\n", s.lost_dgrams));
        out.push_str(&format!(
            "      \"delivery_ratio\": {:.6},\n",
            s.delivery_ratio
        ));
        out.push_str(&format!("      \"flows_offered\": {},\n", s.flows_offered));
        out.push_str(&format!(
            "      \"flows_completed\": {},\n",
            s.flows_completed
        ));
        out.push_str(&format!(
            "      \"latency_ms\": {},\n",
            pct_json(&s.latency_ms)
        ));
        out.push_str(&format!("      \"fct_ms\": {},\n", pct_json(&s.fct_ms)));
        out.push_str(&format!("      \"queue_drops\": {},\n", s.queue_drops));
        out.push_str(&format!("      \"bad_version\": {},\n", s.bad_version));
        out.push_str(&format!("      \"evicted\": {},\n", s.evicted));
        out.push_str(&format!(
            "      \"mean_goodput_bps\": {:.3},\n",
            s.mean_goodput_bps
        ));
        out.push_str(&format!("      \"fec_on\": {}\n", fec_on_json(&c.on)));
        out.push_str(if i + 1 == comparisons.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    // Telemetry block: deterministic by construction (sim-time stamps,
    // submission-order merge), so it participates in the byte-diff gate.
    out.push_str(&format!(
        "  \"telemetry\": {}\n",
        indent_json(&telemetry.to_json(), "  ")
    ));
    out.push_str("}\n");
    out
}

/// One full suite run under a fresh root recorder. Returns the JSON report
/// (with embedded telemetry) and the telemetry CSV export.
fn suite_report(replicates: usize) -> (String, String, Vec<NetFecComparison>) {
    let rec = obs::Recorder::new();
    let comparisons = obs::with_recorder(&rec, || run_net_suite_fec(replicates, BASE_SEED));
    let snap = rec.snapshot();
    (
        to_json(&comparisons, replicates, &snap),
        snap.to_csv(),
        comparisons,
    )
}

fn run_at(threads: Option<usize>, replicates: usize) -> (String, String) {
    let old = std::env::var("SMARTVLC_THREADS").ok();
    if let Some(n) = threads {
        std::env::set_var("SMARTVLC_THREADS", n.to_string());
    }
    let (json, csv, _) = suite_report(replicates);
    match old {
        Some(v) => std::env::set_var("SMARTVLC_THREADS", v),
        None => std::env::remove_var("SMARTVLC_THREADS"),
    }
    (json, csv)
}

fn pct_cell(p: &Option<Percentiles>) -> (String, String, String) {
    match p {
        Some(p) => (f(p.p50, 0), f(p.p95, 0), f(p.p99, 0)),
        None => ("-".into(), "-".into(), "-".into()),
    }
}

fn main() {
    let replicates = if full_run() { 5 } else { 2 };

    let (_, _, comparisons) = suite_report(replicates);
    let mut rows = Vec::new();
    for c in &comparisons {
        let s = &c.off;
        let (p50, p95, p99) = pct_cell(&s.latency_ms);
        let (fct50, _, fct99) = pct_cell(&s.fct_ms);
        rows.push(vec![
            s.name.to_string(),
            f(s.delivery_ratio * 100.0, 1),
            f(c.on.delivery_ratio * 100.0, 1),
            format!("{}/{}", s.flows_completed, s.flows_offered),
            p50,
            p95,
            p99,
            fct50,
            fct99,
            s.queue_drops.to_string(),
        ]);
    }
    println!("# Net suite — datagram traffic over the self-healing link\n");
    println!(
        "{}",
        markdown_table(
            &[
                "mix",
                "delivered % (fec off)",
                "delivered % (fec on)",
                "flows done",
                "lat p50 ms",
                "lat p95 ms",
                "lat p99 ms",
                "fct p50 ms",
                "fct p99 ms",
                "queue drops",
            ],
            &rows,
        )
    );

    // Determinism gate: the whole suite — both legs AND telemetry —
    // serial vs 8-way, byte-identical.
    let (serial, serial_csv) = run_at(Some(1), replicates);
    let (parallel, parallel_csv) = run_at(Some(8), replicates);
    assert_eq!(
        serial, parallel,
        "net suite differs between SMARTVLC_THREADS=1 and 8"
    );
    assert_eq!(
        serial_csv, parallel_csv,
        "net telemetry CSV differs between SMARTVLC_THREADS=1 and 8"
    );
    println!("determinism: SMARTVLC_THREADS=1 and 8 reports are byte-identical");

    let path = results_dir().join("BENCH_net.json");
    std::fs::write(&path, &serial).expect("write BENCH_net.json");
    println!("wrote {}", path.display());
    let csv_path = results_dir().join("TELEMETRY_net.csv");
    std::fs::write(&csv_path, &serial_csv).expect("write TELEMETRY_net.csv");
    println!("wrote {}", csv_path.display());
}
