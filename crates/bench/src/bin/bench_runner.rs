//! Wall-clock audit of the parallel experiment runner: each figure
//! workload timed serially (`SMARTVLC_THREADS=1`) and at the machine's
//! parallelism, written as machine-readable JSON to
//! `results/BENCH_runner.json` (override the directory with
//! `SMARTVLC_RESULTS`).
//!
//! The runner's contract is bit-identical results at any thread count,
//! so this binary also cross-checks each workload's parallel output
//! against its serial output before reporting the timing — a speedup
//! that changed the numbers would be a bug, not a win.

use desim::{DetRng, SimDuration};
use smartvlc_bench::{indent_json, results_dir};
use smartvlc_core::SystemConfig;
use smartvlc_link::{SchemeKind, Transmitter};
use smartvlc_obs as obs;
use smartvlc_sim::static_run::{
    paper_levels, run_distance_matrix, run_incidence_matrix, run_scheme_matrix,
};
use smartvlc_sim::{run_broadcast, Seat, StaticPoint};
use std::time::Instant;
use vlc_channel::link::{ChannelConfig, OpticalChannel, RxScratch};

struct Timing {
    figure: &'static str,
    tasks: usize,
    serial_s: f64,
    parallel_s: f64,
    threads: usize,
    identical: bool,
    /// Telemetry from the serial leg (byte-identical to the parallel
    /// leg's — asserted in `measure`). Wall-clock timings stay out of it.
    telemetry: obs::Snapshot,
}

/// The pre-optimisation per-symbol unrank walk (owned `BigUint`s, a fresh
/// allocation per step) — the "before" for the ns/symbol record.
fn encode_biguint_baseline(
    table: &combinat::BinomialTable,
    n: usize,
    k: usize,
    value: &combinat::BigUint,
) -> Vec<bool> {
    let mut val = value.clone();
    let mut out = Vec::with_capacity(n);
    let mut ones_left = k;
    for pos in 0..n {
        let slots_left = n - pos;
        if ones_left == 0 {
            out.resize(n, false);
            break;
        }
        if ones_left == slots_left {
            out.resize(n, true);
            break;
        }
        let on_count = table.binomial(slots_left - 1, ones_left - 1);
        if val < on_count {
            out.push(true);
            ones_left -= 1;
        } else {
            val = val.checked_sub(&on_count).expect("val >= on_count");
            out.push(false);
        }
    }
    out
}

/// Time the RX hot path before and after the speed pass, reconstructing
/// each "before" shape in-binary from public API (the same pattern as
/// `encode_biguint_baseline`):
///
/// * **analytic** — the old per-frame/per-tick cost: a full
///   `detector_with(..).error_probs()` recompute from the channel config
///   on every call, vs. the memoized `analytic_error_probs()` backed by
///   the operating-point intern cache. The memo is invalidated every 256
///   iterations so the shared intern map (not just the per-channel L0
///   slot) stays on the timed path. This ratio is the headline gate.
/// * **sampled** — the old frame pipeline (fresh detector + allocating
///   `transmit` + allocating `decide_all` per frame) vs. the reused
///   `RxScratch` pipeline, verified bit-identical on the same seed first.
/// * **decide** — threshold recomputed per slot (`decide` in a loop) vs.
///   the batch `decide_into`.
fn rx_hot_path_section() -> String {
    let ch_cfg = ChannelConfig::paper_bench(2.5);

    // A realistic slot batch: one AMPPM frame plus the 32-slot gap — the
    // unit link.rs and broadcast.rs push through the channel per frame.
    let root = DetRng::seed_from_u64(0x5ee0);
    let mut tx = Transmitter::new(
        SystemConfig::default(),
        SchemeKind::Amppm,
        1.308,
        0.808,
        0.1,
        smartvlc_core::frame::format::FecMode::Off,
        root.fork("tx"),
    )
    .expect("valid config");
    let data = tx.random_data();
    let (_, mut slots) = tx.build_frame(0, &data).expect("level carries data");
    slots.extend(std::iter::repeat_n(false, 32));
    let frame_slots = slots.len();

    // Analytic operating point: recompute-per-call vs. interned.
    let iters = 200_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(ch_cfg.detector_with(1.0, false).error_probs());
    }
    let analytic_baseline_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let mut ch = OpticalChannel::new(ch_cfg, root.fork("analytic"));
    let lux = ch_cfg.ambient_lux;
    let t1 = Instant::now();
    for i in 0..iters {
        if i % 256 == 0 {
            // State "change" clears the memo; the next query is an intern
            // map hit, so the map probe is part of what we time.
            ch.set_ambient_lux(lux);
        }
        std::hint::black_box(ch.analytic_error_probs());
    }
    let analytic_cached_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    let analytic_ratio = analytic_baseline_ns / analytic_cached_ns.max(1e-9);

    // Semantics gate before the speed gate: the interned operating point
    // must be the freshly computed one, bit for bit (cache force-disabled
    // on a twin channel).
    let mut ch_off = OpticalChannel::new(ch_cfg, root.fork("analytic"));
    ch_off.set_op_cache(vlc_channel::OperatingPointCache::with_enabled(false));
    let cached = ch.analytic_error_probs();
    let fresh = ch_off.analytic_error_probs();
    assert_eq!(
        (cached.p_on_error.to_bits(), cached.p_off_error.to_bits()),
        (fresh.p_on_error.to_bits(), fresh.p_off_error.to_bits()),
        "interned operating point diverged from the uncached recompute"
    );
    assert!(
        analytic_ratio >= 5.0,
        "operating-point cache speedup regressed below the 5x gate: {analytic_ratio:.2}x"
    );

    // Sampled pipeline: verify bit-identity on twin seeds, then time.
    let mut ch_old = OpticalChannel::new(ch_cfg, DetRng::seed_from_u64(77));
    let mut ch_new = OpticalChannel::new(ch_cfg, DetRng::seed_from_u64(77));
    let mut scratch = RxScratch::new();
    for _ in 0..16 {
        let det = ch_old.analytic_detector();
        let levels = ch_old.transmit(&slots);
        let old = det.decide_all(&levels);
        ch_new.transmit_and_decide_into(&slots, &mut scratch);
        assert_eq!(
            old, scratch.decided,
            "scratch RX pipeline diverged from the allocating one"
        );
    }

    let frames = 4_000u32;
    let slot_norm = frames as f64 * frame_slots as f64;
    let t2 = Instant::now();
    for _ in 0..frames {
        let det = ch_cfg.detector_with(1.0, false);
        let levels = ch_old.transmit(&slots);
        std::hint::black_box(det.decide_all(&levels));
    }
    let sampled_baseline_ns = t2.elapsed().as_nanos() as f64 / slot_norm;

    let t3 = Instant::now();
    for _ in 0..frames {
        ch_new.transmit_and_decide_into(&slots, &mut scratch);
        std::hint::black_box(scratch.decided.len());
    }
    let sampled_scratch_ns = t3.elapsed().as_nanos() as f64 / slot_norm;
    let sampled_ratio = sampled_baseline_ns / sampled_scratch_ns.max(1e-9);

    // Batch decision: per-slot threshold recompute vs. decide_into.
    let det = ch_new.analytic_detector();
    let levels = ch_new.transmit(&slots);
    let reps = 100_000u32;
    let decide_norm = reps as f64 * frame_slots as f64;
    let t4 = Instant::now();
    for _ in 0..reps {
        let out: Vec<bool> = levels.iter().map(|&v| det.decide(v)).collect();
        std::hint::black_box(out.as_slice());
    }
    let decide_baseline_ns = t4.elapsed().as_nanos() as f64 / decide_norm;

    let mut decided = Vec::new();
    let t5 = Instant::now();
    for _ in 0..reps {
        det.decide_into(&levels, &mut decided);
        std::hint::black_box(decided.as_slice());
    }
    let decide_into_ns = t5.elapsed().as_nanos() as f64 / decide_norm;
    let decide_ratio = decide_baseline_ns / decide_into_ns.max(1e-9);

    println!();
    println!(
        "rx analytic op-point: recompute {analytic_baseline_ns:7.1} ns/call  \
         interned {analytic_cached_ns:7.1} ns/call  ({analytic_ratio:.1}x)"
    );
    println!(
        "rx sampled frame ({frame_slots} slots): alloc {sampled_baseline_ns:6.1} ns/slot  \
         scratch {sampled_scratch_ns:6.1} ns/slot  ({sampled_ratio:.2}x, bit-identical)"
    );
    println!(
        "rx decide: per-slot-threshold {decide_baseline_ns:5.2} ns/slot  \
         decide_into {decide_into_ns:5.2} ns/slot  ({decide_ratio:.2}x)"
    );

    format!(
        "  \"rx_ns_per_slot\": {{\n    \"frame_slots\": {},\n    \
         \"analytic\": {{\"baseline_ns_per_call\": {:.1}, \"cached_ns_per_call\": {:.1}, \
         \"baseline_ns_per_slot\": {:.3}, \"cached_ns_per_slot\": {:.3}, \"ratio\": {:.2}}},\n    \
         \"sampled\": {{\"baseline_ns_per_slot\": {:.2}, \"scratch_ns_per_slot\": {:.2}, \
         \"ratio\": {:.3}, \"bit_identical\": true}},\n    \
         \"decide\": {{\"baseline_ns_per_slot\": {:.3}, \"into_ns_per_slot\": {:.3}, \
         \"ratio\": {:.2}}},\n    \"headline_ratio\": {:.2}\n  }}\n",
        frame_slots,
        analytic_baseline_ns,
        analytic_cached_ns,
        analytic_baseline_ns / frame_slots as f64,
        analytic_cached_ns / frame_slots as f64,
        analytic_ratio,
        sampled_baseline_ns,
        sampled_scratch_ns,
        sampled_ratio,
        decide_baseline_ns,
        decide_into_ns,
        decide_ratio,
        analytic_ratio,
    )
}

fn fingerprint(sweeps: &[Vec<StaticPoint>]) -> Vec<u64> {
    sweeps
        .iter()
        .flatten()
        .flat_map(|p| [p.goodput_bps.to_bits(), p.fer.to_bits()])
        .collect()
}

/// Run `work` once at 1 thread and once at the ambient thread count,
/// returning wall-clock seconds for both plus the outputs' equality.
fn measure<R: PartialEq>(
    figure: &'static str,
    tasks: usize,
    threads: usize,
    work: impl Fn() -> R,
) -> Timing {
    std::env::set_var("SMARTVLC_THREADS", "1");
    let serial_rec = obs::Recorder::new();
    let t0 = Instant::now();
    let serial = obs::with_recorder(&serial_rec, &work);
    let serial_s = t0.elapsed().as_secs_f64();

    std::env::set_var("SMARTVLC_THREADS", threads.to_string());
    let parallel_rec = obs::Recorder::new();
    let t1 = Instant::now();
    let parallel = obs::with_recorder(&parallel_rec, &work);
    let parallel_s = t1.elapsed().as_secs_f64();
    std::env::remove_var("SMARTVLC_THREADS");

    let serial_snap = serial_rec.snapshot();
    let parallel_snap = parallel_rec.snapshot();
    assert_eq!(
        serial_snap.to_json(),
        parallel_snap.to_json(),
        "{figure}: telemetry snapshot differs between 1 and {threads} thread(s)"
    );

    Timing {
        figure,
        tasks,
        serial_s,
        parallel_s,
        threads,
        identical: serial == parallel,
        telemetry: serial_snap,
    }
}

fn main() {
    // Honor SMARTVLC_THREADS for the parallel leg (invalid values fail
    // loudly); fall back to the machine's parallelism when unset.
    let threads = smartvlc_sim::thread_count();
    let dur = SimDuration::millis(400);
    println!("runner wall-clock audit: serial vs {threads} thread(s), 0.4 s points\n");

    let levels = paper_levels();
    let schemes = [SchemeKind::Amppm, SchemeKind::Mppm(20), SchemeKind::OokCt];
    let distances: Vec<f64> = (1..=10).map(|i| i as f64 * 0.5).collect();
    let fig16_levels = [0.18, 0.5, 0.7];
    let angles: Vec<f64> = (0..=8).map(|i| i as f64 * 2.0).collect();
    let fig17_distances = [1.3, 2.3, 3.3];
    let seats: Vec<Seat> = (0..6)
        .map(|i| Seat {
            distance_m: 1.0 + 0.5 * i as f64,
            off_axis_deg: 2.0 * i as f64,
        })
        .collect();

    let timings = [
        measure(
            "fig15_scheme_comparison",
            schemes.len() * levels.len(),
            threads,
            || fingerprint(&run_scheme_matrix(&schemes, &levels, dur, 15)),
        ),
        measure(
            "fig16_distance",
            fig16_levels.len() * distances.len(),
            threads,
            || {
                fingerprint(&run_distance_matrix(
                    SchemeKind::Amppm,
                    &fig16_levels,
                    &distances,
                    dur,
                    16,
                ))
            },
        ),
        measure(
            "fig17_incidence",
            fig17_distances.len() * angles.len(),
            threads,
            || {
                fingerprint(&run_incidence_matrix(
                    SchemeKind::Amppm,
                    0.5,
                    &fig17_distances,
                    &angles,
                    dur,
                    17,
                ))
            },
        ),
        measure("tableB_broadcast", seats.len(), threads, || {
            run_broadcast(0.5, &seats, dur, 2017)
                .iter()
                .map(|r| (r.frames_ok, r.frames_bad, r.goodput_bps.to_bits()))
                .collect::<Vec<_>>()
        }),
    ];

    let mut json = String::from("{\n  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let speedup = t.serial_s / t.parallel_s.max(1e-9);
        println!(
            "{:28} {:3} tasks  serial {:7.3} s  parallel {:7.3} s  speedup {:.2}x  identical: {}",
            t.figure, t.tasks, t.serial_s, t.parallel_s, speedup, t.identical
        );
        assert!(
            t.identical,
            "{}: parallel output diverged from serial",
            t.figure
        );
        json.push_str(&format!(
            "    {{\"figure\": \"{}\", \"tasks\": {}, \"threads\": {}, \
             \"serial_s\": {:.4}, \"parallel_s\": {:.4}, \"speedup\": {:.3}, \
             \"identical\": {}}}{}\n",
            t.figure,
            t.tasks,
            t.threads,
            t.serial_s,
            t.parallel_s,
            speedup,
            t.identical,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"codec_ns_per_symbol\": [\n");

    // Per-symbol codec cost: the pre-optimisation BigUint walk vs the
    // scratch + u128 fast-path API, at the modem's pattern sizes.
    println!();
    let codec_cases = [(20usize, 10usize), (31, 15), (120, 60)];
    for (ci, &(n, k)) in codec_cases.iter().enumerate() {
        let table = combinat::BinomialTable::shared(512);
        let value = table
            .binomial(n, k)
            .checked_sub(&combinat::BigUint::from_u64(123))
            .unwrap();
        let iters = 200_000u32;

        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(encode_biguint_baseline(&table, n, k, &value));
        }
        let baseline_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

        let mut scratch = combinat::EncodeScratch::new();
        let mut out = Vec::with_capacity(n);
        let t1 = Instant::now();
        for _ in 0..iters {
            out.clear();
            combinat::encode_codeword_into(&table, n, k, &value, &mut scratch, &mut out).unwrap();
            std::hint::black_box(out.len());
        }
        let scratch_ns = t1.elapsed().as_nanos() as f64 / iters as f64;

        let ratio = baseline_ns / scratch_ns.max(1e-9);
        println!(
            "codec encode N={n:3} K={k:3}: baseline {baseline_ns:7.1} ns  \
             scratch {scratch_ns:7.1} ns  ({ratio:.1}x fewer ns/symbol)"
        );
        json.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"baseline_ns\": {:.1}, \"scratch_ns\": {:.1}, \
             \"ratio\": {:.2}}}{}\n",
            n,
            k,
            baseline_ns,
            scratch_ns,
            ratio,
            if ci + 1 < codec_cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&rx_hot_path_section());
    json.push_str("}\n");

    let path = results_dir().join("BENCH_runner.json");
    std::fs::write(&path, &json).expect("write BENCH_runner.json");
    println!("\nwrote {}", path.display());

    // Telemetry goes to its own file: BENCH_runner.json carries wall-clock
    // timings (legitimately nondeterministic), while this file holds only
    // sim-time metrics and must be byte-identical at any SMARTVLC_THREADS
    // (the CI telemetry-determinism job diffs it at 1 vs 8).
    let mut tele = String::from("{\n");
    for (i, t) in timings.iter().enumerate() {
        tele.push_str(&format!(
            "  \"{}\": {}{}\n",
            t.figure,
            indent_json(&t.telemetry.to_json(), "  "),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    tele.push_str("}\n");
    let tele_path = results_dir().join("TELEMETRY_runner.json");
    std::fs::write(&tele_path, &tele).expect("write TELEMETRY_runner.json");
    println!("wrote {}", tele_path.display());
    if threads == 1 {
        println!("note: this machine exposes 1 CPU; speedups ~1.0x are expected here.");
        println!("      The determinism cross-check (identical: true) is the load-bearing result;");
        println!("      scaling shows up on multi-core hosts.");
    }
}
