//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§6): it prints a markdown table plus an ASCII
//! chart to stdout and writes the raw series as CSV into `results/`.
//! `--full` switches from the quick default to paper-length runs.

use std::path::PathBuf;

/// Where generators drop their CSVs (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SMARTVLC_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// True when the binary was invoked with `--full` (paper-length runs).
pub fn full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Per-point simulated duration: quick by default, paper-length with
/// `--full` (the paper uses 30 s per marker in Fig. 16).
pub fn point_duration() -> desim::SimDuration {
    if full_run() {
        desim::SimDuration::secs(30)
    } else {
        desim::SimDuration::secs(2)
    }
}

/// Format a float column.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Re-indent every line after the first of a serialized JSON block by
/// `pad`, so it can be embedded as a value inside a larger hand-rolled
/// JSON document without breaking its indentation.
pub fn indent_json(json: &str, pad: &str) -> String {
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created() {
        std::env::set_var(
            "SMARTVLC_RESULTS",
            std::env::temp_dir().join("svlc_results"),
        );
        let d = results_dir();
        assert!(d.exists());
        std::env::remove_var("SMARTVLC_RESULTS");
    }

    #[test]
    fn formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
