//! Benchmarks for the flicker auditor and the perception study — the
//! transmitter-side safety checks that must keep up with live waveforms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartvlc_core::flicker::{FlickerAuditor, FlickerRules};
use smartvlc_core::SystemConfig;
use smartvlc_sim::UserStudy;
use std::hint::black_box;

fn bench_auditor(c: &mut Criterion) {
    let auditor = FlickerAuditor::new(FlickerRules::from_config(&SystemConfig::default()));
    // One second of air time at the paper's slot clock.
    let slots: Vec<bool> = (0..125_000).map(|i| (i * 3) % 10 < 3).collect();
    let mut group = c.benchmark_group("flicker_audit");
    group.throughput(Throughput::Elements(slots.len() as u64));
    group.bench_function("one_second_waveform", |b| {
        b.iter(|| black_box(auditor.audit(black_box(&slots))))
    });
    group.finish();
}

fn bench_user_study(c: &mut Criterion) {
    c.bench_function("user_study_table2", |b| {
        b.iter(|| {
            let study = UserStudy::recruit(20, 2017);
            let mut acc = 0.0;
            for r in [0.003, 0.004, 0.005, 0.006, 0.007] {
                acc += study.percent_perceiving_step(
                    smartvlc_sim::Viewing::Direct,
                    smartvlc_sim::StudyCondition::L3Dark,
                    r,
                );
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_auditor, bench_user_study);
criterion_main!(benches);
