//! The RX hot path before and after the speed pass: analytic
//! operating-point derivation vs the interned cache, and the sampled
//! slot pipeline with and without the reusable [`RxScratch`].
//!
//! The "before" shapes are reconstructed from public API, mirroring
//! `codec_scratch`'s baselines: `analytic_recompute` is the full
//! `detector_with(..).error_probs()` chain the old per-frame/per-tick
//! code paid on every call, `sampled_alloc` is the allocating
//! detector + `transmit` + `decide_all` frame, and `decide_per_slot`
//! recomputes the threshold slot by slot the way `decide` does.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::DetRng;
use std::hint::black_box;
use vlc_channel::link::{ChannelConfig, OpticalChannel, RxScratch};
use vlc_channel::OperatingPointCache;

/// A frame-sized slot batch: deterministic pseudo-payload plus the
/// 32-slot inter-frame gap, about what one AMPPM frame occupies on air.
fn frame_slots() -> Vec<bool> {
    let mut rng = DetRng::seed_from_u64(0xbe7c);
    let mut slots: Vec<bool> = (0..1274).map(|_| rng.next_u64() & 1 == 1).collect();
    slots.extend(std::iter::repeat_n(false, 32));
    slots
}

fn bench_analytic(c: &mut Criterion) {
    let mut group = c.benchmark_group("rx_analytic");
    let cfg = ChannelConfig::paper_bench(2.5);

    group.bench_function("recompute_per_call", |b| {
        b.iter(|| black_box(black_box(&cfg).detector_with(1.0, false).error_probs()))
    });

    group.bench_function("memoized", |b| {
        let ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(1));
        b.iter(|| black_box(ch.analytic_error_probs()))
    });

    group.bench_function("intern_map_probe", |b| {
        // Memo invalidated every iteration: times the shared-map hit,
        // the cost a channel pays right after a state change.
        let mut ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(1));
        let lux = cfg.ambient_lux;
        b.iter(|| {
            ch.set_ambient_lux(lux);
            black_box(ch.analytic_error_probs())
        })
    });

    group.bench_function("cache_disabled", |b| {
        // Force-disabled cache: identical bookkeeping, fresh compute —
        // the semantics-preserving "off" mode the determinism test pins.
        let mut ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(1));
        ch.set_op_cache(OperatingPointCache::with_enabled(false));
        let lux = cfg.ambient_lux;
        b.iter(|| {
            ch.set_ambient_lux(lux);
            black_box(ch.analytic_error_probs())
        })
    });
    group.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let mut group = c.benchmark_group("rx_sampled");
    let cfg = ChannelConfig::paper_bench(2.5);
    let slots = frame_slots();

    group.bench_function("frame_alloc", |b| {
        let mut ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(7));
        b.iter(|| {
            let det = black_box(&cfg).detector_with(1.0, false);
            let levels = ch.transmit(black_box(&slots));
            black_box(det.decide_all(&levels))
        })
    });

    group.bench_function("frame_scratch", |b| {
        let mut ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(7));
        let mut scratch = RxScratch::new();
        b.iter(|| {
            ch.transmit_and_decide_into(black_box(&slots), &mut scratch);
            black_box(scratch.decided.as_slice());
        })
    });
    group.finish();
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("rx_decide");
    let cfg = ChannelConfig::paper_bench(2.5);
    let slots = frame_slots();
    let mut ch = OpticalChannel::new(cfg, DetRng::seed_from_u64(7));
    let det = ch.analytic_detector();
    let levels = ch.transmit(&slots);

    group.bench_function("per_slot_threshold", |b| {
        b.iter(|| {
            let out: Vec<bool> = black_box(&levels).iter().map(|&v| det.decide(v)).collect();
            black_box(out.as_slice());
        })
    });

    group.bench_function("decide_into", |b| {
        let mut out = Vec::with_capacity(levels.len());
        b.iter(|| {
            det.decide_into(black_box(&levels), &mut out);
            black_box(out.as_slice());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytic, bench_sampled, bench_decide);
criterion_main!(benches);
