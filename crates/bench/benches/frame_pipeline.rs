//! End-to-end frame pipeline benchmarks: Table 1 emit + parse with a
//! 128-byte payload (the paper's frame size), per scheme.
//!
//! On the real BBB the ARM must keep this faster than the 10 ms airtime
//! of a frame, or the PRU's TX ring underruns.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smartvlc_core::frame::codec::FrameCodec;
use smartvlc_core::frame::format::{Frame, PatternDescriptor};
use smartvlc_core::{DimmingLevel, SystemConfig};
use std::hint::black_box;

fn descriptors(cfg: &SystemConfig) -> Vec<(&'static str, PatternDescriptor)> {
    vec![
        (
            "amppm",
            PatternDescriptor::Amppm {
                dimming_q: cfg.quantize_dimming(0.42),
                tier: 0,
            },
        ),
        ("mppm20", PatternDescriptor::Mppm { n: 20, k: 8 }),
        (
            "ookct",
            PatternDescriptor::OokCt {
                dimming_q: cfg.quantize_dimming(0.42),
            },
        ),
        ("vppm10", PatternDescriptor::Vppm { n: 10, width: 4 }),
    ]
}

fn bench_emit_parse(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    let payload: Vec<u8> = (0..128u32).map(|i| (i * 37 % 251) as u8).collect();
    let mut group = c.benchmark_group("frame");
    group.throughput(Throughput::Bytes(128));
    for (name, d) in descriptors(&cfg) {
        let mut codec = FrameCodec::new(cfg.clone()).unwrap();
        let frame = Frame::new(d, payload.clone()).unwrap();
        // Warm the planner cache (steady-state transmitter).
        let _ = codec.emit(&frame).unwrap();
        group.bench_function(format!("emit_{name}"), |b| {
            b.iter(|| black_box(codec.emit(black_box(&frame)).unwrap()))
        });
        let slots = codec.emit(&frame).unwrap();
        group.bench_function(format!("parse_{name}"), |b| {
            b.iter(|| black_box(codec.parse(black_box(&slots)).unwrap()))
        });
    }
    group.finish();
}

fn bench_adaptation(c: &mut Criterion) {
    use smartvlc_core::adaptation::{AdaptationStepper, PerceptionStepper};
    c.bench_function("perception_steps_full_range", |b| {
        let s = PerceptionStepper::new(0.003);
        b.iter(|| black_box(s.steps(black_box(0.1), black_box(0.9))))
    });
    let _ = DimmingLevel::new(0.5);
}

criterion_group!(benches, bench_emit_parse, bench_adaptation);
criterion_main!(benches);
