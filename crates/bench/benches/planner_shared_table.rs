//! Cost of sharing the planner's precomputed state — the `Arc` redesign.
//!
//! `AmppmPlanner` now keeps its binomial table, candidate list, envelope,
//! and plan cache behind `Arc`s: a clone is a handle, not a rebuild, and
//! every clone sees every other clone's cached plans. These benches
//! quantify the three costs that matter for the parallel runner:
//!
//! * `planner_new_interned` — constructing a planner when the interned
//!   table already exists (the steady state for sweep workers),
//! * `planner_clone` — handing a worker its handle,
//! * `plan_cache_hit` — a quantized level already planned by any clone.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use std::hint::black_box;

fn bench_shared_planner(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    // Warm the table intern pool so construction benches measure the
    // candidate search, not the one-time Pascal build.
    let warm = AmppmPlanner::new(cfg.clone()).expect("valid config");

    c.bench_function("planner_new_interned", |b| {
        b.iter(|| black_box(AmppmPlanner::new(cfg.clone()).expect("valid config")))
    });

    c.bench_function("planner_clone", |b| b.iter(|| black_box(warm.clone())));

    let level = DimmingLevel::new(0.35).unwrap();
    warm.plan(level).unwrap();
    c.bench_function("plan_cache_hit", |b| {
        // A clone's cache hit — the path every runner worker takes after
        // the first worker has planned the level.
        let clone = warm.clone();
        b.iter(|| black_box(clone.plan(level).unwrap()))
    });

    c.bench_function("plan_cold", |b| {
        b.iter_batched(
            || AmppmPlanner::new(cfg.clone()).expect("valid config"),
            |p| black_box(p.plan(level).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_shared_planner);
criterion_main!(benches);
