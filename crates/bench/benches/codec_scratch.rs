//! Scratch-buffer codec API vs the allocating wrappers — the per-symbol
//! hot path this PR optimised.
//!
//! `encode_codeword` / `decode_codeword` allocate a fresh BigUint
//! workspace (and output vector) per symbol; `encode_codeword_into` /
//! `decode_codeword_with` reuse an [`EncodeScratch`] and an output buffer
//! across the whole frame, and take a pure-u128 walk whenever C(N, K)
//! fits 128 bits (every modem-reachable N does). The `*_alloc` vs
//! `*_scratch` pairs below quantify the gap at the pattern sizes the
//! modem uses; (500, 250) exercises the BigUint path that remains for
//! the flicker-bound extreme.

use combinat::{
    decode_codeword, decode_codeword_with, encode_codeword, encode_codeword_into, BigUint,
    BinomialTable, EncodeScratch,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The pre-optimisation per-symbol walk, reconstructed as a baseline:
/// owned `BigUint` everywhere — clone the value, materialize each
/// sub-binomial, allocate a fresh difference per OFF slot and a fresh
/// output vector per symbol. This is what `encode_codeword` compiled to
/// before the u128 fast path and the scratch API existed.
fn encode_biguint_baseline(
    table: &BinomialTable,
    n: usize,
    k: usize,
    value: &BigUint,
) -> Vec<bool> {
    let mut val = value.clone();
    let mut out = Vec::with_capacity(n);
    let mut ones_left = k;
    for pos in 0..n {
        let slots_left = n - pos;
        if ones_left == 0 {
            out.resize(n, false);
            break;
        }
        if ones_left == slots_left {
            out.resize(n, true);
            break;
        }
        let on_count = table.binomial(slots_left - 1, ones_left - 1);
        if val < on_count {
            out.push(true);
            ones_left -= 1;
        } else {
            val = val.checked_sub(&on_count).expect("val >= on_count");
            out.push(false);
        }
    }
    out
}

/// Pre-optimisation rank walk: fresh accumulator, owned sub-binomials,
/// a new `BigUint` per addition.
fn decode_biguint_baseline(
    table: &BinomialTable,
    n: usize,
    k: usize,
    codeword: &[bool],
) -> BigUint {
    let mut value = BigUint::zero();
    let mut ones_left = k;
    for (pos, &bit) in codeword.iter().enumerate() {
        if ones_left == 0 {
            break;
        }
        let slots_left = n - pos;
        if bit {
            ones_left -= 1;
        } else {
            value = value.add(&table.binomial(slots_left - 1, ones_left - 1));
        }
    }
    value
}

fn bench_scratch_vs_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_scratch");
    for (n, k) in [(20usize, 10usize), (31, 15), (120, 60), (500, 250)] {
        let table = BinomialTable::shared(512);
        let value = table
            .binomial(n, k)
            .checked_sub(&BigUint::from_u64(12345))
            .unwrap();

        group.bench_function(format!("encode_biguint_baseline_{n}_{k}"), |b| {
            b.iter(|| black_box(encode_biguint_baseline(&table, n, k, black_box(&value))))
        });
        group.bench_function(format!("encode_alloc_{n}_{k}"), |b| {
            b.iter(|| black_box(encode_codeword(&table, n, k, black_box(&value)).unwrap()))
        });
        group.bench_function(format!("encode_scratch_{n}_{k}"), |b| {
            let mut scratch = EncodeScratch::new();
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                encode_codeword_into(&table, n, k, black_box(&value), &mut scratch, &mut out)
                    .unwrap();
                black_box(out.len())
            })
        });

        let codeword = encode_codeword(&table, n, k, &value).unwrap();
        group.bench_function(format!("decode_biguint_baseline_{n}_{k}"), |b| {
            b.iter(|| black_box(decode_biguint_baseline(&table, n, k, black_box(&codeword))))
        });
        group.bench_function(format!("decode_alloc_{n}_{k}"), |b| {
            b.iter(|| black_box(decode_codeword(&table, n, k, black_box(&codeword)).unwrap()))
        });
        group.bench_function(format!("decode_scratch_{n}_{k}"), |b| {
            let mut scratch = EncodeScratch::new();
            b.iter(|| {
                black_box(
                    decode_codeword_with(&table, n, k, black_box(&codeword), &mut scratch).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scratch_vs_alloc);
criterion_main!(benches);
