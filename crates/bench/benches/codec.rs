//! Hot-path benchmarks for the enumerative codec (§4.4).
//!
//! The paper's pitch for combinatorial dichotomy is that it replaces a
//! 126 TB table with an O(N) walk — these benches quantify that walk at
//! the pattern sizes the modem actually uses, up to the Nmax = 500
//! flicker-bound extreme.

use combinat::{decode_codeword, encode_codeword, BigUint, BinomialTable};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_codeword(c: &mut Criterion) {
    let mut group = c.benchmark_group("codeword");
    for (n, k) in [
        (20usize, 10usize),
        (21, 11),
        (50, 25),
        (120, 60),
        (500, 250),
    ] {
        let table = BinomialTable::new(512);
        // Pre-warm the Pascal rows so the bench isolates the walk.
        table.binomial(n, k);
        let value = table
            .binomial(n, k)
            .checked_sub(&BigUint::from_u64(12345))
            .unwrap();
        group.bench_function(format!("encode_{n}_{k}"), |b| {
            b.iter(|| black_box(encode_codeword(&table, n, k, black_box(&value)).unwrap()))
        });
        let codeword = encode_codeword(&table, n, k, &value).unwrap();
        group.bench_function(format!("decode_{n}_{k}"), |b| {
            b.iter(|| black_box(decode_codeword(&table, n, k, black_box(&codeword)).unwrap()))
        });
    }
    group.finish();
}

fn bench_table(c: &mut Criterion) {
    c.bench_function("binomial_table_build_512", |b| {
        b.iter_batched(
            || BinomialTable::new(512),
            |t| {
                black_box(t.binomial(500, 250));
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_codeword, bench_table);
criterion_main!(benches);
