//! Channel-simulation benchmarks: the full sampled pipeline vs the
//! i.i.d. slot-error fast path, per 1000 slots (8 ms of air time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use desim::DetRng;
use std::hint::black_box;
use vlc_channel::link::{ChannelConfig, OpticalChannel};

fn bench_channel(c: &mut Criterion) {
    let slots: Vec<bool> = (0..1000).map(|i| i % 3 != 0).collect();
    let mut group = c.benchmark_group("channel_1000_slots");
    group.throughput(Throughput::Elements(1000));

    let mut sampled =
        OpticalChannel::new(ChannelConfig::paper_bench(3.0), DetRng::seed_from_u64(1));
    group.bench_function("sampled_pipeline", |b| {
        b.iter(|| black_box(sampled.transmit_and_decide(black_box(&slots))))
    });

    // The SlotIid fast path the link simulation uses for long runs.
    let probs = OpticalChannel::new(ChannelConfig::paper_bench(3.0), DetRng::seed_from_u64(1))
        .analytic_error_probs();
    let mut rng = DetRng::seed_from_u64(2);
    group.bench_function("slot_iid", |b| {
        b.iter(|| {
            let out: Vec<bool> = slots
                .iter()
                .map(|&s| {
                    let p = if s {
                        probs.p_on_error
                    } else {
                        probs.p_off_error
                    };
                    if rng.chance(p) {
                        !s
                    } else {
                        s
                    }
                })
                .collect();
            black_box(out)
        })
    });

    group.bench_function("led_waveform_synthesis", |b| {
        let led = vlc_channel::led::LedModel::philips_4w7();
        b.iter(|| black_box(led.synthesize(black_box(&slots), 8e-6, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
