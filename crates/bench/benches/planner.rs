//! Benchmarks for the AMPPM planner — the "small overhead on deriving
//! the optimal symbol patterns" the paper mentions in §6.2 must be small
//! enough for a 1 GHz ARM to run per ambient update.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smartvlc_core::{AmppmPlanner, DimmingLevel, SystemConfig};
use std::hint::black_box;

fn bench_planner_build(c: &mut Criterion) {
    // Steps 1-3: candidate enumeration + envelope walk.
    c.bench_function("planner_build_paper_config", |b| {
        b.iter(|| black_box(AmppmPlanner::new(SystemConfig::default()).unwrap()))
    });
}

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan");
    // Cold: the Step-4 pair/mix search for an unseen level.
    group.bench_function("cold_level", |b| {
        b.iter_batched(
            || AmppmPlanner::new(SystemConfig::default()).unwrap(),
            |p| {
                black_box(p.plan(DimmingLevel::new(0.3712).unwrap()).unwrap());
            },
            BatchSize::SmallInput,
        )
    });
    // Warm: what the transmitter pays per frame in steady state.
    let warm = AmppmPlanner::new(SystemConfig::default()).unwrap();
    warm.plan(DimmingLevel::new(0.3712).unwrap()).unwrap();
    group.bench_function("warm_level", |b| {
        b.iter(|| black_box(warm.plan(DimmingLevel::new(0.3712).unwrap()).unwrap()))
    });
    // A full adaptation sweep: every level of a 0.9 -> 0.1 dimming ramp.
    group.bench_function("sweep_100_levels", |b| {
        b.iter_batched(
            || AmppmPlanner::new(SystemConfig::default()).unwrap(),
            |p| {
                for i in 10..=90 {
                    black_box(
                        p.plan(DimmingLevel::new(i as f64 / 100.0).unwrap())
                            .unwrap(),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_planner_build, bench_plan);
criterion_main!(benches);
