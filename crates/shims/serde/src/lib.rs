//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives are
//! no-ops (see `serde_derive`); the traits are empty markers because no
//! in-tree code constrains on them.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
