//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! with the `Criterion`/`benchmark_group`/`Bencher` API subset the bench
//! targets use. Each benchmark is warmed up briefly, then timed over an
//! adaptively-chosen iteration count; the median per-iteration time is
//! printed in criterion's familiar one-line format.
//!
//! Set `BENCH_JSON=<path>` to additionally append results as JSON lines
//! (`{"id": ..., "ns_per_iter": ...}`) — the machine-readable feed that
//! `BENCH_runner.json` collects.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored — every batch is one
/// setup + one routine call here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (printed alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-call cost.
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < WARMUP {
            black_box(routine());
            calls += 1;
        }
        let est = WARMUP.as_secs_f64() / calls.max(1) as f64;
        let per_sample = ((MEASURE.as_secs_f64() / 15.0) / est).clamp(1.0, 1e7) as u64;

        let mut samples = Vec::with_capacity(15);
        for _ in 0..15 {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded from
    /// the timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut timed = Duration::ZERO;
        let mut calls = 0u64;
        let mut samples = Vec::new();
        while start.elapsed() < WARMUP + MEASURE {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let dt = t.elapsed();
            timed += dt;
            calls += 1;
            samples.push(dt.as_secs_f64());
            if calls >= 10_000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples.get(samples.len() / 2).copied().unwrap_or(0.0) * 1e9;
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / ns * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{id:<40} time: {:>12.1} ns/iter{rate}", ns);
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}}}");
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&id, b.ns_per_iter, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&id, b.ns_per_iter, self.throughput);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a filter arg may follow. Both
            // are accepted and ignored by this minimal harness.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(8));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
