//! Offline shim for `bytes`: the `Buf`/`BufMut` cursor subset the frame
//! format uses (big-endian integers, slice copies, self-advancing slices).

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16;
    /// Fill `dst` from the source and advance past it.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(&self[..n]);
        *self = &self[n..];
    }
}

/// Write cursor over a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for &mut [u8] {
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursors_roundtrip() {
        let mut out = [0u8; 6];
        let mut w: &mut [u8] = &mut out[..];
        w.put_u16(0xBEEF);
        w.put_slice(&[1, 2, 3, 4]);
        assert_eq!(out, [0xBE, 0xEF, 1, 2, 3, 4]);

        let mut r: &[u8] = &out[..];
        assert_eq!(r.get_u16(), 0xBEEF);
        let mut rest = [0u8; 4];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3, 4]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_sink_appends() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_u16(258);
        v.put_slice(&[9]);
        assert_eq!(v, vec![7, 1, 2, 9]);
    }
}
