//! Offline shim for `crossbeam`: the `scope` entry point, implemented on
//! `std::thread::scope` (stable since 1.63). Mirrors crossbeam's signature
//! — the closure receives a `&Scope`, `spawn` passes the scope again so
//! workers can spawn siblings, and the result comes back as a `Result`.

use std::any::Any;

/// Result type of [`scope`], matching `crossbeam::thread::Result`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle for spawning borrowed threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread borrowing from the enclosing scope. The closure
    /// receives the scope (crossbeam convention) so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed threads can be spawned; all
/// spawned threads are joined before `scope` returns.
///
/// Unlike crossbeam, a panicking child propagates the panic at join time
/// (std semantics) instead of surfacing it in the `Err` variant; the `Ok`
/// wrapper exists so call sites written for crossbeam (`.unwrap()`)
/// compile unchanged.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, as some call sites spell it out.
pub mod thread {
    pub use super::{scope, Scope, ScopeResult as Result};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
