//! Offline shim for `parking_lot`: `Mutex`/`RwLock` wrappers over
//! `std::sync` with parking_lot's panic-free (non-poisoning) `lock()`
//! signatures.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
