//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! structs for forward compatibility, but nothing in-tree performs actual
//! serialization (there is no `serde_json`/`bincode` dependency). In the
//! offline build environment the derives therefore expand to nothing; the
//! marker traits live in the sibling `serde` shim.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
