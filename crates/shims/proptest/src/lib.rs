//! Offline shim for `proptest`: a deterministic mini property-testing
//! harness covering the API subset this workspace uses.
//!
//! Supported surface:
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! * integer / float range strategies (`0u64..100`, `0.0f64..=1.0`),
//! * `any::<T>()` for primitives and `[u8; N]`,
//! * `proptest::collection::vec(strategy, len_range)`,
//! * tuple strategies `(s1, s2)`,
//! * `proptest::num::<int>::ANY`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs visible in the assertion message. Generation is
//! deterministic per test (seeded from the test's name), so failures
//! reproduce exactly — the property that matters for CI.

/// Deterministic generator state (SplitMix64 — dependency-free, and
/// distinct from the simulation's own RNG streams).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator (each `proptest!` test derives one from its name).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `u128`.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        // Simple modulo; the bias is irrelevant for test-case generation.
        self.next_u128() % bound
    }
}

/// FNV-1a of a test name — the per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Harness configuration (`ProptestConfig` upstream).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps simulation-heavy suites fast
        // while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + rng.below_u128(span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u128() as $t
                } else {
                    (lo + rng.below_u128(span)) as $t
                }
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_ranges!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Occasionally emit the exact endpoints — boundary cases matter.
        match rng.next_u64() % 32 {
            0 => *self.start(),
            1 => *self.end(),
            _ => *self.start() + rng.next_unit_f64() * (*self.end() - *self.start()),
        }
    }
}

/// Marker for `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Generate arbitrary values of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Mix raw values with small ones: edge-adjacent magnitudes
                // find more bugs than uniform 64-bit noise alone.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u128() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Cover the full bit pattern space (NaN, infinities, subnormals)
        // as well as ordinary magnitudes near the unit interval.
        match rng.next_u64() % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 | 4 => rng.next_unit_f64() * 4.0 - 2.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl<const N: usize> Strategy for Any<[u8; N]> {
    type Value = [u8; N];
    fn generate(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Regex-string strategies: a `&str` pattern is itself a strategy
/// producing matching `String`s. Only the subset this workspace's tests
/// use is parsed — literal characters and `[a-z]{m,n}`-style character
/// classes with an optional repetition count; unsupported syntax panics.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "inverted class range");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                assert!(
                    !"\\.*+?|(){}^$".contains(c),
                    "unsupported regex syntax {c:?} in strategy pattern {self:?}"
                );
                i += 1;
                vec![c]
            };
            // Optional {m,n} / {m} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("bad repetition bound"),
                        n.parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let m: usize = body.parse().expect("bad repetition count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let reps = lo + rng.below_u128((hi - lo + 1) as u128) as usize;
            for _ in 0..reps {
                out.push(alphabet[rng.below_u128(alphabet.len() as u128) as usize]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length source for [`vec`].
    pub trait LenRange {
        /// Sample a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl LenRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl LenRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl LenRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, L: LenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: LenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies (`proptest::num`).
pub mod num {
    macro_rules! num_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// Strategies for one integer width.
            pub mod $m {
                /// Full-range strategy for this type.
                pub struct AnyStrategy;
                /// The full-range strategy value (`proptest::num::<t>::ANY`).
                pub const ANY: AnyStrategy = AnyStrategy;

                impl crate::Strategy for AnyStrategy {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::TestRng) -> $t {
                        crate::Strategy::generate(&crate::any::<$t>(), rng)
                    }
                }
            }
        )*};
    }

    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, u128: u128, usize: usize,
             i32: i32, i64: i64);
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when a precondition does not hold.
///
/// Expands to an early `return` from the per-case closure the
/// [`proptest!`] macro wraps around the body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: see the crate docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for _case in 0..config.cases {
                // Evaluate strategies once per case, in declaration order,
                // then run the body in a closure so `prop_assume!` can
                // `return` out of a single case.
                let values = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let ($($pat,)+) = values;
                let mut case = || $body;
                case();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 5u64..10, b in 0usize..3, c in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b < 3);
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn regex_class_strategy_matches(s in "[a-z]{1,12}", t in "x[0-3]y") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert_eq!(t.len(), 3);
            prop_assert!(t.starts_with('x') && t.ends_with('y'));
            prop_assert!(('0'..='3').contains(&t.chars().nth(1).unwrap()));
        }

        #[test]
        fn tuples_and_assume(pair in (any::<u64>(), 1usize..=64), flag in any::<bool>()) {
            prop_assume!(pair.1 >= 1);
            let (_v, w) = pair;
            prop_assert!(w >= 1 && w <= 64);
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(_x in 0u8..=255) {
            // Body runs; case count is implicitly exercised.
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::new(crate::seed_from_name("t"));
        let mut b = crate::TestRng::new(crate::seed_from_name("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
