//! Property-based tests for the combinatorics substrate.

use combinat::{
    binomial::binomial_u128_direct, decode_codeword, encode_codeword, BigUint, BinomialTable,
    BitReader, BitWriter,
};
use proptest::prelude::*;

proptest! {
    /// BigUint add/sub agree with u128 arithmetic on values that fit.
    #[test]
    fn biguint_addsub_matches_u128(a in 0u128..(u128::MAX / 2), b in 0u128..(u128::MAX / 2)) {
        let ba = BigUint::from_u128(a);
        let bb = BigUint::from_u128(b);
        prop_assert_eq!(ba.add(&bb).to_u128(), Some(a + b));
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let (bhi, blo) = if a >= b { (&ba, &bb) } else { (&bb, &ba) };
        prop_assert_eq!(bhi.checked_sub(blo).unwrap().to_u128(), Some(hi - lo));
        prop_assert_eq!(blo.checked_sub(bhi).is_none(), hi != lo);
    }

    /// (a + b) - b == a for arbitrary multi-limb values.
    #[test]
    fn biguint_add_sub_inverse(
        a_bits in proptest::collection::vec(any::<bool>(), 0..300),
        b_bits in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        let a = BigUint::from_bits_msb(&a_bits);
        let b = BigUint::from_bits_msb(&b_bits);
        prop_assert_eq!(a.add(&b).checked_sub(&b).unwrap(), a);
    }

    /// Bit-vector round trip at arbitrary widths.
    #[test]
    fn biguint_bits_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..200), pad in 0u32..32) {
        let v = BigUint::from_bits_msb(&bits);
        let w = v.bit_length().max(1) + pad;
        prop_assert_eq!(BigUint::from_bits_msb(&v.to_bits_msb(w)), v);
    }

    /// Pascal identity on the memo table, cross-checked with the direct
    /// multiplicative formula where it fits.
    #[test]
    fn binomial_pascal_identity(n in 1usize..130, k in 0usize..130) {
        let t = BinomialTable::new(130);
        let k = k.min(n);
        let lhs = t.binomial(n, k);
        let rhs = if k == 0 {
            BigUint::one()
        } else {
            t.binomial(n - 1, k - 1).add(&t.binomial(n - 1, k))
        };
        prop_assert_eq!(&lhs, &rhs);
        if n <= 100 && k <= 20 {
            prop_assert_eq!(lhs.to_u128(), Some(binomial_u128_direct(n as u64, k as u64)));
        }
    }

    /// Codec round trip for random (N, K, value) across the modem's whole
    /// operating range, including the Nmax = 500 extreme.
    #[test]
    fn codeword_roundtrip(n in 1usize..80, k_seed in any::<u64>(), v_seed in any::<u64>()) {
        let t = BinomialTable::new(512);
        let k = (k_seed % (n as u64 + 1)) as usize;
        let count = t.binomial(n, k);
        // value = v_seed mod C(n,k), computed via repeated subtraction on a
        // bounded value (v_seed fits u64; C may be larger).
        let val = match count.to_u128() {
            Some(c) => BigUint::from_u128((v_seed as u128) % c),
            None => BigUint::from_u64(v_seed),
        };
        let cw = encode_codeword(&t, n, k, &val).unwrap();
        prop_assert_eq!(cw.len(), n);
        prop_assert_eq!(cw.iter().filter(|&&b| b).count(), k);
        prop_assert_eq!(decode_codeword(&t, n, k, &cw).unwrap(), val);
    }

    /// Any single slot flip is detected by the constant-weight check.
    #[test]
    fn codeword_single_flip_detected(n in 2usize..60, k_seed in any::<u64>(), v_seed in any::<u64>(), flip in any::<usize>()) {
        let t = BinomialTable::new(512);
        let k = (k_seed % (n as u64 + 1)) as usize;
        let c = t.binomial_u128(n, k).map(|c| c.min(u64::MAX as u128)).unwrap_or(u64::MAX as u128);
        let val = BigUint::from_u128(v_seed as u128 % c);
        let mut cw = encode_codeword(&t, n, k, &val).unwrap();
        let idx = flip % n;
        cw[idx] = !cw[idx];
        prop_assert!(decode_codeword(&t, n, k, &cw).is_err());
    }

    /// BitWriter/BitReader round trip for arbitrary chunkings.
    #[test]
    fn bitstream_roundtrip(chunks in proptest::collection::vec((any::<u64>(), 1usize..=64), 0..40)) {
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            w.write_uint(v & mask(n), n);
        }
        let total: usize = chunks.iter().map(|&(_, n)| n).sum();
        let (bytes, bits) = w.finish();
        prop_assert_eq!(bits, total);
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            prop_assert_eq!(r.read_uint(n), Some(v & mask(n)));
        }
    }
}

fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}
