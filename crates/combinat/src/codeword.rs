//! Enumerative constant-weight coding — the paper's Algorithms 1 and 2.
//!
//! An MPPM symbol with pattern `S(N, l=K/N)` carries
//! `b = ⌊log2 C(N,K)⌋` data bits. The transmitter must map a `b`-bit value
//! onto one of the `C(N,K)` length-`N` slot sequences with exactly `K` ONs,
//! and the receiver must invert the map. §4.4 of the paper rejects lookup
//! tables/constellations (126 TB at `N = 50, K = 25`) in favour of a
//! "combinatorial dichotomy": walk the slots once, and at each slot compare
//! the residual value against a binomial coefficient.
//!
//! In coding-theory terms Algorithm 1 is *unranking* and Algorithm 2 is
//! *ranking* of constant-weight words, with the convention that codewords
//! beginning with ON come first: at slot `i` (0-based) with `r` ONs still
//! to place over the remaining `N - i` slots, the `C(N-i-1, r-1)` codewords
//! that put ON here precede all codewords that put OFF here. The paper's
//! pseudocode expresses exactly this comparison (`val >= C(N-iN, K-iK)`
//! selects OFF and subtracts).
//!
//! Complexity: `O(N)` binomial lookups per symbol, `O(1)` extra memory —
//! versus `O(C(N,K))` memory for tabulation.
//!
//! ## Hot-path engineering
//!
//! The per-symbol cost is dominated not by the walk but by big-integer
//! memory churn, so two layers remove it:
//!
//! * a **`u128` fast path**: when `C(N,K)` fits 128 bits (every `N ≤ 128`,
//!   which covers all patterns the planner emits under the default
//!   calibration) the walk runs entirely on machine integers — zero
//!   allocation per symbol;
//! * an **[`EncodeScratch`] reusable workspace** for the `BigUint` slow
//!   path: the residual value and decode accumulator live in scratch
//!   buffers that are `clone_from`-refilled, so steady-state symbols
//!   allocate nothing regardless of pattern size.
//!
//! The plain [`encode_codeword`]/[`decode_codeword`] entry points keep
//! their historical signatures and route through the same machinery.

use crate::biguint::BigUint;
use crate::binomial::BinomialTable;
use core::fmt;

/// Errors from encoding or decoding a constant-weight codeword.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodewordError {
    /// `K > N`: no such pattern exists.
    InvalidPattern {
        /// Slots per symbol.
        n: usize,
        /// ON slots per symbol.
        k: usize,
    },
    /// The value to encode is `>= C(N,K)` and cannot be represented.
    ValueOutOfRange,
    /// The received word's length differs from `N`.
    WrongLength {
        /// Expected number of slots.
        expected: usize,
        /// Received number of slots.
        got: usize,
    },
    /// The received word does not contain exactly `K` ONs — the symbol was
    /// corrupted in flight (this is how slot errors surface as symbol
    /// errors, Eq. 3 of the paper).
    WrongWeight {
        /// Expected ON count.
        expected: usize,
        /// Received ON count.
        got: usize,
    },
}

impl fmt::Display for CodewordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodewordError::InvalidPattern { n, k } => {
                write!(f, "invalid pattern: K={k} exceeds N={n}")
            }
            CodewordError::ValueOutOfRange => write!(f, "value >= C(N,K), cannot encode"),
            CodewordError::WrongLength { expected, got } => {
                write!(f, "codeword length {got}, expected {expected}")
            }
            CodewordError::WrongWeight { expected, got } => {
                write!(f, "codeword weight {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CodewordError {}

/// Reusable big-integer workspace for the codec's `BigUint` slow path.
///
/// One scratch per stream (transmitter, receiver, or sweep worker) turns
/// the per-symbol `BigUint` clone/alloc churn into amortized-zero
/// allocations: the buffers grow to the largest pattern seen and are
/// refilled in place afterwards.
#[derive(Default)]
pub struct EncodeScratch {
    /// Residual value during encode; rank accumulator during decode.
    val: BigUint,
}

impl EncodeScratch {
    /// A fresh (empty) workspace.
    pub fn new() -> Self {
        EncodeScratch::default()
    }
}

/// Algorithm 1 — unrank `value` into an `n`-slot codeword with exactly `k`
/// ONs (`true` = ON), appending the slots to `out`.
///
/// `value` must satisfy `value < C(n,k)`. This is the allocation-conscious
/// entry point: `scratch` is reused across calls and `out` may be a
/// recycled buffer (it is *not* cleared — callers append symbols of a
/// frame back to back).
pub fn encode_codeword_into(
    table: &BinomialTable,
    n: usize,
    k: usize,
    value: &BigUint,
    scratch: &mut EncodeScratch,
    out: &mut Vec<bool>,
) -> Result<(), CodewordError> {
    if k > n {
        return Err(CodewordError::InvalidPattern { n, k });
    }
    // u128 fast path: the entire walk on machine integers.
    if let Some(c) = table.binomial_u128(n, k) {
        let v = value.to_u128().ok_or(CodewordError::ValueOutOfRange)?;
        if v >= c {
            return Err(CodewordError::ValueOutOfRange);
        }
        encode_walk_u128(table, n, k, v, out);
        return Ok(());
    }
    if value >= table.binomial_ref(n, k) {
        return Err(CodewordError::ValueOutOfRange);
    }
    out.reserve(n);
    scratch.val.clone_from(value);
    let val = &mut scratch.val;
    let mut ones_left = k;
    let base = out.len();
    for pos in 0..n {
        let slots_left = n - pos;
        if ones_left == 0 {
            // Only OFFs remain (paper: "code_w[iN..N] = OFF").
            out.resize(base + n, false);
            break;
        }
        if ones_left == slots_left {
            // Only ONs remain (paper: "code_w[iN..N] = ON").
            out.resize(base + n, true);
            break;
        }
        // Codewords with ON at this slot occupy ranks [0, C(slots_left-1, ones_left-1)).
        let on_count = table.binomial_ref(slots_left - 1, ones_left - 1);
        if (val as &BigUint) < on_count {
            out.push(true);
            ones_left -= 1;
        } else {
            let ok = val.sub_assign_checked(on_count);
            debug_assert!(ok, "val >= on_count checked");
            out.push(false);
        }
    }
    debug_assert_eq!(out.len() - base, n);
    debug_assert_eq!(out[base..].iter().filter(|&&b| b).count(), k);
    Ok(())
}

/// The unrank walk entirely in `u128` (caller guarantees `v < C(n,k)` and
/// that `C(n,k)` fits).
fn encode_walk_u128(table: &BinomialTable, n: usize, k: usize, mut v: u128, out: &mut Vec<bool>) {
    out.reserve(n);
    let base = out.len();
    let mut ones_left = k;
    for pos in 0..n {
        let slots_left = n - pos;
        if ones_left == 0 {
            out.resize(base + n, false);
            break;
        }
        if ones_left == slots_left {
            out.resize(base + n, true);
            break;
        }
        let on_count = table
            .binomial_u128(slots_left - 1, ones_left - 1)
            .expect("sub-binomial fits if C(n,k) fits");
        if v < on_count {
            out.push(true);
            ones_left -= 1;
        } else {
            v -= on_count;
            out.push(false);
        }
    }
    debug_assert_eq!(out.len() - base, n);
}

/// Algorithm 1 — unrank `value` into an `n`-slot codeword with exactly `k`
/// ONs (`true` = ON).
///
/// `value` must satisfy `value < C(n,k)`. Convenience wrapper over
/// [`encode_codeword_into`] with a throwaway scratch.
pub fn encode_codeword(
    table: &BinomialTable,
    n: usize,
    k: usize,
    value: &BigUint,
) -> Result<Vec<bool>, CodewordError> {
    let mut out = Vec::with_capacity(n);
    let mut scratch = EncodeScratch::new();
    encode_codeword_into(table, n, k, value, &mut scratch, &mut out)?;
    Ok(out)
}

/// Algorithm 2 — rank a received `n`-slot codeword back to its value,
/// reusing `scratch` for the accumulator.
///
/// Verifies both the length and the constant-weight invariant; a weight
/// mismatch means slot errors corrupted the symbol.
pub fn decode_codeword_with(
    table: &BinomialTable,
    n: usize,
    k: usize,
    codeword: &[bool],
    scratch: &mut EncodeScratch,
) -> Result<BigUint, CodewordError> {
    if k > n {
        return Err(CodewordError::InvalidPattern { n, k });
    }
    if codeword.len() != n {
        return Err(CodewordError::WrongLength {
            expected: n,
            got: codeword.len(),
        });
    }
    let weight = codeword.iter().filter(|&&b| b).count();
    if weight != k {
        return Err(CodewordError::WrongWeight {
            expected: k,
            got: weight,
        });
    }
    // u128 fast path.
    if table.binomial_u128(n, k).is_some() {
        let mut value = 0u128;
        let mut ones_left = k;
        for (pos, &bit) in codeword.iter().enumerate() {
            if ones_left == 0 {
                break; // remaining slots are all OFF, contribute nothing
            }
            let slots_left = n - pos;
            if bit {
                ones_left -= 1;
            } else {
                value += table
                    .binomial_u128(slots_left - 1, ones_left - 1)
                    .expect("sub-binomial fits if C(n,k) fits");
            }
        }
        return Ok(BigUint::from_u128(value));
    }
    let value = &mut scratch.val;
    value.set_zero();
    let mut ones_left = k;
    for (pos, &bit) in codeword.iter().enumerate() {
        if ones_left == 0 {
            break; // remaining slots are all OFF, contribute nothing
        }
        let slots_left = n - pos;
        if bit {
            ones_left -= 1;
        } else {
            // Skip over every codeword that put ON here.
            value.add_assign(table.binomial_ref(slots_left - 1, ones_left - 1));
        }
    }
    Ok(value.clone())
}

/// Algorithm 2 — rank a received `n`-slot codeword back to its value.
///
/// Convenience wrapper over [`decode_codeword_with`] with a throwaway
/// scratch.
pub fn decode_codeword(
    table: &BinomialTable,
    n: usize,
    k: usize,
    codeword: &[bool],
) -> Result<BigUint, CodewordError> {
    let mut scratch = EncodeScratch::new();
    decode_codeword_with(table, n, k, codeword, &mut scratch)
}

/// Reference enumeration of all `(n,k)` constant-weight words in codec
/// order (ON-first). Exponential; for tests only.
pub fn enumerate_codewords(n: usize, k: usize) -> Vec<Vec<bool>> {
    fn rec(n: usize, k: usize, prefix: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        let placed = prefix.iter().filter(|&&b| b).count();
        let slots_left = n - prefix.len();
        let ones_left = k - placed;
        if ones_left > 0 {
            prefix.push(true);
            rec(n, k, prefix, out);
            prefix.pop();
        }
        if slots_left > ones_left {
            prefix.push(false);
            rec(n, k, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(n, k, &mut Vec::new(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(512)
    }

    #[test]
    fn encode_matches_reference_enumeration() {
        let t = table();
        for (n, k) in [(4, 2), (5, 1), (5, 4), (6, 3), (7, 0), (7, 7), (8, 3)] {
            let all = enumerate_codewords(n, k);
            assert_eq!(all.len() as u128, t.binomial_u128(n, k).unwrap());
            for (i, expect) in all.iter().enumerate() {
                let got = encode_codeword(&t, n, k, &BigUint::from_u64(i as u64)).unwrap();
                assert_eq!(&got, expect, "n={n} k={k} value={i}");
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        let t = table();
        for n in 1..=10 {
            for k in 0..=n {
                let count = t.binomial_u128(n, k).unwrap();
                for v in 0..count {
                    let val = BigUint::from_u128(v);
                    let cw = encode_codeword(&t, n, k, &val).unwrap();
                    assert_eq!(cw.len(), n);
                    assert_eq!(cw.iter().filter(|&&b| b).count(), k);
                    let back = decode_codeword(&t, n, k, &cw).unwrap();
                    assert_eq!(back, val, "n={n} k={k} v={v}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_large_patterns() {
        let t = table();
        // The paper's headline pattern sizes, plus the flicker-bound extreme.
        for (n, k) in [(20, 10), (21, 11), (50, 25), (120, 60), (500, 250)] {
            let c = t.binomial(n, k);
            let probes = [
                BigUint::zero(),
                BigUint::one(),
                c.checked_sub(&BigUint::one()).unwrap(),
                c.checked_sub(&BigUint::from_u64(12345)).unwrap(),
            ];
            for val in probes {
                let cw = encode_codeword(&t, n, k, &val).unwrap();
                assert_eq!(cw.iter().filter(|&&b| b).count(), k);
                assert_eq!(decode_codeword(&t, n, k, &cw).unwrap(), val);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_across_mixed_patterns() {
        // One scratch serving interleaved patterns — big (BigUint path)
        // and small (u128 path) — must agree with the one-shot API.
        let t = table();
        let mut scratch = EncodeScratch::new();
        let mut out = Vec::new();
        for (n, k) in [(500, 250), (20, 10), (300, 150), (5, 2), (500, 250)] {
            let val = t.binomial(n, k).checked_sub(&BigUint::from_u64(7)).unwrap();
            out.clear();
            encode_codeword_into(&t, n, k, &val, &mut scratch, &mut out).unwrap();
            assert_eq!(out, encode_codeword(&t, n, k, &val).unwrap(), "n={n} k={k}");
            let back = decode_codeword_with(&t, n, k, &out, &mut scratch).unwrap();
            assert_eq!(back, val, "n={n} k={k}");
        }
    }

    #[test]
    fn encode_into_appends_without_clearing() {
        let t = table();
        let mut scratch = EncodeScratch::new();
        let mut out = vec![true, false];
        encode_codeword_into(&t, 6, 2, &BigUint::zero(), &mut scratch, &mut out).unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..2], &[true, false]);
        assert_eq!(&out[2..], &[true, true, false, false, false, false]);
    }

    #[test]
    fn u128_and_biguint_paths_agree_at_the_boundary() {
        // N=128,K=64 is the largest pattern whose C(N,K) fits u128;
        // N=132,K=66 does not fit. Both must round-trip identically.
        let t = table();
        assert!(t.binomial_u128(128, 64).is_some());
        assert!(t.binomial_u128(132, 66).is_none());
        for (n, k) in [(128usize, 64usize), (132, 66)] {
            let val = t
                .binomial(n, k)
                .checked_sub(&BigUint::from_u64(98765))
                .unwrap();
            let cw = encode_codeword(&t, n, k, &val).unwrap();
            assert_eq!(decode_codeword(&t, n, k, &cw).unwrap(), val);
        }
    }

    #[test]
    fn value_zero_is_ones_first() {
        let t = table();
        let cw = encode_codeword(&t, 6, 2, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![true, true, false, false, false, false]);
        // Max value is the mirror: OFFs first.
        let max = t.binomial(6, 2).checked_sub(&BigUint::one()).unwrap();
        let cw = encode_codeword(&t, 6, 2, &max).unwrap();
        assert_eq!(cw, vec![false, false, false, false, true, true]);
    }

    #[test]
    fn out_of_range_value_rejected() {
        let t = table();
        let c = t.binomial(10, 3);
        assert_eq!(
            encode_codeword(&t, 10, 3, &c),
            Err(CodewordError::ValueOutOfRange)
        );
        // A value too wide even for the u128 fast path.
        let huge = t.binomial(500, 250);
        assert_eq!(
            encode_codeword(&t, 10, 3, &huge),
            Err(CodewordError::ValueOutOfRange)
        );
    }

    #[test]
    fn invalid_pattern_rejected() {
        let t = table();
        assert_eq!(
            encode_codeword(&t, 3, 5, &BigUint::zero()),
            Err(CodewordError::InvalidPattern { n: 3, k: 5 })
        );
        assert_eq!(
            decode_codeword(&t, 3, 5, &[true, true, true]),
            Err(CodewordError::InvalidPattern { n: 3, k: 5 })
        );
    }

    #[test]
    fn decode_detects_corruption() {
        let t = table();
        let mut cw = encode_codeword(&t, 10, 4, &BigUint::from_u64(17)).unwrap();
        cw[2] = !cw[2]; // flip one slot: weight becomes 3 or 5
        match decode_codeword(&t, 10, 4, &cw) {
            Err(CodewordError::WrongWeight { expected: 4, got }) => {
                assert!(got == 3 || got == 5)
            }
            other => panic!("expected WrongWeight, got {other:?}"),
        }
    }

    #[test]
    fn decode_detects_wrong_length() {
        let t = table();
        assert_eq!(
            decode_codeword(&t, 10, 4, &[true; 9]),
            Err(CodewordError::WrongLength {
                expected: 10,
                got: 9
            })
        );
    }

    #[test]
    fn degenerate_k_zero_and_k_n() {
        let t = table();
        let cw = encode_codeword(&t, 5, 0, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![false; 5]);
        assert_eq!(decode_codeword(&t, 5, 0, &cw).unwrap(), BigUint::zero());
        let cw = encode_codeword(&t, 5, 5, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![true; 5]);
        assert_eq!(decode_codeword(&t, 5, 5, &cw).unwrap(), BigUint::zero());
    }

    #[test]
    fn ordering_is_monotone() {
        // Ranks must be strictly increasing in enumeration order: the codec
        // is not just a bijection but *the* enumerative order.
        let t = table();
        let all = enumerate_codewords(9, 4);
        for (i, cw) in all.iter().enumerate() {
            assert_eq!(
                decode_codeword(&t, 9, 4, cw).unwrap().to_u64(),
                Some(i as u64)
            );
        }
    }
}
