//! Enumerative constant-weight coding — the paper's Algorithms 1 and 2.
//!
//! An MPPM symbol with pattern `S(N, l=K/N)` carries
//! `b = ⌊log2 C(N,K)⌋` data bits. The transmitter must map a `b`-bit value
//! onto one of the `C(N,K)` length-`N` slot sequences with exactly `K` ONs,
//! and the receiver must invert the map. §4.4 of the paper rejects lookup
//! tables/constellations (126 TB at `N = 50, K = 25`) in favour of a
//! "combinatorial dichotomy": walk the slots once, and at each slot compare
//! the residual value against a binomial coefficient.
//!
//! In coding-theory terms Algorithm 1 is *unranking* and Algorithm 2 is
//! *ranking* of constant-weight words, with the convention that codewords
//! beginning with ON come first: at slot `i` (0-based) with `r` ONs still
//! to place over the remaining `N - i` slots, the `C(N-i-1, r-1)` codewords
//! that put ON here precede all codewords that put OFF here. The paper's
//! pseudocode expresses exactly this comparison (`val >= C(N-iN, K-iK)`
//! selects OFF and subtracts).
//!
//! Complexity: `O(N)` binomial lookups per symbol, `O(1)` extra memory —
//! versus `O(C(N,K))` memory for tabulation.

use crate::biguint::BigUint;
use crate::binomial::BinomialTable;
use core::fmt;

/// Errors from encoding or decoding a constant-weight codeword.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodewordError {
    /// `K > N`: no such pattern exists.
    InvalidPattern {
        /// Slots per symbol.
        n: usize,
        /// ON slots per symbol.
        k: usize,
    },
    /// The value to encode is `>= C(N,K)` and cannot be represented.
    ValueOutOfRange,
    /// The received word's length differs from `N`.
    WrongLength {
        /// Expected number of slots.
        expected: usize,
        /// Received number of slots.
        got: usize,
    },
    /// The received word does not contain exactly `K` ONs — the symbol was
    /// corrupted in flight (this is how slot errors surface as symbol
    /// errors, Eq. 3 of the paper).
    WrongWeight {
        /// Expected ON count.
        expected: usize,
        /// Received ON count.
        got: usize,
    },
}

impl fmt::Display for CodewordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodewordError::InvalidPattern { n, k } => {
                write!(f, "invalid pattern: K={k} exceeds N={n}")
            }
            CodewordError::ValueOutOfRange => write!(f, "value >= C(N,K), cannot encode"),
            CodewordError::WrongLength { expected, got } => {
                write!(f, "codeword length {got}, expected {expected}")
            }
            CodewordError::WrongWeight { expected, got } => {
                write!(f, "codeword weight {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CodewordError {}

/// Algorithm 1 — unrank `value` into an `n`-slot codeword with exactly `k`
/// ONs (`true` = ON).
///
/// `value` must satisfy `value < C(n,k)`.
pub fn encode_codeword(
    table: &mut BinomialTable,
    n: usize,
    k: usize,
    value: &BigUint,
) -> Result<Vec<bool>, CodewordError> {
    if k > n {
        return Err(CodewordError::InvalidPattern { n, k });
    }
    if *value >= table.binomial(n, k) {
        return Err(CodewordError::ValueOutOfRange);
    }
    let mut out = Vec::with_capacity(n);
    let mut val = value.clone();
    let mut ones_left = k;
    for pos in 0..n {
        let slots_left = n - pos;
        if ones_left == 0 {
            // Only OFFs remain (paper: "code_w[iN..N] = OFF").
            out.resize(n, false);
            break;
        }
        if ones_left == slots_left {
            // Only ONs remain (paper: "code_w[iN..N] = ON").
            out.resize(n, true);
            break;
        }
        // Codewords with ON at this slot occupy ranks [0, C(slots_left-1, ones_left-1)).
        let on_count = table.binomial(slots_left - 1, ones_left - 1);
        if val < on_count {
            out.push(true);
            ones_left -= 1;
        } else {
            val = val
                .checked_sub(&on_count)
                .expect("val >= on_count checked");
            out.push(false);
        }
    }
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(out.iter().filter(|&&b| b).count(), k);
    Ok(out)
}

/// Algorithm 2 — rank a received `n`-slot codeword back to its value.
///
/// Verifies both the length and the constant-weight invariant; a weight
/// mismatch means slot errors corrupted the symbol.
pub fn decode_codeword(
    table: &mut BinomialTable,
    n: usize,
    k: usize,
    codeword: &[bool],
) -> Result<BigUint, CodewordError> {
    if k > n {
        return Err(CodewordError::InvalidPattern { n, k });
    }
    if codeword.len() != n {
        return Err(CodewordError::WrongLength {
            expected: n,
            got: codeword.len(),
        });
    }
    let weight = codeword.iter().filter(|&&b| b).count();
    if weight != k {
        return Err(CodewordError::WrongWeight {
            expected: k,
            got: weight,
        });
    }
    let mut value = BigUint::zero();
    let mut ones_left = k;
    for (pos, &bit) in codeword.iter().enumerate() {
        if ones_left == 0 {
            break; // remaining slots are all OFF, contribute nothing
        }
        let slots_left = n - pos;
        if bit {
            ones_left -= 1;
        } else {
            // Skip over every codeword that put ON here.
            value = value.add(&table.binomial(slots_left - 1, ones_left - 1));
        }
    }
    Ok(value)
}

/// Reference enumeration of all `(n,k)` constant-weight words in codec
/// order (ON-first). Exponential; for tests only.
pub fn enumerate_codewords(n: usize, k: usize) -> Vec<Vec<bool>> {
    fn rec(n: usize, k: usize, prefix: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        let placed = prefix.iter().filter(|&&b| b).count();
        let slots_left = n - prefix.len();
        let ones_left = k - placed;
        if ones_left > 0 {
            prefix.push(true);
            rec(n, k, prefix, out);
            prefix.pop();
        }
        if slots_left > ones_left {
            prefix.push(false);
            rec(n, k, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(n, k, &mut Vec::new(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BinomialTable {
        BinomialTable::new(512)
    }

    #[test]
    fn encode_matches_reference_enumeration() {
        let mut t = table();
        for (n, k) in [(4, 2), (5, 1), (5, 4), (6, 3), (7, 0), (7, 7), (8, 3)] {
            let all = enumerate_codewords(n, k);
            assert_eq!(all.len() as u128, t.binomial_u128(n, k).unwrap());
            for (i, expect) in all.iter().enumerate() {
                let got =
                    encode_codeword(&mut t, n, k, &BigUint::from_u64(i as u64)).unwrap();
                assert_eq!(&got, expect, "n={n} k={k} value={i}");
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        let mut t = table();
        for n in 1..=10 {
            for k in 0..=n {
                let count = t.binomial_u128(n, k).unwrap();
                for v in 0..count {
                    let val = BigUint::from_u128(v);
                    let cw = encode_codeword(&mut t, n, k, &val).unwrap();
                    assert_eq!(cw.len(), n);
                    assert_eq!(cw.iter().filter(|&&b| b).count(), k);
                    let back = decode_codeword(&mut t, n, k, &cw).unwrap();
                    assert_eq!(back, val, "n={n} k={k} v={v}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_large_patterns() {
        let mut t = table();
        // The paper's headline pattern sizes, plus the flicker-bound extreme.
        for (n, k) in [(20, 10), (21, 11), (50, 25), (120, 60), (500, 250)] {
            let c = t.binomial(n, k);
            let probes = [
                BigUint::zero(),
                BigUint::one(),
                c.checked_sub(&BigUint::one()).unwrap(),
                c.checked_sub(&BigUint::from_u64(12345)).unwrap(),
            ];
            for val in probes {
                let cw = encode_codeword(&mut t, n, k, &val).unwrap();
                assert_eq!(cw.iter().filter(|&&b| b).count(), k);
                assert_eq!(decode_codeword(&mut t, n, k, &cw).unwrap(), val);
            }
        }
    }

    #[test]
    fn value_zero_is_ones_first() {
        let mut t = table();
        let cw = encode_codeword(&mut t, 6, 2, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![true, true, false, false, false, false]);
        // Max value is the mirror: OFFs first.
        let max = t
            .binomial(6, 2)
            .checked_sub(&BigUint::one())
            .unwrap();
        let cw = encode_codeword(&mut t, 6, 2, &max).unwrap();
        assert_eq!(cw, vec![false, false, false, false, true, true]);
    }

    #[test]
    fn out_of_range_value_rejected() {
        let mut t = table();
        let c = t.binomial(10, 3);
        assert_eq!(
            encode_codeword(&mut t, 10, 3, &c),
            Err(CodewordError::ValueOutOfRange)
        );
    }

    #[test]
    fn invalid_pattern_rejected() {
        let mut t = table();
        assert_eq!(
            encode_codeword(&mut t, 3, 5, &BigUint::zero()),
            Err(CodewordError::InvalidPattern { n: 3, k: 5 })
        );
        assert_eq!(
            decode_codeword(&mut t, 3, 5, &[true, true, true]),
            Err(CodewordError::InvalidPattern { n: 3, k: 5 })
        );
    }

    #[test]
    fn decode_detects_corruption() {
        let mut t = table();
        let mut cw = encode_codeword(&mut t, 10, 4, &BigUint::from_u64(17)).unwrap();
        cw[2] = !cw[2]; // flip one slot: weight becomes 3 or 5
        match decode_codeword(&mut t, 10, 4, &cw) {
            Err(CodewordError::WrongWeight { expected: 4, got }) => {
                assert!(got == 3 || got == 5)
            }
            other => panic!("expected WrongWeight, got {other:?}"),
        }
    }

    #[test]
    fn decode_detects_wrong_length() {
        let mut t = table();
        assert_eq!(
            decode_codeword(&mut t, 10, 4, &[true; 9]),
            Err(CodewordError::WrongLength {
                expected: 10,
                got: 9
            })
        );
    }

    #[test]
    fn degenerate_k_zero_and_k_n() {
        let mut t = table();
        let cw = encode_codeword(&mut t, 5, 0, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![false; 5]);
        assert_eq!(decode_codeword(&mut t, 5, 0, &cw).unwrap(), BigUint::zero());
        let cw = encode_codeword(&mut t, 5, 5, &BigUint::zero()).unwrap();
        assert_eq!(cw, vec![true; 5]);
        assert_eq!(decode_codeword(&mut t, 5, 5, &cw).unwrap(), BigUint::zero());
    }

    #[test]
    fn ordering_is_monotone() {
        // Ranks must be strictly increasing in enumeration order: the codec
        // is not just a bijection but *the* enumerative order.
        let mut t = table();
        let all = enumerate_codewords(9, 4);
        for (i, cw) in all.iter().enumerate() {
            assert_eq!(
                decode_codeword(&mut t, 9, 4, cw).unwrap().to_u64(),
                Some(i as u64)
            );
        }
    }
}
