//! # combinat — enumerative combinatorics substrate for SmartVLC
//!
//! The heart of the paper's codec (§4.4, Algorithms 1 and 2) is an
//! *enumerative* mapping between `⌊log2 C(N,K)⌋`-bit data words and
//! constant-weight codewords of length `N` with exactly `K` ONs — the
//! "combinatorial dichotomy" that replaces the 126 TB lookup table a naive
//! tabulation of `C(50,25)` mappings would need.
//!
//! Everything that mapping requires lives here:
//!
//! * [`biguint::BigUint`] — arbitrary-precision unsigned integers, because
//!   a super-symbol may span up to `Nmax = 500` slots and `C(500,250)` has
//!   ~498 bits.
//! * [`binomial::BinomialTable`] — exact precomputed binomial
//!   coefficients: immutable after construction so one table (interned
//!   behind `Arc` via [`BinomialTable::shared`]) serves every planner,
//!   codec, and sweep worker thread, with borrowed lookups and a `u128`
//!   fast path for the sizes the modem actually uses.
//! * [`bits::BitReader`] / [`bits::BitWriter`] — MSB-first bit streams over
//!   bytes, used to slice the upper-layer payload into per-symbol data
//!   words.
//! * [`codeword`] — Algorithm 1 (encode = unrank) and Algorithm 2
//!   (decode = rank), with a `u128` fast path and an [`EncodeScratch`]
//!   reusable workspace keeping the per-symbol hot loop allocation-free,
//!   plus an exhaustive-enumeration reference used by the property tests.
//!
//! The crate is dependency-free and `forbid(unsafe_code)`.
//!
//! # Example
//!
//! Round-trip a data word through Algorithm 1 (unrank) and Algorithm 2
//! (rank) at the paper's S(21,11) operating point:
//!
//! ```
//! use combinat::{decode_codeword, encode_codeword, BigUint, BinomialTable};
//!
//! let table = BinomialTable::new(21);
//! let value = BigUint::from_u64(123_456);
//! let codeword = encode_codeword(&table, 21, 11, &value).unwrap();
//! // Constant weight: exactly 11 of the 21 slots are ON …
//! assert_eq!(codeword.iter().filter(|&&b| b).count(), 11);
//! // … and ranking the codeword recovers the exact data word.
//! assert_eq!(decode_codeword(&table, 21, 11, &codeword).unwrap(), value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biguint;
pub mod binomial;
pub mod bits;
pub mod codeword;
pub mod tabulated;

pub use biguint::BigUint;
pub use binomial::BinomialTable;
pub use bits::{BitReader, BitWriter};
pub use codeword::{
    decode_codeword, decode_codeword_with, encode_codeword, encode_codeword_into, CodewordError,
    EncodeScratch,
};
pub use tabulated::{table_memory_bytes, TabulatedCodec};
