//! A minimal arbitrary-precision unsigned integer.
//!
//! Only the operations the enumerative codec needs are implemented:
//! construction, comparison, addition, checked subtraction, doubling /
//! halving (for bit-stream conversion), and bit-level accessors. Limbs are
//! `u64`, little-endian, and the representation is always *normalized*
//! (no trailing zero limbs), so `==` on the limb vector is value equality.

use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Invariant: empty for zero; otherwise the last limb is non-zero.
    limbs: Vec<u64>,
}

impl Clone for BigUint {
    fn clone(&self) -> Self {
        BigUint {
            limbs: self.limbs.clone(),
        }
    }

    /// Capacity-reusing clone: the codec's scratch buffers lean on this to
    /// avoid a fresh limb allocation per symbol.
    fn clone_from(&mut self, source: &Self) {
        self.limbs.clone_from(&source.limbs);
    }
}

impl BigUint {
    /// The value 0 (usable in `const`/`static` position).
    pub const ZERO: BigUint = BigUint { limbs: Vec::new() };

    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// The value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Number of significant bits (0 for the value 0). Equivalently
    /// `⌊log2 v⌋ + 1` for `v > 0`.
    pub fn bit_length(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// The `i`-th bit (LSB = bit 0).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            false
        } else {
            (self.limbs[limb] >> (i % 64)) & 1 == 1
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Reset to zero, keeping the limb allocation for reuse.
    pub fn set_zero(&mut self) {
        self.limbs.clear();
    }

    /// In-place `self += other` — no allocation unless the value grows
    /// beyond the current limb capacity.
    pub fn add_assign(&mut self, other: &BigUint) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
        self.normalize();
    }

    /// In-place `self -= other` if `self >= other`, returning whether the
    /// subtraction happened. Allocation-free either way.
    pub fn sub_assign_checked(&mut self, other: &BigUint) -> bool {
        if (self as &BigUint) < other {
            return false;
        }
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
        true
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        Some(r)
    }

    /// `self * 2` (one left shift).
    pub fn double(&self) -> BigUint {
        self.shl_small(1)
    }

    /// `self << k` for small `k` (k < 64 is enough for our callers, but any
    /// k is accepted).
    pub fn shl_small(&self, k: u32) -> BigUint {
        if self.is_zero() || k == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = k % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Set bit 0 to `b` (used when assembling a value bit-by-bit:
    /// `v = v.double().with_bit0(next_bit)`).
    pub fn with_bit0(mut self, b: bool) -> BigUint {
        if b {
            if self.limbs.is_empty() {
                self.limbs.push(1);
            } else {
                self.limbs[0] |= 1;
            }
        }
        self
    }

    /// Build a value from MSB-first bits.
    pub fn from_bits_msb(bits: &[bool]) -> BigUint {
        let mut v = BigUint::zero();
        for &b in bits {
            v = v.double().with_bit0(b);
        }
        v
    }

    /// Emit exactly `width` MSB-first bits.
    ///
    /// # Panics
    /// Panics if the value does not fit in `width` bits.
    pub fn to_bits_msb(&self, width: u32) -> Vec<bool> {
        assert!(
            self.bit_length() <= width,
            "value has {} bits, does not fit in {}",
            self.bit_length(),
            width
        );
        (0..width).rev().map(|i| self.bit(i)).collect()
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.to_u128() {
            write!(f, "BigUint({v})")
        } else {
            write!(f, "BigUint(~2^{})", self.bit_length().saturating_sub(1))
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::from_u128(0), BigUint::zero());
        assert_eq!(BigUint::zero().bit_length(), 0);
    }

    #[test]
    fn u128_roundtrip() {
        for v in [
            0u128,
            1,
            u64::MAX as u128,
            u128::MAX,
            1 << 64,
            (1 << 64) + 5,
        ] {
            assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn add_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u64::MAX as u128, 1),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 100, 1 << 100),
        ];
        for (a, b) in cases {
            let r = BigUint::from_u128(a).add(&BigUint::from_u128(b));
            assert_eq!(r.to_u128(), Some(a + b), "a={a} b={b}");
        }
    }

    #[test]
    fn add_carries_beyond_u128() {
        let a = BigUint::from_u128(u128::MAX);
        let r = a.add(&BigUint::one());
        assert_eq!(r.bit_length(), 129);
        assert_eq!(r.checked_sub(&BigUint::one()).unwrap(), a);
    }

    #[test]
    fn checked_sub_matches_u128() {
        let a = BigUint::from_u128(1 << 100);
        let b = BigUint::from_u128((1 << 100) - 12345);
        assert_eq!(a.checked_sub(&b).unwrap().to_u128(), Some(12345));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.checked_sub(&a).unwrap(), BigUint::zero());
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from_u128(1 << 64);
        let r = a.checked_sub(&BigUint::one()).unwrap();
        assert_eq!(r.to_u128(), Some((1 << 64) - 1));
    }

    #[test]
    fn ordering_is_numeric() {
        let vals: Vec<u128> = vec![0, 1, 2, u64::MAX as u128, 1 << 64, u128::MAX];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigUint::from_u128(a).cmp(&BigUint::from_u128(b)),
                    a.cmp(&b),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn bit_length_matches_log2() {
        assert_eq!(BigUint::from_u64(1).bit_length(), 1);
        assert_eq!(BigUint::from_u64(2).bit_length(), 2);
        assert_eq!(BigUint::from_u64(255).bit_length(), 8);
        assert_eq!(BigUint::from_u64(256).bit_length(), 9);
        assert_eq!(BigUint::from_u128(1 << 100).bit_length(), 101);
    }

    #[test]
    fn shl_small_matches_u128() {
        for k in [0u32, 1, 7, 63, 64, 65, 100] {
            let v = BigUint::from_u64(0xDEAD_BEEF).shl_small(k);
            if k <= 96 {
                assert_eq!(v.to_u128(), Some((0xDEAD_BEEFu128) << k), "k={k}");
            } else {
                assert_eq!(v.bit_length(), 32 + k);
            }
        }
        assert!(BigUint::zero().shl_small(100).is_zero());
    }

    #[test]
    fn bits_msb_roundtrip() {
        for v in [0u128, 1, 5, 0b101101, u64::MAX as u128, 1 << 90] {
            let big = BigUint::from_u128(v);
            let w = big.bit_length().max(1);
            let bits = big.to_bits_msb(w);
            assert_eq!(BigUint::from_bits_msb(&bits), big, "v={v}");
            // Padding with leading zeros must not change the value.
            let padded = big.to_bits_msb(w + 7);
            assert_eq!(BigUint::from_bits_msb(&padded), big, "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_bits_msb_rejects_narrow_width() {
        BigUint::from_u64(256).to_bits_msb(8);
    }

    #[test]
    fn add_assign_matches_add() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u128::MAX / 2, u128::MAX / 2),
            (1 << 100, 12345),
        ];
        for (a, b) in cases {
            let mut x = BigUint::from_u128(a);
            x.add_assign(&BigUint::from_u128(b));
            assert_eq!(x, BigUint::from_u128(a).add(&BigUint::from_u128(b)));
        }
        // Carry past the top limb.
        let mut x = BigUint::from_u128(u128::MAX);
        x.add_assign(&BigUint::one());
        assert_eq!(x.bit_length(), 129);
    }

    #[test]
    fn sub_assign_checked_matches_checked_sub() {
        let a = BigUint::from_u128(1 << 100);
        let b = BigUint::from_u128((1 << 100) - 999);
        let mut x = a.clone();
        assert!(x.sub_assign_checked(&b));
        assert_eq!(x.to_u128(), Some(999));
        // Underflow leaves the value untouched.
        let mut y = b.clone();
        assert!(!y.sub_assign_checked(&a));
        assert_eq!(y, b);
        // Equal values go to zero.
        let mut z = a.clone();
        assert!(z.sub_assign_checked(&a));
        assert!(z.is_zero());
    }

    #[test]
    fn set_zero_and_clone_from_reuse() {
        let mut v = BigUint::from_u128(u128::MAX);
        v.set_zero();
        assert!(v.is_zero());
        v.clone_from(&BigUint::from_u64(77));
        assert_eq!(v.to_u64(), Some(77));
        assert_eq!(BigUint::ZERO, BigUint::zero());
    }

    #[test]
    fn with_bit0_builds_values() {
        // 0b1011 = 11 built MSB-first.
        let v = BigUint::zero()
            .double()
            .with_bit0(true)
            .double()
            .with_bit0(false)
            .double()
            .with_bit0(true)
            .double()
            .with_bit0(true);
        assert_eq!(v.to_u64(), Some(11));
    }
}
