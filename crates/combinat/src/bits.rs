//! MSB-first bit streams over byte buffers.
//!
//! The transmitter slices the MAC payload into `b = ⌊log2 C(N,K)⌋`-bit
//! data words, one per MPPM symbol; the receiver reassembles them. `b` is
//! rarely a multiple of 8 (e.g. 18 bits for `S(21, 0.524)`), so both sides
//! need a bit-granular cursor. MSB-first order matches the paper's frame
//! layout (network order) and makes test vectors readable.

/// Reads bits MSB-first from a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index (0 = MSB of bytes[0]).
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Total number of bits in the underlying buffer.
    pub fn total_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.total_bits() - self.pos
    }

    /// Current cursor position in bits from the start.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read a single bit; `None` at end of buffer.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.total_bits() {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read up to `n` bits into a vector (MSB-first). Returns fewer than
    /// `n` at end of buffer; an empty vector means the stream is done.
    pub fn read_bits(&mut self, n: usize) -> Vec<bool> {
        let take = n.min(self.remaining());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(self.read_bit().expect("remaining checked"));
        }
        out
    }

    /// Read exactly `n <= 64` bits as an integer (MSB-first), or `None` if
    /// fewer remain.
    pub fn read_uint(&mut self, n: usize) -> Option<u64> {
        assert!(n <= 64, "read_uint supports at most 64 bits");
        if self.remaining() < n {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit().expect("remaining checked") as u64;
        }
        Some(v)
    }
}

/// Writes bits MSB-first into an owned byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0 means byte-aligned).
    partial: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.partial == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial as usize
        }
    }

    /// Append one bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.partial);
        }
        self.partial = (self.partial + 1) % 8;
    }

    /// Append a slice of bits (MSB-first order preserved).
    pub fn write_bits(&mut self, bits: &[bool]) {
        for &b in bits {
            self.write_bit(b);
        }
    }

    /// Append the low `n <= 64` bits of `v`, MSB-first.
    pub fn write_uint(&mut self, v: u64, n: usize) {
        assert!(n <= 64, "write_uint supports at most 64 bits");
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Finish, zero-padding the final partial byte. Returns the bytes and
    /// the exact bit count (so a reader can ignore the padding).
    pub fn finish(self) -> (Vec<u8>, usize) {
        let bits = self.len_bits();
        (self.bytes, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bits_msb_first() {
        let mut r = BitReader::new(&[0b1010_0001]);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), vec![false, false, false, false]);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn read_uint_crosses_byte_boundary() {
        let mut r = BitReader::new(&[0xAB, 0xCD]);
        assert_eq!(r.read_uint(12), Some(0xABC));
        assert_eq!(r.read_uint(4), Some(0xD));
        assert_eq!(r.read_uint(1), None);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.write_uint(0b101, 3);
        w.write_uint(0xFFFF, 16);
        w.write_bit(false);
        w.write_uint(42, 13);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 33);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_uint(3), Some(0b101));
        assert_eq!(r.read_uint(16), Some(0xFFFF));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_uint(13), Some(42));
    }

    #[test]
    fn partial_final_byte_is_zero_padded() {
        let mut w = BitWriter::new();
        w.write_bits(&[true, true, true]);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 3);
        assert_eq!(bytes, vec![0b1110_0000]);
    }

    #[test]
    fn read_bits_truncates_at_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(20).len(), 8);
        assert!(r.read_bits(4).is_empty());
    }

    #[test]
    fn len_bits_tracks_partial() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bit(true);
        assert_eq!(w.len_bits(), 1);
        w.write_uint(0, 7);
        assert_eq!(w.len_bits(), 8);
        w.write_bit(false);
        assert_eq!(w.len_bits(), 9);
    }

    #[test]
    fn position_and_remaining_are_consistent() {
        let mut r = BitReader::new(&[0, 0, 0]);
        assert_eq!(r.remaining(), 24);
        r.read_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 19);
    }
}
