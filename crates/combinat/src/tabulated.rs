//! The tabulation codec that §4.4 of the paper rejects — implemented as
//! the ablation baseline.
//!
//! "Classical methods based on pulse position can be categorized as two
//! main groups: tabulation and constellation. […] both of them are based
//! on exhaustion search and all the items are recorded in the memory
//! space. […] when N = 50 and K = 25, the number of mappings is
//! C(50,25) ≈ 1.26e14. If each mapping item occupies 4 bytes, a total of
//! 126 TB memory is required."
//!
//! [`TabulatedCodec`] enumerates all `2^b` usable codewords of a pattern
//! up-front into a forward table (value → codeword) and a reverse map
//! (codeword → value). Encoding and decoding become O(1) lookups — the
//! only thing tabulation has over the enumerative codec — at a memory
//! cost that explodes combinatorially. [`table_memory_bytes`] computes
//! the paper's 126 TB figure exactly; [`TabulatedCodec::build`] refuses
//! anything beyond a sane budget.

use crate::biguint::BigUint;
use crate::binomial::BinomialTable;
use crate::codeword::{encode_codeword, CodewordError};
use std::collections::HashMap;

/// Memory a full tabulation of `(n, k)` would need, counting
/// `bytes_per_entry` per mapping (the paper uses 4). `None` when the
/// count overflows `u128` — i.e. "absurd" is an understatement.
pub fn table_memory_bytes(
    table: &BinomialTable,
    n: usize,
    k: usize,
    bytes_per_entry: u64,
) -> Option<u128> {
    table
        .binomial(n, k)
        .to_u128()?
        .checked_mul(bytes_per_entry as u128)
}

/// A fully materialized value⇄codeword table for one `(n, k)` pattern.
pub struct TabulatedCodec {
    n: usize,
    k: usize,
    /// Forward: value (table index) → codeword slots.
    forward: Vec<Vec<bool>>,
    /// Reverse: codeword → value.
    reverse: HashMap<Vec<bool>, u64>,
}

/// Why a tabulated codec could not be built.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TabulationError {
    /// `k > n`.
    InvalidPattern,
    /// The table would exceed the byte budget — the paper's 126 TB point.
    OverBudget {
        /// Bytes the table would need.
        needed: u128,
        /// The allowed budget.
        budget: u128,
    },
}

impl TabulatedCodec {
    /// Materialize the table for `(n, k)`, refusing if the *usable*
    /// portion (the `2^b` codewords actually addressable by data) would
    /// exceed `budget_bytes` at ~`n + 16` bytes per entry.
    pub fn build(
        table: &BinomialTable,
        n: usize,
        k: usize,
        budget_bytes: u128,
    ) -> Result<TabulatedCodec, TabulationError> {
        if k > n {
            return Err(TabulationError::InvalidPattern);
        }
        let bits = table
            .bits_per_symbol(n, k)
            .ok_or(TabulationError::InvalidPattern)?;
        let usable = 1u128 << bits.min(127);
        let per_entry = (n + 16) as u128;
        let needed = usable.saturating_mul(per_entry);
        if needed > budget_bytes {
            return Err(TabulationError::OverBudget {
                needed,
                budget: budget_bytes,
            });
        }
        let mut forward = Vec::with_capacity(usable as usize);
        let mut reverse = HashMap::with_capacity(usable as usize);
        for v in 0..usable as u64 {
            let cw =
                encode_codeword(table, n, k, &BigUint::from_u64(v)).expect("v < 2^bits <= C(n,k)");
            reverse.insert(cw.clone(), v);
            forward.push(cw);
        }
        Ok(TabulatedCodec {
            n,
            k,
            forward,
            reverse,
        })
    }

    /// O(1) encode by table lookup.
    pub fn encode(&self, value: u64) -> Result<&[bool], CodewordError> {
        self.forward
            .get(value as usize)
            .map(Vec::as_slice)
            .ok_or(CodewordError::ValueOutOfRange)
    }

    /// O(1) decode by hash lookup; detects corruption exactly like the
    /// enumerative codec (unknown codewords have no table entry).
    pub fn decode(&self, codeword: &[bool]) -> Result<u64, CodewordError> {
        if codeword.len() != self.n {
            return Err(CodewordError::WrongLength {
                expected: self.n,
                got: codeword.len(),
            });
        }
        self.reverse.get(codeword).copied().ok_or_else(|| {
            let got = codeword.iter().filter(|&&b| b).count();
            CodewordError::WrongWeight {
                expected: self.k,
                got,
            }
        })
    }

    /// Entries materialized.
    pub fn entries(&self) -> usize {
        self.forward.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codeword::decode_codeword;

    fn table() -> BinomialTable {
        BinomialTable::new(64)
    }

    #[test]
    fn paper_126tb_figure() {
        // Sec. 4.4: C(50,25) mappings at 4 bytes each = ~505 TB... the
        // paper says 126 TB, which corresponds to 1 byte per entry at
        // C(50,25) = 1.264e14 — or their 4 B across a quarter of the
        // entries. We reproduce the count they start from exactly.
        let t = table();
        let count = t.binomial_u128(50, 25).unwrap();
        assert_eq!(count, 126_410_606_437_752);
        let bytes = table_memory_bytes(&t, 50, 25, 1).unwrap();
        assert_eq!(bytes, 126_410_606_437_752); // ~126 TB at 1 B/entry
        let four = table_memory_bytes(&t, 50, 25, 4).unwrap();
        assert_eq!(four, 505_642_425_751_008); // ~506 TB at their 4 B
    }

    #[test]
    fn build_refuses_over_budget() {
        let t = table();
        match TabulatedCodec::build(&t, 50, 25, 1 << 30) {
            Err(TabulationError::OverBudget { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected OverBudget, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn small_tables_agree_with_enumerative_codec() {
        let t = table();
        for (n, k) in [(10usize, 3usize), (12, 6), (16, 2)] {
            let tab = TabulatedCodec::build(&t, n, k, 1 << 24).unwrap();
            let bits = t.bits_per_symbol(n, k).unwrap();
            for v in 0..(1u64 << bits) {
                let cw = tab.encode(v).unwrap().to_vec();
                // Same codeword as Algorithm 1...
                let reference = encode_codeword(&t, n, k, &BigUint::from_u64(v)).unwrap();
                assert_eq!(cw, reference, "n={n} k={k} v={v}");
                // ...and both decoders agree.
                assert_eq!(tab.decode(&cw).unwrap(), v);
                assert_eq!(decode_codeword(&t, n, k, &cw).unwrap().to_u64(), Some(v));
            }
        }
    }

    #[test]
    fn corruption_detected() {
        let t = table();
        let tab = TabulatedCodec::build(&t, 10, 4, 1 << 24).unwrap();
        let mut cw = tab.encode(5).unwrap().to_vec();
        cw[0] = !cw[0];
        assert!(matches!(
            tab.decode(&cw),
            Err(CodewordError::WrongWeight { .. })
        ));
        assert!(matches!(
            tab.decode(&[true; 9]),
            Err(CodewordError::WrongLength { .. })
        ));
    }

    #[test]
    fn out_of_range_value_rejected() {
        let t = table();
        let tab = TabulatedCodec::build(&t, 10, 4, 1 << 24).unwrap();
        assert_eq!(tab.entries(), 128); // floor(log2 C(10,4)=210) = 7 bits
        assert!(tab.encode(128).is_err());
    }
}
