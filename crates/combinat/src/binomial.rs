//! Exact binomial coefficients with memoized Pascal rows.
//!
//! The AMPPM planner queries `C(N,K)` (and `⌊log2 C(N,K)⌋`, the
//! bits-per-symbol of pattern `S(N, K/N)` from Eq. 2 of the paper) for many
//! `(N,K)` pairs while filtering candidates and walking the rate envelope,
//! and the codec's inner loop compares a running value against
//! `C(N-iN, K-iK)` once per slot. A [`BinomialTable`] memoizes whole Pascal
//! rows so each coefficient is computed exactly once, and serves values
//! either as exact [`BigUint`]s or through a `u128` fast path when they
//! fit (everything up to `N = 128` does).

use crate::biguint::BigUint;

/// Memoized Pascal's triangle up to a maximum row.
///
/// Rows are computed lazily and only the first half of each row is stored
/// (`C(n,k) = C(n,n-k)`).
pub struct BinomialTable {
    max_n: usize,
    /// `rows[n][k]` = C(n,k) for k <= n/2; rows computed on demand.
    rows: Vec<Option<Vec<BigUint>>>,
}

impl BinomialTable {
    /// Create a table supporting `0 <= n <= max_n`.
    ///
    /// `max_n = 512` comfortably covers the paper's `Nmax = 500` flicker
    /// bound (Eq. 4) and costs only a few MB when fully populated.
    pub fn new(max_n: usize) -> Self {
        BinomialTable {
            max_n,
            rows: vec![None; max_n + 1],
        }
    }

    /// The largest supported `n`.
    pub fn max_n(&self) -> usize {
        self.max_n
    }

    fn ensure_row(&mut self, n: usize) {
        assert!(n <= self.max_n, "n={n} exceeds table max {}", self.max_n);
        if self.rows[n].is_some() {
            return;
        }
        // Build rows iteratively from the highest cached row below n.
        let mut start = n;
        while start > 0 && self.rows[start - 1].is_none() {
            start -= 1;
        }
        if start == 0 && self.rows[0].is_none() {
            self.rows[0] = Some(vec![BigUint::one()]);
            start = 1;
        }
        for row_n in start..=n {
            let prev = self.rows[row_n - 1]
                .as_ref()
                .expect("previous row computed");
            let half = row_n / 2;
            let mut row = Vec::with_capacity(half + 1);
            row.push(BigUint::one()); // C(n,0)
            for k in 1..=half {
                // C(n,k) = C(n-1,k-1) + C(n-1,k); fetch both from the
                // stored half-row using symmetry.
                let a = fetch_half(prev, row_n - 1, k - 1);
                let b = fetch_half(prev, row_n - 1, k);
                row.push(a.add(&b));
            }
            self.rows[row_n] = Some(row);
        }
    }

    /// Exact `C(n,k)`. Returns 0 for `k > n`.
    pub fn binomial(&mut self, n: usize, k: usize) -> BigUint {
        if k > n {
            return BigUint::zero();
        }
        self.ensure_row(n);
        let row = self.rows[n].as_ref().expect("row just ensured");
        fetch_half(row, n, k).clone()
    }

    /// `C(n,k)` as `u128` if it fits, else `None`.
    pub fn binomial_u128(&mut self, n: usize, k: usize) -> Option<u128> {
        self.binomial(n, k).to_u128()
    }

    /// `⌊log2 C(n,k)⌋`: the number of data bits one MPPM symbol with
    /// pattern `S(n, k/n)` carries (Eq. 2 numerator). Returns `None` when
    /// `C(n,k) == 0` (i.e. `k > n`) and `Some(0)` when `C(n,k) == 1`.
    pub fn bits_per_symbol(&mut self, n: usize, k: usize) -> Option<u32> {
        let c = self.binomial(n, k);
        if c.is_zero() {
            None
        } else {
            Some(c.bit_length() - 1)
        }
    }
}

fn fetch_half(row: &[BigUint], n: usize, k: usize) -> &BigUint {
    let k = k.min(n - k);
    &row[k]
}

/// Exact `C(n,k)` without a table, via the multiplicative formula in
/// `u128`. Panics on overflow; intended for small one-off queries and as a
/// cross-check in tests.
pub fn binomial_u128_direct(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num
            .checked_mul((n - i) as u128)
            .expect("binomial_u128_direct overflow");
        num /= (i + 1) as u128;
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_known() {
        let mut t = BinomialTable::new(64);
        assert_eq!(t.binomial_u128(0, 0), Some(1));
        assert_eq!(t.binomial_u128(5, 0), Some(1));
        assert_eq!(t.binomial_u128(5, 5), Some(1));
        assert_eq!(t.binomial_u128(5, 2), Some(10));
        assert_eq!(t.binomial_u128(10, 3), Some(120));
        assert_eq!(t.binomial_u128(20, 10), Some(184_756));
        assert_eq!(t.binomial_u128(3, 7), Some(0));
    }

    #[test]
    fn matches_direct_formula() {
        let mut t = BinomialTable::new(60);
        for n in 0..=60u64 {
            for k in 0..=n {
                assert_eq!(
                    t.binomial_u128(n as usize, k as usize),
                    Some(binomial_u128_direct(n, k)),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn paper_examples() {
        let mut t = BinomialTable::new(64);
        // Sec. 4.4: C(50,25) ~= 1.26e14.
        assert_eq!(t.binomial_u128(50, 25), Some(126_410_606_437_752));
        // Fig. 9: S(21, 0.524) => K = 11; bits = floor(log2 C(21,11)).
        assert_eq!(t.binomial_u128(21, 11), Some(352_716));
        assert_eq!(t.bits_per_symbol(21, 11), Some(18));
        // MPPM baseline N=20, l=0.1 => K=2: floor(log2 190) = 7.
        assert_eq!(t.bits_per_symbol(20, 2), Some(7));
    }

    #[test]
    fn huge_rows_are_exact() {
        let mut t = BinomialTable::new(512);
        let c = t.binomial(500, 250);
        // C(500,250) has 496 bits (log2 ~ 495.2).
        assert_eq!(c.bit_length(), 496);
        // Pascal identity holds at the top.
        let a = t.binomial(499, 249);
        let b = t.binomial(499, 250);
        assert_eq!(a.add(&b), c);
    }

    #[test]
    fn symmetry_holds() {
        let mut t = BinomialTable::new(101);
        for k in 0..=101 {
            assert_eq!(t.binomial(101, k), t.binomial(101, 101 - k));
        }
    }

    #[test]
    fn row_sum_is_power_of_two() {
        let mut t = BinomialTable::new(40);
        let mut sum = BigUint::zero();
        for k in 0..=40 {
            sum = sum.add(&t.binomial(40, k));
        }
        assert_eq!(sum.to_u128(), Some(1u128 << 40));
    }

    #[test]
    fn bits_per_symbol_edges() {
        let mut t = BinomialTable::new(32);
        assert_eq!(t.bits_per_symbol(10, 0), Some(0)); // C=1 -> 0 bits
        assert_eq!(t.bits_per_symbol(10, 10), Some(0));
        assert_eq!(t.bits_per_symbol(10, 11), None);
        assert_eq!(t.bits_per_symbol(10, 1), Some(3)); // C=10 -> 3 bits
    }

    #[test]
    fn lazy_rows_any_order() {
        let mut t = BinomialTable::new(128);
        // Query a high row first, then a low one, then high again.
        let hi = t.binomial_u128(100, 50);
        assert!(hi.is_some());
        assert_eq!(t.binomial_u128(4, 2), Some(6));
        assert_eq!(t.binomial_u128(100, 50), hi);
    }

    #[test]
    #[should_panic(expected = "exceeds table max")]
    fn beyond_max_panics() {
        let mut t = BinomialTable::new(16);
        t.binomial(17, 3);
    }
}
