//! Exact binomial coefficients, precomputed and shareable.
//!
//! The AMPPM planner queries `C(N,K)` (and `⌊log2 C(N,K)⌋`, the
//! bits-per-symbol of pattern `S(N, K/N)` from Eq. 2 of the paper) for many
//! `(N,K)` pairs while filtering candidates and walking the rate envelope,
//! and the codec's inner loop compares a running value against
//! `C(N-iN, K-iK)` once per slot. A [`BinomialTable`] holds every Pascal
//! row up to its `max_n` — computed once at construction — and serves
//! values through three read-only views:
//!
//! * [`BinomialTable::binomial_ref`] — a borrowed `&BigUint`, the codec
//!   hot path (no clone, no lock),
//! * [`BinomialTable::binomial_u128`] — the `u128` fast path when the
//!   coefficient fits 128 bits (everything up to `N = 128` does),
//! * [`BinomialTable::binomial`] — an owned clone for callers that keep
//!   the value.
//!
//! Because the table is immutable after construction, one instance can be
//! shared across every planner, codec, and sweep worker thread:
//! [`BinomialTable::shared`] interns tables per `max_n` behind `Arc`s, so
//! parallel experiment runners pay the Pascal build exactly once per
//! process instead of once per link endpoint.

use crate::biguint::BigUint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed Pascal's triangle up to a maximum row; immutable after
/// construction, so freely shareable across threads.
///
/// Only the first half of each row is stored (`C(n,k) = C(n,n-k)`).
pub struct BinomialTable {
    max_n: usize,
    /// `rows[n][k]` = C(n,k) for k <= n/2.
    rows: Vec<Vec<BigUint>>,
}

impl BinomialTable {
    /// Build a table supporting `0 <= n <= max_n`. All rows are computed
    /// eagerly — `max_n = 512` (covering the paper's `Nmax = 500` flicker
    /// bound, Eq. 4) builds in single-digit milliseconds and costs a few
    /// MB.
    pub fn new(max_n: usize) -> Self {
        let mut rows: Vec<Vec<BigUint>> = Vec::with_capacity(max_n + 1);
        rows.push(vec![BigUint::one()]);
        for n in 1..=max_n {
            let prev = &rows[n - 1];
            let half = n / 2;
            let mut row = Vec::with_capacity(half + 1);
            row.push(BigUint::one()); // C(n,0)
            for k in 1..=half {
                // C(n,k) = C(n-1,k-1) + C(n-1,k); fetch both from the
                // stored half-row using symmetry.
                let a = fetch_half(prev, n - 1, k - 1);
                let b = fetch_half(prev, n - 1, k);
                row.push(a.add(b));
            }
            rows.push(row);
        }
        BinomialTable { max_n, rows }
    }

    /// A process-wide shared table for `max_n`, built on first use.
    ///
    /// Tables are interned per `max_n`: every planner/codec asking for the
    /// same size gets the same `Arc`, so worker threads in a parallel
    /// sweep never rebuild (or lock) Pascal rows on the hot path — the
    /// mutex below guards only the intern map, not lookups.
    pub fn shared(max_n: usize) -> Arc<BinomialTable> {
        static TABLES: OnceLock<Mutex<HashMap<usize, Arc<BinomialTable>>>> = OnceLock::new();
        let map = TABLES.get_or_init(|| Mutex::new(HashMap::new()));
        // Fast path: already interned.
        if let Some(t) = map.lock().expect("intern map poisoned").get(&max_n) {
            return Arc::clone(t);
        }
        // Build outside the lock so a slow construction does not serialize
        // unrelated sizes; a racing builder just wastes one build.
        let built = Arc::new(BinomialTable::new(max_n));
        let mut guard = map.lock().expect("intern map poisoned");
        Arc::clone(guard.entry(max_n).or_insert(built))
    }

    /// The largest supported `n`.
    pub fn max_n(&self) -> usize {
        self.max_n
    }

    /// Borrowed exact `C(n,k)` — the allocation-free hot path. Returns a
    /// reference to zero for `k > n`.
    #[inline]
    pub fn binomial_ref(&self, n: usize, k: usize) -> &BigUint {
        static ZERO: BigUint = BigUint::ZERO;
        if k > n {
            return &ZERO;
        }
        assert!(n <= self.max_n, "n={n} exceeds table max {}", self.max_n);
        fetch_half(&self.rows[n], n, k)
    }

    /// Exact `C(n,k)` as an owned value. Returns 0 for `k > n`.
    pub fn binomial(&self, n: usize, k: usize) -> BigUint {
        self.binomial_ref(n, k).clone()
    }

    /// `C(n,k)` as `u128` if it fits, else `None`.
    #[inline]
    pub fn binomial_u128(&self, n: usize, k: usize) -> Option<u128> {
        self.binomial_ref(n, k).to_u128()
    }

    /// `⌊log2 C(n,k)⌋`: the number of data bits one MPPM symbol with
    /// pattern `S(n, k/n)` carries (Eq. 2 numerator). Returns `None` when
    /// `C(n,k) == 0` (i.e. `k > n`) and `Some(0)` when `C(n,k) == 1`.
    pub fn bits_per_symbol(&self, n: usize, k: usize) -> Option<u32> {
        let c = self.binomial_ref(n, k);
        if c.is_zero() {
            None
        } else {
            Some(c.bit_length() - 1)
        }
    }
}

fn fetch_half(row: &[BigUint], n: usize, k: usize) -> &BigUint {
    let k = k.min(n - k);
    &row[k]
}

/// Exact `C(n,k)` without a table, via the multiplicative formula in
/// `u128`. Panics on overflow; intended for small one-off queries and as a
/// cross-check in tests.
pub fn binomial_u128_direct(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num
            .checked_mul((n - i) as u128)
            .expect("binomial_u128_direct overflow");
        num /= (i + 1) as u128;
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_known() {
        let t = BinomialTable::new(64);
        assert_eq!(t.binomial_u128(0, 0), Some(1));
        assert_eq!(t.binomial_u128(5, 0), Some(1));
        assert_eq!(t.binomial_u128(5, 5), Some(1));
        assert_eq!(t.binomial_u128(5, 2), Some(10));
        assert_eq!(t.binomial_u128(10, 3), Some(120));
        assert_eq!(t.binomial_u128(20, 10), Some(184_756));
        assert_eq!(t.binomial_u128(3, 7), Some(0));
    }

    #[test]
    fn matches_direct_formula() {
        let t = BinomialTable::new(60);
        for n in 0..=60u64 {
            for k in 0..=n {
                assert_eq!(
                    t.binomial_u128(n as usize, k as usize),
                    Some(binomial_u128_direct(n, k)),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn paper_examples() {
        let t = BinomialTable::new(64);
        // Sec. 4.4: C(50,25) ~= 1.26e14.
        assert_eq!(t.binomial_u128(50, 25), Some(126_410_606_437_752));
        // Fig. 9: S(21, 0.524) => K = 11; bits = floor(log2 C(21,11)).
        assert_eq!(t.binomial_u128(21, 11), Some(352_716));
        assert_eq!(t.bits_per_symbol(21, 11), Some(18));
        // MPPM baseline N=20, l=0.1 => K=2: floor(log2 190) = 7.
        assert_eq!(t.bits_per_symbol(20, 2), Some(7));
    }

    #[test]
    fn huge_rows_are_exact() {
        let t = BinomialTable::new(512);
        let c = t.binomial(500, 250);
        // C(500,250) has 496 bits (log2 ~ 495.2).
        assert_eq!(c.bit_length(), 496);
        // Pascal identity holds at the top.
        let a = t.binomial(499, 249);
        let b = t.binomial(499, 250);
        assert_eq!(a.add(&b), c);
    }

    #[test]
    fn symmetry_holds() {
        let t = BinomialTable::new(101);
        for k in 0..=101 {
            assert_eq!(t.binomial(101, k), t.binomial(101, 101 - k));
        }
    }

    #[test]
    fn row_sum_is_power_of_two() {
        let t = BinomialTable::new(40);
        let mut sum = BigUint::zero();
        for k in 0..=40 {
            sum.add_assign(t.binomial_ref(40, k));
        }
        assert_eq!(sum.to_u128(), Some(1u128 << 40));
    }

    #[test]
    fn bits_per_symbol_edges() {
        let t = BinomialTable::new(32);
        assert_eq!(t.bits_per_symbol(10, 0), Some(0)); // C=1 -> 0 bits
        assert_eq!(t.bits_per_symbol(10, 10), Some(0));
        assert_eq!(t.bits_per_symbol(10, 11), None);
        assert_eq!(t.bits_per_symbol(10, 1), Some(3)); // C=10 -> 3 bits
    }

    #[test]
    fn borrowed_ref_matches_owned() {
        let t = BinomialTable::new(128);
        assert_eq!(t.binomial_ref(100, 50), &t.binomial(100, 50));
        assert!(t.binomial_ref(4, 9).is_zero());
    }

    #[test]
    fn shared_tables_are_interned() {
        let a = BinomialTable::shared(96);
        let b = BinomialTable::shared(96);
        assert!(Arc::ptr_eq(&a, &b), "same max_n must intern");
        let c = BinomialTable::shared(97);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.binomial_u128(20, 10), Some(184_756));
    }

    #[test]
    fn shared_table_is_send_sync() {
        let t = BinomialTable::shared(64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.binomial_u128(50, 25))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(126_410_606_437_752));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds table max")]
    fn beyond_max_panics() {
        let t = BinomialTable::new(16);
        t.binomial(17, 3);
    }
}
