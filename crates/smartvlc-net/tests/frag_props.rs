//! Property tests for the fragment → reassemble pipeline (issue
//! satellite: corrupt/reorder/drop must never panic, never yield a
//! datagram differing from the original, and eviction must bound
//! memory under partial-fragment floods).

use desim::{SimDuration, SimTime};
use proptest::prelude::*;
use smartvlc_net::{fragment, DrrScheduler, FragHeader, NetError, Reassembler, ReassemblyConfig};

fn reasm() -> Reassembler {
    Reassembler::new(ReassemblyConfig::default())
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

proptest! {
    /// Reordering, duplication and dropping of a datagram's fragments:
    /// reassembly never panics, and a completed datagram is always
    /// byte-identical to the original. With nothing dropped it must
    /// complete.
    #[test]
    fn reorder_dup_drop_never_differs(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        mtu in 8usize..128,
        order in proptest::collection::vec(any::<u16>(), 0..64),
        drop_mask in any::<u64>(),
    ) {
        let frags = fragment(3, 42, &data, mtu);
        // Build a delivery schedule: the shuffled prefix (with repeats)
        // followed by every fragment once, minus dropped ones.
        let mut schedule: Vec<&Vec<u8>> =
            order.iter().map(|&i| &frags[i as usize % frags.len()]).collect();
        let mut any_dropped = false;
        for (i, f) in frags.iter().enumerate() {
            if i < 64 && drop_mask & (1 << i) != 0 {
                any_dropped = true;
            } else {
                schedule.push(f);
            }
        }
        let mut r = reasm();
        let mut completions = 0u32;
        for f in schedule {
            // Duplicates arriving after a completion may legitimately
            // complete the datagram again (the receiver cannot tell a
            // replay from a new incarnation of the (flow, seq) pair) —
            // but every completion must carry the exact original bytes.
            if let Some(dg) = r.push(t(1), f).unwrap() {
                prop_assert_eq!(&dg.bytes, &data, "reassembly differs from the original");
                completions += 1;
            }
        }
        if !any_dropped {
            prop_assert!(completions > 0, "nothing dropped but never completed");
        }
    }

    /// Arbitrary byte corruption (including version-nibble damage) and
    /// interleaved garbage payloads: reassembly never panics, rejects
    /// unknown versions with the typed error, and keeps counting them.
    #[test]
    fn corruption_never_panics(
        data in proptest::collection::vec(any::<u8>(), 1..300),
        mtu in 8usize..96,
        corrupt in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 0..16),
        garbage in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..8),
    ) {
        let mut frags = fragment(1, 7, &data, mtu);
        for &(fi, bi, val) in &corrupt {
            let n = frags.len();
            let f = &mut frags[fi as usize % n];
            let i = bi as usize % f.len();
            f[i] ^= val;
        }
        let mut r = reasm();
        let mut bad_versions = 0u64;
        for payload in frags.iter().chain(garbage.iter()) {
            match r.push(t(1), payload) {
                Ok(_) => {}
                Err(NetError::BadVersion { .. }) => bad_versions += 1,
                Err(NetError::Truncated { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert_eq!(r.stats.bad_version, bad_versions,
            "every BadVersion rejection must be counted exactly once");
    }

    /// A pathological flood of first-fragments (each starting a new
    /// partial datagram, none ever completing) must keep the table at
    /// its configured bound, and timeout eviction must empty it.
    #[test]
    fn partial_flood_stays_bounded(
        max_buffers in 1usize..24,
        flood in 30usize..300,
        chunk_len in 1usize..64,
    ) {
        let mut r = Reassembler::new(ReassemblyConfig {
            max_buffers,
            ..ReassemblyConfig::default()
        });
        let chunk = vec![0x5Au8; chunk_len];
        for i in 0..flood {
            let hdr = FragHeader {
                flow: (i % 16) as u8,
                seq: (i / 16) as u8,
                index: 0,
                last: false,
            };
            r.push(t(i as u64), &hdr.encapsulate(&chunk)).unwrap();
            prop_assert!(r.buffered() <= max_buffers,
                "table grew past its bound: {} > {max_buffers}", r.buffered());
            prop_assert!(r.buffered_bytes() <= max_buffers * chunk_len);
        }
        prop_assert_eq!(
            r.stats.evicted_overflow as usize,
            flood.saturating_sub(max_buffers).min(256 * 16),
            "every admission past the bound evicts exactly one buffer"
        );
        // The clock advancing past the timeout clears everything.
        r.evict_expired(t(flood as u64) + SimDuration::secs(3));
        prop_assert_eq!(r.buffered(), 0);
        prop_assert_eq!(r.buffered_bytes(), 0);
    }

    /// End to end through the DRR scheduler with a fluctuating MTU:
    /// every emitted fragment fits the MTU of its emission instant, and
    /// in-order delivery reassembles every datagram byte-identically.
    #[test]
    fn scheduler_roundtrip_with_varying_mtu(
        dgrams in proptest::collection::vec(
            (0u8..4, proptest::collection::vec(any::<u8>(), 0..400)), 1..8),
        mtus in proptest::collection::vec(14usize..130, 1..32),
    ) {
        let mut s = DrrScheduler::new(256, 64);
        let mut expected = std::collections::HashMap::new();
        for (flow, data) in &dgrams {
            let seq = s.enqueue(*flow, data.clone()).unwrap();
            expected.insert((*flow, seq), data.clone());
        }
        let mut r = reasm();
        let mut completed = std::collections::HashMap::new();
        let mut step = 0usize;
        while let Some(f) = s.next_fragment(mtus[step % mtus.len()]) {
            prop_assert!(f.payload.len() <= mtus[step % mtus.len()]);
            step += 1;
            if let Some(dg) = r.push(t(step as u64), &f.payload).unwrap() {
                completed.insert((dg.flow, dg.seq), dg.bytes);
            }
        }
        prop_assert_eq!(completed, expected, "every datagram must survive the trip");
    }
}
