//! The versioned fragment header and datagram fragmentation.
//!
//! Every MAC frame body carries one fragment of one datagram, prefixed
//! by a 4-byte header:
//!
//! ```text
//! byte 0: [version:4][flow:4]
//! byte 1: per-flow datagram sequence number (wrapping u8)
//! bytes 2..4 (big-endian u16): [last:1][fragment index:15]
//! ```
//!
//! The version nibble is the discriminant satellite 3 of the issue asks
//! for: `MacHeader::decapsulate` accepts any ≥2-byte payload, so a
//! corrupted-but-CRC-colliding or stale-format frame would otherwise
//! decapsulate as garbage and feed straight into reassembly. Unknown
//! versions are rejected with a typed error and counted
//! (`net.rx.bad_version`); the MAC wire format itself is unchanged.

use crate::error::NetError;

/// Current fragment wire version. Version 0 is deliberately invalid:
/// an all-zero (or zero-prefixed) payload — the most common corruption
/// pattern — must not parse as a fragment.
pub const WIRE_VERSION: u8 = 1;

/// Flow ids occupy 4 bits on the wire.
pub const MAX_FLOWS: u8 = 16;

/// Fragment indices occupy 15 bits (bit 15 is the last-fragment flag).
pub const MAX_FRAG_INDEX: u16 = 0x7FFF;

/// The per-fragment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragHeader {
    /// Flow id, `0..MAX_FLOWS`.
    pub flow: u8,
    /// Per-flow datagram sequence number (wraps at 256).
    pub seq: u8,
    /// Fragment index within the datagram, starting at 0.
    pub index: u16,
    /// Whether this is the datagram's final fragment.
    pub last: bool,
}

impl FragHeader {
    /// Wire size of the header.
    pub const WIRE_BYTES: usize = 4;

    /// Prepend this header to a fragment chunk.
    pub fn encapsulate(&self, chunk: &[u8]) -> Vec<u8> {
        debug_assert!(self.flow < MAX_FLOWS);
        debug_assert!(self.index <= MAX_FRAG_INDEX);
        let mut out = Vec::with_capacity(Self::WIRE_BYTES + chunk.len());
        out.push((WIRE_VERSION << 4) | (self.flow & 0x0F));
        out.push(self.seq);
        let word = self.index | if self.last { 0x8000 } else { 0 };
        out.extend_from_slice(&word.to_be_bytes());
        out.extend_from_slice(chunk);
        out
    }

    /// Split a MAC frame body into header and chunk, rejecting payloads
    /// that are too short or carry an unknown wire version.
    pub fn decapsulate(payload: &[u8]) -> Result<(FragHeader, &[u8]), NetError> {
        if payload.len() < Self::WIRE_BYTES {
            return Err(NetError::Truncated { len: payload.len() });
        }
        let version = payload[0] >> 4;
        if version != WIRE_VERSION {
            return Err(NetError::BadVersion { got: version });
        }
        let word = u16::from_be_bytes([payload[2], payload[3]]);
        Ok((
            FragHeader {
                flow: payload[0] & 0x0F,
                seq: payload[1],
                index: word & MAX_FRAG_INDEX,
                last: word & 0x8000 != 0,
            },
            &payload[Self::WIRE_BYTES..],
        ))
    }
}

/// Cut `data` into encapsulated fragments of at most `mtu` bytes each
/// (header included). A zero-length datagram still produces one (empty)
/// fragment so the receiver learns it exists. Used by tests and
/// property checks; the scheduler cuts fragments lazily with the same
/// boundaries when the MTU is constant.
pub fn fragment(flow: u8, seq: u8, data: &[u8], mtu: usize) -> Vec<Vec<u8>> {
    let budget = mtu.saturating_sub(FragHeader::WIRE_BYTES).max(1);
    let count = data.len().div_ceil(budget).max(1);
    (0..count)
        .map(|i| {
            let start = i * budget;
            let end = (start + budget).min(data.len());
            FragHeader {
                flow,
                seq,
                index: i as u16,
                last: i + 1 == count,
            }
            .encapsulate(&data[start..end])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = FragHeader {
            flow: 11,
            seq: 250,
            index: 0x7ABC,
            last: true,
        };
        let p = h.encapsulate(&[9, 8, 7]);
        assert_eq!(p.len(), 7);
        let (back, chunk) = FragHeader::decapsulate(&p).unwrap();
        assert_eq!(back, h);
        assert_eq!(chunk, &[9, 8, 7]);
    }

    #[test]
    fn truncated_and_bad_version_are_typed() {
        assert_eq!(
            FragHeader::decapsulate(&[1, 2, 3]),
            Err(NetError::Truncated { len: 3 })
        );
        // Version nibble 0: garbage zeros must not parse.
        assert_eq!(
            FragHeader::decapsulate(&[0, 0, 0, 0]),
            Err(NetError::BadVersion { got: 0 })
        );
        // A future version is rejected, not misparsed.
        assert_eq!(
            FragHeader::decapsulate(&[0x2A, 0, 0, 0]),
            Err(NetError::BadVersion { got: 2 })
        );
    }

    #[test]
    fn fragment_covers_data_exactly() {
        let data: Vec<u8> = (0..=255u8).collect();
        let frags = fragment(3, 7, &data, 64);
        assert_eq!(frags.len(), 256usize.div_ceil(60));
        let mut rebuilt = Vec::new();
        for (i, f) in frags.iter().enumerate() {
            let (h, chunk) = FragHeader::decapsulate(f).unwrap();
            assert_eq!(h.index as usize, i);
            assert_eq!(h.last, i + 1 == frags.len());
            assert!(f.len() <= 64);
            rebuilt.extend_from_slice(chunk);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn empty_datagram_is_one_empty_fragment() {
        let frags = fragment(0, 0, &[], 32);
        assert_eq!(frags.len(), 1);
        let (h, chunk) = FragHeader::decapsulate(&frags[0]).unwrap();
        assert!(h.last);
        assert_eq!(h.index, 0);
        assert!(chunk.is_empty());
    }
}
