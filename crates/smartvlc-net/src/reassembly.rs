//! Datagram reassembly with deterministic timeout eviction.
//!
//! Fragments arrive in order on a clean link, but retransmission
//! reordering, duplicate deliveries, and abandoned frames mean the
//! reassembler must tolerate anything: out-of-order indices, repeats,
//! holes that never fill. Buffers are keyed `(flow, seq)` in a
//! `BTreeMap` so iteration (and therefore eviction) order is
//! deterministic, and every partial datagram carries its admission
//! timestamp on the `desim` clock — `evict_expired` walks the map and
//! drops anything older than the configured timeout, bounding memory
//! under pathological partial-fragment floods.

use crate::error::NetError;
use crate::frag::FragHeader;
use desim::{SimDuration, SimTime};
use smartvlc_obs as obs;
use std::collections::BTreeMap;

/// Reassembly limits.
#[derive(Clone, Copy, Debug)]
pub struct ReassemblyConfig {
    /// How long a partial datagram may wait for its missing fragments.
    pub timeout: SimDuration,
    /// Most partial datagrams held at once; admitting one more evicts
    /// the oldest (deterministically: earliest admission, then smallest
    /// key).
    pub max_buffers: usize,
    /// Largest datagram the layer will reassemble; a buffer growing past
    /// this is dropped as corrupt.
    pub max_datagram_bytes: usize,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig {
            timeout: SimDuration::secs(2),
            max_buffers: 64,
            max_datagram_bytes: u16::MAX as usize,
        }
    }
}

/// A fully reassembled datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Datagram {
    /// Flow it arrived on.
    pub flow: u8,
    /// Per-flow sequence number.
    pub seq: u8,
    /// The reassembled bytes.
    pub bytes: Vec<u8>,
}

/// Counters the reassembler keeps (all deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Datagrams completed.
    pub completed: u64,
    /// Fragments rejected for an unknown wire version.
    pub bad_version: u64,
    /// Payloads too short to carry a header.
    pub truncated: u64,
    /// Duplicate fragments ignored (first copy wins).
    pub duplicates: u64,
    /// Buffers dropped for inconsistent structure (conflicting last
    /// flags, indices past the announced end, oversize growth).
    pub inconsistent: u64,
    /// Buffers evicted by timeout.
    pub evicted_timeout: u64,
    /// Buffers evicted to admit a newer datagram at `max_buffers`.
    pub evicted_overflow: u64,
}

#[derive(Clone, Debug)]
struct Partial {
    first_at: SimTime,
    frags: BTreeMap<u16, Vec<u8>>,
    last_index: Option<u16>,
    bytes: usize,
}

/// The receive-side reassembly table.
#[derive(Clone, Debug)]
pub struct Reassembler {
    cfg: ReassemblyConfig,
    buffers: BTreeMap<(u8, u8), Partial>,
    /// Keys dropped since the last `drain_dropped` call (evictions,
    /// inconsistency drops, abandonments) — the harness marks these
    /// datagrams lost.
    dropped: Vec<(u8, u8)>,
    /// Counters.
    pub stats: ReassemblyStats,
}

impl Reassembler {
    /// Create a table with the given limits.
    pub fn new(cfg: ReassemblyConfig) -> Reassembler {
        Reassembler {
            cfg,
            buffers: BTreeMap::new(),
            dropped: Vec::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// Partial datagrams currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffers.len()
    }

    /// Total fragment bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.buffers.values().map(|p| p.bytes).sum()
    }

    /// Feed one received MAC frame body. Returns a completed datagram
    /// when this fragment was the last missing piece, `Ok(None)` while
    /// the datagram is still partial, and a typed error for payloads
    /// that do not parse as fragments (unknown version, truncation).
    pub fn push(&mut self, now: SimTime, payload: &[u8]) -> Result<Option<Datagram>, NetError> {
        let (hdr, chunk) = match FragHeader::decapsulate(payload) {
            Ok(ok) => ok,
            Err(e) => {
                match e {
                    NetError::BadVersion { .. } => {
                        self.stats.bad_version += 1;
                        obs::counter_add(obs::key!("net.rx.bad_version"), 1);
                    }
                    _ => {
                        self.stats.truncated += 1;
                        obs::counter_add(obs::key!("net.rx.truncated"), 1);
                    }
                }
                return Err(e);
            }
        };
        let key = (hdr.flow, hdr.seq);
        if !self.buffers.contains_key(&key) {
            self.admit(now, key);
        }
        let partial = self.buffers.get_mut(&key).expect("just admitted");
        // Structural consistency: conflicting last flags or indices past
        // the announced end mean the buffer mixes two incarnations of
        // the (flow, seq) pair (or corruption survived the CRC). Drop
        // the whole buffer — a half-trusted datagram is worse than none.
        let inconsistent = match partial.last_index {
            Some(l) => hdr.index > l || (hdr.last && hdr.index != l),
            None => {
                hdr.last
                    && partial
                        .frags
                        .keys()
                        .next_back()
                        .is_some_and(|&i| i > hdr.index)
            }
        };
        if inconsistent {
            self.drop_buffer(key);
            self.stats.inconsistent += 1;
            obs::counter_add(obs::key!("net.rx.inconsistent"), 1);
            return Ok(None);
        }
        if partial.frags.contains_key(&hdr.index) {
            self.stats.duplicates += 1;
            obs::counter_add(obs::key!("net.rx.dup_frags"), 1);
            return Ok(None);
        }
        if partial.bytes + chunk.len() > self.cfg.max_datagram_bytes {
            self.drop_buffer(key);
            self.stats.inconsistent += 1;
            obs::counter_add(obs::key!("net.rx.inconsistent"), 1);
            return Ok(None);
        }
        if hdr.last {
            partial.last_index = Some(hdr.index);
        }
        partial.bytes += chunk.len();
        partial.frags.insert(hdr.index, chunk.to_vec());
        obs::counter_add(obs::key!("net.rx.frags"), 1);
        // Complete when the last index is known and every index up to it
        // is present (indices are unique and bounded by the check above).
        if partial
            .last_index
            .is_some_and(|l| partial.frags.len() == l as usize + 1)
        {
            let partial = self.buffers.remove(&key).expect("present");
            let mut bytes = Vec::with_capacity(partial.bytes);
            for chunk in partial.frags.values() {
                bytes.extend_from_slice(chunk);
            }
            self.stats.completed += 1;
            obs::counter_add(obs::key!("net.rx.datagrams"), 1);
            return Ok(Some(Datagram {
                flow: key.0,
                seq: key.1,
                bytes,
            }));
        }
        Ok(None)
    }

    /// Drop every partial datagram whose first fragment is older than
    /// the timeout. Dropped keys are reported via [`Self::drain_dropped`].
    pub fn evict_expired(&mut self, now: SimTime) {
        let timeout = self.cfg.timeout;
        let expired: Vec<(u8, u8)> = self
            .buffers
            .iter()
            .filter(|(_, p)| {
                now.checked_duration_since(p.first_at)
                    .is_some_and(|age| age > timeout)
            })
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            self.drop_buffer(key);
            self.stats.evicted_timeout += 1;
            obs::counter_add(obs::key!("net.rx.evicted"), 1);
        }
    }

    /// Abandon the buffer for `key` (the MAC gave up on one of its
    /// fragments — the datagram can never complete).
    pub fn abandon(&mut self, key: (u8, u8)) {
        if self.buffers.contains_key(&key) {
            self.drop_buffer(key);
        } else {
            // No fragments buffered yet, but the datagram is still dead;
            // report the key so the harness can mark it lost.
            self.dropped.push(key);
        }
    }

    /// Take the keys dropped since the last call (timeouts, overflow
    /// evictions, inconsistency drops, abandonments).
    pub fn drain_dropped(&mut self) -> Vec<(u8, u8)> {
        std::mem::take(&mut self.dropped)
    }

    fn drop_buffer(&mut self, key: (u8, u8)) {
        self.buffers.remove(&key);
        self.dropped.push(key);
    }

    /// Admit a new buffer, evicting the oldest if the table is full.
    fn admit(&mut self, now: SimTime, key: (u8, u8)) {
        if self.buffers.len() >= self.cfg.max_buffers.max(1) {
            if let Some(oldest) = self
                .buffers
                .iter()
                .min_by_key(|(&k, p)| (p.first_at, k))
                .map(|(&k, _)| k)
            {
                self.drop_buffer(oldest);
                self.stats.evicted_overflow += 1;
                obs::counter_add(obs::key!("net.rx.evicted"), 1);
            }
        }
        self.buffers.insert(
            key,
            Partial {
                first_at: now,
                frags: BTreeMap::new(),
                last_index: None,
                bytes: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frag::fragment;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn reasm() -> Reassembler {
        Reassembler::new(ReassemblyConfig::default())
    }

    #[test]
    fn in_order_reassembly() {
        let mut r = reasm();
        let data: Vec<u8> = (0..200u8).collect();
        let frags = fragment(2, 9, &data, 64);
        let mut done = None;
        for f in &frags {
            done = r.push(t(1), f).unwrap();
        }
        let dg = done.expect("last fragment completes");
        assert_eq!(dg.flow, 2);
        assert_eq!(dg.seq, 9);
        assert_eq!(dg.bytes, data);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.stats.completed, 1);
    }

    #[test]
    fn reordered_and_duplicated_fragments_still_complete() {
        let mut r = reasm();
        let data: Vec<u8> = (0..150u8).collect();
        let mut frags = fragment(0, 1, &data, 50);
        frags.reverse();
        let dup = frags[1].clone();
        frags.insert(1, dup);
        let mut done = None;
        for f in &frags {
            if let Some(dg) = r.push(t(1), f).unwrap() {
                done = Some(dg);
            }
        }
        assert_eq!(done.unwrap().bytes, data);
        assert_eq!(r.stats.duplicates, 1);
    }

    #[test]
    fn bad_version_is_rejected_and_counted() {
        let mut r = reasm();
        assert_eq!(
            r.push(t(0), &[0x00, 1, 0, 0, 42]),
            Err(NetError::BadVersion { got: 0 })
        );
        assert_eq!(r.push(t(0), &[0xFF]), Err(NetError::Truncated { len: 1 }));
        assert_eq!(r.stats.bad_version, 1);
        assert_eq!(r.stats.truncated, 1);
        assert_eq!(r.buffered(), 0, "rejected payloads must not buffer");
    }

    #[test]
    fn timeout_evicts_partials() {
        let mut r = reasm();
        let frags = fragment(1, 1, &[7u8; 300], 64);
        r.push(t(0), &frags[0]).unwrap();
        assert_eq!(r.buffered(), 1);
        r.evict_expired(t(1999));
        assert_eq!(r.buffered(), 1, "not expired yet");
        r.evict_expired(t(2001));
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.stats.evicted_timeout, 1);
        assert_eq!(r.drain_dropped(), vec![(1, 1)]);
        // A late straggler re-admits a fresh buffer; it never completes
        // (fragment 0 is gone) but also never panics.
        assert_eq!(r.push(t(2002), &frags[1]).unwrap(), None);
    }

    #[test]
    fn overflow_evicts_the_oldest_buffer() {
        let mut r = Reassembler::new(ReassemblyConfig {
            max_buffers: 2,
            ..ReassemblyConfig::default()
        });
        let f0 = &fragment(0, 0, &[1u8; 100], 64)[0];
        let f1 = &fragment(0, 1, &[2u8; 100], 64)[0];
        let f2 = &fragment(0, 2, &[3u8; 100], 64)[0];
        r.push(t(0), f0).unwrap();
        r.push(t(1), f1).unwrap();
        r.push(t(2), f2).unwrap();
        assert_eq!(r.buffered(), 2);
        assert_eq!(r.stats.evicted_overflow, 1);
        assert_eq!(r.drain_dropped(), vec![(0, 0)], "oldest goes first");
    }

    #[test]
    fn inconsistent_last_flag_drops_the_buffer() {
        let mut r = reasm();
        // Announce the end at index 1...
        let h_last = FragHeader {
            flow: 0,
            seq: 0,
            index: 1,
            last: true,
        };
        r.push(t(0), &h_last.encapsulate(&[1, 2])).unwrap();
        // ...then claim index 3 exists.
        let h_past = FragHeader {
            flow: 0,
            seq: 0,
            index: 3,
            last: false,
        };
        assert_eq!(r.push(t(0), &h_past.encapsulate(&[9])).unwrap(), None);
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.stats.inconsistent, 1);
    }

    #[test]
    fn oversized_growth_drops_the_buffer() {
        let mut r = Reassembler::new(ReassemblyConfig {
            max_datagram_bytes: 100,
            ..ReassemblyConfig::default()
        });
        let h = |i, last| FragHeader {
            flow: 0,
            seq: 0,
            index: i,
            last,
        };
        r.push(t(0), &h(0, false).encapsulate(&[0u8; 80])).unwrap();
        assert_eq!(
            r.push(t(0), &h(1, false).encapsulate(&[0u8; 80])).unwrap(),
            None
        );
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.stats.inconsistent, 1);
    }

    #[test]
    fn zero_length_datagram_completes() {
        let mut r = reasm();
        let frags = fragment(5, 0, &[], 32);
        let dg = r.push(t(0), &frags[0]).unwrap().unwrap();
        assert_eq!(dg.bytes, Vec::<u8>::new());
    }
}
