//! Typed errors of the datagram layer.

use std::fmt;

/// What went wrong in the fragmentation/reassembly/scheduling pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A payload too short to carry a fragment header.
    Truncated {
        /// Observed payload length, bytes.
        len: usize,
    },
    /// A fragment header with an unknown wire version — stale-format or
    /// CRC-colliding garbage that must not reach reassembly as data.
    BadVersion {
        /// The version nibble found on the wire.
        got: u8,
    },
    /// A flow id outside the 4-bit wire range.
    FlowOutOfRange {
        /// The offending flow id.
        flow: u8,
    },
    /// A datagram larger than the layer can fragment and reassemble.
    DatagramTooLarge {
        /// Offered datagram size, bytes.
        len: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// The per-flow transmit queue is full; the datagram was refused.
    QueueFull {
        /// The saturated flow.
        flow: u8,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NetError::Truncated { len } => {
                write!(
                    f,
                    "payload of {len} bytes is too short for a fragment header"
                )
            }
            NetError::BadVersion { got } => {
                write!(f, "unknown fragment wire version {got}")
            }
            NetError::FlowOutOfRange { flow } => {
                write!(f, "flow id {flow} exceeds the 4-bit wire range")
            }
            NetError::DatagramTooLarge { len, max } => {
                write!(f, "datagram of {len} bytes exceeds the {max}-byte ceiling")
            }
            NetError::QueueFull { flow } => {
                write!(f, "transmit queue for flow {flow} is full")
            }
        }
    }
}

impl std::error::Error for NetError {}
