//! `NetOverLink` — the datagram layer plugged into the MAC loop.
//!
//! Implements [`TrafficSource`]: each MAC tick polls the workload
//! generators (timeline-ordered, so the draw sequence is cadence-
//! independent), datagrams enter the DRR scheduler, fragments are cut
//! against the transmitter's live payload budget, and delivered frame
//! bodies feed reassembly. Abandoned frames propagate as lost fragments
//! — the reassembly buffer for that datagram is dropped immediately
//! instead of waiting out the timeout.

use crate::error::NetError;
use crate::flow::DrrScheduler;
use crate::frag::{FragHeader, MAX_FLOWS};
use crate::reassembly::{Reassembler, ReassemblyConfig, ReassemblyStats};
use crate::workload::{WorkloadGen, WorkloadSpec};
use desim::{DetRng, SimTime};
use smartvlc_link::{
    LinkConfig, LinkError, LinkReport, LinkSimulation, TrafficSource, Transmitter,
};
use smartvlc_obs as obs;
use std::collections::{BTreeMap, HashMap};
use vlc_channel::ambient::ConstantAmbient;

/// Datagram-layer knobs.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Reassembly limits.
    pub reassembly: ReassemblyConfig,
    /// DRR byte quantum per rotation visit.
    pub quantum: usize,
    /// Per-flow transmit queue depth.
    pub max_queued: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            reassembly: ReassemblyConfig::default(),
            quantum: 512,
            max_queued: 64,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    Pending,
    Delivered,
    Lost,
}

#[derive(Clone, Debug)]
struct DgramRecord {
    created_at: SimTime,
    bytes: usize,
    mac_flow: u8,
    app_flow: u64,
    fate: Fate,
    delivered_at: Option<SimTime>,
}

#[derive(Clone, Debug)]
struct AppFlow {
    first_at: SimTime,
    total: u32,
    delivered: u32,
    lost: bool,
    done_at: Option<SimTime>,
}

/// Per-MAC-flow datagram accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacFlowSummary {
    /// Datagrams offered on this flow.
    pub offered: u64,
    /// Datagrams fully delivered.
    pub delivered: u64,
    /// Datagrams lost (queue drop, abandonment, eviction).
    pub lost: u64,
}

/// What the datagram layer measured over one run.
#[derive(Clone, Debug, Default)]
pub struct NetReport {
    /// Datagrams the workloads offered.
    pub offered_dgrams: u64,
    /// Datagrams reassembled at the receiver.
    pub delivered_dgrams: u64,
    /// Datagrams known lost (refused at the queue, abandoned by the
    /// ARQ, or evicted from reassembly).
    pub lost_dgrams: u64,
    /// Datagrams still in flight when the run ended.
    pub unfinished_dgrams: u64,
    /// Bytes offered / delivered.
    pub offered_bytes: u64,
    /// Bytes of reassembled datagrams.
    pub delivered_bytes: u64,
    /// Per-delivered-datagram latency (scheduled arrival → reassembly),
    /// milliseconds, in datagram creation order.
    pub latency_ms: Vec<f64>,
    /// Per-completed-application-flow completion time, milliseconds.
    pub fct_ms: Vec<f64>,
    /// Application flows offered / fully completed / touched by loss.
    pub flows_offered: u64,
    /// Flows whose every datagram was delivered.
    pub flows_completed: u64,
    /// Flows that lost at least one datagram.
    pub flows_lost: u64,
    /// Datagrams refused because a transmit queue was full.
    pub queue_drops: u64,
    /// Receive-side reassembly counters.
    pub reassembly: ReassemblyStats,
    /// Accounting per MAC flow (one per workload).
    pub per_flow: Vec<MacFlowSummary>,
}

/// The datagram layer as a MAC traffic source.
pub struct NetOverLink {
    sched: DrrScheduler,
    reasm: Reassembler,
    gens: Vec<WorkloadGen>,
    /// In-flight datagrams: `(mac_flow, seq)` → index into `dgrams`.
    live: HashMap<(u8, u8), usize>,
    dgrams: Vec<DgramRecord>,
    flows: BTreeMap<u64, AppFlow>,
    queue_drops: u64,
}

impl NetOverLink {
    /// Build a source running one workload per MAC flow. `rng` should be
    /// forked from the link seed so runs stay reproducible end to end.
    pub fn new(
        cfg: NetConfig,
        specs: &[WorkloadSpec],
        rng: &DetRng,
    ) -> Result<NetOverLink, NetError> {
        if specs.len() > MAX_FLOWS as usize {
            return Err(NetError::FlowOutOfRange {
                flow: specs.len() as u8,
            });
        }
        Ok(NetOverLink {
            sched: DrrScheduler::new(cfg.quantum, cfg.max_queued),
            reasm: Reassembler::new(cfg.reassembly),
            gens: specs
                .iter()
                .enumerate()
                .map(|(i, &s)| WorkloadGen::new(s, rng.fork_idx(i as u64)))
                .collect(),
            live: HashMap::new(),
            dgrams: Vec::new(),
            flows: BTreeMap::new(),
            queue_drops: 0,
        })
    }

    fn mark_lost(&mut self, id: usize) {
        let rec = &mut self.dgrams[id];
        if rec.fate != Fate::Pending {
            return;
        }
        rec.fate = Fate::Lost;
        obs::counter_add(obs::key!("net.dgram.lost"), 1);
        if let Some(flow) = self.flows.get_mut(&rec.app_flow) {
            flow.lost = true;
        }
    }

    fn mark_delivered(&mut self, id: usize, now: SimTime) {
        let rec = &mut self.dgrams[id];
        if rec.fate != Fate::Pending {
            return;
        }
        rec.fate = Fate::Delivered;
        rec.delivered_at = Some(now);
        if let Some(lat) = now.checked_duration_since(rec.created_at) {
            obs::observe(obs::key!("net.rx.latency_ns"), lat.as_nanos());
        }
        if let Some(flow) = self.flows.get_mut(&rec.app_flow) {
            flow.delivered += 1;
            if flow.delivered == flow.total && !flow.lost && flow.done_at.is_none() {
                flow.done_at = Some(now);
                if let Some(fct) = now.checked_duration_since(flow.first_at) {
                    obs::observe(obs::key!("net.flow.fct_ns"), fct.as_nanos());
                }
            }
        }
    }

    /// Summarize the run. Call after `run_traffic` returns.
    pub fn finish(&mut self) -> NetReport {
        let mut r = NetReport {
            queue_drops: self.queue_drops,
            reassembly: self.reasm.stats,
            per_flow: vec![MacFlowSummary::default(); self.gens.len()],
            ..NetReport::default()
        };
        for rec in &self.dgrams {
            r.offered_dgrams += 1;
            r.offered_bytes += rec.bytes as u64;
            let pf = &mut r.per_flow[rec.mac_flow as usize];
            pf.offered += 1;
            match rec.fate {
                Fate::Delivered => {
                    r.delivered_dgrams += 1;
                    r.delivered_bytes += rec.bytes as u64;
                    pf.delivered += 1;
                    let lat = rec
                        .delivered_at
                        .and_then(|at| at.checked_duration_since(rec.created_at))
                        .map_or(0.0, |d| d.as_secs_f64() * 1e3);
                    r.latency_ms.push(lat);
                }
                Fate::Lost => {
                    r.lost_dgrams += 1;
                    pf.lost += 1;
                }
                Fate::Pending => r.unfinished_dgrams += 1,
            }
        }
        for flow in self.flows.values() {
            r.flows_offered += 1;
            if flow.lost {
                r.flows_lost += 1;
            } else if let Some(done) = flow.done_at {
                r.flows_completed += 1;
                let fct = done
                    .checked_duration_since(flow.first_at)
                    .map_or(0.0, |d| d.as_secs_f64() * 1e3);
                r.fct_ms.push(fct);
            }
        }
        r
    }
}

impl TrafficSource for NetOverLink {
    fn on_tick(&mut self, now: SimTime) {
        for gi in 0..self.gens.len() {
            let arrivals = self.gens[gi].poll(now);
            for a in arrivals {
                let app_flow = ((gi as u64) << 32) | a.app_flow as u64;
                self.flows.entry(app_flow).or_insert(AppFlow {
                    first_at: a.at,
                    total: a.flow_dgrams,
                    delivered: 0,
                    lost: false,
                    done_at: None,
                });
                let id = self.dgrams.len();
                self.dgrams.push(DgramRecord {
                    created_at: a.at,
                    bytes: a.bytes,
                    mac_flow: gi as u8,
                    app_flow,
                    fate: Fate::Pending,
                    delivered_at: None,
                });
                match self.sched.enqueue(gi as u8, vec![0xA5; a.bytes]) {
                    Ok(seq) => {
                        // A (flow, seq) pair still live after a full u8
                        // wrap means the old datagram can never be told
                        // apart on the wire — count it lost.
                        if let Some(old) = self.live.insert((gi as u8, seq), id) {
                            self.mark_lost(old);
                        }
                    }
                    Err(_) => {
                        self.queue_drops += 1;
                        self.mark_lost(id);
                    }
                }
            }
        }
        self.reasm.evict_expired(now);
        for key in self.reasm.drain_dropped() {
            if let Some(id) = self.live.remove(&key) {
                self.mark_lost(id);
            }
        }
    }

    fn next_data(&mut self, _now: SimTime, tx: &mut Transmitter) -> Option<Vec<u8>> {
        self.sched
            .next_fragment(tx.payload_budget())
            .map(|f| f.payload)
    }

    fn on_delivered(&mut self, now: SimTime, body: &[u8]) {
        if let Ok(Some(dg)) = self.reasm.push(now, body) {
            if let Some(id) = self.live.remove(&(dg.flow, dg.seq)) {
                // Guard against size forgery surviving everything: a
                // reassembled datagram of the wrong length is a loss,
                // not a delivery.
                if self.dgrams[id].bytes == dg.bytes.len() {
                    self.mark_delivered(id, now);
                } else {
                    self.mark_lost(id);
                }
            }
        }
    }

    fn on_abandoned(&mut self, _now: SimTime, body: &[u8]) {
        if let Ok((hdr, _)) = FragHeader::decapsulate(body) {
            let key = (hdr.flow, hdr.seq);
            self.reasm.abandon(key);
            if let Some(id) = self.live.remove(&key) {
                self.mark_lost(id);
            }
        }
    }
}

/// Run a workload mix over one link scenario under constant ambient.
/// One MAC flow per workload spec; everything derives from the link
/// seed, so the pair of reports is byte-reproducible.
pub fn run_net_over_link(
    link_cfg: LinkConfig,
    net_cfg: NetConfig,
    specs: &[WorkloadSpec],
    lux: f64,
) -> Result<(NetReport, LinkReport), LinkError> {
    let rng = DetRng::seed_from_u64(link_cfg.seed).fork("net");
    let mut net = NetOverLink::new(net_cfg, specs, &rng)
        .map_err(|_| LinkError::Config("too many workloads"))?;
    let mut sim = LinkSimulation::new(link_cfg)?;
    let link = sim.run_traffic(&mut ConstantAmbient { lux }, &mut net);
    Ok((net.finish(), link))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use smartvlc_link::SchemeKind;

    fn base_cfg(seed: u64) -> LinkConfig {
        let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, seed);
        cfg.duration = SimDuration::secs(3);
        cfg
    }

    #[test]
    fn datagrams_flow_end_to_end() {
        let (net, link) = run_net_over_link(
            base_cfg(11),
            NetConfig::default(),
            &[WorkloadSpec::web(), WorkloadSpec::iot()],
            4000.0,
        )
        .unwrap();
        assert!(net.offered_dgrams > 5, "{net:?}");
        assert!(net.delivered_dgrams > 0, "{net:?}");
        assert!(
            net.delivered_dgrams + net.lost_dgrams + net.unfinished_dgrams == net.offered_dgrams
        );
        assert!(net.flows_completed > 0);
        assert_eq!(net.latency_ms.len(), net.delivered_dgrams as usize);
        assert!(net.latency_ms.iter().all(|&l| l >= 0.0));
        assert!(link.stats.frames_ok > 0);
        assert_eq!(net.reassembly.bad_version, 0, "clean link, no garbage");
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            run_net_over_link(
                base_cfg(7),
                NetConfig::default(),
                &[WorkloadSpec::web(), WorkloadSpec::video()],
                4000.0,
            )
            .unwrap()
        };
        let (a, _) = run();
        let (b, _) = run();
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.fct_ms, b.fct_ms);
        assert_eq!(a.offered_dgrams, b.offered_dgrams);
        assert_eq!(a.reassembly, b.reassembly);
    }

    #[test]
    fn abandoned_frames_lose_their_datagrams() {
        // At 6 m the downlink is dead (see `dead_link_delivers_nothing`):
        // no frame ever decodes, so no ACK ever returns, and the MAC
        // abandons every frame after its retry budget. Abandonment must
        // propagate to the datagram layer as loss — not leave datagrams
        // dangling "unfinished" forever.
        let mut cfg = LinkConfig::paper_static(6.0, SchemeKind::Amppm, 23);
        cfg.duration = SimDuration::secs(2);
        let (net, link) =
            run_net_over_link(cfg, NetConfig::default(), &[WorkloadSpec::video()], 4000.0).unwrap();
        assert!(link.stats.frames_abandoned > 0, "{:?}", link.stats);
        assert_eq!(net.delivered_dgrams, 0, "{net:?}");
        assert!(net.lost_dgrams > 0, "{net:?}");
        assert!(net.flows_lost > 0, "{net:?}");
    }
}
