//! # smartvlc-net — real traffic over the VLC link
//!
//! The MAC ships frames; this crate decides what goes in them. It is
//! the datagram layer ROADMAP item 2 calls for, layered over the
//! existing ARQ+FEC pipeline through the [`smartvlc_link::TrafficSource`]
//! hooks:
//!
//! * [`frag`] — the versioned 4-byte fragment header (flow id, per-flow
//!   datagram sequence, fragment index + last flag) and MTU-bounded
//!   fragmentation. The version nibble rejects stale-format or
//!   CRC-colliding garbage before it reaches reassembly.
//! * [`flow`] — per-flow transmit queues under deficit-round-robin
//!   service, so one bulk transfer cannot starve IoT keepalives.
//!   Fragments are cut lazily against the transmitter's live payload
//!   budget (the MTU shrinks as AMPPM tiers degrade).
//! * [`reassembly`] — the receive-side table: tolerant of reordering,
//!   duplicates and holes, with deterministic timeout eviction on the
//!   `desim` clock bounding memory under partial-fragment floods.
//! * [`workload`] — three deterministic synthetic generators (web-like
//!   short flows, constant-rate video, Poisson-ish IoT bursts) on keyed
//!   [`desim::DetRng`] streams, byte-identical at any `SMARTVLC_THREADS`.
//! * [`harness`] — [`harness::NetOverLink`] wires all of it into a
//!   [`smartvlc_link::LinkSimulation`] run and reports datagram
//!   latency, flow-completion time, and loss accounting.
//!
//! # Example
//!
//! ```
//! use desim::SimDuration;
//! use smartvlc_link::{LinkConfig, SchemeKind};
//! use smartvlc_net::{run_net_over_link, NetConfig, WorkloadSpec};
//!
//! let mut cfg = LinkConfig::paper_static(3.0, SchemeKind::Amppm, 7);
//! cfg.duration = SimDuration::millis(800);
//! let (net, _link) = run_net_over_link(
//!     cfg,
//!     NetConfig::default(),
//!     &[WorkloadSpec::iot()],
//!     4000.0,
//! )
//! .unwrap();
//! assert_eq!(
//!     net.offered_dgrams,
//!     net.delivered_dgrams + net.lost_dgrams + net.unfinished_dgrams
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod flow;
pub mod frag;
pub mod harness;
pub mod reassembly;
pub mod workload;

pub use error::NetError;
pub use flow::{DrrScheduler, TxFragment};
pub use frag::{fragment, FragHeader, MAX_FLOWS, MAX_FRAG_INDEX, WIRE_VERSION};
pub use harness::{run_net_over_link, MacFlowSummary, NetConfig, NetOverLink, NetReport};
pub use reassembly::{Datagram, Reassembler, ReassemblyConfig, ReassemblyStats};
pub use workload::{Arrival, WorkloadGen, WorkloadSpec};
