//! Deterministic synthetic traffic generators.
//!
//! Three workload shapes cover the access-network mix the paper's
//! evaluation never reaches: web-like short flows (a burst of request/
//! response bytes, then silence), constant-rate video streaming, and
//! Poisson-ish IoT telemetry bursts. Every draw comes from the
//! generator's own keyed [`DetRng`] stream, and generation is strictly
//! timeline-ordered — `poll(now)` emits every arrival scheduled at or
//! before `now` in schedule order, so the draw sequence is independent
//! of how often the MAC loop polls (and therefore of thread count,
//! chaos timing, or FEC mode).

use desim::{DetRng, SimDuration, SimTime};

/// One synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Web-like short flows: one log-uniform datagram (400–4000 B) per
    /// flow, exponential think time between flows.
    Web {
        /// Mean gap between flows.
        mean_gap: SimDuration,
    },
    /// Constant-rate stream: a fixed-size datagram every interval
    /// (560 B / 80 ms ≈ 56 kbit/s at the defaults).
    Video {
        /// Bytes per video frame datagram.
        frame_bytes: usize,
        /// Frame interval.
        interval: SimDuration,
    },
    /// IoT telemetry: bursts of 2–5 small datagrams (40–128 B) spaced
    /// 2 ms apart, exponential gaps between bursts. One burst = one
    /// application flow.
    Iot {
        /// Mean gap between bursts.
        mean_gap: SimDuration,
    },
}

impl WorkloadSpec {
    /// Paper-scale defaults for each shape.
    pub fn web() -> WorkloadSpec {
        WorkloadSpec::Web {
            mean_gap: SimDuration::millis(400),
        }
    }

    /// ~56 kbit/s constant-rate stream.
    pub fn video() -> WorkloadSpec {
        WorkloadSpec::Video {
            frame_bytes: 560,
            interval: SimDuration::millis(80),
        }
    }

    /// Sparse telemetry bursts.
    pub fn iot() -> WorkloadSpec {
        WorkloadSpec::Iot {
            mean_gap: SimDuration::millis(450),
        }
    }
}

/// One datagram the workload wants sent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Scheduled arrival instant (may be slightly before the poll that
    /// surfaced it; latency accounting uses this, not the poll time).
    pub at: SimTime,
    /// Datagram size, bytes.
    pub bytes: usize,
    /// Generator-local application-flow id (a web transfer, a video
    /// frame, an IoT burst).
    pub app_flow: u32,
    /// Datagrams in this application flow in total.
    pub flow_dgrams: u32,
}

/// A running workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: DetRng,
    /// Next scheduled event (flow/burst/frame start).
    next_at: SimTime,
    next_flow: u32,
}

/// Exponential inter-arrival draw with the given mean.
fn exp_gap(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
    // Clamp the tail: one astronomically long gap must not silence a
    // generator for the whole run.
    let u = rng.next_f64().max(1e-12);
    let factor = (-u.ln()).min(6.0);
    SimDuration::nanos((mean.as_nanos() as f64 * factor).max(1.0) as u64)
}

impl WorkloadGen {
    /// Create a generator; the first arrival lands within one mean gap
    /// (or interval) of time zero.
    pub fn new(spec: WorkloadSpec, mut rng: DetRng) -> WorkloadGen {
        let next_at = match spec {
            WorkloadSpec::Web { mean_gap } | WorkloadSpec::Iot { mean_gap } => {
                SimTime::ZERO + exp_gap(&mut rng, mean_gap)
            }
            WorkloadSpec::Video { interval, .. } => {
                // Desynchronize streams: a uniform phase within one
                // interval, so two video flows never beat in lockstep.
                SimTime::ZERO + SimDuration::nanos(rng.next_below(interval.as_nanos().max(1)))
            }
        };
        WorkloadGen {
            spec,
            rng,
            next_at,
            next_flow: 0,
        }
    }

    /// Emit every arrival scheduled at or before `now`, in schedule
    /// order. Deterministic for a given seed regardless of poll cadence.
    pub fn poll(&mut self, now: SimTime) -> Vec<Arrival> {
        let mut out = Vec::new();
        while self.next_at <= now {
            let at = self.next_at;
            let app_flow = self.next_flow;
            self.next_flow += 1;
            match self.spec {
                WorkloadSpec::Web { mean_gap } => {
                    // Log-uniform 400–4000 B: small pages dominate but
                    // the tail reaches multi-fragment transfers.
                    let span = (4000f64 / 400.0).ln();
                    let bytes = (400.0 * (self.rng.next_f64() * span).exp()).round() as usize;
                    out.push(Arrival {
                        at,
                        bytes: bytes.clamp(400, 4000),
                        app_flow,
                        flow_dgrams: 1,
                    });
                    self.next_at = at + exp_gap(&mut self.rng, mean_gap);
                }
                WorkloadSpec::Video {
                    frame_bytes,
                    interval,
                } => {
                    out.push(Arrival {
                        at,
                        bytes: frame_bytes,
                        app_flow,
                        flow_dgrams: 1,
                    });
                    self.next_at = at + interval;
                }
                WorkloadSpec::Iot { mean_gap } => {
                    let count = 2 + self.rng.next_below(4) as u32; // 2..=5
                    for i in 0..count {
                        let bytes = 40 + self.rng.next_below(89) as usize; // 40..=128
                        out.push(Arrival {
                            at: at + SimDuration::millis(2) * i as u64,
                            bytes,
                            app_flow,
                            flow_dgrams: count,
                        });
                    }
                    self.next_at = at + exp_gap(&mut self.rng, mean_gap);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(spec: WorkloadSpec, seed: u64, secs: u64) -> Vec<Arrival> {
        let mut g = WorkloadGen::new(spec, DetRng::seed_from_u64(seed).fork("wl"));
        g.poll(SimTime::ZERO + SimDuration::secs(secs))
    }

    #[test]
    fn poll_cadence_does_not_change_the_schedule() {
        let all = drain(WorkloadSpec::web(), 5, 10);
        // Same generator polled every 700 µs (a cadence no interval
        // divides evenly) must produce the identical arrival sequence.
        let mut g = WorkloadGen::new(WorkloadSpec::web(), DetRng::seed_from_u64(5).fork("wl"));
        let mut stepped = Vec::new();
        let mut now = SimTime::ZERO;
        let end = SimTime::ZERO + SimDuration::secs(10);
        while now <= end {
            stepped.extend(g.poll(now));
            now += SimDuration::micros(700);
        }
        assert_eq!(all, stepped[..all.len()]);
    }

    #[test]
    fn web_sizes_and_gaps_are_plausible() {
        let arrivals = drain(WorkloadSpec::web(), 42, 60);
        assert!(arrivals.len() > 60, "{}", arrivals.len());
        assert!(arrivals.iter().all(|a| (400..=4000).contains(&a.bytes)));
        // Every web datagram is its own application flow.
        assert!(arrivals.windows(2).all(|w| w[0].app_flow != w[1].app_flow));
    }

    #[test]
    fn video_is_constant_rate() {
        let arrivals = drain(WorkloadSpec::video(), 1, 8);
        assert!((90..=101).contains(&arrivals.len()), "{}", arrivals.len());
        assert!(arrivals.iter().all(|a| a.bytes == 560));
        for w in arrivals.windows(2) {
            let gap = w[1].at.checked_duration_since(w[0].at).unwrap();
            assert_eq!(gap, SimDuration::millis(80));
        }
    }

    #[test]
    fn iot_bursts_share_an_app_flow() {
        let arrivals = drain(WorkloadSpec::iot(), 9, 60);
        assert!(arrivals.iter().all(|a| (40..=128).contains(&a.bytes)));
        assert!(arrivals.iter().all(|a| (2..=5).contains(&a.flow_dgrams)));
        // Bursts are contiguous runs of the same app_flow id.
        let mut flows = std::collections::HashMap::new();
        for a in &arrivals {
            *flows.entry(a.app_flow).or_insert(0u32) += 1;
        }
        for a in &arrivals {
            assert_eq!(flows[&a.app_flow], a.flow_dgrams, "{a:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            drain(WorkloadSpec::iot(), 3, 30),
            drain(WorkloadSpec::iot(), 3, 30)
        );
        assert_ne!(
            drain(WorkloadSpec::iot(), 3, 30),
            drain(WorkloadSpec::iot(), 4, 30)
        );
    }
}
